// exp_ablation — ablations of the two design choices DESIGN.md calls out.
//
// A) Flag range. Lemma 4's counting argument dictates flag range {0..2c+2}
//    (five values for capacity 1). What if the protocol used fewer? This
//    ablation runs the adversarial two-process sweep of E1 with flag bounds
//    2..6 and counts Specification-1 violations: every bound below 4 is
//    unsound, 4 and above are sound — the paper's constant is exactly tight.
//
// B) Stack tick order. The reproduction found that composing the protocols
//    lower-layer-first opens a one-activation window in which a ghost
//    receive-fck against still-corrupted PIF flags poisons IDL's monotone
//    minID (DESIGN.md §6.3). This ablation measures the poisoning rate of
//    the unsafe order against the safe (upper-layer-first) order.
#include "exp_common.hpp"

namespace snapstab::bench {
namespace {

using core::IdlProcess;
using core::PifProcess;
using sim::Simulator;

struct FlagCell {
  int configurations = 0;
  int completed = 0;
  int violations = 0;
};

// A PifProcess variant with an explicit flag bound (ablation only).
class AblatedPifProcess final : public sim::Process {
 public:
  AblatedPifProcess(int degree, std::int32_t flag_bound)
      : pif_(degree, 1, flag_bound) {}
  core::Pif& pif() noexcept { return pif_; }
  void on_tick(sim::Context& ctx) override { pif_.tick(ctx); }
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override { return pif_.tick_enabled(); }
  void randomize(Rng& rng) override { pif_.randomize(rng); }

 private:
  core::Pif pif_;
};

// Drives the Figure-1 adversarial prelude against a protocol using flag
// range {0..F}: the stale fuel of a capacity-1 link can fake exactly three
// increments (one stale echo per channel direction plus the responder's
// stale NeigState). A protocol with F <= 3 therefore ghost-decides without
// the responder ever seeing the broadcast; F >= 4 (the paper's 2c+2)
// survives and completes correctly under a fair schedule.
FlagCell flag_ablation(std::int32_t flag_bound) {
  FlagCell cell;
  cell.configurations = 1;
  Simulator world(2, 1, 5);
  world.add_process(std::make_unique<AblatedPifProcess>(1, flag_bound));
  world.add_process(std::make_unique<AblatedPifProcess>(1, flag_bound));
  auto& net = world.network();
  net.channel(1, 0).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 0, 0));
  net.channel(0, 1).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 2, 0));
  auto& q = world.process_as<AblatedPifProcess>(1).pif();
  q.mutable_state().neig_state[0] = 1;
  q.request(Value::text("mq"));

  auto& p = world.process_as<AblatedPifProcess>(0).pif();
  p.request(Value::text("m"));
  world.log().emit(sim::Observation{0, 0, sim::Layer::Pif,
                                    sim::ObsKind::RequestWait, -1,
                                    Value::text("m")});
  // The scripted prelude: three stale increments, no genuine round trip.
  world.execute(sim::Step::tick(0));        // p starts; send dies on full
  world.execute(sim::Step::deliver(1, 0));  // stale echo 0
  world.execute(sim::Step::tick(1));        // q starts, echoes NeigState 1
  world.execute(sim::Step::deliver(1, 0));  // stale echo 1
  world.execute(sim::Step::deliver(0, 1));  // q eats stale flag-2, echoes 2
  world.execute(sim::Step::deliver(1, 0));  // stale echo 2
  world.execute(sim::Step::tick(0));        // p decides iff State == F

  if (!p.done()) {
    // The bound resisted the prelude; finish fairly and verify the spec.
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(7));
    const auto reason = world.run(100'000, [](Simulator& s) {
      return s.process_as<AblatedPifProcess>(0).pif().done();
    });
    if (reason != Simulator::StopReason::Predicate) return cell;
  }
  ++cell.completed;
  const auto report = core::check_pif_spec(
      world, {.require_termination = false, .require_start = false});
  if (!report.ok()) ++cell.violations;
  return cell;
}

struct OrderCell {
  int runs = 0;
  int poisoned = 0;
};

OrderCell order_ablation(bool unsafe_order, int n, int trials,
                         std::uint64_t seed0) {
  OrderCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    std::vector<std::int64_t> ids;
    Rng id_rng(seed * 13);
    for (int i = 0; i < n; ++i)
      ids.push_back(id_rng.range(1, 10'000) * 100 + i);
    const std::int64_t true_min =
        *std::min_element(ids.begin(), ids.end());

    Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<IdlProcess>(
          ids[static_cast<std::size_t>(i)], n - 1, 1, unsafe_order));
    Rng rng(seed ^ 0xAB1A);
    sim::fuzz(world, rng);
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
    for (int p = 0; p < n; ++p) core::request_idl(world, p);
    const auto reason = world.run(3'000'000, [n](Simulator& s) {
      for (int p = 0; p < n; ++p)
        if (!s.process_as<IdlProcess>(p).idl().done()) return false;
      return true;
    });
    if (reason != Simulator::StopReason::Predicate) continue;
    ++cell.runs;
    for (int p = 0; p < n; ++p)
      if (world.process_as<IdlProcess>(p).idl().min_id() != true_min) {
        ++cell.poisoned;
        break;
      }
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1300));

  banner("exp_ablation", "design-choice ablations (DESIGN.md §6)",
         "A) flag range {0..F}: F < 2c+2 is unsound, the paper's constant\n"
         "is tight. B) stack tick order: lower-layer-first reopens the\n"
         "ghost-feedback window and poisons IDL's minID.");

  std::printf(
      "--- A: flag-range ablation (capacity 1, scripted Figure-1 prelude) "
      "---\n");
  TextTable flags({"flag bound F", "configurations", "completed",
                   "spec violations", "sound?"});
  bool small_unsound = false;
  bool paper_sound = true;
  for (std::int32_t bound : {2, 3, 4, 5, 6}) {
    const auto cell = flag_ablation(bound);
    if (bound < 4 && cell.violations > 0) small_unsound = true;
    if (bound >= 4 && cell.violations > 0) paper_sound = false;
    flags.add_row({TextTable::cell(static_cast<int>(bound)),
                   TextTable::cell(cell.configurations),
                   TextTable::cell(cell.completed),
                   TextTable::cell(cell.violations),
                   cell.violations == 0 ? "yes" : "NO"});
  }
  flags.print();

  std::printf("\n--- B: stack tick-order ablation (IDL over PIF, n = 8) ---\n");
  TextTable order({"tick order", "runs", "runs with poisoned minID"});
  const auto safe = order_ablation(false, 8, trials, seed);
  const auto unsafe = order_ablation(true, 8, trials, seed);
  order.add_row({"upper layer first (ours)", TextTable::cell(safe.runs),
                 TextTable::cell(safe.poisoned)});
  order.add_row({"lower layer first (naive)", TextTable::cell(unsafe.runs),
                 TextTable::cell(unsafe.poisoned)});
  order.print();

  verdict(small_unsound,
          "every flag bound below the paper's 2c+2 admitted violations");
  verdict(paper_sound, "the paper's bound (and larger) stayed sound");
  verdict(safe.poisoned == 0 && unsafe.poisoned > 0,
          "the upper-layer-first composition eliminates the minID "
          "poisoning the naive order exhibits");

  BenchJson json("exp_ablation");
  json.set("trials", trials);
  json.set("small_unsound", small_unsound);
  json.set("paper_sound", paper_sound);
  json.set("safe_order_poisoned", safe.poisoned);
  json.set("unsafe_order_poisoned", unsafe.poisoned);
  json.write_if_requested(args);
  return 0;
}
