// exp_baselines — Experiment E10: self- vs snap-stabilization, measured.
//
// The qualitative claim of the paper's introduction, made quantitative:
// from a corrupted initial configuration,
//   - Protocol PIF (snap): correct from request #1, always;
//   - mod-K sequence PIF (self): request #1 may be wrong (probability
//     falling with K), later requests are correct once the stale state has
//     been flushed — it converges instead of being immediately correct;
//   - naive PIF: wrong or deadlocked, and never recovers by itself.
// The table is the per-request-index violation rate per protocol.
#include <array>

#include "baselines/naive_pif.hpp"
#include "baselines/seq_pif.hpp"
#include "exp_common.hpp"

namespace snapstab::bench {
namespace {

using baselines::NaivePifProcess;
using baselines::SeqPifProcess;
using core::PifProcess;
using sim::Simulator;

constexpr int kRequests = 5;

struct Curve {
  std::array<int, kRequests> violations{};  // per request index
  std::array<int, kRequests> deadlocks{};
  int trials = 0;
};

enum class Kind { Snap, Naive, Seq };

// Round payloads sit far outside the fuzzer's integer range so a stale
// preloaded message can never masquerade as a genuine receipt.
Value round_payload(int round) { return Value::integer(1'000'000 + round); }

void submit(Simulator& world, Kind kind, int round) {
  const Value payload = round_payload(round);
  switch (kind) {
    case Kind::Snap:
      core::request_pif(world, 0, payload);
      break;
    case Kind::Naive:
      dynamic_cast<NaivePifProcess&>(world.process(0)).request(payload);
      break;
    case Kind::Seq:
      dynamic_cast<SeqPifProcess&>(world.process(0)).request(payload);
      break;
  }
}

bool is_done(Simulator& world, Kind kind) {
  switch (kind) {
    case Kind::Snap:
      return world.process_as<PifProcess>(0).pif().done();
    case Kind::Naive:
      return dynamic_cast<NaivePifProcess&>(world.process(0)).done();
    case Kind::Seq:
      return dynamic_cast<SeqPifProcess&>(world.process(0)).done();
  }
  return false;
}

Curve run_curve(Kind kind, int k, int n, int trials, std::uint64_t seed0) {
  Curve curve;
  curve.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i) {
      switch (kind) {
        case Kind::Snap:
          world.add_process(std::make_unique<PifProcess>(n - 1, 1));
          break;
        case Kind::Naive:
          world.add_process(std::make_unique<NaivePifProcess>(n - 1));
          break;
        case Kind::Seq:
          world.add_process(std::make_unique<SeqPifProcess>(n - 1, k));
          break;
      }
    }
    // Corrupted initial configuration: full channels, fuzzed states.
    // (request() below overwrites the initiator's request variable, so
    // request #1 really is request #1 for every protocol.)
    Rng rng(seed ^ 0x5EED);
    sim::fuzz(world, rng,
              sim::FuzzOptions{.channel_fill = 1.0, .flag_limit = 4});
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));

    for (int round = 0; round < kRequests; ++round) {
      submit(world, kind, round);
      const auto reason = world.run(
          300'000, [kind](Simulator& s) { return is_done(s, kind); });
      if (reason != Simulator::StopReason::Predicate) {
        ++curve.deadlocks[static_cast<std::size_t>(round)];
        break;  // a deadlocked protocol serves nothing further
      }
      // Correctness of this computation: every peer must have generated a
      // receive-brd for this round's payload within the run so far.
      const auto& events = world.log().events();
      std::vector<bool> got(static_cast<std::size_t>(n), false);
      for (const auto& e : events)
        if (e.kind == sim::ObsKind::RecvBrd && e.value == round_payload(round))
          got[static_cast<std::size_t>(e.process)] = true;
      bool all = true;
      for (int p = 1; p < n; ++p)
        if (!got[static_cast<std::size_t>(p)]) all = false;
      if (!all) ++curve.violations[static_cast<std::size_t>(round)];
    }
  }
  return curve;
}

std::string pct(int count, int trials) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%",
                100.0 * count / std::max(1, trials));
  return buf;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "n", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 200));
  const int n = static_cast<int>(args.get_int("n", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1111));

  banner("E10: exp_baselines",
         "self- vs snap-stabilization (§1, §2 'Self- vs Snap-')",
         "Per-request-index violation rate from corrupted starts: snap is\n"
         "correct from request #1; self-stabilizing sequence numbers\n"
         "converge; the naive attempt never recovers.");

  struct Row {
    const char* name;
    Kind kind;
    int k;
  };
  const Row rows[] = {
      {"snap PIF (Algorithm 1)", Kind::Snap, 0},
      {"naive PIF (Section 4.1)", Kind::Naive, 0},
      {"seq PIF, K=2", Kind::Seq, 2},
      {"seq PIF, K=4", Kind::Seq, 4},
      {"seq PIF, K=16", Kind::Seq, 16},
      {"seq PIF, K=64", Kind::Seq, 64},
  };

  TextTable table({"protocol", "req#1 bad", "req#2 bad", "req#3 bad",
                   "req#4 bad", "req#5 bad", "deadlocked"});
  bool snap_clean = true;
  bool seq_first_dirty = false;
  bool seq_later_clean = true;
  for (const auto& row : rows) {
    const auto curve = run_curve(row.kind, row.k, n, trials,
                                 seed + static_cast<std::uint64_t>(row.k));
    int deadlocks = 0;
    for (const int d : curve.deadlocks) deadlocks += d;
    std::vector<std::string> cells = {row.name};
    for (int r = 0; r < kRequests; ++r)
      cells.push_back(
          pct(curve.violations[static_cast<std::size_t>(r)], curve.trials));
    cells.push_back(pct(deadlocks, curve.trials));
    table.add_row(std::move(cells));

    if (row.kind == Kind::Snap)
      for (const int v : curve.violations)
        if (v != 0) snap_clean = false;
    if (row.kind == Kind::Seq && row.k <= 4) {
      if (curve.violations[0] > 0) seq_first_dirty = true;
      for (int r = 2; r < kRequests; ++r)
        if (curve.violations[static_cast<std::size_t>(r)] > 0)
          seq_later_clean = false;
    }
  }
  table.print();

  verdict(snap_clean,
          "snap-stabilizing PIF: zero violations from the very first "
          "request");
  verdict(seq_first_dirty,
          "sequence-number PIF: early requests violated (stale collisions)");
  verdict(seq_later_clean,
          "sequence-number PIF: converged after flushing (self- but not "
          "snap-stabilizing)");

  BenchJson json("exp_baselines");
  json.set("trials", trials);
  json.set("snap_clean", snap_clean);
  json.set("seq_first_dirty", seq_first_dirty);
  json.set("seq_later_clean", seq_later_clean);
  json.write_if_requested(args);
  return 0;
}
