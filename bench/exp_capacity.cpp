// exp_capacity — Experiment E7: the capacity-c generalization.
//
// The paper calls the extension to a known bound c straightforward; this
// experiment quantifies it. Flag range {0..2c+2}; validation = fuzzed
// Specification-1 checks per capacity; cost = rounds and messages for one
// computation (the handshake deepens linearly in c). Also reproduces the
// *mismatch* failure: a protocol believing c' < c channels can be fooled.
#include "exp_common.hpp"
#include "trial_runner.hpp"

namespace snapstab::bench {
namespace {

using core::PifProcess;
using sim::Simulator;

struct Cell {
  int runs = 0;
  int violations = 0;
  Summary rounds;
  Summary sends;
};

Cell run_cell(int c, int n, int trials, std::uint64_t seed0, int threads) {
  // One independent seeded trial per index; workers run them in parallel
  // (one Simulator + StringPool each), results fold in trial order below.
  struct Trial {
    bool completed = false;
    bool violation = false;
    double rounds = 0;
    double sends = 0;
  };
  const auto outcomes = run_trials(trials, threads, [&](int t) {
    Trial out;
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    auto world = pif_world(n, c, seed);
    Rng rng(seed * 7);
    sim::FuzzOptions fuzz_opts;
    fuzz_opts.flag_limit = 2 * c + 2;
    sim::fuzz(*world, rng, fuzz_opts);
    world->set_scheduler(std::make_unique<sim::RoundRobinScheduler>(seed));
    core::request_pif(*world, 0, Value::integer(t));
    const auto reason = world->run(5'000'000, [](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().done();
    });
    if (reason != Simulator::StopReason::Predicate) {
      out.violation = true;
      return out;
    }
    out.completed = true;
    out.rounds = static_cast<double>(rounds_of(*world));
    out.sends = static_cast<double>(world->metrics().sends);
    const auto report = core::check_pif_spec(
        *world, {.require_termination = false, .require_start = false});
    if (!report.ok()) out.violation = true;
    return out;
  });

  Cell cell;
  for (const auto& out : outcomes) {
    ++cell.runs;
    if (out.violation) ++cell.violations;
    if (!out.completed) continue;
    cell.rounds.add(out.rounds);
    cell.sends.add(out.sends);
  }
  return cell;
}

// The mismatch attack of test_capacity, parameterized: channels hold `real`
// messages, the protocol believes `believed`. Returns true when the ghost
// decision happened.
bool mismatch_attack(int believed, int real) {
  Simulator world(2, static_cast<std::size_t>(real), 1);
  world.add_process(std::make_unique<PifProcess>(1, believed));
  world.add_process(std::make_unique<PifProcess>(1, believed));
  const int flag_bound = 2 * believed + 2;
  for (std::int32_t flag = 0; flag < flag_bound && flag < real; ++flag)
    world.network().channel(1, 0).push(
        Message::pif(Value::text("stale"), Value::text("stale"), 0, flag));
  core::request_pif(world, 0, Value::text("real"));
  world.execute(sim::Step::tick(0));
  for (int i = 0; i < real; ++i) world.execute(sim::Step::deliver(1, 0));
  world.execute(sim::Step::tick(0));
  return world.process_as<PifProcess>(0).pif().done();
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "threads", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7000));
  const int threads = trial_thread_count(args, trials);

  banner("E7: exp_capacity",
         "§4 remark: extension to known capacity c (straightforward)",
         "Validation and cost of the capacity-parametric Protocol PIF, and\n"
         "what happens when the believed bound is wrong.");

  std::printf("--- Matching bound: validation and cost ---\n");
  TextTable table({"capacity c", "flag range", "n", "runs", "violations",
                   "rounds (mean)", "msgs (mean)"});
  int total_violations = 0;
  for (int c : {1, 2, 4, 8}) {
    for (int n : {2, 8}) {
      const auto cell =
          run_cell(c, n, trials,
                   seed + static_cast<std::uint64_t>(c * 100 + n), threads);
      total_violations += cell.violations;
      char range[24];
      std::snprintf(range, sizeof range, "{0..%d}", 2 * c + 2);
      table.add_row({TextTable::cell(c), range, TextTable::cell(n),
                     TextTable::cell(cell.runs),
                     TextTable::cell(cell.violations),
                     TextTable::cell(cell.rounds.mean(), 1),
                     TextTable::cell(cell.sends.mean(), 0)});
    }
  }
  table.print();

  std::printf("\n--- Mismatched bound: the attack of Theorem 1's boundary ---\n");
  TextTable attack({"believed c'", "real capacity", "ghost decision?"});
  bool under_fooled = false;
  bool exact_safe = true;
  for (int believed : {1, 2}) {
    for (int real : {1, 2, 4, 8}) {
      const bool fooled = mismatch_attack(believed, real);
      if (real > 2 * believed + 1 && fooled) under_fooled = true;
      if (real <= believed && fooled) exact_safe = false;
      attack.add_row({TextTable::cell(believed), TextTable::cell(real),
                      fooled ? "YES" : "no"});
    }
  }
  attack.print();

  verdict(total_violations == 0,
          "Specification 1 held for every capacity with a matching bound");
  verdict(under_fooled,
          "underestimating the capacity admits ghost decisions (the bound "
          "must be known, exactly as Theorem 1 requires)");
  verdict(exact_safe, "a correct bound was never fooled");

  BenchJson json("exp_capacity");
  json.set("trials", trials);
  json.set("threads", threads);
  json.set("total_violations", total_violations);
  json.set("under_fooled", under_fooled);
  json.set("exact_safe", exact_safe);
  json.write_if_requested(args);
  return 0;
}
