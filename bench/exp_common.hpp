// exp_common.hpp — shared plumbing for the experiment binaries (exp_*).
//
// Every experiment prints: a header naming the experiment and its paper
// anchor, one or more TextTables with the measured rows, and a PASS/FAIL
// verdict where the experiment validates a property. Binaries run with no
// arguments using defaults sized to finish in seconds; sweep parameters are
// adjustable via --flags (see each binary's `kKnownFlags`).
#ifndef SNAPSTAB_BENCH_EXP_COMMON_HPP
#define SNAPSTAB_BENCH_EXP_COMMON_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::bench {

// Machine-readable result sink: every exp_* binary accepts --json <path>
// and dumps its key metrics as one flat JSON object, so per-PR perf and
// validation trajectories (BENCH_*.json) can be recorded and diffed.
class BenchJson {
 public:
  explicit BenchJson(std::string experiment)
      : experiment_(std::move(experiment)) {}

  void set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, std::int64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, int v) {
    set(key, static_cast<std::int64_t>(v));
  }
  void set(const std::string& key, std::uint64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, bool v) {
    entries_.emplace_back(key, v ? "true" : "false");
  }
  void set(const std::string& key, const std::string& v) {
    entries_.emplace_back(key, "\"" + escaped(v) + "\"");
  }
  void set(const std::string& key, const char* v) {
    set(key, std::string(v));
  }
  // Pre-rendered JSON (an object or array the caller built, e.g. a
  // LoadReport's deterministic block) embedded verbatim under `key`.
  void set_raw(const std::string& key, std::string json) {
    entries_.emplace_back(key, std::move(json));
  }

  // Experiment-specific provenance for the meta block (e.g. the swept
  // topology); compiler/SHA/build type are filled in automatically.
  void set_meta(const std::string& key, const std::string& v) {
    meta_.emplace_back(key, "\"" + escaped(v) + "\"");
  }

  // Writes {"experiment": ..., "meta": {...}, "results": {...}} to the
  // --json path, if one was given. Returns false (and complains) when the
  // file cannot be written. The meta block makes every BENCH_*.json entry
  // traceable: git SHA and build type (stamped by CMake), the compiler,
  // plus whatever the experiment added via set_meta.
  bool write_if_requested(const CliArgs& args) const {
    if (!args.has("json")) return true;
    const std::string path = args.get("json", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json file %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"meta\": {",
                 escaped(experiment_).c_str());
    std::vector<std::pair<std::string, std::string>> meta;
    meta.emplace_back("git_sha", "\"" + escaped(kGitSha) + "\"");
    meta.emplace_back("build_type", "\"" + escaped(kBuildType) + "\"");
    meta.emplace_back("compiler", "\"" + escaped(kCompiler) + "\"");
    meta.insert(meta.end(), meta_.begin(), meta_.end());
    for (std::size_t i = 0; i < meta.size(); ++i)
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   escaped(meta[i].first).c_str(), meta[i].second.c_str());
    std::fprintf(f, "\n  },\n  \"results\": {");
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   escaped(entries_[i].first).c_str(),
                   entries_[i].second.c_str());
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("json results written to %s\n", path.c_str());
    return true;
  }

  // Build provenance, stamped on the bench targets by CMake (compile
  // definitions); "unknown" outside that build system.
#ifdef SNAPSTAB_GIT_SHA
  static constexpr const char* kGitSha = SNAPSTAB_GIT_SHA;
#else
  static constexpr const char* kGitSha = "unknown";
#endif
#ifdef SNAPSTAB_BUILD_TYPE
  static constexpr const char* kBuildType = SNAPSTAB_BUILD_TYPE;
#else
  static constexpr const char* kBuildType = "unknown";
#endif
#ifdef __VERSION__
  static constexpr const char* kCompiler = "gcc/clang " __VERSION__;
#else
  static constexpr const char* kCompiler = "unknown";
#endif

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else if (c == '\t') {
        out += "\\t";
      } else if (c == '\r') {
        out += "\\r";
      } else if (u < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", u);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string experiment_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key -> json
  std::vector<std::pair<std::string, std::string>> meta_;     // key -> json
};

inline void banner(const char* experiment, const char* anchor,
                   const char* what) {
  std::printf("\n=== %s — %s ===\n%s\n\n", experiment, anchor, what);
}

inline void verdict(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
}

// Builds a PIF-only world of n processes over capacity-c channels.
inline std::unique_ptr<sim::Simulator> pif_world(int n, int capacity,
                                                 std::uint64_t seed) {
  auto world = std::make_unique<sim::Simulator>(
      n, static_cast<std::size_t>(capacity), seed);
  for (int i = 0; i < n; ++i)
    world->add_process(std::make_unique<core::PifProcess>(n - 1, capacity));
  return world;
}

// Builds an ME world with ids 1..n (process 0 is the leader).
inline std::unique_ptr<sim::Simulator> me_world(
    int n, std::uint64_t seed, core::StackOptions options = {}) {
  auto world = std::make_unique<sim::Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    world->add_process(
        std::make_unique<core::MeStackProcess>(i + 1, n - 1, options));
  return world;
}

// Round count when the world runs under a RoundRobinScheduler.
inline std::uint64_t rounds_of(sim::Simulator& world) {
  auto* rr = dynamic_cast<sim::RoundRobinScheduler*>(world.scheduler());
  return rr != nullptr ? rr->rounds() : 0;
}

}  // namespace snapstab::bench

#endif  // SNAPSTAB_BENCH_EXP_COMMON_HPP
