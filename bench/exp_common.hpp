// exp_common.hpp — shared plumbing for the experiment binaries (exp_*).
//
// Every experiment prints: a header naming the experiment and its paper
// anchor, one or more TextTables with the measured rows, and a PASS/FAIL
// verdict where the experiment validates a property. Binaries run with no
// arguments using defaults sized to finish in seconds; sweep parameters are
// adjustable via --flags (see each binary's `kKnownFlags`).
#ifndef SNAPSTAB_BENCH_EXP_COMMON_HPP
#define SNAPSTAB_BENCH_EXP_COMMON_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::bench {

inline void banner(const char* experiment, const char* anchor,
                   const char* what) {
  std::printf("\n=== %s — %s ===\n%s\n\n", experiment, anchor, what);
}

inline void verdict(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
}

// Builds a PIF-only world of n processes over capacity-c channels.
inline std::unique_ptr<sim::Simulator> pif_world(int n, int capacity,
                                                 std::uint64_t seed) {
  auto world = std::make_unique<sim::Simulator>(
      n, static_cast<std::size_t>(capacity), seed);
  for (int i = 0; i < n; ++i)
    world->add_process(std::make_unique<core::PifProcess>(n - 1, capacity));
  return world;
}

// Builds an ME world with ids 1..n (process 0 is the leader).
inline std::unique_ptr<sim::Simulator> me_world(
    int n, std::uint64_t seed, core::StackOptions options = {}) {
  auto world = std::make_unique<sim::Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    world->add_process(
        std::make_unique<core::MeStackProcess>(i + 1, n - 1, options));
  return world;
}

// Round count when the world runs under a RoundRobinScheduler.
inline std::uint64_t rounds_of(sim::Simulator& world) {
  auto* rr = dynamic_cast<sim::RoundRobinScheduler*>(world.scheduler());
  return rr != nullptr ? rr->rounds() : 0;
}

}  // namespace snapstab::bench

#endif  // SNAPSTAB_BENCH_EXP_COMMON_HPP
