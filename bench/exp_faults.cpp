// exp_faults — Experiment E15: recovery under the fault engine (src/fault/)
// driving the sharded load generator.
//
// The paper's claim is snap-stabilization: requests issued after the
// transient fault CEASES are served correctly, whatever the fault did to
// process state and channel contents while it lasted. This experiment lands
// that fault mid-flight — each shard compiles a seeded FaultPlan (process
// crash-restarts, channel garbage refills, per-edge loss/duplication, link
// partitions) and polls its Injector from the driver pump — and measures
// the recovery story the theorem promises: every cell must reach the
// recovered state (a session submitted at/after the last window's close
// completes correctly), with recovery-latency percentiles and goodput
// during vs after the fault span across an intensity ladder x topology x
// service mix. The faulted runs keep the sharded-merge determinism pin:
// identical (spec, fault plan) aggregate JSON for any --threads.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "fault/plan.hpp"
#include "load/workload.hpp"

namespace snapstab::bench {
namespace {

using load::LoadReport;
using load::WorkloadSpec;
using svc::ServiceId;

WorkloadSpec base_spec(const std::string& mix) {
  WorkloadSpec spec;
  if (mix == "pif") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
  } else if (mix == "mixed") {
    spec.set_weight(ServiceId::PifBroadcast, 4);
    spec.set_weight(ServiceId::Idl, 2);
    spec.set_weight(ServiceId::Snapshot, 1);
    spec.set_weight(ServiceId::TermDetect, 1);
    spec.set_weight(ServiceId::Election, 1);
  } else if (mix == "forward") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
    spec.set_weight(ServiceId::ForwardMsg, 3);
  } else {
    std::fprintf(stderr, "unknown mix %s\n", mix.c_str());
    std::exit(1);
  }
  return spec;
}

// The intensity ladder: window counts scale with the level, the horizon
// stays fixed so heavier rungs mean denser (and overlapping) windows, not
// longer fault eras.
fault::FaultPlanSpec fault_rung(int level, bool smoke, std::uint64_t seed,
                                int n) {
  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = smoke ? 2'000 : 10'000;
  fs.min_len = smoke ? 50 : 200;
  fs.max_len = smoke ? 300 : 800;
  fs.crash_windows = level;
  fs.garbage_windows = level + 1;
  fs.loss_windows = level;
  fs.duplicate_windows = level > 1 ? level - 1 : 0;
  fs.partition_windows = (level >= 4 && n <= 64) ? 1 : 0;
  return fs;
}

double per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(count) * 1e9 /
                            static_cast<double>(wall_ns);
}

// Completions per 1000 engine steps inside vs after the fault span,
// summed over shards on each shard's own step clock.
struct Goodput {
  double during = 0.0;
  double after = 0.0;
};

Goodput goodput(const LoadReport& r) {
  std::uint64_t during_steps = 0;
  std::uint64_t after_steps = 0;
  for (const load::ShardResult& s : r.shards) {
    if (s.fault_last_end == 0) continue;
    const std::uint64_t b = std::min(s.steps, s.fault_first_begin);
    const std::uint64_t e = std::min(s.steps, s.fault_last_end);
    during_steps += e - b;
    after_steps += s.steps - e;
  }
  Goodput g;
  if (during_steps > 0)
    g.during = static_cast<double>(r.total.completed_during_fault) * 1000.0 /
               static_cast<double>(during_steps);
  if (after_steps > 0)
    g.after = static_cast<double>(r.total.completed_after_fault) * 1000.0 /
              static_cast<double>(after_steps);
  return g;
}

bool all_shards_recovered(const LoadReport& r) {
  return std::all_of(
      r.shards.begin(), r.shards.end(),
      [](const load::ShardResult& s) { return s.recovered; });
}

std::string json_cell(const WorkloadSpec& spec, const LoadReport& r,
                      const std::string& label) {
  const load::LatencyHistogram& rec = r.total.recovery_hist;
  const Goodput g = goodput(r);
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\":\"%s\",\"windows\":%d,\"completed\":%llu,"
      "\"retries\":%llu,\"failed\":%llu,\"during\":%llu,\"after\":%llu,"
      "\"goodput_during\":%.2f,\"goodput_after\":%.2f,"
      "\"recovery_p50\":%llu,\"recovery_p99\":%llu,\"recovery_max\":%llu,"
      "\"first_success_after\":%llu,\"recovered\":%s,"
      "\"sessions_per_sec\":%.0f}",
      label.c_str(), spec.faults.total_windows(),
      static_cast<unsigned long long>(r.total.counters.completed),
      static_cast<unsigned long long>(r.total.counters.retries),
      static_cast<unsigned long long>(r.total.counters.failed),
      static_cast<unsigned long long>(r.total.completed_during_fault),
      static_cast<unsigned long long>(r.total.completed_after_fault),
      g.during, g.after,
      static_cast<unsigned long long>(rec.percentile(50)),
      static_cast<unsigned long long>(rec.percentile(99)),
      static_cast<unsigned long long>(rec.max()),
      static_cast<unsigned long long>(r.total.first_success_after_fault),
      all_shards_recovered(r) ? "true" : "false",
      per_sec(r.total.counters.completed, r.harness_wall_ns));
  return buf;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv,
               {"smoke", "shards", "threads", "n", "topology", "measure",
                "warmup", "seed", "check_every", "json"});
  const bool smoke = args.get_bool("smoke");
  const int shards = static_cast<int>(args.get_int("shards", smoke ? 2 : 4));
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(
      args.get_int("threads", hw != 0 ? static_cast<int>(hw) : 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 15000));
  const std::string topology = args.get("topology", "ring");
  const int n = static_cast<int>(args.get_int("n", smoke ? 8 : 16));
  const auto measure = static_cast<std::uint64_t>(
      args.get_int("measure", smoke ? 256 : 4'000));
  const auto warmup = static_cast<std::uint64_t>(
      args.get_int("warmup", smoke ? 32 : 400));
  const int check_every = static_cast<int>(args.get_int("check_every", 64));

  banner("E15: exp_faults",
         "snap-stabilization under load: requests issued after the fault "
         "ceases complete correctly",
         "Seeded fault windows (crash-restart, channel garbage, loss,\n"
         "duplication, partitions) land mid-flight in the sharded load\n"
         "generator; sessions retry under the client-side deadline and\n"
         "every cell must recover after the last window closes.");

  BenchJson json("exp_faults");
  json.set_meta("topology", topology + "/" + std::to_string(n));
  json.set("shards", shards);
  json.set("threads", threads);
  json.set("smoke", smoke);

  const auto configure = [&](WorkloadSpec& spec) {
    spec.topology = topology;
    spec.n = n;
    spec.seed = seed;
    spec.measure = measure;
    spec.warmup = warmup;
    spec.check_every = check_every;
    spec.record_wall = true;
    spec.concurrency = 64;
    spec.fault_deadline = smoke ? 1'000 : 4'000;
    spec.max_steps = smoke ? 5'000'000 : 100'000'000;
  };

  bool all_recovered = true;
  bool all_completed = true;

  // --- intensity ladder x service mix -------------------------------------
  std::printf("--- Fault intensity x mix (%s/%d) ---\n", topology.c_str(),
              n);
  TextTable lad({"intensity", "mix", "windows", "completed", "retries",
                 "failed", "gput dur", "gput aft", "rec p50", "rec p99",
                 "first-ok"});
  std::string lad_json = "[";
  const std::vector<std::pair<const char*, int>> rungs = {
      {"light", 1}, {"medium", 2}, {"heavy", 4}};
  bool first_cell = true;
  for (const auto& [rung_name, level] : rungs) {
    for (const char* mix : {"pif", "mixed", "forward"}) {
      WorkloadSpec spec = base_spec(mix);
      configure(spec);
      spec.faults = fault_rung(level, smoke, seed + level, n);
      const LoadReport r = load::run_sharded(spec, shards, threads);
      const Goodput g = goodput(r);
      const load::LatencyHistogram& rec = r.total.recovery_hist;
      const bool recovered = all_shards_recovered(r);
      const bool completed = r.total.counters.completed >= spec.measure &&
                             !r.total.hit_step_budget && !r.total.stalled;
      all_recovered = all_recovered && recovered;
      all_completed = all_completed && completed;
      lad.add_row(
          {rung_name, mix,
           TextTable::cell(spec.faults.total_windows()),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.completed)),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.retries)),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.failed)),
           TextTable::cell(g.during, 2), TextTable::cell(g.after, 2),
           TextTable::cell(static_cast<std::int64_t>(rec.percentile(50))),
           TextTable::cell(static_cast<std::int64_t>(rec.percentile(99))),
           TextTable::cell(static_cast<std::int64_t>(
               r.total.first_success_after_fault))});
      if (!first_cell) lad_json += ",";
      first_cell = false;
      lad_json += json_cell(
          spec, r, std::string(rung_name) + "/" + mix);
    }
  }
  lad_json += "]";
  lad.print();
  json.set_raw("intensity_ladder", lad_json);

  // --- topology sweep at medium intensity ---------------------------------
  std::printf("\n--- Topology sweep (medium intensity, pif mix) ---\n");
  TextTable topo({"topology", "completed", "retries", "failed", "gput dur",
                  "gput aft", "rec p50", "rec p99", "first-ok"});
  std::string topo_json = "[";
  const std::vector<std::string> topologies = {"ring", "complete", "tree"};
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    WorkloadSpec spec = base_spec("pif");
    configure(spec);
    spec.topology = topologies[i];
    spec.faults = fault_rung(2, smoke, seed + 100 + i, n);
    const LoadReport r = load::run_sharded(spec, shards, threads);
    const Goodput g = goodput(r);
    const load::LatencyHistogram& rec = r.total.recovery_hist;
    const bool recovered = all_shards_recovered(r);
    const bool completed = r.total.counters.completed >= spec.measure &&
                           !r.total.hit_step_budget && !r.total.stalled;
    all_recovered = all_recovered && recovered;
    all_completed = all_completed && completed;
    topo.add_row(
        {topologies[i],
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.completed)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.retries)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.failed)),
         TextTable::cell(g.during, 2), TextTable::cell(g.after, 2),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(50))),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(99))),
         TextTable::cell(static_cast<std::int64_t>(
             r.total.first_success_after_fault))});
    if (i != 0) topo_json += ",";
    topo_json += json_cell(spec, r, topologies[i]);
  }
  topo_json += "]";
  topo.print();
  json.set_raw("topology_sweep", topo_json);

  // --- determinism: faulted merge identical for any worker count ----------
  WorkloadSpec pin = base_spec("mixed");
  configure(pin);
  pin.measure = smoke ? 128 : 512;
  pin.warmup = 16;
  pin.faults = fault_rung(2, smoke, seed + 7, n);
  const std::string json1 =
      load::run_sharded(pin, 4, 1).deterministic_json(pin);
  const std::string json4 =
      load::run_sharded(pin, 4, 4).deterministic_json(pin);
  const bool deterministic = json1 == json4;

  std::printf("\n");
  verdict(all_recovered,
          "every cell recovered: a session submitted after the last fault "
          "window closed completed correctly on every shard");
  verdict(all_completed,
          "every cell reached its completion target without stalling or "
          "exhausting the step budget");
  verdict(deterministic,
          "faulted sharded merge deterministic: aggregate JSON (fault "
          "section included) bit-identical for --threads 1 vs 4");

  json.set("all_recovered", all_recovered);
  json.set("all_completed", all_completed);
  json.set("deterministic", deterministic);
  json.set_raw("determinism_pin", json1);
  if (!json.write_if_requested(args)) return 1;
  return all_recovered && all_completed && deterministic ? 0 : 1;
}
