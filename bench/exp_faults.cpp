// exp_faults — Experiment E15: recovery under the fault engine (src/fault/)
// driving the sharded load generator.
//
// The paper's claim is snap-stabilization: requests issued after the
// transient fault CEASES are served correctly, whatever the fault did to
// process state and channel contents while it lasted. This experiment lands
// that fault mid-flight — each shard compiles a seeded FaultPlan (process
// crash-restarts, channel garbage refills, per-edge loss/duplication, link
// partitions) and polls its Injector from the driver pump — and measures
// the recovery story the theorem promises: every cell must reach the
// recovered state (a session submitted at/after the last window's close
// completes correctly), with recovery-latency percentiles and goodput
// during vs after the fault span across an intensity ladder x topology x
// service mix. The faulted runs keep the sharded-merge determinism pin:
// identical (spec, fault plan) aggregate JSON for any --threads.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "load/workload.hpp"
#include "svc/host.hpp"
#include "svc/supervisor.hpp"

namespace snapstab::bench {
namespace {

using load::LoadReport;
using load::WorkloadSpec;
using svc::ServiceId;

WorkloadSpec base_spec(const std::string& mix) {
  WorkloadSpec spec;
  if (mix == "pif") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
  } else if (mix == "mixed") {
    spec.set_weight(ServiceId::PifBroadcast, 4);
    spec.set_weight(ServiceId::Idl, 2);
    spec.set_weight(ServiceId::Snapshot, 1);
    spec.set_weight(ServiceId::TermDetect, 1);
    spec.set_weight(ServiceId::Election, 1);
  } else if (mix == "forward") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
    spec.set_weight(ServiceId::ForwardMsg, 3);
  } else {
    std::fprintf(stderr, "unknown mix %s\n", mix.c_str());
    std::exit(1);
  }
  return spec;
}

// The intensity ladder: window counts scale with the level, the horizon
// stays fixed so heavier rungs mean denser (and overlapping) windows, not
// longer fault eras.
fault::FaultPlanSpec fault_rung(int level, bool smoke, std::uint64_t seed,
                                int n) {
  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = smoke ? 2'000 : 10'000;
  fs.min_len = smoke ? 50 : 200;
  fs.max_len = smoke ? 300 : 800;
  fs.crash_windows = level;
  fs.garbage_windows = level + 1;
  fs.loss_windows = level;
  fs.duplicate_windows = level > 1 ? level - 1 : 0;
  fs.partition_windows = (level >= 4 && n <= 64) ? 1 : 0;
  return fs;
}

// The storm ladder: one rung per correlated pattern, plus the full storm
// combining all four. Pure-pattern specs — every window below comes out of
// the pattern compiler, so the rung exercises exactly the correlation
// structure its label names.
fault::FaultPlanSpec storm_rung(const std::string& pattern, bool smoke,
                                std::uint64_t seed) {
  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = smoke ? 2'000 : 10'000;
  fs.min_len = smoke ? 50 : 200;
  fs.max_len = smoke ? 300 : 800;
  const auto add = [&](fault::PatternKind k) {
    fault::PatternSpec ps;
    ps.kind = k;
    ps.begin = smoke ? 100 : 500;
    ps.span = smoke ? 1'500 : 8'000;
    ps.count = 3;
    ps.len = smoke ? 150 : 500;
    ps.period = smoke ? 400 : 2'000;
    ps.lag_max = smoke ? 200 : 1'000;
    fs.patterns.push_back(ps);
  };
  if (pattern == "rolling-partition") {
    add(fault::PatternKind::RollingPartition);
  } else if (pattern == "crash-storm") {
    add(fault::PatternKind::CrashStorm);
  } else if (pattern == "flapping-link") {
    add(fault::PatternKind::FlappingLink);
  } else if (pattern == "cascade") {
    add(fault::PatternKind::Cascade);
  } else {  // "all": the full storm
    add(fault::PatternKind::RollingPartition);
    add(fault::PatternKind::CrashStorm);
    add(fault::PatternKind::FlappingLink);
    add(fault::PatternKind::Cascade);
  }
  return fs;
}

double per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(count) * 1e9 /
                            static_cast<double>(wall_ns);
}

// Completions per 1000 engine steps inside vs after the fault span,
// summed over shards on each shard's own step clock.
struct Goodput {
  double during = 0.0;
  double after = 0.0;
};

Goodput goodput(const LoadReport& r) {
  std::uint64_t during_steps = 0;
  std::uint64_t after_steps = 0;
  for (const load::ShardResult& s : r.shards) {
    if (s.fault_last_end == 0) continue;
    const std::uint64_t b = std::min(s.steps, s.fault_first_begin);
    const std::uint64_t e = std::min(s.steps, s.fault_last_end);
    during_steps += e - b;
    after_steps += s.steps - e;
  }
  Goodput g;
  if (during_steps > 0)
    g.during = static_cast<double>(r.total.completed_during_fault) * 1000.0 /
               static_cast<double>(during_steps);
  if (after_steps > 0)
    g.after = static_cast<double>(r.total.completed_after_fault) * 1000.0 /
              static_cast<double>(after_steps);
  return g;
}

bool all_shards_recovered(const LoadReport& r) {
  return std::all_of(
      r.shards.begin(), r.shards.end(),
      [](const load::ShardResult& s) { return s.recovered; });
}

// --- supervisor policy sweep machinery -------------------------------------
// One deterministic Simulator world per (seed, policy): the same topology,
// scheduler seed and compiled storm plan, so plain retry and the
// breaker+hedging stack face the identical fault schedule.

struct PolicyRun {
  std::uint64_t p99 = 0;  // p99 settle step across all tickets
  int ok = 0;             // tickets that settled Ok
  std::uint64_t trips = 0;
  std::uint64_t hedges = 0;
};

PolicyRun run_policy(std::uint64_t seed, bool smoke, bool resilience) {
  const int n = 6;
  const sim::Topology topo = sim::Topology::complete(n);
  auto sim = svc::service_world(topo, 1, seed, [](sim::ProcessId p) {
    svc::HostConfig cfg;
    cfg.id = p + 1;
    return cfg;
  });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  svc::Client client(*sim);

  // The heavy storm, shaped like the outage hedging exists for: the link
  // pair between the ticket origin (0) and peer n-1 goes dark for most of
  // the horizon. Origin-0 waves stall against their attempt deadline —
  // every ticket below submits at origin 0 — while a wave from any OTHER
  // origin sails through, which is exactly the escape a hedged resubmit
  // (sprayed to origin 1) takes and a plain retry (same origin, same dead
  // link) cannot.
  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = smoke ? 2'000 : 5'000;
  fs.min_len = 100;
  fs.max_len = smoke ? 400 : 800;
  fault::PatternSpec flap;
  flap.kind = fault::PatternKind::FlappingLink;
  flap.begin = 100;
  flap.count = 1;
  flap.len = smoke ? 1'200 : 2'400;
  flap.edge = topo.edge_between(0, n - 1);
  fs.patterns = {flap};
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  fault::Injector inj(plan);

  svc::SuperviseOptions so;
  so.attempt_deadline = smoke ? 1'500 : 2'500;
  so.retry_budget = 6;
  so.backoff_base = 16;
  so.backoff_max = 256;
  so.seed = seed;
  if (resilience) {
    so.breaker.enabled = true;
    so.breaker.failure_threshold = 2;
    so.breaker.open_cooldown = 400;
    so.hedge.enabled = true;
    so.hedge.hedge_after = smoke ? 300 : 500;
  }
  svc::Supervisor sup(client, so);
  const int k = smoke ? 16 : 32;
  std::vector<svc::Supervisor::Ticket> ts;
  for (int i = 0; i < k; ++i)
    ts.push_back(
        sup.supervise(0, svc::PifBroadcast{Value::integer(3'000 + i)}));
  std::vector<std::uint64_t> settle_step(static_cast<std::size_t>(k), 0);
  std::vector<bool> settled(static_cast<std::size_t>(k), false);
  sup.set_on_pump([&] {
    inj.poll(*sim);
    for (int i = 0; i < k; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!settled[idx] && sup.terminal(ts[idx])) {
        settled[idx] = true;
        settle_step[idx] = sim->step_count();
      }
    }
  });
  svc::AwaitOptions aw;
  aw.max_steps = 4'000'000;
  // Poll the injector every step: a LinkDown window must wipe the channel
  // faster than the protocol retransmits, or the "outage" is a no-op.
  aw.policy.check_every = 1;
  sup.run_all(aw);

  PolicyRun out;
  for (int i = 0; i < k; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!settled[idx]) settle_step[idx] = sim->step_count();
    if (sup.outcome(ts[idx]) == svc::SessionOutcome::Ok) ++out.ok;
  }
  std::vector<std::uint64_t> lat = settle_step;
  std::sort(lat.begin(), lat.end());
  out.p99 = lat[(lat.size() * 99 + 99) / 100 - 1];
  out.trips = sup.stats().breaker_trips;
  out.hedges = sup.stats().hedges_launched;
  return out;
}

struct PolicySweepCell {
  std::uint64_t plain_p99 = 0;
  std::uint64_t policy_p99 = 0;
  int plain_ok = 0;
  int policy_ok = 0;
  std::uint64_t trips = 0;
  std::uint64_t hedges = 0;
};

PolicySweepCell run_policy_cell(std::uint64_t seed, bool smoke) {
  const PolicyRun plain = run_policy(seed, smoke, /*resilience=*/false);
  const PolicyRun policy = run_policy(seed, smoke, /*resilience=*/true);
  PolicySweepCell cell;
  cell.plain_p99 = plain.p99;
  cell.policy_p99 = policy.p99;
  cell.plain_ok = plain.ok;
  cell.policy_ok = policy.ok;
  cell.trips = policy.trips;
  cell.hedges = policy.hedges;
  return cell;
}

std::string json_cell(const LoadReport& r, const std::string& label) {
  const load::LatencyHistogram& rec = r.total.recovery_hist;
  const Goodput g = goodput(r);
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\":\"%s\",\"windows\":%llu,\"completed\":%llu,"
      "\"retries\":%llu,\"failed\":%llu,\"during\":%llu,\"after\":%llu,"
      "\"goodput_during\":%.2f,\"goodput_after\":%.2f,"
      "\"recovery_p50\":%llu,\"recovery_p99\":%llu,\"recovery_max\":%llu,"
      "\"first_success_after\":%llu,\"recovered\":%s,"
      "\"sessions_per_sec\":%.0f}",
      // Compiled window count summed over shards: pattern-generated windows
      // have no spec-side count, only the compiler knows how many landed.
      label.c_str(), static_cast<unsigned long long>(r.total.fault_windows),
      static_cast<unsigned long long>(r.total.counters.completed),
      static_cast<unsigned long long>(r.total.counters.retries),
      static_cast<unsigned long long>(r.total.counters.failed),
      static_cast<unsigned long long>(r.total.completed_during_fault),
      static_cast<unsigned long long>(r.total.completed_after_fault),
      g.during, g.after,
      static_cast<unsigned long long>(rec.percentile(50)),
      static_cast<unsigned long long>(rec.percentile(99)),
      static_cast<unsigned long long>(rec.max()),
      static_cast<unsigned long long>(r.total.first_success_after_fault),
      all_shards_recovered(r) ? "true" : "false",
      per_sec(r.total.counters.completed, r.harness_wall_ns));
  return buf;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv,
               {"smoke", "shards", "threads", "n", "topology", "measure",
                "warmup", "seed", "check_every", "json"});
  const bool smoke = args.get_bool("smoke");
  const int shards = static_cast<int>(args.get_int("shards", smoke ? 2 : 4));
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(
      args.get_int("threads", hw != 0 ? static_cast<int>(hw) : 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 15000));
  const std::string topology = args.get("topology", "ring");
  const int n = static_cast<int>(args.get_int("n", smoke ? 8 : 16));
  const auto measure = static_cast<std::uint64_t>(
      args.get_int("measure", smoke ? 256 : 4'000));
  const auto warmup = static_cast<std::uint64_t>(
      args.get_int("warmup", smoke ? 32 : 400));
  const int check_every = static_cast<int>(args.get_int("check_every", 64));

  banner("E15: exp_faults",
         "snap-stabilization under load: requests issued after the fault "
         "ceases complete correctly",
         "Seeded fault windows (crash-restart, channel garbage, loss,\n"
         "duplication, partitions) land mid-flight in the sharded load\n"
         "generator; sessions retry under the client-side deadline and\n"
         "every cell must recover after the last window closes.");

  BenchJson json("exp_faults");
  json.set_meta("topology", topology + "/" + std::to_string(n));
  json.set("shards", shards);
  json.set("threads", threads);
  json.set("smoke", smoke);

  const auto configure = [&](WorkloadSpec& spec) {
    spec.topology = topology;
    spec.n = n;
    spec.seed = seed;
    spec.measure = measure;
    spec.warmup = warmup;
    spec.check_every = check_every;
    spec.record_wall = true;
    spec.concurrency = 64;
    spec.fault_deadline = smoke ? 1'000 : 4'000;
    spec.max_steps = smoke ? 5'000'000 : 100'000'000;
  };

  bool all_recovered = true;
  bool all_completed = true;

  // --- intensity ladder x service mix -------------------------------------
  std::printf("--- Fault intensity x mix (%s/%d) ---\n", topology.c_str(),
              n);
  TextTable lad({"intensity", "mix", "windows", "completed", "retries",
                 "failed", "gput dur", "gput aft", "rec p50", "rec p99",
                 "first-ok"});
  std::string lad_json = "[";
  const std::vector<std::pair<const char*, int>> rungs = {
      {"light", 1}, {"medium", 2}, {"heavy", 4}};
  bool first_cell = true;
  for (const auto& [rung_name, level] : rungs) {
    for (const char* mix : {"pif", "mixed", "forward"}) {
      WorkloadSpec spec = base_spec(mix);
      configure(spec);
      spec.faults = fault_rung(level, smoke, seed + level, n);
      const LoadReport r = load::run_sharded(spec, shards, threads);
      const Goodput g = goodput(r);
      const load::LatencyHistogram& rec = r.total.recovery_hist;
      const bool recovered = all_shards_recovered(r);
      const bool completed = r.total.counters.completed >= spec.measure &&
                             !r.total.hit_step_budget && !r.total.stalled;
      all_recovered = all_recovered && recovered;
      all_completed = all_completed && completed;
      lad.add_row(
          {rung_name, mix,
           TextTable::cell(static_cast<std::int64_t>(r.total.fault_windows)),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.completed)),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.retries)),
           TextTable::cell(
               static_cast<std::int64_t>(r.total.counters.failed)),
           TextTable::cell(g.during, 2), TextTable::cell(g.after, 2),
           TextTable::cell(static_cast<std::int64_t>(rec.percentile(50))),
           TextTable::cell(static_cast<std::int64_t>(rec.percentile(99))),
           TextTable::cell(static_cast<std::int64_t>(
               r.total.first_success_after_fault))});
      if (!first_cell) lad_json += ",";
      first_cell = false;
      lad_json += json_cell(r, std::string(rung_name) + "/" + mix);
    }
  }
  lad_json += "]";
  lad.print();
  json.set_raw("intensity_ladder", lad_json);

  // --- topology sweep at medium intensity ---------------------------------
  std::printf("\n--- Topology sweep (medium intensity, pif mix) ---\n");
  TextTable topo({"topology", "completed", "retries", "failed", "gput dur",
                  "gput aft", "rec p50", "rec p99", "first-ok"});
  std::string topo_json = "[";
  const std::vector<std::string> topologies = {"ring", "complete", "tree"};
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    WorkloadSpec spec = base_spec("pif");
    configure(spec);
    spec.topology = topologies[i];
    spec.faults = fault_rung(2, smoke, seed + 100 + i, n);
    const LoadReport r = load::run_sharded(spec, shards, threads);
    const Goodput g = goodput(r);
    const load::LatencyHistogram& rec = r.total.recovery_hist;
    const bool recovered = all_shards_recovered(r);
    const bool completed = r.total.counters.completed >= spec.measure &&
                           !r.total.hit_step_budget && !r.total.stalled;
    all_recovered = all_recovered && recovered;
    all_completed = all_completed && completed;
    topo.add_row(
        {topologies[i],
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.completed)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.retries)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.failed)),
         TextTable::cell(g.during, 2), TextTable::cell(g.after, 2),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(50))),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(99))),
         TextTable::cell(static_cast<std::int64_t>(
             r.total.first_success_after_fault))});
    if (i != 0) topo_json += ",";
    topo_json += json_cell(r, topologies[i]);
  }
  topo_json += "]";
  topo.print();
  json.set_raw("topology_sweep", topo_json);

  // --- storm ladder: correlated patterns through the load generator -------
  std::printf("\n--- Storm ladder (%s/%d, pif mix) ---\n", topology.c_str(),
              n);
  TextTable storm({"pattern", "windows", "completed", "retries", "failed",
                   "gput dur", "gput aft", "rec p50", "rec p99", "first-ok"});
  std::string storm_json = "[";
  bool storm_recovered = true;
  const std::vector<std::string> storm_rungs =
      smoke ? std::vector<std::string>{"all"}
            : std::vector<std::string>{"rolling-partition", "crash-storm",
                                       "flapping-link", "cascade", "all"};
  for (std::size_t i = 0; i < storm_rungs.size(); ++i) {
    WorkloadSpec spec = base_spec("pif");
    configure(spec);
    spec.faults = storm_rung(storm_rungs[i], smoke, seed + 200 + i);
    const LoadReport r = load::run_sharded(spec, shards, threads);
    const Goodput g = goodput(r);
    const load::LatencyHistogram& rec = r.total.recovery_hist;
    const bool recovered = all_shards_recovered(r);
    const bool completed = r.total.counters.completed >= spec.measure &&
                           !r.total.hit_step_budget && !r.total.stalled;
    storm_recovered = storm_recovered && recovered;
    all_recovered = all_recovered && recovered;
    all_completed = all_completed && completed;
    storm.add_row(
        {storm_rungs[i],
         TextTable::cell(static_cast<std::int64_t>(r.total.fault_windows)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.completed)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.retries)),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.failed)),
         TextTable::cell(g.during, 2), TextTable::cell(g.after, 2),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(50))),
         TextTable::cell(static_cast<std::int64_t>(rec.percentile(99))),
         TextTable::cell(static_cast<std::int64_t>(
             r.total.first_success_after_fault))});
    if (i != 0) storm_json += ",";
    storm_json += json_cell(r, storm_rungs[i]);
  }
  storm_json += "]";
  storm.print();
  json.set_raw("storm_ladder", storm_json);

  // --- supervisor policy sweep: plain retry vs breaker + hedging ----------
  // A deterministic single-Simulator heavy storm; the same plan, scheduler
  // and kill schedule for both policies, so the p99 comparison isolates the
  // resilience stack itself.
  std::printf("\n--- Policy sweep under a heavy storm (p99 in steps) ---\n");
  TextTable pol({"seed", "plain p99", "policy p99", "plain ok", "policy ok",
                 "trips", "hedges"});
  std::string pol_json = "[";
  bool policy_beats_baseline = true;
  std::uint64_t plain_p99_sum = 0;
  std::uint64_t policy_p99_sum = 0;
  const std::vector<std::uint64_t> policy_seeds = {seed + 300, seed + 301,
                                                   seed + 302};
  for (std::size_t i = 0; i < policy_seeds.size(); ++i) {
    const std::uint64_t s = policy_seeds[i];
    const PolicySweepCell cell = run_policy_cell(s, smoke);
    plain_p99_sum += cell.plain_p99;
    policy_p99_sum += cell.policy_p99;
    pol.add_row({TextTable::cell(static_cast<std::int64_t>(s)),
                 TextTable::cell(static_cast<std::int64_t>(cell.plain_p99)),
                 TextTable::cell(static_cast<std::int64_t>(cell.policy_p99)),
                 TextTable::cell(static_cast<std::int64_t>(cell.plain_ok)),
                 TextTable::cell(static_cast<std::int64_t>(cell.policy_ok)),
                 TextTable::cell(static_cast<std::int64_t>(cell.trips)),
                 TextTable::cell(static_cast<std::int64_t>(cell.hedges))});
    char cb[256];
    std::snprintf(cb, sizeof cb,
                  "{\"seed\":%llu,\"plain_p99\":%llu,\"policy_p99\":%llu,"
                  "\"plain_ok\":%d,\"policy_ok\":%d,\"breaker_trips\":%llu,"
                  "\"hedges_launched\":%llu}",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(cell.plain_p99),
                  static_cast<unsigned long long>(cell.policy_p99),
                  cell.plain_ok, cell.policy_ok,
                  static_cast<unsigned long long>(cell.trips),
                  static_cast<unsigned long long>(cell.hedges));
    if (i != 0) pol_json += ",";
    pol_json += cb;
    policy_beats_baseline =
        policy_beats_baseline && cell.policy_ok >= cell.plain_ok;
  }
  pol_json += "]";
  pol.print();
  // Aggregate tail verdict: summed across seeds the resilience stack must
  // be no slower than plain retry (and strictly faster in the full run).
  policy_beats_baseline =
      policy_beats_baseline && policy_p99_sum <= plain_p99_sum;
  json.set_raw("policy_sweep", pol_json);

  // --- determinism: faulted merge identical for any worker count ----------
  WorkloadSpec pin = base_spec("mixed");
  configure(pin);
  pin.measure = smoke ? 128 : 512;
  pin.warmup = 16;
  pin.faults = fault_rung(2, smoke, seed + 7, n);
  const std::string json1 =
      load::run_sharded(pin, 4, 1).deterministic_json(pin);
  const std::string json4 =
      load::run_sharded(pin, 4, 4).deterministic_json(pin);
  const bool deterministic = json1 == json4;

  std::printf("\n");
  verdict(all_recovered,
          "every cell recovered: a session submitted after the last fault "
          "window closed completed correctly on every shard");
  verdict(all_completed,
          "every cell reached its completion target without stalling or "
          "exhausting the step budget");
  verdict(storm_recovered,
          "every storm rung recovered: correlated patterns (rolling "
          "partitions, crash storms, flapping links, cascades) still cease, "
          "and post-storm sessions complete");
  verdict(policy_beats_baseline,
          "breaker + hedging beats plain retry under the heavy storm: at "
          "least as many Ok outcomes per seed and no worse p99 settle "
          "latency summed across seeds");
  verdict(deterministic,
          "faulted sharded merge deterministic: aggregate JSON (fault "
          "section included) bit-identical for --threads 1 vs 4");

  json.set("all_recovered", all_recovered);
  json.set("all_completed", all_completed);
  json.set("storm_recovered", storm_recovered);
  json.set("policy_beats_baseline", policy_beats_baseline);
  json.set("deterministic", deterministic);
  json.set_raw("determinism_pin", json1);
  if (!json.write_if_requested(args)) return 1;
  return all_recovered && all_completed && storm_recovered &&
                 policy_beats_baseline && deterministic
             ? 0
             : 1;
}
