// exp_fig1_worstcase — Experiment E1: reproduces Figure 1 of the paper.
//
// Part 1 replays the figure's exact adversarial scenario message by message
// and prints the timeline of p's flag State_p[q].
//
// Part 2 sweeps *every* two-process adversarial initial configuration (all
// flag combinations for the at most one stale message per channel, all
// initial NeigState_q values, q concurrently starting or not) and measures
// the number of State_p increments attributable to stale data — the figure's
// claim is that this is at most 3 (= 2c+1 with c = 1), with the fourth
// increment always caused by a genuine round trip.
#include "exp_common.hpp"

namespace snapstab::bench {
namespace {

using core::PifProcess;
using sim::Simulator;
using sim::Step;

void part1_walkthrough() {
  std::printf("--- Part 1: the Figure-1 scenario, step by step ---\n");
  auto world = pif_world(2, 1, 1);
  auto& p = world->process_as<PifProcess>(0).pif();
  auto& q = world->process_as<PifProcess>(1).pif();
  auto& net = world->network();

  net.channel(1, 0).push(
      Message::pif(Value::text("stale"), Value::text("stale"), 0, 0));
  net.channel(0, 1).push(
      Message::pif(Value::text("stale"), Value::text("stale"), 2, 1));
  q.mutable_state().neig_state[0] = 1;
  core::request_pif(*world, 0, Value::text("m"));
  q.request(Value::text("mq"));

  TextTable timeline({"step", "event", "State_p[q]", "note"});
  auto row = [&](const char* event, const char* note) {
    timeline.add_row({TextTable::cell(world->step_count()), event,
                      TextTable::cell(static_cast<int>(p.state().state[0])),
                      note});
  };

  world->execute(Step::tick(0));
  row("p starts (A1+A2)", "State reset to 0; send dies on full channel");
  world->execute(Step::deliver(1, 0));
  row("p <- stale echo 0", "free increment #1");
  world->execute(Step::tick(1));
  row("q starts concurrently", "q transmits with stale NeigState_q = 1");
  world->execute(Step::deliver(1, 0));
  row("p <- echo of NeigState 1", "free increment #2");
  world->execute(Step::deliver(0, 1));
  row("q <- stale flag-2 message", "q's NeigState_q := 2, echoes it");
  world->execute(Step::deliver(1, 0));
  row("p <- echo of NeigState 2", "free increment #3 — stale fuel exhausted");
  world->execute(Step::deliver(0, 1));
  row("q <- genuine flag-3 message", "receive-brd<m> fires at q");
  world->execute(Step::deliver(1, 0));
  row("p <- genuine echo 3", "State 3 -> 4: receive-fck fires at p");
  world->execute(Step::tick(0));
  row("p decides (A2)", "Request := Done");
  timeline.print();

  verdict(p.done(), "the started computation decided");
}

struct SweepResult {
  int configurations = 0;
  int completed = 0;
  int spec_violations = 0;
  int max_stale_increments = 0;
};

SweepResult part2_sweep() {
  std::printf(
      "\n--- Part 2: exhaustive adversarial sweep (n=2, capacity 1) ---\n");
  // Options per dimension: stale message flags 0..4 x 0..4 or no message
  // (encoded 25 = absent), q's initial NeigState 0..4, q starting or not.
  int configurations = 0;
  int completed = 0;
  int spec_violations = 0;
  int max_stale_increments = 0;
  Summary steps_to_decide;

  for (int m1 = 0; m1 <= 25; ++m1) {          // stale message q -> p
    for (int m2 = 0; m2 <= 25; ++m2) {        // stale message p -> q
      for (int qneig = 0; qneig <= 4; ++qneig) {
        for (int qstarts = 0; qstarts <= 1; ++qstarts) {
          ++configurations;
          auto world = pif_world(2, 1, 7);
          auto& net = world->network();
          if (m1 < 25)
            net.channel(1, 0).push(Message::pif(
                Value::text("j"), Value::text("j"), m1 / 5, m1 % 5));
          if (m2 < 25)
            net.channel(0, 1).push(Message::pif(
                Value::text("j"), Value::text("j"), m2 / 5, m2 % 5));
          auto& q = world->process_as<PifProcess>(1).pif();
          q.mutable_state().neig_state[0] = qneig;
          if (qstarts != 0) q.request(Value::text("mq"));
          core::request_pif(*world, 0, Value::text("m"));
          sim::RoundRobinScheduler scheduler(
              static_cast<std::uint64_t>(m1 * 1000 + m2 * 10 + qneig));

          // Step manually so p's flag can be sampled the moment q first
          // generates the receive-brd for m: every increment before that
          // moment ran on stale fuel (Lemma 4 bounds them by 2c+1 = 3).
          auto& p = world->process_as<PifProcess>(0).pif();
          int state_at_first_brd = -1;
          bool decided = false;
          std::size_t seen_events = 0;
          for (int step = 0; step < 20'000 && !decided; ++step) {
            auto next = scheduler.next(*world);
            if (!next.has_value()) break;
            world->execute(*next);
            const auto& events = world->log().events();
            for (; seen_events < events.size(); ++seen_events) {
              const auto& e = events[seen_events];
              if (state_at_first_brd < 0 && e.process == 1 &&
                  e.kind == sim::ObsKind::RecvBrd &&
                  e.value == Value::text("m"))
                state_at_first_brd = static_cast<int>(p.state().state[0]);
            }
            decided = p.done();
          }
          if (!decided) continue;
          ++completed;
          steps_to_decide.add(static_cast<double>(world->step_count()));

          if (state_at_first_brd < 0 || state_at_first_brd > 3)
            ++spec_violations;
          max_stale_increments =
              std::max(max_stale_increments, state_at_first_brd);

          const auto report = core::check_pif_spec(
              *world,
              {.require_termination = false, .require_start = false});
          if (!report.ok()) ++spec_violations;
        }
      }
    }
  }

  TextTable table({"configurations", "completed", "spec violations",
                   "max stale increments", "steps to decide (mean)",
                   "steps (max)"});
  table.add_row({TextTable::cell(configurations), TextTable::cell(completed),
                 TextTable::cell(spec_violations),
                 TextTable::cell(max_stale_increments),
                 TextTable::cell(steps_to_decide.mean(), 1),
                 TextTable::cell(steps_to_decide.max(), 0)});
  table.print();

  verdict(completed == configurations,
          "every adversarial configuration completed");
  verdict(spec_violations == 0,
          "no configuration let p reach flag 4 on stale data "
          "(Specification 1 held everywhere)");
  verdict(max_stale_increments == 3,
          "the paper's worst case is tight: some configuration fakes "
          "exactly 2c+1 = 3 increments, none fakes more");
  return {configurations, completed, spec_violations, max_stale_increments};
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  snapstab::CliArgs args(argc, argv, {"json"});
  snapstab::bench::banner(
      "E1: exp_fig1_worstcase", "Figure 1 (worst case of Protocol PIF)",
      "Replays the figure's adversarial scenario and exhaustively verifies\n"
      "that stale data can fake at most 3 of the 4 required increments.");
  snapstab::bench::part1_walkthrough();
  const auto sweep = snapstab::bench::part2_sweep();
  snapstab::bench::BenchJson json("exp_fig1_worstcase");
  json.set("configurations", sweep.configurations);
  json.set("completed", sweep.completed);
  json.set("spec_violations", sweep.spec_violations);
  json.set("max_stale_increments", sweep.max_stale_increments);
  json.write_if_requested(args);
  return 0;
}
