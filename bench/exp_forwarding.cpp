// exp_forwarding — the routed multi-hop workload: the snap-stabilizing
// message-forwarding service (core/forward.hpp) swept over topology × n ×
// loss-rate.
//
// Each cell repeats independent seeded trials (parallel, one Simulator +
// StringPool per worker): build a forwarding world, fuzz an arbitrary
// initial configuration (corrupted handshakes, queues and channel buffers,
// including forged FwdData/FwdEcho traffic), submit a batch of payloads
// over random routes, run under a lossy random daemon until everything is
// delivered, then check the forwarding specification — every submission
// delivered exactly once, ghosts within the corruption budget. Cost
// metrics: steps and hop transfers per delivered payload.
#include "exp_common.hpp"
#include "trial_runner.hpp"

#include "core/forward_world.hpp"

namespace snapstab::bench {
namespace {

using core::ForwardProcess;
using sim::Simulator;
using sim::Topology;

constexpr std::int64_t kBase = 1'000'000;

Topology make_topology(const std::string& family, int n, std::uint64_t seed) {
  if (family == "ring") return Topology::ring(n);
  if (family == "line") return Topology::line(n);
  if (family == "star") return Topology::star(n);
  if (family == "tree") return Topology::random_tree(n, seed);
  return Topology::complete(n);
}

struct Trial {
  bool completed = false;
  bool violation = false;
  double steps = 0;
  double hops = 0;
  double ghosts = 0;
};

struct Cell {
  int runs = 0;
  int incomplete = 0;
  int violations = 0;
  Summary steps;
  Summary hops;
  Summary ghosts;
};

Trial run_trial(const std::string& family, int n, double loss, int payloads,
                std::uint64_t seed) {
  Trial out;
  auto world = core::forward_world(make_topology(family, n, seed), 1, seed);

  Rng fuzz_rng(seed * 13 + 1);
  sim::FuzzOptions fuzz_opts;
  fuzz_opts.flag_limit = 4;  // 2c+2 for c = 1
  fuzz_opts.forward_header_n = n;
  sim::fuzz(*world, fuzz_rng, fuzz_opts);
  const std::uint64_t budget = core::forward_ghost_budget(*world);

  Rng pick(seed * 17 + 3);
  int accepted = 0;
  while (accepted < payloads) {
    const auto origin =
        static_cast<int>(pick.below(static_cast<std::uint64_t>(n)));
    const auto dst =
        static_cast<int>(pick.below(static_cast<std::uint64_t>(n)));
    if (core::request_forward(*world, origin, dst,
                              Value::integer(kBase + accepted)))
      ++accepted;
  }

  world->set_scheduler(std::make_unique<sim::RandomScheduler>(
      seed + 5, sim::LossOptions{.rate = loss, .max_consecutive = 6}));
  auto scanned = std::make_shared<std::size_t>(0);
  auto matched = std::make_shared<int>(0);
  const auto reason = world->run(
      20'000'000, [scanned, matched, payloads](Simulator& s) {
        const auto& events = s.log().events();
        for (; *scanned < events.size(); ++*scanned) {
          const auto& e = events[*scanned];
          if (e.layer == sim::Layer::Service &&
              e.kind == sim::ObsKind::FwdDeliver && e.value.as_int() >= kBase)
            ++*matched;
        }
        return *matched >= payloads;
      });
  if (reason != Simulator::StopReason::Predicate) {
    // A blown step budget is an incompleteness, not an exactly-once
    // violation; it is reported in its own column / JSON key.
    return out;
  }
  out.completed = true;
  out.steps = static_cast<double>(world->step_count()) / payloads;
  std::uint64_t hops = 0;
  std::uint64_t ghosts = 0;
  for (int p = 0; p < n; ++p)
    hops += world->process_as<ForwardProcess>(p).forward().hops_acked();
  for (const auto& e : world->log().events())
    if (e.layer == sim::Layer::Service &&
        e.kind == sim::ObsKind::FwdDeliver && e.value.as_int() < kBase)
      ++ghosts;
  out.hops = static_cast<double>(hops) / payloads;
  out.ghosts = static_cast<double>(ghosts);
  const auto report = core::check_forward_spec(
      *world, {.require_all_delivered = true, .max_ghost_deliveries = budget});
  if (!report.ok()) out.violation = true;
  return out;
}

Cell run_cell(const std::string& family, int n, double loss, int payloads,
              int trials, std::uint64_t seed0, int threads) {
  const auto outcomes = run_trials(trials, threads, [&](int t) {
    return run_trial(family, n, loss, payloads,
                     seed0 + static_cast<std::uint64_t>(t));
  });
  Cell cell;
  for (const auto& out : outcomes) {
    ++cell.runs;
    if (out.violation) ++cell.violations;
    if (!out.completed) {
      ++cell.incomplete;
      continue;
    }
    cell.steps.add(out.steps);
    cell.hops.add(out.hops);
    cell.ghosts.add(out.ghosts);
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv,
               {"trials", "seed", "threads", "payloads", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 10));
  const int payloads = static_cast<int>(args.get_int("payloads", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9100));
  const int threads = trial_thread_count(args, trials);

  banner("E12: exp_forwarding",
         "beyond §4.1: a routed service over an adversarial network",
         "Snap-stabilizing point-to-point forwarding swept over topology ×\n"
         "n × loss-rate: exactly-once delivery from arbitrary initial\n"
         "configurations, and what the hop handshake costs.");

  TextTable table({"topology", "n", "loss", "runs", "violations",
                   "incomplete", "steps/payload", "hops/payload",
                   "ghosts (mean)"});
  int total_violations = 0;
  int total_incomplete = 0;
  int total_runs = 0;
  const char* families[] = {"ring", "line", "star", "tree", "complete"};
  std::uint64_t cell_index = 0;
  for (const char* family : families) {
    for (int n : {4, 8, 16}) {
      for (double loss : {0.0, 0.2}) {
        ++cell_index;
        const auto cell = run_cell(family, n, loss, payloads, trials,
                                   seed + cell_index * 1000, threads);
        total_violations += cell.violations;
        total_incomplete += cell.incomplete;
        total_runs += cell.runs;
        char loss_str[16];
        std::snprintf(loss_str, sizeof loss_str, "%.1f", loss);
        table.add_row({family, TextTable::cell(n), loss_str,
                       TextTable::cell(cell.runs),
                       TextTable::cell(cell.violations),
                       TextTable::cell(cell.incomplete),
                       TextTable::cell(cell.steps.mean(), 0),
                       TextTable::cell(cell.hops.mean(), 1),
                       TextTable::cell(cell.ghosts.mean(), 1)});
      }
    }
  }
  table.print();

  verdict(total_violations == 0,
          "every submission delivered exactly once from every fuzzed "
          "configuration, ghosts within the corruption budget");
  verdict(total_incomplete == 0,
          "every run finished within its step budget");

  BenchJson json("exp_forwarding");
  json.set("trials", trials);
  json.set("threads", threads);
  json.set("payloads", payloads);
  json.set("total_runs", total_runs);
  json.set("total_violations", total_violations);
  json.set("total_incomplete", total_incomplete);
  json.write_if_requested(args);
  return total_violations == 0 ? 0 : 1;
}
