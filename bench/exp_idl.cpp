// exp_idl — Experiment E4: Theorem 3 (IDs-Learning), empirically.
//
// Every process requests an IDL computation (one svc session each) from
// fuzzed configurations; after each started-and-terminated computation the
// table and minimum must be exact. Also reports the cost of learning
// (rounds, messages).
#include "exp_common.hpp"
#include "svc/client.hpp"

namespace snapstab::bench {
namespace {

using core::IdlProcess;
using sim::Simulator;

struct Cell {
  int runs = 0;
  int violations = 0;
  Summary rounds;
  Summary sends;
};

Cell run_cell(int n, bool corrupted, int trials, std::uint64_t seed0) {
  Cell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    std::vector<std::int64_t> ids;
    Rng id_rng(seed * 13);
    for (int i = 0; i < n; ++i)
      ids.push_back(id_rng.range(0, 10'000) * 100 + i);  // unique

    Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<IdlProcess>(
          ids[static_cast<std::size_t>(i)], n - 1, 1));
    if (corrupted) {
      Rng rng(seed ^ 0xDEAD);
      sim::fuzz(world, rng);
    }
    world.set_scheduler(std::make_unique<sim::RoundRobinScheduler>(seed));
    svc::Client client(world);
    std::vector<svc::Session> sessions;
    for (int p = 0; p < n; ++p)
      sessions.push_back(client.submit(p, svc::Idl{}));
    const bool done = client.run_until(sessions, {.max_steps = 5'000'000});
    ++cell.runs;
    if (!done) {
      ++cell.violations;
      continue;
    }
    cell.rounds.add(static_cast<double>(rounds_of(world)));
    cell.sends.add(static_cast<double>(world.metrics().sends));
    const auto report = core::check_idl_spec(
        world,
        [&world](sim::ProcessId p) -> const core::Idl& {
          return world.process_as<IdlProcess>(p).idl();
        },
        ids);
    if (!report.ok()) ++cell.violations;
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  banner("E4: exp_idl", "Theorem 3 (Protocol IDL is snap-stabilizing)",
         "All-processes IDs-Learning from clean and arbitrary initial\n"
         "configurations: exact tables required after every computation.");

  TextTable table({"n", "initial config", "runs", "violations",
                   "rounds (mean)", "msgs sent (mean)"});
  int total_violations = 0;
  for (int n : {2, 4, 8, 16}) {
    for (const bool corrupted : {false, true}) {
      const auto cell = run_cell(n, corrupted, trials,
                                 seed + static_cast<std::uint64_t>(n) * 101);
      total_violations += cell.violations;
      table.add_row({TextTable::cell(n), corrupted ? "arbitrary" : "clean",
                     TextTable::cell(cell.runs),
                     TextTable::cell(cell.violations),
                     cell.rounds.empty() ? "-"
                                         : TextTable::cell(cell.rounds.mean(), 1),
                     cell.sends.empty() ? "-"
                                        : TextTable::cell(cell.sends.mean(), 0)});
    }
  }
  table.print();
  verdict(total_violations == 0,
          "every started IDs-Learning computation produced the exact "
          "neighbor table and minimum");

  BenchJson json("exp_idl");
  json.set("trials", trials);
  json.set("total_violations", total_violations);
  json.write_if_requested(args);
  return 0;
}
