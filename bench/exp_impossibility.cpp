// exp_impossibility — Experiment E2: Theorem 1, executed.
//
// Runs the paper's impossibility construction against our own Protocol ME:
// on unbounded channels the stuffed initial configuration drives both
// requesting processes into the critical section concurrently; on channels
// with a known bound the configuration is not installable and the fair run
// keeps the guarantee.
#include "exp_common.hpp"
#include "impossibility/construction.hpp"

int main(int argc, char** argv) {
  snapstab::CliArgs args(argc, argv, {"seed", "json"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  snapstab::bench::banner(
      "E2: exp_impossibility",
      "Theorem 1 (no snap-stabilization with unbounded channels)",
      "Records the bad factor, stuffs it into an initial configuration,\n"
      "replays it to a mutual-exclusion violation; then shows the bounded\n"
      "counterfactual.");

  std::printf("--- Unbounded channels: the construction succeeds ---\n");
  const auto unbounded =
      snapstab::impossibility::run_unbounded_construction(seed);
  for (const auto& line : unbounded.narrative)
    std::printf("  %s\n", line.c_str());

  snapstab::TextTable table({"setting", "stuffed q->p", "stuffed p->q",
                             "refused", "replay mismatches",
                             "ME violated?"});
  table.add_row({"unbounded",
                 snapstab::TextTable::cell(unbounded.preloaded_to_p),
                 snapstab::TextTable::cell(unbounded.preloaded_to_q),
                 snapstab::TextTable::cell(unbounded.preload_refused),
                 snapstab::TextTable::cell(unbounded.replay_mismatches),
                 unbounded.both_in_cs_concurrently ? "YES (as proved)"
                                                   : "no"});

  std::printf("\n--- Bounded channels: the construction collapses ---\n");
  for (std::size_t capacity : {1u, 2u}) {
    const auto bounded =
        snapstab::impossibility::run_bounded_counterfactual(capacity, seed);
    for (const auto& line : bounded.narrative)
      std::printf("  %s\n", line.c_str());
    char name[32];
    std::snprintf(name, sizeof name, "capacity %zu", capacity);
    table.add_row({name, snapstab::TextTable::cell(bounded.preloaded_to_p),
                   snapstab::TextTable::cell(bounded.preloaded_to_q),
                   snapstab::TextTable::cell(bounded.preload_refused),
                   "-",
                   bounded.both_in_cs_concurrently ? "YES (bug!)" : "no"});
  }
  std::printf("\n");
  table.print();

  snapstab::bench::verdict(unbounded.both_in_cs_concurrently,
                           "unbounded channels reproduce the bad factor");
  snapstab::bench::verdict(unbounded.replay_mismatches == 0,
                           "the replay was byte-exact");

  snapstab::bench::BenchJson json("exp_impossibility");
  json.set("both_in_cs_concurrently", unbounded.both_in_cs_concurrently);
  json.set("replay_mismatches",
           static_cast<std::int64_t>(unbounded.replay_mismatches));
  json.write_if_requested(args);
  return 0;
}
