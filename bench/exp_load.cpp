// exp_load — Experiment E14 (extension): the million-session sharded load
// generator (src/load/) driving the svc session API at production
// intensity.
//
// The paper proves snap-stabilizing PIF safe from any configuration; the
// services built on it only earn a production-scale claim when the svc
// layer demonstrably holds its latency/throughput envelope under 10^5+
// concurrent sessions. This experiment sweeps the workload space —
// service mix x arrival model x topology size x shard count — and reports
// saturation throughput plus p50/p90/p99/p999 submit->Done latency from
// the mergeable log-scale histogram. The sharded runs double as the
// determinism demonstration: the aggregate JSON is bit-identical for any
// --threads, pinned here as a verdict and in tests/test_load.cpp.
#include <string>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "load/workload.hpp"

namespace snapstab::bench {
namespace {

using load::LoadReport;
using load::WorkloadSpec;
using svc::ServiceId;

WorkloadSpec base_spec(const std::string& mix) {
  WorkloadSpec spec;
  if (mix == "pif") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
  } else if (mix == "mixed") {
    spec.set_weight(ServiceId::PifBroadcast, 4);
    spec.set_weight(ServiceId::Idl, 2);
    spec.set_weight(ServiceId::Snapshot, 1);
    spec.set_weight(ServiceId::TermDetect, 1);
    spec.set_weight(ServiceId::Election, 1);
  } else if (mix == "forward") {
    spec.set_weight(ServiceId::PifBroadcast, 1);
    spec.set_weight(ServiceId::ForwardMsg, 3);
  } else if (mix == "cs") {
    spec.set_weight(ServiceId::CriticalSection, 1);
  } else {
    std::fprintf(stderr, "unknown mix %s\n", mix.c_str());
    std::exit(1);
  }
  return spec;
}

double per_sec(std::uint64_t count, std::uint64_t wall_ns) {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(count) * 1e9 /
                            static_cast<double>(wall_ns);
}

std::string json_cell(const WorkloadSpec& spec, const LoadReport& r,
                      const std::string& label) {
  const load::LatencyHistogram& h = r.total.steps_hist;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\":\"%s\",\"concurrency\":%llu,\"completed\":%llu,"
      "\"coalesced\":%llu,\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
      "\"p999\":%llu,\"steps\":%llu,\"sessions_per_sec\":%.0f,"
      "\"steps_per_sec\":%.0f}",
      label.c_str(), static_cast<unsigned long long>(spec.concurrency),
      static_cast<unsigned long long>(r.total.counters.completed),
      static_cast<unsigned long long>(r.total.counters.coalesced),
      static_cast<unsigned long long>(h.percentile(50)),
      static_cast<unsigned long long>(h.percentile(90)),
      static_cast<unsigned long long>(h.percentile(99)),
      static_cast<unsigned long long>(h.percentile(99.9)),
      static_cast<unsigned long long>(r.total.steps),
      per_sec(r.total.counters.completed, r.harness_wall_ns),
      per_sec(r.total.steps, r.harness_wall_ns));
  return buf;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv,
               {"smoke", "shards", "threads", "n", "topology", "concurrency",
                "measure", "warmup", "seed", "check_every", "json"});
  const bool smoke = args.get_bool("smoke");
  const int shards = static_cast<int>(args.get_int("shards", smoke ? 2 : 8));
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(
      args.get_int("threads", hw != 0 ? static_cast<int>(hw) : 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 14000));
  const std::string topology = args.get("topology", "ring");
  const int n = static_cast<int>(args.get_int("n", smoke ? 8 : 32));
  const auto measure = static_cast<std::uint64_t>(
      args.get_int("measure", smoke ? 256 : 20'000));
  const auto warmup = static_cast<std::uint64_t>(
      args.get_int("warmup", smoke ? 32 : 2'000));
  const int check_every =
      static_cast<int>(args.get_int("check_every", 64));

  banner("E14: exp_load",
         "scale-out of §4.1's services: sessions/sec and tail latency "
         "under 10^5+ concurrent sessions",
         "Closed/open-loop workloads over the svc session API, sharded\n"
         "across workers with a deterministic merge (load::run_sharded).");

  BenchJson json("exp_load");
  json.set_meta("topology", topology + "/" + std::to_string(n));
  json.set("shards", shards);
  json.set("threads", threads);
  json.set("smoke", smoke);

  const auto configure = [&](WorkloadSpec& spec) {
    spec.topology = topology;
    spec.n = n;
    spec.seed = seed;
    spec.measure = measure;
    spec.warmup = warmup;
    spec.check_every = check_every;
    spec.record_wall = true;
    // A stuck cell must cost seconds, not the library's default budget: an
    // ME world is never quiescent, so a non-progressing mix would otherwise
    // spin out the full 5e8 steps per shard.
    spec.max_steps = smoke ? 5'000'000 : 100'000'000;
  };

  // --- closed-loop saturation: mix x concurrency --------------------------
  std::printf("--- Closed-loop saturation (mix x concurrency) ---\n");
  TextTable sat({"mix", "concurrency", "completed", "coalesced", "p50", "p99",
                 "p999", "sessions/s", "Msteps/s"});
  std::string sat_json = "[";
  const std::vector<std::uint64_t> ladder =
      smoke ? std::vector<std::uint64_t>{64}
            : std::vector<std::uint64_t>{1024, 16384, 131072};
  bool first_cell = true;
  for (const char* mix : {"pif", "mixed", "forward", "cs"}) {
    const bool is_cs = std::string(mix) == "cs";
    for (const std::uint64_t c : ladder) {
      WorkloadSpec spec = base_spec(mix);
      configure(spec);
      if (is_cs) {
        // The ME stack assumes the complete graph (every MeStackProcess is
        // built with degree n-1), and grants complete one per host phase
        // cycle — pin the CS cell to a small complete world with a
        // proportionate target, and run it once, not per ladder rung.
        if (c != ladder.front()) continue;
        spec.topology = "complete";
        spec.n = std::min(n, 8);
        spec.concurrency = std::min<std::uint64_t>(c, 1024);
        spec.measure = std::min<std::uint64_t>(measure, 2048);
        spec.warmup = std::min<std::uint64_t>(warmup, 128);
      } else {
        spec.concurrency = c;
      }
      const LoadReport r = load::run_sharded(spec, shards, threads);
      const load::LatencyHistogram& h = r.total.steps_hist;
      const std::string label =
          is_cs ? "cs (complete/" + std::to_string(spec.n) + ")" : mix;
      sat.add_row({label, TextTable::cell(static_cast<std::int64_t>(
                              spec.concurrency)),
                   TextTable::cell(static_cast<std::int64_t>(
                       r.total.counters.completed)),
                   TextTable::cell(static_cast<std::int64_t>(
                       r.total.counters.coalesced)),
                   TextTable::cell(static_cast<std::int64_t>(
                       h.percentile(50))),
                   TextTable::cell(static_cast<std::int64_t>(
                       h.percentile(99))),
                   TextTable::cell(static_cast<std::int64_t>(
                       h.percentile(99.9))),
                   TextTable::cell(
                       per_sec(r.total.counters.completed, r.harness_wall_ns),
                       0),
                   TextTable::cell(per_sec(r.total.steps, r.harness_wall_ns) /
                                       1e6,
                                   1)});
      if (!first_cell) sat_json += ",";
      first_cell = false;
      sat_json += json_cell(spec, r, std::string(mix));
    }
  }
  sat_json += "]";
  sat.print();
  json.set_raw("closed_loop", sat_json);

  // --- the high-water cell: >= 10^5 concurrent recycled sessions ---------
  std::uint64_t highwater_live = 0;
  bool highwater_ok = true;
  if (!smoke) {
    std::printf("\n--- High-water mark: 131072 concurrent sessions ---\n");
    WorkloadSpec spec = base_spec("pif");
    configure(spec);
    spec.topology = "complete";
    spec.n = 64;
    spec.concurrency = 131072;
    spec.warmup = 4096;
    spec.measure = 262144;  // every live slot recycles ~2x through the
                            // svc free list at 131072 in flight
    const LoadReport r = load::run_sharded(spec, shards, threads);
    highwater_live = spec.concurrency;
    highwater_ok = r.total.counters.completed >= spec.measure &&
                   !r.total.hit_step_budget && !r.total.stalled;
    const load::LatencyHistogram& h = r.total.steps_hist;
    std::printf("completed %llu sessions, p50/p99/p999 = %llu/%llu/%llu "
                "steps, %.0f sessions/s\n",
                static_cast<unsigned long long>(r.total.counters.completed),
                static_cast<unsigned long long>(h.percentile(50)),
                static_cast<unsigned long long>(h.percentile(99)),
                static_cast<unsigned long long>(h.percentile(99.9)),
                per_sec(r.total.counters.completed, r.harness_wall_ns));
    json.set_raw("highwater", json_cell(spec, r, "pif-complete64"));
  }

  // --- open-loop offered load --------------------------------------------
  std::printf("\n--- Open-loop offered load (mixed mix) ---\n");
  TextTable open({"inter-arrival", "completed", "shed", "p50", "p99",
                  "sessions/s"});
  std::string open_json = "[";
  const std::vector<std::uint64_t> gaps =
      smoke ? std::vector<std::uint64_t>{16}
            : std::vector<std::uint64_t>{64, 16, 4};
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    WorkloadSpec spec = base_spec("mixed");
    configure(spec);
    spec.arrival = WorkloadSpec::Arrival::Open;
    spec.inter_arrival = gaps[i];
    spec.max_in_flight = 1u << 14;
    const LoadReport r = load::run_sharded(spec, shards, threads);
    const load::LatencyHistogram& h = r.total.steps_hist;
    open.add_row(
        {TextTable::cell(static_cast<std::int64_t>(gaps[i])),
         TextTable::cell(
             static_cast<std::int64_t>(r.total.counters.completed)),
         TextTable::cell(static_cast<std::int64_t>(r.total.counters.shed)),
         TextTable::cell(static_cast<std::int64_t>(h.percentile(50))),
         TextTable::cell(static_cast<std::int64_t>(h.percentile(99))),
         TextTable::cell(per_sec(r.total.counters.completed,
                                 r.harness_wall_ns),
                         0)});
    if (i != 0) open_json += ",";
    open_json += json_cell(spec, r, "gap" + std::to_string(gaps[i]));
  }
  open_json += "]";
  open.print();
  json.set_raw("open_loop", open_json);

  // --- shard scaling ------------------------------------------------------
  std::printf("\n--- Shard scaling (one workload, 1..%d shards) ---\n",
              shards);
  TextTable scaling({"shards", "threads", "steps", "wall ms", "Msteps/s",
                     "speedup"});
  std::string scaling_json = "[";
  double base_rate = 0.0;
  const std::vector<int> shard_ladder = [&] {
    std::vector<int> l{1};
    for (int s = 2; s <= shards; s *= 2) l.push_back(s);
    return l;
  }();
  for (std::size_t i = 0; i < shard_ladder.size(); ++i) {
    const int s = shard_ladder[i];
    WorkloadSpec spec = base_spec("pif");
    configure(spec);
    spec.concurrency = smoke ? 128 : 8192;
    spec.measure = smoke ? 512 : 16384;
    spec.warmup = smoke ? 64 : 1024;
    const LoadReport r = load::run_sharded(spec, s, std::min(s, threads));
    const double rate = per_sec(r.total.steps, r.harness_wall_ns);
    if (i == 0) base_rate = rate;
    scaling.add_row(
        {TextTable::cell(s), TextTable::cell(std::min(s, threads)),
         TextTable::cell(static_cast<std::int64_t>(r.total.steps)),
         TextTable::cell(static_cast<double>(r.harness_wall_ns) / 1e6, 1),
         TextTable::cell(rate / 1e6, 1),
         TextTable::cell(base_rate > 0 ? rate / base_rate : 0.0, 2)});
    char cell[160];
    std::snprintf(cell, sizeof cell,
                  "%s{\"shards\":%d,\"threads\":%d,\"steps_per_sec\":%.0f,"
                  "\"speedup\":%.2f}",
                  i == 0 ? "" : ",", s, std::min(s, threads), rate,
                  base_rate > 0 ? rate / base_rate : 0.0);
    scaling_json += cell;
  }
  scaling_json += "]";
  scaling.print();
  json.set_raw("shard_scaling", scaling_json);

  // --- determinism: merged JSON identical for any worker count ------------
  WorkloadSpec pin = base_spec("mixed");
  configure(pin);
  pin.concurrency = 64;
  pin.measure = smoke ? 128 : 512;
  pin.warmup = 16;
  const std::string json1 =
      load::run_sharded(pin, 4, 1).deterministic_json(pin);
  const std::string json4 =
      load::run_sharded(pin, 4, 4).deterministic_json(pin);
  const bool deterministic = json1 == json4;

  std::printf("\n");
  verdict(deterministic,
          "sharded merge deterministic: aggregate JSON bit-identical for "
          "--threads 1 vs 4");
  verdict(highwater_ok,
          smoke ? "high-water cell skipped (--smoke)"
                : "131072 concurrent sessions completed and recycled "
                  "through the svc free list");

  json.set("deterministic", deterministic);
  json.set("highwater_concurrency", highwater_live);
  json.set("highwater_ok", highwater_ok);
  json.set_raw("determinism_pin", json1);
  if (!json.write_if_requested(args)) return 1;
  return deterministic && highwater_ok ? 0 : 1;
}
