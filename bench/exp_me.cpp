// exp_me — Experiments E5 + E11: Theorem 4 (mutual exclusion).
//
// Part 1 (E5): fuzzed validation — every requesting process is served, no
// requested critical section ever overlaps another CS, across sizes, seeds
// and loss rates. Includes the mod-(n+1) regression: the paper's literal A7
// increment deadlocks once Value_L reaches n.
//
// Part 2 (E11): service metrics — CS grants per million steps, request-to-CS
// latency, per-process fairness, messages per grant.
//
// Requests go through the svc session API: submit-while-busy queues at the
// host, so the historic caller-managed retry loops collapse into
// submit -> run_until -> resubmit.
#include "exp_common.hpp"
#include "svc/client.hpp"

namespace snapstab::bench {
namespace {

using core::MeStackProcess;
using sim::Simulator;

struct ValidationCell {
  int runs = 0;
  int violations = 0;
  int unserved = 0;
};

ValidationCell validate(int n, double loss, int trials,
                        std::uint64_t seed0) {
  ValidationCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    auto world = me_world(n, seed);
    Rng rng(seed ^ 0xACE);
    sim::fuzz(*world, rng);
    world->set_scheduler(std::make_unique<sim::RandomScheduler>(
        seed, sim::LossOptions{.rate = loss, .max_consecutive = 5}));

    // One CS session per process: a fuzzed ghost computation in the ME
    // layer queues the session instead of refusing it (the historic
    // retry-in-the-stop-predicate dance).
    svc::Client client(*world);
    std::vector<svc::Session> sessions;
    for (int p = 0; p < n; ++p)
      sessions.push_back(client.submit(p, svc::CriticalSection{}));
    const bool served = client.run_until(sessions, {.max_steps = 8'000'000});
    ++cell.runs;
    if (!served) ++cell.unserved;
    const auto report =
        core::check_me_spec(*world, {.require_liveness = served});
    if (!report.ok()) ++cell.violations;
  }
  return cell;
}

struct ServiceCell {
  std::uint64_t steps = 0;
  std::uint64_t sends = 0;
  int grants = 0;
  int min_per_process = 0;
  int max_per_process = 0;
  Summary latency;
};

ServiceCell service(int n, std::uint64_t seed, std::uint64_t budget) {
  auto world = me_world(n, seed);
  world->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  svc::Client client(*world);
  std::vector<svc::Session> active;
  std::vector<std::uint64_t> request_step(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    active.push_back(client.submit(p, svc::CriticalSection{}));
    request_step[static_cast<std::size_t>(p)] = world->step_count();
  }
  ServiceCell cell;
  std::vector<int> grants(static_cast<std::size_t>(n), 0);
  std::uint64_t remaining = budget;
  while (remaining > 0) {
    // Small chunks keep the request->CS latency samples fine-grained.
    const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 200);
    world->run(chunk);
    remaining -= chunk;
    for (int p = 0; p < n; ++p) {
      const auto ri = static_cast<std::size_t>(p);
      if (client.done(active[ri])) {
        ++grants[ri];
        cell.latency.add(
            static_cast<double>(world->step_count() - request_step[ri]));
        client.release(active[ri]);  // recycle the completed record
        active[ri] = client.submit(p, svc::CriticalSection{});
        request_step[ri] = world->step_count();
      }
    }
  }
  cell.steps = world->step_count();
  cell.sends = world->metrics().sends;
  cell.grants = 0;
  cell.min_per_process = grants[0];
  cell.max_per_process = grants[0];
  for (const int g : grants) {
    cell.grants += g;
    cell.min_per_process = std::min(cell.min_per_process, g);
    cell.max_per_process = std::max(cell.max_per_process, g);
  }
  return cell;
}

bool paper_faithful_deadlock(int n) {
  core::StackOptions opts;
  opts.me.paper_faithful_increment = true;
  auto world = me_world(n, 77, opts);
  // Plant the poison value n at the leader and request elsewhere.
  world->process_as<MeStackProcess>(0).me().mutable_state().value = n;
  world->set_scheduler(std::make_unique<sim::RandomScheduler>(78));
  svc::Client client(*world);
  const svc::Session session = client.submit(1, svc::CriticalSection{});
  return !client.run_until(session, {.max_steps = 600'000});
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "budget", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3000));
  const auto budget =
      static_cast<std::uint64_t>(args.get_int("budget", 1'000'000));

  banner("E5/E11: exp_me", "Theorem 4 (Protocol ME is snap-stabilizing)",
         "Part 1: fuzzed validation of Specification 3. Part 2: service\n"
         "metrics under saturation. Part 3: the mod-(n+1) regression.");

  std::printf("--- Part 1: validation from arbitrary configurations ---\n");
  TextTable validation({"n", "loss", "runs", "spec violations",
                        "requests unserved"});
  int total_violations = 0;
  int total_unserved = 0;
  for (int n : {2, 3, 5}) {
    for (double loss : {0.0, 0.15}) {
      const auto cell = validate(n, loss, trials,
                                 seed + static_cast<std::uint64_t>(n) * 211);
      total_violations += cell.violations;
      total_unserved += cell.unserved;
      validation.add_row({TextTable::cell(n), TextTable::cell(loss, 2),
                          TextTable::cell(cell.runs),
                          TextTable::cell(cell.violations),
                          TextTable::cell(cell.unserved)});
    }
  }
  validation.print();

  std::printf("\n--- Part 2: service metrics (all processes saturating) ---\n");
  TextTable metrics({"n", "steps", "grants", "grants/Msteps",
                     "latency mean (steps)", "latency p95", "fairness min/max",
                     "msgs per grant"});
  for (int n : {2, 3, 5, 8}) {
    const auto cell = service(n, seed + static_cast<std::uint64_t>(n), budget);
    char fair[32];
    std::snprintf(fair, sizeof fair, "%d/%d", cell.min_per_process,
                  cell.max_per_process);
    metrics.add_row(
        {TextTable::cell(n), TextTable::cell(cell.steps),
         TextTable::cell(cell.grants),
         TextTable::cell(static_cast<double>(cell.grants) * 1e6 /
                             static_cast<double>(cell.steps),
                         1),
         cell.latency.empty() ? "-" : TextTable::cell(cell.latency.mean(), 0),
         cell.latency.empty() ? "-"
                              : TextTable::cell(cell.latency.percentile(95), 0),
         fair,
         cell.grants == 0
             ? "-"
             : TextTable::cell(static_cast<double>(cell.sends) /
                                   static_cast<double>(cell.grants),
                               1)});
  }
  metrics.print();

  std::printf("\n--- Part 3: the A7 increment regression (DESIGN.md §6.1) ---\n");
  TextTable regression({"increment rule", "Value_L = n planted", "requests"});
  const bool deadlocked = paper_faithful_deadlock(3);
  regression.add_row({"paper: (Value+1) mod (n+1)", "yes",
                      deadlocked ? "STARVED (deadlock)" : "served"});
  regression.add_row({"ours: (Value+1) mod n", "n/a (value unreachable)",
                      "served (Part 1)"});
  regression.print();

  verdict(total_violations == 0, "zero Specification-3 violations");
  verdict(total_unserved == 0, "every accepted request reached the CS");
  verdict(deadlocked,
          "the literal mod-(n+1) rule starves once Value_L = n — the "
          "off-by-one the implementation fixes");

  BenchJson json("exp_me");
  json.set("trials", trials);
  json.set("total_violations", total_violations);
  json.set("total_unserved", total_unserved);
  json.set("mod_n_plus_1_deadlocked", deadlocked);
  json.write_if_requested(args);
  return 0;
}
