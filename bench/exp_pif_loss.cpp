// exp_pif_loss — Experiment E9: fair loss vs the two PIF designs.
//
// Protocol PIF retransmits until each per-neighbor handshake completes, so
// it terminates under any loss rate < 1 (the fair-loss assumption of §2).
// The naive Section-4.1 attempt sends each message once: a single loss on
// the broadcast or feedback path deadlocks the computation. The table shows
// rounds-to-decision for Protocol PIF and completion rate for both.
#include "baselines/naive_pif.hpp"
#include "exp_common.hpp"

namespace snapstab::bench {
namespace {

using baselines::NaivePifProcess;
using core::PifProcess;
using sim::Simulator;

struct SnapCell {
  Summary rounds;
  int completed = 0;
  int runs = 0;
  // Exact per-channel accounting: `delivered` sums Channel::Stats::popped
  // (actual deliveries only), `dropped` sums the adversary's drops. The
  // channel-level drop count must reconcile with the scheduler-level loss
  // metric — `exact` records that it did, for every run.
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  bool exact = true;
};

SnapCell run_snap(int n, double loss, int trials, std::uint64_t seed0) {
  SnapCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    auto world = pif_world(n, 1, seed);
    world->set_scheduler(std::make_unique<sim::RoundRobinScheduler>(
        seed, sim::LossOptions{.rate = loss, .max_consecutive = 8}));
    core::request_pif(*world, 0, Value::integer(t));
    const auto reason = world->run(5'000'000, [](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().done();
    });
    ++cell.runs;
    const auto chan = world->network().aggregate_channel_stats();
    cell.delivered += chan.popped;
    cell.dropped += chan.dropped;
    if (chan.dropped != world->metrics().adversary_losses ||
        chan.popped != world->metrics().deliveries)
      cell.exact = false;
    if (reason == Simulator::StopReason::Predicate) {
      ++cell.completed;
      cell.rounds.add(static_cast<double>(rounds_of(*world)));
    }
  }
  return cell;
}

int run_naive(int n, double loss, int trials, std::uint64_t seed0) {
  int completed = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<NaivePifProcess>(n - 1));
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(
        seed, sim::LossOptions{.rate = loss, .max_consecutive = 8}));
    dynamic_cast<NaivePifProcess&>(world.process(0))
        .request(Value::integer(t));
    const auto reason = world.run(400'000, [](Simulator& s) {
      return dynamic_cast<NaivePifProcess&>(s.process(0)).done();
    });
    if (reason == Simulator::StopReason::Predicate) ++completed;
  }
  return completed;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9000));

  banner("E9: exp_pif_loss", "fair-loss model (§2) vs the naive attempt",
         "Completion and rounds-to-decision under increasing loss: the\n"
         "snap-stabilizing PIF always terminates; the naive attempt's\n"
         "completion rate collapses with the loss rate.");

  TextTable table({"n", "loss", "snap-PIF completed", "snap rounds (mean)",
                   "snap rounds (p95)", "delivered", "dropped",
                   "naive completed"});
  bool snap_always = true;
  bool accounting_exact = true;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_dropped = 0;
  int naive_losses_seen = 0;
  for (int n : {4, 16}) {
    for (double loss : {0.0, 0.05, 0.1, 0.2, 0.4}) {
      const auto snap = run_snap(n, loss, trials,
                                 seed + static_cast<std::uint64_t>(n * 100));
      const int naive = run_naive(n, loss, trials,
                                  seed + static_cast<std::uint64_t>(n * 200));
      if (snap.completed != snap.runs) snap_always = false;
      accounting_exact = accounting_exact && snap.exact;
      total_delivered += snap.delivered;
      total_dropped += snap.dropped;
      if (loss > 0 && naive < trials) ++naive_losses_seen;
      char frac_snap[32];
      std::snprintf(frac_snap, sizeof frac_snap, "%d/%d", snap.completed,
                    snap.runs);
      char frac_naive[32];
      std::snprintf(frac_naive, sizeof frac_naive, "%d/%d", naive, trials);
      table.add_row({TextTable::cell(n), TextTable::cell(loss, 2), frac_snap,
                     snap.rounds.empty()
                         ? "-"
                         : TextTable::cell(snap.rounds.mean(), 1),
                     snap.rounds.empty()
                         ? "-"
                         : TextTable::cell(snap.rounds.percentile(95), 1),
                     TextTable::cell(static_cast<double>(snap.delivered), 0),
                     TextTable::cell(static_cast<double>(snap.dropped), 0),
                     frac_naive});
    }
  }
  table.print();
  verdict(snap_always, "Protocol PIF terminated in every lossy run");
  verdict(naive_losses_seen > 0,
          "the naive attempt deadlocked under loss (as §4.1 predicts)");
  verdict(accounting_exact,
          "channel-level delivered/dropped counts reconciled exactly with "
          "the scheduler's delivery and loss metrics in every run");

  BenchJson json("exp_pif_loss");
  json.set("trials", trials);
  json.set("snap_always_terminated", snap_always);
  json.set("total_delivered", total_delivered);
  json.set("total_dropped", total_dropped);
  json.set("accounting_exact", accounting_exact);
  json.write_if_requested(args);
  return 0;
}
