// exp_pif_scaling — Experiment E8: cost of Protocol PIF vs system size.
//
// Round complexity and message complexity of one PIF computation under the
// synchronous round-robin daemon, for clean and corrupted starts. The
// expected shape: rounds stay O(1) in n (the per-neighbor handshakes run in
// parallel: 4 round trips + constant), messages grow Θ(n) per computation
// (the initiator handshakes with n-1 neighbors), and corruption adds only a
// constant number of extra exchanges (the stale fuel of Figure 1).
#include "exp_common.hpp"
#include "trial_runner.hpp"

namespace snapstab::bench {
namespace {

using core::PifProcess;
using sim::Simulator;

struct Cell {
  Summary rounds;
  Summary sends;
  Summary deliveries;
  int failures = 0;
};

Cell run_cell(int n, bool corrupted, int trials, std::uint64_t seed0,
              int threads) {
  struct Trial {
    bool completed = false;
    double rounds = 0;
    double sends = 0;
    double deliveries = 0;
  };
  const auto outcomes = run_trials(trials, threads, [&](int t) {
    Trial out;
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    auto world = pif_world(n, 1, seed);
    if (corrupted) {
      Rng rng(seed * 31);
      sim::fuzz(*world, rng);
    }
    world->set_scheduler(std::make_unique<sim::RoundRobinScheduler>(seed));
    core::request_pif(*world, 0, Value::integer(t));
    const auto reason = world->run(5'000'000, [](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().done();
    });
    if (reason != Simulator::StopReason::Predicate) return out;
    out.completed = true;
    out.rounds = static_cast<double>(rounds_of(*world));
    out.sends = static_cast<double>(world->metrics().sends);
    out.deliveries = static_cast<double>(world->metrics().deliveries);
    return out;
  });

  Cell cell;
  for (const auto& out : outcomes) {
    if (!out.completed) {
      ++cell.failures;
      continue;
    }
    cell.rounds.add(out.rounds);
    cell.sends.add(out.sends);
    cell.deliveries.add(out.deliveries);
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "max-n", "threads", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5000));
  const int max_n = static_cast<int>(args.get_int("max-n", 64));
  const int threads = trial_thread_count(args, trials);

  banner("E8: exp_pif_scaling", "Protocol PIF complexity (implied by §4.1)",
         "Rounds and messages for one PIF computation vs n, clean vs\n"
         "corrupted start, synchronous daemon.");

  TextTable table({"n", "initial config", "rounds (mean)", "rounds (max)",
                   "msgs sent (mean)", "msgs/n", "failures"});
  bool constant_rounds = true;
  double rounds_n2 = 0;
  for (int n = 2; n <= max_n; n *= 2) {
    for (const bool corrupted : {false, true}) {
      const auto cell = run_cell(n, corrupted, trials,
                                 seed + static_cast<std::uint64_t>(n),
                                 threads);
      if (n == 2 && !corrupted) rounds_n2 = cell.rounds.mean();
      if (!corrupted && cell.rounds.mean() > rounds_n2 * 4)
        constant_rounds = false;
      table.add_row(
          {TextTable::cell(n), corrupted ? "arbitrary" : "clean",
           TextTable::cell(cell.rounds.mean(), 1),
           TextTable::cell(cell.rounds.max(), 0),
           TextTable::cell(cell.sends.mean(), 1),
           TextTable::cell(cell.sends.mean() / n, 1),
           TextTable::cell(cell.failures)});
    }
  }
  table.print();
  verdict(constant_rounds,
          "round complexity is O(1) in n (parallel per-neighbor handshakes)");

  BenchJson json("exp_pif_scaling");
  json.set("trials", trials);
  json.set("threads", threads);
  json.set("max_n", max_n);
  json.set("rounds_mean_n2_clean", rounds_n2);
  json.set("constant_rounds", constant_rounds);
  json.write_if_requested(args);
  return 0;
}
