// exp_pif_snap — Experiment E3 (+ E6): Theorem 2, empirically.
//
// Fuzzes arbitrary initial configurations and checks every property of
// Specification 1 on every run, plus Property 1 (channel flushing). The
// headline number is the violation count: snap-stabilization means zero,
// from the very first request, under every corruption and loss setting.
#include "exp_common.hpp"

namespace snapstab::bench {
namespace {

using core::PifProcess;
using sim::Simulator;

struct Cell {
  int runs = 0;
  int violations = 0;
  int property1_failures = 0;
  Summary steps;
  Summary messages;
};

Cell run_cell(int n, bool corrupted, double loss, int trials,
              std::uint64_t seed0) {
  Cell cell;
  const Value marker = Value::text("ghost-marker");
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    auto world = pif_world(n, 1, seed);
    if (corrupted) {
      Rng rng(seed ^ 0xF00D);
      sim::fuzz(*world, rng);
    }
    // Property 1 markers in the initiator's incident channels (replacing
    // whatever fuzz put there — still an arbitrary configuration).
    auto& net = world->network();
    for (int other = 1; other < n; ++other) {
      net.channel(other, 0).clear();
      net.channel(0, other).clear();
      net.channel(other, 0).push(Message::pif(marker, marker, 2, 2));
      net.channel(0, other).push(Message::pif(marker, marker, 1, 0));
    }
    world->set_scheduler(std::make_unique<sim::RandomScheduler>(
        seed + 1, sim::LossOptions{.rate = loss, .max_consecutive = 6}));
    core::request_pif(*world, 0, Value::integer(static_cast<int>(seed)));
    const auto reason = world->run(2'000'000, [](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().done();
    });
    ++cell.runs;
    if (reason != Simulator::StopReason::Predicate) {
      ++cell.violations;  // termination violation
      continue;
    }
    cell.steps.add(static_cast<double>(world->step_count()));
    cell.messages.add(static_cast<double>(world->metrics().sends));
    const auto report = core::check_pif_spec(
        *world, {.require_termination = false, .require_start = false});
    if (!report.ok()) ++cell.violations;
    // Property 1: the markers are gone from the initiator's channels.
    for (int other = 1; other < n; ++other) {
      for (const auto& m : net.channel(other, 0).contents())
        if (m.b == marker) ++cell.property1_failures;
      for (const auto& m : net.channel(0, other).contents())
        if (m.b == marker) ++cell.property1_failures;
    }
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1000));

  banner("E3/E6: exp_pif_snap",
         "Theorem 2 (Protocol PIF is snap-stabilizing) + Property 1",
         "Specification-1 violations across fuzzed initial configurations,\n"
         "loss rates and system sizes; plus Property-1 channel flushing.");

  TextTable table({"n", "initial config", "loss", "runs", "spec violations",
                   "Property-1 failures", "steps to decide",
                   "messages sent"});
  int total_violations = 0;
  int total_p1 = 0;
  for (int n : {2, 3, 5, 8}) {
    for (const bool corrupted : {false, true}) {
      for (const double loss : {0.0, 0.2}) {
        const auto cell =
            run_cell(n, corrupted, loss, trials,
                     seed + static_cast<std::uint64_t>(n) * 7919);
        total_violations += cell.violations;
        total_p1 += cell.property1_failures;
        table.add_row({TextTable::cell(n),
                       corrupted ? "arbitrary" : "clean",
                       TextTable::cell(loss, 2), TextTable::cell(cell.runs),
                       TextTable::cell(cell.violations),
                       TextTable::cell(cell.property1_failures),
                       cell.steps.brief(), cell.messages.brief()});
      }
    }
  }
  table.print();
  verdict(total_violations == 0,
          "zero Specification-1 violations: every started computation was "
          "correct from the first request");
  verdict(total_p1 == 0,
          "Property 1 held: terminated computations flushed the "
          "initiator's channels");

  BenchJson json("exp_pif_snap");
  json.set("trials", trials);
  json.set("total_violations", total_violations);
  json.set("property1_failures", total_p1);
  json.write_if_requested(args);
  return 0;
}
