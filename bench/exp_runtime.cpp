// exp_runtime — Experiment E12: the protocols on real threads.
//
// The paper closes with "actually implementing them is a future
// challenge". This experiment runs the same protocol objects on the thread
// runtime (one OS thread per process, capacity-1 lossy mailboxes, binary
// wire format) and reports wall-clock completion times plus a mutual-
// exclusion witness based on an atomic occupancy counter.
#include <atomic>
#include <chrono>

#include "exp_common.hpp"
#include "runtime/thread_runtime.hpp"

namespace snapstab::bench {
namespace {

using namespace std::chrono_literals;
using runtime::ThreadRuntime;

double pif_wall_ms(int n, double loss, std::uint64_t seed, bool& ok) {
  ThreadRuntime rt(n, {.loss_rate = loss, .seed = seed});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  rt.with_process<core::PifProcess>(0, [](core::PifProcess& p) {
    p.pif().request(Value::text("wall-clock"));
    return 0;
  });
  const auto start = std::chrono::steady_clock::now();
  ok = rt.run(
      [&rt] {
        return rt.with_process<core::PifProcess>(
            0, [](core::PifProcess& p) { return p.pif().done(); });
      },
      30s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

struct MeResult {
  bool all_served = false;
  int peak_occupancy = 0;
  double wall_ms = 0;
};

MeResult me_on_threads(int n, std::uint64_t seed) {
  ThreadRuntime rt(n, {.seed = seed});
  std::atomic<int> occupancy{0};
  std::atomic<int> peak{0};
  std::atomic<int> grants{0};
  for (int i = 0; i < n; ++i) {
    core::StackOptions opts;
    opts.me.cs_length = 2;
    opts.me.cs_body = [&occupancy, &peak, &grants] {
      const int now = occupancy.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      occupancy.fetch_sub(1);
      grants.fetch_add(1);
    };
    rt.add_process(
        std::make_unique<core::MeStackProcess>(i + 1, n - 1, opts));
  }
  for (int i = 0; i < n; ++i)
    rt.with_process<core::MeStackProcess>(
        i, [](core::MeStackProcess& s) { return s.me().request_cs(); });

  const auto start = std::chrono::steady_clock::now();
  MeResult result;
  result.all_served = rt.run([&grants, n] { return grants.load() >= n; }, 60s);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  result.peak_occupancy = peak.load();
  return result;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"seed", "json"});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));

  banner("E12: exp_runtime",
         "§5: 'actually implementing them is a future challenge'",
         "Wall-clock behaviour of the same protocol objects on one OS\n"
         "thread per process, capacity-1 lossy mailboxes, binary codec.");

  std::printf("--- PIF wall-clock completion ---\n");
  TextTable pif_table({"n", "loss", "completed", "wall time (ms)"});
  bool all_ok = true;
  for (int n : {2, 4, 8}) {
    for (double loss : {0.0, 0.2}) {
      bool ok = false;
      const double ms =
          pif_wall_ms(n, loss, seed + static_cast<std::uint64_t>(n), ok);
      all_ok = all_ok && ok;
      pif_table.add_row({TextTable::cell(n), TextTable::cell(loss, 2),
                         ok ? "yes" : "NO", TextTable::cell(ms, 1)});
    }
  }
  pif_table.print();

  std::printf("\n--- ME on threads (atomic occupancy witness) ---\n");
  TextTable me_table(
      {"n", "all requests served", "peak CS occupancy", "wall time (ms)"});
  bool exclusion = true;
  bool served = true;
  for (int n : {2, 3, 5}) {
    const auto r = me_on_threads(n, seed + 100 + static_cast<std::uint64_t>(n));
    exclusion = exclusion && r.peak_occupancy <= 1;
    served = served && r.all_served;
    me_table.add_row({TextTable::cell(n), r.all_served ? "yes" : "NO",
                      TextTable::cell(r.peak_occupancy),
                      TextTable::cell(r.wall_ms, 1)});
  }
  me_table.print();

  verdict(all_ok, "PIF completed on the thread runtime at every setting");
  verdict(served, "every CS request was served on the thread runtime");
  verdict(exclusion, "peak CS occupancy never exceeded 1 (real-time mutual "
                     "exclusion witness)");

  BenchJson json("exp_runtime");
  json.set("pif_all_ok", all_ok);
  json.set("me_all_served", served);
  json.set("me_exclusion", exclusion);
  json.write_if_requested(args);
  return 0;
}
