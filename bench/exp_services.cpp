// exp_services — Experiment E13 (extension): the PIF-based services,
// driven through the unified service/session API (svc::Client).
//
// The paper's §4.1 motivates PIF with "Reset, Snapshot, Leader Election,
// and Termination Detection can be solved using a PIF-based solution".
// This experiment validates and costs the three services built in core/:
// global reset, leader election with consistent ranking, and termination
// detection of a token-game diffusing computation — each from fuzzed
// initial configurations, each requested as a session (submit ->
// run_until -> result) instead of the historic per-protocol helpers.
#include <deque>
#include <set>

#include "exp_common.hpp"
#include "svc/client.hpp"

namespace snapstab::bench {
namespace {

using core::ElectionProcess;
using core::ResetProcess;
using core::TermDetectProcess;
using sim::Simulator;

struct ResetCell {
  int runs = 0;
  int failures = 0;
  Summary steps;
};

ResetCell reset_cell(int n, int trials, std::uint64_t seed0) {
  ResetCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    Simulator world(n, 1, seed);
    std::vector<int> hooks(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      auto* counter = &hooks[static_cast<std::size_t>(i)];
      world.add_process(std::make_unique<ResetProcess>(
          n - 1, 1, [counter](sim::Context&) { ++*counter; }));
    }
    Rng rng(seed * 3);
    sim::fuzz(world, rng);
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    svc::Client client(world);
    const auto session = client.submit(0, svc::Reset{});
    const bool done = client.run_until(session, {.max_steps = 1'000'000});
    ++cell.runs;
    bool ok = done && client.result(session).completed;
    for (int i = 0; i < n && ok; ++i)
      ok = hooks[static_cast<std::size_t>(i)] >= 1;
    if (!ok) ++cell.failures;
    if (done) cell.steps.add(static_cast<double>(world.step_count()));
  }
  return cell;
}

struct ElectionCell {
  int runs = 0;
  int failures = 0;
  Summary steps;
};

ElectionCell election_cell(int n, int trials, std::uint64_t seed0) {
  ElectionCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    std::vector<std::int64_t> ids;
    Rng id_rng(seed * 11);
    for (int i = 0; i < n; ++i) ids.push_back(id_rng.range(1, 9999) * 100 + i);
    Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<ElectionProcess>(
          ids[static_cast<std::size_t>(i)], n - 1, 1));
    Rng rng(seed * 7);
    sim::fuzz(world, rng);
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    svc::Client client(world);
    std::vector<svc::Session> sessions;
    for (int p = 0; p < n; ++p)
      sessions.push_back(client.submit(p, svc::Election{}));
    const bool done = client.run_until(sessions, {.max_steps = 3'000'000});
    ++cell.runs;
    bool ok = done;
    if (ok) {
      const std::int64_t expected =
          *std::min_element(ids.begin(), ids.end());
      std::set<int> ranks;
      for (int p = 0; p < n; ++p) {
        const auto r = client.result(sessions[static_cast<std::size_t>(p)]);
        if (!r.completed || r.min_id != expected) ok = false;
        ranks.insert(r.rank);
      }
      if (static_cast<int>(ranks.size()) != n) ok = false;
      cell.steps.add(static_cast<double>(world.step_count()));
    }
    if (!ok) ++cell.failures;
  }
  return cell;
}

struct TdCell {
  int runs = 0;
  int false_claims = 0;
  int no_claims = 0;
  Summary waves;
};

TdCell termdetect_cell(int n, int tokens, int trials, std::uint64_t seed0) {
  TdCell cell;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    Simulator world(n, 1, seed);
    struct App {
      std::deque<int> held;
      std::uint32_t sent = 0, received = 0;
    };
    std::vector<std::unique_ptr<App>> apps;
    for (int i = 0; i < n; ++i) {
      apps.push_back(std::make_unique<App>());
      App* app = apps.back().get();
      core::DiffusingApp hooks;
      hooks.counters = [app] {
        return core::AppCounters{app->held.empty(), app->sent, app->received};
      };
      hooks.has_work = [app] { return !app->held.empty(); };
      hooks.on_tick = [app](sim::Context& ctx) {
        if (app->held.empty()) return;
        const int ttl = app->held.front();
        if (ttl <= 0) {
          app->held.pop_front();
          return;
        }
        const int ch = static_cast<int>(
            ctx.rng().below(static_cast<std::uint64_t>(ctx.degree())));
        if (ctx.send(ch, Message::app(Value::integer(ttl - 1)))) {
          app->held.pop_front();
          ++app->sent;
        }
      };
      hooks.on_message = [app](sim::Context&, int, const Value& v) {
        ++app->received;
        app->held.push_back(static_cast<int>(v.as_int(0)));
      };
      world.add_process(
          std::make_unique<TermDetectProcess>(n - 1, 1, std::move(hooks)));
    }
    Rng rng(seed * 5);
    for (int k = 0; k < tokens; ++k)
      apps[rng.below(static_cast<std::uint64_t>(n))]->held.push_back(
          static_cast<int>(rng.below(10)));
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    svc::Client client(world);
    const auto session = client.submit(0, svc::TermDetect{});
    const bool done = client.run_until(session, {.max_steps = 6'000'000});
    ++cell.runs;
    if (!done) {
      ++cell.no_claims;
      continue;
    }
    // Safety audit at claim time: no token held, none in flight.
    bool live = false;
    for (const auto& app : apps)
      if (!app->held.empty()) live = true;
    for (int s = 0; s < n && !live; ++s)
      for (int d = 0; d < n && !live; ++d) {
        if (s == d) continue;
        for (const auto& m : world.network().channel(s, d).contents())
          if (m.kind == MsgKind::App) live = true;
      }
    if (live) ++cell.false_claims;
    cell.waves.add(static_cast<double>(client.result(session).waves));
  }
  return cell;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"trials", "seed", "json"});
  const int trials = static_cast<int>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8800));

  banner("E13: exp_services",
         "§4.1: 'Reset, Snapshot, Leader Election, and Termination "
         "Detection can be solved using a PIF-based solution'",
         "Validation and cost of the three PIF-based services from fuzzed\n"
         "initial configurations, driven through the svc session API.");

  std::printf("--- Global reset ---\n");
  TextTable reset_table({"n", "runs", "failures", "steps (mean)"});
  int reset_failures = 0;
  for (int n : {2, 4, 8}) {
    const auto cell =
        reset_cell(n, trials, seed + static_cast<std::uint64_t>(n));
    reset_failures += cell.failures;
    reset_table.add_row({TextTable::cell(n), TextTable::cell(cell.runs),
                         TextTable::cell(cell.failures),
                         cell.steps.empty()
                             ? "-"
                             : TextTable::cell(cell.steps.mean(), 0)});
  }
  reset_table.print();

  std::printf("\n--- Leader election + consistent ranking ---\n");
  TextTable election_table({"n", "runs", "failures", "steps (mean)"});
  int election_failures = 0;
  for (int n : {2, 4, 8}) {
    const auto cell =
        election_cell(n, trials, seed + 100 + static_cast<std::uint64_t>(n));
    election_failures += cell.failures;
    election_table.add_row({TextTable::cell(n), TextTable::cell(cell.runs),
                            TextTable::cell(cell.failures),
                            cell.steps.empty()
                                ? "-"
                                : TextTable::cell(cell.steps.mean(), 0)});
  }
  election_table.print();

  std::printf("\n--- Termination detection (token game) ---\n");
  TextTable td_table({"n", "tokens", "runs", "false claims", "no claim",
                      "waves (mean)"});
  int false_claims = 0;
  int no_claims = 0;
  for (int n : {2, 3, 5}) {
    for (int tokens : {0, 4, 12}) {
      const auto cell = termdetect_cell(
          n, tokens, trials,
          seed + 200 + static_cast<std::uint64_t>(n * 10 + tokens));
      false_claims += cell.false_claims;
      no_claims += cell.no_claims;
      td_table.add_row({TextTable::cell(n), TextTable::cell(tokens),
                        TextTable::cell(cell.runs),
                        TextTable::cell(cell.false_claims),
                        TextTable::cell(cell.no_claims),
                        cell.waves.empty()
                            ? "-"
                            : TextTable::cell(cell.waves.mean(), 1)});
    }
  }
  td_table.print();

  verdict(reset_failures == 0, "every reset reached every process");
  verdict(election_failures == 0,
          "every election agreed on leader and ranking");
  verdict(false_claims == 0,
          "the termination detector never claimed with live tokens");
  verdict(no_claims == 0, "every detection eventually claimed");

  BenchJson json("exp_services");
  json.set("trials", trials);
  json.set("api", "svc-session");
  json.set("reset_failures", reset_failures);
  json.set("election_failures", election_failures);
  json.set("false_claims", false_claims);
  json.set("no_claims", no_claims);
  json.write_if_requested(args);
  return 0;
}
