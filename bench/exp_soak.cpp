// exp_soak — wall-clock fault soak over the thread runtime.
//
// The simulator experiments (exp_faults) prove recovery on a deterministic
// step clock; this one proves it against real concurrency. A correlated
// fault storm — crash bursts, a flapping link, rolling partitions and a
// cascade — is mapped onto wall time by fault::RuntimeInjector and applied
// to live PifProcess hosts for most of the soak budget, while the driver
// keeps one request in flight per origin and measures completion latency.
// When the storm ceases, the snap-stabilization contract is the verdict: a
// fresh request issued at every origin after the last window closed must
// complete, and the time from storm end to that completion is the measured
// recovery latency.
//
// The soak is wall-clock bounded: --seconds (default 60, ~3 in --smoke)
// sizes the step duration so the storm occupies ~80% of the budget and the
// recovery phase the rest. Unlike the simulator path the run is not
// replayable bit-for-bit; the plan (and its repro_line) still pins the
// fault schedule.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "exp_common.hpp"
#include "fault/plan.hpp"
#include "fault/runtime_injector.hpp"
#include "runtime/thread_runtime.hpp"

namespace snapstab::bench {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double pct(std::vector<double> v, int p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = (v.size() * static_cast<std::size_t>(p) +
                           static_cast<std::size_t>(p)) / 100;
  return v[std::min(idx == 0 ? 0 : idx - 1, v.size() - 1)];
}

// The storm: every correlated pattern kind, spread across the first ~80%
// of the horizon so the tail of the soak is all recovery.
fault::FaultPlanSpec soak_storm(std::uint64_t seed, std::uint64_t horizon,
                                const sim::Topology& topo) {
  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = horizon;
  const auto h = horizon;
  fault::PatternSpec crash;
  crash.kind = fault::PatternKind::CrashStorm;
  crash.begin = h / 20;
  crash.span = (h * 7) / 10;
  crash.count = 4;
  crash.len = h / 40;
  fault::PatternSpec flap;
  flap.kind = fault::PatternKind::FlappingLink;
  flap.begin = h / 10;
  flap.count = 4;
  flap.len = h / 50;
  flap.period = h / 8;
  flap.edge = topo.edge_between(0, topo.process_count() - 1);
  fault::PatternSpec roll;
  roll.kind = fault::PatternKind::RollingPartition;
  roll.begin = h / 5;
  roll.span = h / 2;
  roll.count = 3;
  roll.len = h / 30;
  fault::PatternSpec casc;
  casc.kind = fault::PatternKind::Cascade;
  casc.begin = (h * 3) / 5;
  casc.count = 2;
  casc.len = h / 40;
  casc.lag_max = h / 40;
  fs.patterns = {crash, flap, roll, casc};
  return fs;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"smoke", "seconds", "n", "seed", "json"});
  const bool smoke = args.get_bool("smoke");
  const double seconds =
      args.get_double("seconds", smoke ? 3.0 : 60.0);
  const int n = static_cast<int>(args.get_int("n", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 31));
  const std::uint64_t horizon = smoke ? 2'000 : 20'000;

  banner("E18: exp_soak",
         "§2 snap-stabilization: requests after the fault ceases are served",
         "A wall-clock storm soak on the thread runtime: correlated fault\n"
         "patterns applied to live hosts for ~80% of the budget, completion\n"
         "latency measured throughout, recovery latency at every origin\n"
         "once the storm ceases.");

  const sim::Topology topo = sim::Topology::complete(n);
  const fault::FaultPlanSpec fs = soak_storm(seed, horizon, topo);
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  std::printf("%s\n", plan.repro_line().c_str());

  // Size one plan step so the storm phase fills ~80% of the soak budget.
  const double storm_budget_us = seconds * 1e6 * 0.8;
  const auto step_us = static_cast<std::int64_t>(
      std::max(1.0, storm_budget_us / static_cast<double>(horizon)));
  runtime::ThreadRuntime rt(topo, {.seed = seed});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));

  fault::RuntimeInjectorOptions io;
  io.step_duration = std::chrono::microseconds(step_us);
  io.poll_interval = std::chrono::milliseconds(1);
  fault::RuntimeInjector inj(plan, rt, io);

  // Driver state: one request in flight per origin, reissued on
  // completion. During the storm completions measure goodput-under-fire;
  // after it, a request issued once the origin drained is the recovery
  // probe, and its completion stamps the origin's recovery latency.
  enum class OriginPhase : std::uint8_t { Storm, Drain, Probe, Recovered };
  std::vector<OriginPhase> phase(static_cast<std::size_t>(n),
                                 OriginPhase::Storm);
  std::vector<bool> outstanding(static_cast<std::size_t>(n), false);
  std::vector<Clock::time_point> issued_at(static_cast<std::size_t>(n));
  std::vector<double> storm_lat_ms;
  std::vector<double> recovery_ms(static_cast<std::size_t>(n), 0.0);
  std::int64_t storm_completed = 0;
  std::int64_t payload = 0;
  Clock::time_point storm_end{};
  bool storm_end_stamped = false;

  const auto start = Clock::now();
  inj.start();
  const bool finished = rt.run(
      [&] {
        const Clock::time_point now = Clock::now();
        const bool storm_over = inj.done();
        if (storm_over && !storm_end_stamped) {
          storm_end = now;
          storm_end_stamped = true;
          for (auto& ph : phase) ph = OriginPhase::Drain;
        }
        bool all_recovered = true;
        for (int i = 0; i < n; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          if (phase[idx] != OriginPhase::Recovered) all_recovered = false;
          const bool done = rt.with_process<core::PifProcess>(
              i, [](core::PifProcess& p) { return p.pif().done(); });
          if (!done) continue;
          switch (phase[idx]) {
            case OriginPhase::Storm:
              if (outstanding[idx]) {
                storm_lat_ms.push_back(ms_between(issued_at[idx], now));
                ++storm_completed;
              }
              rt.with_process<core::PifProcess>(
                  i, [&payload](core::PifProcess& p) {
                    p.pif().request(Value::integer(payload++));
                    return 0;
                  });
              outstanding[idx] = true;
              issued_at[idx] = now;
              break;
            case OriginPhase::Drain:
              // Leftover storm traffic has drained: issue the fresh
              // post-storm probe the snap-stabilization contract is about.
              rt.with_process<core::PifProcess>(
                  i, [&payload](core::PifProcess& p) {
                    p.pif().request(Value::integer(payload++));
                    return 0;
                  });
              phase[idx] = OriginPhase::Probe;
              break;
            case OriginPhase::Probe:
              recovery_ms[idx] = ms_between(storm_end, now);
              phase[idx] = OriginPhase::Recovered;
              break;
            case OriginPhase::Recovered:
              break;
          }
        }
        return storm_over && all_recovered;
      },
      std::chrono::milliseconds(
          static_cast<std::int64_t>(seconds * 2'000) + 30'000));
  inj.stop();
  const double wall_s = ms_between(start, Clock::now()) / 1e3;
  const double storm_s =
      storm_end_stamped ? ms_between(start, storm_end) / 1e3 : wall_s;

  const auto& c = inj.counters();
  std::printf("\n--- Soak (%d hosts, complete graph, %.1fs budget) ---\n", n,
              seconds);
  TextTable t({"metric", "value"});
  t.add_row({"wall time (s)", TextTable::cell(wall_s, 2)});
  t.add_row({"storm phase (s)", TextTable::cell(storm_s, 2)});
  t.add_row({"plan windows", TextTable::cell(static_cast<std::int64_t>(
                                 plan.windows().size()))});
  t.add_row({"step duration (us)", TextTable::cell(step_us)});
  t.add_row({"mid-storm completions", TextTable::cell(storm_completed)});
  t.add_row({"mid-storm p50 (ms)", TextTable::cell(pct(storm_lat_ms, 50), 2)});
  t.add_row({"mid-storm p99 (ms)", TextTable::cell(pct(storm_lat_ms, 99), 2)});
  t.add_row({"crashes", TextTable::cell(static_cast<std::int64_t>(c.crashes))});
  t.add_row({"garbage bursts",
             TextTable::cell(static_cast<std::int64_t>(c.garbage_bursts))});
  t.add_row({"drops", TextTable::cell(static_cast<std::int64_t>(c.drops))});
  t.add_row({"duplicates",
             TextTable::cell(static_cast<std::int64_t>(c.duplicates))});
  t.add_row({"partition wipes",
             TextTable::cell(static_cast<std::int64_t>(c.partition_wipes))});
  t.add_row({"link-down wipes",
             TextTable::cell(static_cast<std::int64_t>(c.down_wipes))});
  t.print();

  std::printf("\n--- Recovery latency after the storm ceased ---\n");
  TextTable r({"origin", "recovery (ms)"});
  double recovery_max = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    recovery_max = std::max(recovery_max, recovery_ms[idx]);
    r.add_row({TextTable::cell(i), TextTable::cell(recovery_ms[idx], 2)});
  }
  r.print();

  const bool storm_bit = c.crashes > 0 && (c.drops + c.garbage_bursts +
                                           c.partition_wipes + c.down_wipes +
                                           c.duplicates) > 0;
  verdict(finished,
          "every origin recovered: a fresh request issued at each origin "
          "after the last fault window closed completed");
  verdict(storm_bit,
          "the storm actually bit: crash restarts and channel-level fault "
          "effects were both applied to the live runtime");

  BenchJson json("exp_soak");
  json.set_meta("plan", plan.repro_line());
  json.set("seconds_budget", seconds);
  json.set("wall_s", wall_s);
  json.set("storm_s", storm_s);
  json.set("n", n);
  json.set("horizon_steps", horizon);
  json.set("step_us", step_us);
  json.set("plan_windows",
           static_cast<std::int64_t>(plan.windows().size()));
  json.set("storm_completed", storm_completed);
  json.set("storm_p50_ms", pct(storm_lat_ms, 50));
  json.set("storm_p99_ms", pct(storm_lat_ms, 99));
  json.set("recovery_max_ms", recovery_max);
  std::string rec_json = "[";
  for (int i = 0; i < n; ++i) {
    if (i != 0) rec_json += ",";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f",
                  recovery_ms[static_cast<std::size_t>(i)]);
    rec_json += buf;
  }
  rec_json += "]";
  json.set_raw("recovery_ms", rec_json);
  json.set("crashes", c.crashes);
  json.set("garbage_bursts", c.garbage_bursts);
  json.set("drops", c.drops);
  json.set("duplicates", c.duplicates);
  json.set("partition_wipes", c.partition_wipes);
  json.set("down_wipes", c.down_wipes);
  json.set("recovered", finished);
  json.set("storm_bit", storm_bit);
  if (!json.write_if_requested(args)) return 1;
  return (finished && storm_bit) ? 0 : 1;
}
