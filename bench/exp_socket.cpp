// exp_socket — the real-wire loopback ladder.
//
// Every other experiment measures the protocol against a simulated or
// in-process channel; this one measures it against the kernel. A
// SocketRuntime hosts n ServiceHosts on loopback UDP ports and the ladder
// sweeps n × injected datagram loss: each cell submits rounds of mixed
// sessions (a PIF broadcast per node plus a full election) and measures
// sessions-per-second and per-round completion latency while the
// runtime's receive filter discards the configured fraction of accepted
// datagrams before dispatch.
//
// Verdicts:
//   * all-recovered — every session of every cell completed, INCLUDING the
//     cells running under >= 10% injected datagram loss (the paper's lossy
//     unbounded channel, realized by a network that actually drops);
//   * hostile traffic died in frame validation — a garbage stanza fires
//     noise and corrupted frames at a live cell and requires every one
//     rejected (counted, never delivered, never a crash).
//
// Wall-clock, not replayable bit-for-bit; each cell's seed pins the loss
// filter's draw sequence and is printed with any failure.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "net/socket_runtime.hpp"
#include "net/wire.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab::bench {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

svc::HostConfig cell_config(int p, int n) {
  svc::HostConfig cfg;
  cfg.id = 100 - p;
  cfg.degree = n - 1;
  cfg.channel_capacity = 1;
  cfg.with_election = true;
  return cfg;
}

struct Cell {
  int n = 0;
  double loss = 0.0;
  int rounds = 0;
  int sessions = 0;
  int completed = 0;
  double wall_ms = 0.0;
  double round_max_ms = 0.0;   // slowest round: recovery latency under loss
  std::uint64_t datagrams = 0;
  std::uint64_t loss_drops = 0;
  std::uint64_t seed = 0;
};

Cell run_cell(int n, double loss, int rounds, std::uint64_t seed) {
  Cell cell;
  cell.n = n;
  cell.loss = loss;
  cell.rounds = rounds;
  cell.seed = seed;

  net::SocketRuntime srt(n, {.seed = seed, .loss_rate = loss});
  for (int p = 0; p < n; ++p)
    srt.add_process(std::make_unique<svc::ServiceHost>(cell_config(p, n)));
  svc::Client client(srt);

  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::vector<svc::Session> sessions;
    for (int p = 0; p < n; ++p) {
      sessions.push_back(client.submit(
          p, svc::PifBroadcast{Value::integer(r * 1000 + p)}));
      sessions.push_back(client.submit(p, svc::Election{}));
    }
    const auto r0 = Clock::now();
    const bool done = client.run_until(sessions, {.timeout = 60'000ms});
    cell.round_max_ms =
        std::max(cell.round_max_ms, ms_between(r0, Clock::now()));
    cell.sessions += static_cast<int>(sessions.size());
    if (done)
      cell.completed += static_cast<int>(sessions.size());
    else
      for (const auto& s : sessions)
        if (client.done(s)) ++cell.completed;
    for (const auto& s : sessions) client.release(s);
  }
  cell.wall_ms = ms_between(t0, Clock::now());
  srt.shutdown();
  const auto stats = srt.wire_stats();
  cell.datagrams = stats.datagrams_sent;
  cell.loss_drops = stats.loss_drops;
  return cell;
}

// Hostile-traffic stanza: noise and corrupted frames against a live cell.
struct GarbageStats {
  int injected = 0;
  std::uint64_t rejected = 0;
  bool session_survived = false;
};

GarbageStats run_garbage(int n, int bursts, std::uint64_t seed) {
  GarbageStats g;
  net::SocketRuntime srt(n, {.seed = seed});
  for (int p = 0; p < n; ++p)
    srt.add_process(std::make_unique<svc::ServiceHost>(cell_config(p, n)));
  srt.start();
  Rng rng(seed ^ 0xBAD);
  {
    ScopedStringPool scope(srt.string_pool());
    for (int i = 0; i < bursts; ++i) {
      std::array<std::uint8_t, 64> noise;
      for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
      noise[0] = 0x00;  // never the magic
      srt.inject_datagram(static_cast<int>(rng.below(n)), noise.data(),
                          noise.size());
      auto frame = net::encode_frame(
          static_cast<sim::EdgeId>(rng.below(srt.topology().edge_count())),
          Message::random(rng, 6));
      frame[frame.size() / 2] ^= 0x10;  // corrupted in flight
      srt.inject_datagram(static_cast<int>(rng.below(n)), frame.data(),
                          frame.size());
      g.injected += 2;
    }
  }
  svc::Client client(srt);
  const auto s = client.submit(0, svc::PifBroadcast{Value::text("alive")});
  g.session_survived = client.run_until(s, {.timeout = 30'000ms});
  std::this_thread::sleep_for(50ms);  // let the drain swallow the backlog
  srt.shutdown();
  g.rejected = srt.wire_stats().rejected_frames;
  return g;
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  CliArgs args(argc, argv, {"smoke", "rounds", "seed", "json"});
  const bool smoke = args.get_bool("smoke");
  const int rounds = static_cast<int>(args.get_int("rounds", smoke ? 2 : 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 808));

  banner("E19: exp_socket", "PAPER.md §2 (the message-passing model)",
         "Real-wire loopback ladder: the full service stack over UDP\n"
         "sockets, n x injected datagram loss, sessions/sec and recovery\n"
         "latency; a garbage stanza proves hostile datagrams die in frame\n"
         "validation.");

  const std::vector<int> ns = smoke ? std::vector<int>{3}
                                    : std::vector<int>{3, 5};
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.10, 0.20};

  std::vector<Cell> cells;
  for (const int n : ns)
    for (const double loss : losses)
      cells.push_back(run_cell(
          n, loss, rounds,
          seed + static_cast<std::uint64_t>(cells.size()) * 101));

  TextTable t({"n", "loss", "sessions", "completed", "sess/s",
               "slowest round (ms)", "datagrams", "loss drops"});
  bool all_recovered = true;
  bool lossy_cell_seen = false;
  for (const Cell& c : cells) {
    if (c.completed != c.sessions) {
      all_recovered = false;
      std::printf("FAIL cell n=%d loss=%.2f: %d/%d sessions; repro seed=%llu\n",
                  c.n, c.loss, c.completed, c.sessions,
                  static_cast<unsigned long long>(c.seed));
    }
    if (c.loss >= 0.10) lossy_cell_seen = true;
    t.add_row({TextTable::cell(static_cast<std::int64_t>(c.n)),
               TextTable::cell(c.loss, 2),
               TextTable::cell(static_cast<std::int64_t>(c.sessions)),
               TextTable::cell(static_cast<std::int64_t>(c.completed)),
               TextTable::cell(c.wall_ms > 0.0
                                   ? 1000.0 * c.sessions / c.wall_ms
                                   : 0.0,
                               1),
               TextTable::cell(c.round_max_ms, 1),
               TextTable::cell(static_cast<std::int64_t>(c.datagrams)),
               TextTable::cell(static_cast<std::int64_t>(c.loss_drops))});
  }
  t.print();

  const GarbageStats g = run_garbage(3, smoke ? 50 : 200, seed ^ 0xF00D);
  std::printf("\ngarbage stanza: %d hostile datagrams injected, %llu frames "
              "rejected, live session %s\n",
              g.injected, static_cast<unsigned long long>(g.rejected),
              g.session_survived ? "completed" : "DID NOT COMPLETE");

  const bool lossy_filter_fired = [&cells] {
    for (const Cell& c : cells)
      if (c.loss >= 0.10 && c.loss_drops == 0) return false;
    return true;
  }();
  const bool garbage_ok =
      g.session_survived &&
      g.rejected >= static_cast<std::uint64_t>(g.injected) / 2;

  verdict(all_recovered && lossy_cell_seen,
          "all recovered: every session completed in every cell, including "
          "under >= 10% injected datagram loss");
  verdict(lossy_filter_fired,
          "the loss was real: every lossy cell's filter discarded datagrams");
  verdict(garbage_ok,
          "hostile traffic died in frame validation while a live session "
          "completed");

  BenchJson json("exp_socket");
  json.set_meta("mode", smoke ? "smoke" : "full");
  json.set("rounds", rounds);
  json.set("cells", static_cast<std::int64_t>(cells.size()));
  std::string cell_json = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) cell_json += ",";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"n\":%d,\"loss\":%.2f,\"sessions\":%d,"
                  "\"completed\":%d,\"sessions_per_s\":%.1f,"
                  "\"round_max_ms\":%.1f,\"datagrams\":%llu,"
                  "\"loss_drops\":%llu,\"seed\":%llu}",
                  c.n, c.loss, c.sessions, c.completed,
                  c.wall_ms > 0.0 ? 1000.0 * c.sessions / c.wall_ms : 0.0,
                  c.round_max_ms,
                  static_cast<unsigned long long>(c.datagrams),
                  static_cast<unsigned long long>(c.loss_drops),
                  static_cast<unsigned long long>(c.seed));
    cell_json += buf;
  }
  cell_json += "]";
  json.set_raw("cells_detail", cell_json);
  json.set("garbage_injected", g.injected);
  json.set("garbage_rejected", g.rejected);
  json.set("garbage_session_survived", g.session_survived);
  json.set("all_recovered", all_recovered);
  json.set("lossy_filter_fired", lossy_filter_fired);
  json.set("garbage_ok", garbage_ok);
  if (!json.write_if_requested(args)) return 1;
  return (all_recovered && lossy_cell_seen && lossy_filter_fired &&
          garbage_ok)
             ? 0
             : 1;
}
