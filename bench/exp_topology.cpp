// exp_topology — the graph-parametric engine: speed and reach.
//
// Two claims are measured:
//
//  1. Speed. The incremental enabled-step index picks a uniformly random
//     enabled step in O(log n) with no allocation, where the pre-refactor
//     scheduler rescanned every channel — O(n²) on the complete graph —
//     and allocated the candidate vectors on every step. A faithful
//     reimplementation of the scanning scheduler (LegacyRandomScheduler
//     below) runs the *same* step sequence for the same seed, so the
//     steps/sec ratio isolates the selection cost.
//
//  2. Reach. The protocols only speak local channel indices, so PIF runs
//     unmodified on every built-in topology; one computation per shape is
//     driven to decision.
#include <chrono>

#include "exp_common.hpp"
#include "trial_runner.hpp"

namespace snapstab::bench {
namespace {

using sim::EdgeId;
using sim::ProcessId;
using sim::Simulator;
using sim::Step;
using sim::StepKind;
using sim::Topology;

// The seed's RandomScheduler, verbatim: rescan tickable processes and
// non-empty channels each step, filter busy receivers, pick uniformly.
// Identical RNG consumption and candidate order as both the historic code
// and the incremental engine — only the selection cost differs.
class LegacyRandomScheduler final : public sim::Scheduler {
 public:
  explicit LegacyRandomScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<Step> next(Simulator& sim) override {
    std::vector<ProcessId> ticks;
    for (ProcessId p = 0; p < sim.process_count(); ++p)
      if (sim.process(p).tick_enabled()) ticks.push_back(p);
    auto chans = sim.network().nonempty_channels();
    std::erase_if(chans, [&](const auto& pr) {
      return sim.process(pr.second).busy();
    });
    const std::size_t total = ticks.size() + chans.size();
    if (total == 0) return std::nullopt;
    const auto pick = rng_.below(total);
    if (pick < ticks.size()) return Step::tick(ticks[pick]);
    const auto [src, dst] = chans[pick - ticks.size()];
    return Step::deliver(src, dst);
  }

 private:
  Rng rng_;
};

// A sustained synthetic workload: every process is always tick-enabled and
// pings a random incident channel, so the candidate sets stay large and
// every step exercises the index.
class PingProcess final : public sim::Process {
 public:
  void on_tick(sim::Context& ctx) override {
    const int d = ctx.degree();
    ctx.send(static_cast<int>(ctx.rng().below(static_cast<std::uint64_t>(d))),
             Message::naive_brd(Value::none()));
  }
  void on_message(sim::Context&, int, const Message&) override {}
  bool tick_enabled() const override { return true; }
  void randomize(Rng&) override {}
};

struct Throughput {
  double steps_per_sec = 0;
  std::uint64_t deliveries = 0;
};

Throughput drive(Topology topo, std::uint64_t seed, std::uint64_t steps,
                 bool legacy) {
  const int n = topo.process_count();
  Simulator world(std::move(topo), /*capacity=*/1, seed);
  for (int p = 0; p < n; ++p)
    world.add_process(std::make_unique<PingProcess>());
  if (legacy)
    world.set_scheduler(std::make_unique<LegacyRandomScheduler>(seed));
  else
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));

  const auto t0 = std::chrono::steady_clock::now();
  world.run(steps);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return {static_cast<double>(world.metrics().steps) / secs,
          world.metrics().deliveries};
}

}  // namespace
}  // namespace snapstab::bench

int main(int argc, char** argv) {
  using namespace snapstab;
  using namespace snapstab::bench;
  using core::PifProcess;
  CliArgs args(argc, argv, {"n", "steps", "seed", "pif-n", "threads", "json"});
  const int n = static_cast<int>(args.get_int("n", 64));
  const auto steps = static_cast<std::uint64_t>(args.get_int("steps", 300'000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 71));
  const int pif_n = static_cast<int>(args.get_int("pif-n", 64));

  banner("T1: exp_topology", "graph-parametric engine (beyond §2's K_n)",
         "Steps/sec of the incremental enabled-step index vs the historic\n"
         "scanning scheduler, and one PIF computation per topology shape.");

  // --- claim 1: selection cost on the complete graph ---
  TextTable speed({"topology", "scheduler", "steps/sec", "deliveries"});
  double incremental_rate = 0;
  double legacy_rate = 0;
  for (const bool legacy : {true, false}) {
    const auto r = drive(sim::Topology::complete(n), seed, steps, legacy);
    if (legacy)
      legacy_rate = r.steps_per_sec;
    else
      incremental_rate = r.steps_per_sec;
    char name[64];
    std::snprintf(name, sizeof name, "complete(%d)", n);
    speed.add_row({name, legacy ? "legacy scan" : "incremental",
                   TextTable::cell(r.steps_per_sec, 0),
                   TextTable::cell(static_cast<double>(r.deliveries), 0)});
  }
  // Same seed ⇒ same executions; deliveries must agree between engines.
  speed.print();
  std::printf("speedup: %.1fx\n\n", incremental_rate / legacy_rate);

  // --- claim 2: PIF to decision on every shape, one trial per worker ---
  TextTable reach({"topology", "n", "edges", "steps", "deliveries", "done"});
  const auto make_shape = [&](int which) {
    switch (which) {
      case 0: return sim::Topology::complete(pif_n);
      case 1: return sim::Topology::ring(pif_n);
      case 2: return sim::Topology::line(pif_n);
      case 3: return sim::Topology::star(pif_n);
      default: return sim::Topology::random_tree(pif_n, seed);
    }
  };
  constexpr int kShapes = 5;
  struct ReachRow {
    std::string name;
    int procs = 0;
    int edges = 0;
    double steps = 0;
    double deliveries = 0;
    bool done = false;
  };
  const auto rows = run_trials(
      kShapes, trial_thread_count(args, kShapes), [&](int which) {
        sim::Topology topo = make_shape(which);
        ReachRow row;
        row.name = topo.name();
        row.edges = topo.edge_count();
        row.procs = topo.process_count();
        Simulator world(std::move(topo), 1, seed);
        for (int p = 0; p < row.procs; ++p)
          world.add_process(std::make_unique<PifProcess>(
              world.topology().degree(p), 1));
        core::request_pif(world, 0, Value::integer(7));
        world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
        const auto reason = world.run(50'000'000, [](Simulator& s) {
          return s.process_as<PifProcess>(0).pif().done();
        });
        row.done = reason == Simulator::StopReason::Predicate;
        row.steps = static_cast<double>(world.step_count());
        row.deliveries = static_cast<double>(world.metrics().deliveries);
        return row;
      });
  bool all_done = true;
  for (const auto& row : rows) {
    all_done = all_done && row.done;
    reach.add_row({row.name, TextTable::cell(row.procs),
                   TextTable::cell(row.edges), TextTable::cell(row.steps, 0),
                   TextTable::cell(row.deliveries, 0),
                   row.done ? "yes" : "NO"});
  }
  reach.print();

  verdict(incremental_rate > legacy_rate,
          "incremental enabled-step index beats the scanning scheduler on "
          "complete(n)");
  verdict(all_done, "PIF reaches a decision on every topology shape");

  BenchJson json("exp_topology");
  json.set("n", n);
  json.set("steps", static_cast<std::int64_t>(steps));
  json.set("incremental_steps_per_sec", incremental_rate);
  json.set("legacy_steps_per_sec", legacy_rate);
  json.set("speedup", incremental_rate / legacy_rate);
  json.set("all_done", all_done);
  json.write_if_requested(args);
  return incremental_rate > legacy_rate && all_done ? 0 : 1;
}
