// micro_bench — google-benchmark microbenchmarks for the hot paths:
// simulator stepping, codec round trips, full PIF computations and ME
// grants as a function of n. These are throughput numbers for the
// *implementation* (the experiment tables live in the exp_* binaries).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/stack.hpp"
#include "msg/codec.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab {
namespace {

// --- message hot path (the BENCH_msg_hotpath.json trio) --------------------
// Channel push / pop / per-message step with a text payload. Pre-PR these
// moved std::variant Values owning heap std::strings through std::deque
// nodes; now they move one flat 48-byte trivially-copyable Message whose
// text is an interned 4-byte StrId — zero allocations, zero indirections.

Message hot_message() {
  return Message::pif(Value::text("How old are you?"),
                      Value::text("stale-feedback"), 3, 2);
}

// push: fill a capacity-256 channel (the drain between fills rides along at
// 1/256 of the op count).
void BM_ChannelPush(benchmark::State& state) {
  sim::Channel ch(256);
  const Message m = hot_message();
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) ch.push(m);
    ch.clear();
    ops += 256;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ChannelPush);

// pop: drain a prefilled capacity-256 channel (refill rides along).
void BM_ChannelPop(benchmark::State& state) {
  sim::Channel ch(256);
  const Message m = hot_message();
  std::uint64_t ops = 0;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) ch.push(m);
    for (int i = 0; i < 256; ++i) sink += ch.pop().state;
    ops += 256;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ChannelPop);

// step: the per-message step of the delivery pipeline — one message enters
// and leaves a capacity-1 channel, the empty↔nonempty transition hooks
// firing both ways (as they do under the simulator's enabled-step index).
void BM_ChannelStep(benchmark::State& state) {
  class CountingListener final : public sim::ChannelListener {
   public:
    void channel_transition(int, bool) override { ++transitions; }
    std::uint64_t transitions = 0;
  };
  CountingListener listener;
  sim::Channel ch(1);
  ch.bind_listener(&listener, 0);
  const Message m = hot_message();
  std::int64_t sink = 0;
  for (auto _ : state) {
    ch.push(m);
    sink += ch.pop().state;
  }
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(listener.transitions);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelStep);

void BM_CodecEncode(benchmark::State& state) {
  const Message m = Message::pif(Value::text("How old are you?"),
                                 Value::integer(42), 3, 2);
  for (auto _ : state) {
    auto bytes = encode(m);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const auto bytes = encode(Message::pif(Value::text("How old are you?"),
                                         Value::integer(42), 3, 2));
  for (auto _ : state) {
    auto m = decode(bytes);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_CodecDecode);

// Full simulator steps under a text-payload ping workload. Unlike the trio
// above this includes the engine floor (scheduler draw, enabled-index
// maintenance, activation dispatch), which the zero-allocation message path
// does not touch; the sealed step loop (BENCH_engine_floor.json) attacks
// exactly that floor.
void BM_SimulatorStepTextPing(benchmark::State& state) {
  class TextPing final : public sim::Process {
   public:
    void on_tick(sim::Context& ctx) override {
      const int d = ctx.degree();
      ctx.send(
          static_cast<int>(ctx.rng().below(static_cast<std::uint64_t>(d))),
          msg_);
    }
    void on_message(sim::Context&, int, const Message&) override {}
    bool tick_enabled() const override { return true; }
    void randomize(Rng&) override {}

   private:
    const Message msg_ = hot_message();
  };
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  for (int p = 0; p < n; ++p) world.add_process(std::make_unique<TextPing>());
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    world.run(1024);
    steps += 1024;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimulatorStepTextPing)->Arg(16);

// --- engine floor (the BENCH_engine_floor.json set) ------------------------
// The cost of one simulator step with the protocol work removed, plus a
// breakdown trio (scheduler draw / execute / observation emit) so a future
// regression shows up in the guilty component, not just the total.

class NoopProcess final : public sim::Process {
 public:
  void on_tick(sim::Context&) override {}
  void on_message(sim::Context&, int, const Message&) override {}
  bool tick_enabled() const override { return true; }
  void randomize(Rng&) override {}
};

void install_noop_processes(sim::Simulator& world, int n) {
  for (int p = 0; p < n; ++p)
    world.add_process(std::make_unique<NoopProcess>());
}

// The whole floor: sealed scheduler draw + execute dispatch + concrete
// Context + enabled-index upkeep, with empty protocol actions.
void BM_EngineFloorNoopStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  install_noop_processes(world, n);
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    world.run(1024);
    steps += 1024;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_EngineFloorNoopStep)->Arg(16);

// Breakdown 1/3 — scheduler draw only: the sealed non-virtual next_step
// against a static all-ticks-enabled world (nothing executes, so every draw
// sees the same index state).
void BM_EngineFloorSchedulerDraw(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  install_noop_processes(world, n);
  world.reconcile_enabled_index();
  sim::RandomScheduler sched(42);
  sim::Step step;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next_step(world, step));
    benchmark::DoNotOptimize(step);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineFloorSchedulerDraw)->Arg(16);

// Breakdown 2/3 — execute only: scripted tick steps straight into
// execute(), no scheduler in the loop.
void BM_EngineFloorExecuteTick(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  install_noop_processes(world, n);
  int i = 0;
  for (auto _ : state) {
    world.execute(sim::Step::tick(i));
    i = (i + 1 == n) ? 0 : i + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineFloorExecuteTick)->Arg(16);

// Breakdown 3/3 — observation emit only: the concrete Context's sim
// backend appending to the log (cleared in batches to bound memory).
void BM_EngineFloorObserveEmit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  install_noop_processes(world, n);
  sim::Context ctx(world, 0);
  const Value v = Value::integer(7);
  for (auto _ : state) {
    ctx.observe(sim::Layer::Pif, sim::ObsKind::Start, -1, v);
    if (world.log().size() >= 8192) world.log().clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineFloorObserveEmit)->Arg(16);

// --- service API overhead (the BENCH_svc_api.json pair) --------------------
// One full PIF computation per iteration, driven two ways over the same
// world: the raw request_pif + done() poll, and a svc session (submit ->
// run_until -> release). Items = engine steps executed, so the ns/item
// difference is the per-step tax of the session machinery (target: <= 2 ns
// on the sealed engine floor).

void BM_RawRequestPifCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  for (int p = 0; p < n; ++p)
    world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const std::uint64_t before = world.step_count();
    core::request_pif(world, 0, Value::integer(7));
    world.run(5'000'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
    steps += world.step_count() - before;
    if (world.log().size() >= (1u << 20)) world.log().clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_RawRequestPifCycle)->Arg(16);

void BM_SessionSubmitPoll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 42);
  for (int p = 0; p < n; ++p)
    world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  svc::Client client(world);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const std::uint64_t before = world.step_count();
    const svc::Session s =
        client.submit(0, svc::PifBroadcast{Value::integer(7)});
    client.run_until(s);
    client.release(s);
    steps += world.step_count() - before;
    if (world.log().size() >= (1u << 20)) world.log().clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SessionSubmitPoll)->Arg(16);

// Session recycling steady state (the BENCH_load.json pair): the same
// submit -> run_until -> release PIF cycle as BM_SessionSubmitPoll, but
// after Arg(0) vs Arg(~10^6) sessions have already been churned through the
// host. The slot arena recycles released sessions through a free list, so
// the per-step cost must be flat in the churn count — a regression here
// means session storage started scaling O(total) instead of O(live).
void BM_SessionRecycleSteadyState(benchmark::State& state) {
  const int n = 4;
  auto world_ptr = svc::service_world(
      sim::Topology::complete(n), 1, 42,
      [](sim::ProcessId p) {
        svc::HostConfig cfg;
        cfg.id = p + 1;
        return cfg;
      },
      /*with_forward=*/true);
  sim::Simulator& world = *world_ptr;
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  svc::Client client(world);
  // Pre-churn: a ForwardMsg to a nonexistent destination is refused at
  // submit (born Done, zero engine steps), so each iteration still
  // allocates and releases one real session record.
  for (std::int64_t i = 0; i < state.range(0); ++i)
    client.release(client.submit(0, svc::ForwardMsg{.dst = 99'999,
                                                    .payload = Value::none()}));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const std::uint64_t before = world.step_count();
    const svc::Session s =
        client.submit(0, svc::PifBroadcast{Value::integer(7)});
    client.run_until(s);
    client.release(s);
    steps += world.step_count() - before;
    if (world.log().size() >= (1u << 20)) world.log().clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SessionRecycleSteadyState)->Arg(0)->Arg(1'000'000);

void BM_SimulatorStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 1);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  core::request_pif(world, 0, Value::integer(7));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    world.run(1);
    ++steps;
    // Keep the system busy: re-request once the computation finishes.
    if (world.process_as<core::PifProcess>(0).pif().done())
      core::request_pif(world, 0, Value::integer(7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimulatorStep)->Arg(2)->Arg(8)->Arg(32);

void BM_PifComputation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed++));
    core::request_pif(world, 0, Value::integer(1));
    world.run(5'000'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
  }
}
BENCHMARK(BM_PifComputation)->Arg(2)->Arg(8)->Arg(32);

void BM_PifComputationCorrupted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
    Rng rng(seed * 3);
    sim::fuzz(world, rng);
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed++));
    core::request_pif(world, 0, Value::integer(1));
    world.run(5'000'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
  }
}
BENCHMARK(BM_PifComputationCorrupted)->Arg(2)->Arg(8);

void BM_MeGrant(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 5);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::MeStackProcess>(i + 1, n - 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  int target = 0;
  for (auto _ : state) {
    core::request_cs(world, target);
    world.run(50'000'000, [target](sim::Simulator& s) {
      return s.process_as<core::MeStackProcess>(target).me().request_state() ==
             core::RequestState::Done;
    });
    target = (target + 1) % n;
  }
}
BENCHMARK(BM_MeGrant)->Arg(2)->Arg(4);

void BM_FuzzWorld(benchmark::State& state) {
  sim::Simulator world(8, 1, 1);
  for (int i = 0; i < 8; ++i)
    world.add_process(std::make_unique<core::MeStackProcess>(i + 1, 7));
  Rng rng(9);
  for (auto _ : state) sim::fuzz(world, rng);
}
BENCHMARK(BM_FuzzWorld);

}  // namespace
}  // namespace snapstab

BENCHMARK_MAIN();
