// micro_bench — google-benchmark microbenchmarks for the hot paths:
// simulator stepping, codec round trips, full PIF computations and ME
// grants as a function of n. These are throughput numbers for the
// *implementation* (the experiment tables live in the exp_* binaries).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/stack.hpp"
#include "msg/codec.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab {
namespace {

void BM_CodecEncode(benchmark::State& state) {
  const Message m = Message::pif(Value::text("How old are you?"),
                                 Value::integer(42), 3, 2);
  for (auto _ : state) {
    auto bytes = encode(m);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const auto bytes = encode(Message::pif(Value::text("How old are you?"),
                                         Value::integer(42), 3, 2));
  for (auto _ : state) {
    auto m = decode(bytes);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_CodecDecode);

void BM_SimulatorStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 1);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  core::request_pif(world, 0, Value::integer(7));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    world.run(1);
    ++steps;
    // Keep the system busy: re-request once the computation finishes.
    if (world.process_as<core::PifProcess>(0).pif().done())
      core::request_pif(world, 0, Value::integer(7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_SimulatorStep)->Arg(2)->Arg(8)->Arg(32);

void BM_PifComputation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed++));
    core::request_pif(world, 0, Value::integer(1));
    world.run(5'000'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
  }
}
BENCHMARK(BM_PifComputation)->Arg(2)->Arg(8)->Arg(32);

void BM_PifComputationCorrupted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Simulator world(n, 1, seed);
    for (int i = 0; i < n; ++i)
      world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
    Rng rng(seed * 3);
    sim::fuzz(world, rng);
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed++));
    core::request_pif(world, 0, Value::integer(1));
    world.run(5'000'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
  }
}
BENCHMARK(BM_PifComputationCorrupted)->Arg(2)->Arg(8);

void BM_MeGrant(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator world(n, 1, 5);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::MeStackProcess>(i + 1, n - 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  int target = 0;
  for (auto _ : state) {
    core::request_cs(world, target);
    world.run(50'000'000, [target](sim::Simulator& s) {
      return s.process_as<core::MeStackProcess>(target).me().request_state() ==
             core::RequestState::Done;
    });
    target = (target + 1) % n;
  }
}
BENCHMARK(BM_MeGrant)->Arg(2)->Arg(4);

void BM_FuzzWorld(benchmark::State& state) {
  sim::Simulator world(8, 1, 1);
  for (int i = 0; i < 8; ++i)
    world.add_process(std::make_unique<core::MeStackProcess>(i + 1, 7));
  Rng rng(9);
  for (auto _ : state) sim::fuzz(world, rng);
}
BENCHMARK(BM_FuzzWorld);

}  // namespace
}  // namespace snapstab

BENCHMARK_MAIN();
