// trial_runner.hpp — fan independent seeded trials across worker threads.
//
// The experiment binaries repeat a (build world, fuzz, run, check) cell for
// dozens of independent seeds; the trials share nothing, so they scale
// embarrassingly. run_trials() executes fn(0..trials-1) across a pool of
// std::threads:
//
//   - one StringPool per worker, installed as the thread's current pool for
//     the worker's lifetime: every Simulator a trial constructs interns into
//     its worker's pool — workers never contend on interning and never
//     share id spaces;
//   - deterministic results: fn must derive all randomness from its trial
//     index (the binaries use seed0 + t), so results are identical for any
//     worker count, including --threads 1. Results land in a trial-indexed
//     vector and are folded in trial order by the caller — aggregation
//     order is fixed too;
//   - fn must return plain data (numbers, strings, structs of those).
//     Returning a Value or an Observation would dangle: it carries a StrId
//     into the worker's pool, which dies with the pool.
//
// The fan primitive itself was promoted into the library as
// load::parallel_shards (src/load/shard.hpp), where the sharded load
// generator reuses it for coordinated workloads; run_trials is now a thin
// delegation, so the independent-trial harness and the sharded runner are
// one code path (tests/test_trial_runner.cpp and tests/test_load.cpp pin
// both behaviors).
#ifndef SNAPSTAB_BENCH_TRIAL_RUNNER_HPP
#define SNAPSTAB_BENCH_TRIAL_RUNNER_HPP

#include <thread>
#include <type_traits>
#include <vector>

#include "common/cli.hpp"
#include "load/shard.hpp"

namespace snapstab::bench {

// Worker count for `trials` trials: the --threads flag when given (0 =
// auto), otherwise all hardware threads, never more than one per trial.
inline int trial_thread_count(const CliArgs& args, int trials) {
  int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? static_cast<int>(hw) : 1;
  }
  if (threads > trials) threads = trials;
  return threads > 0 ? threads : 1;
}

template <typename Fn>
auto run_trials(int trials, int threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  return load::parallel_shards(trials, threads, std::forward<Fn>(fn));
}

}  // namespace snapstab::bench

#endif  // SNAPSTAB_BENCH_TRIAL_RUNNER_HPP
