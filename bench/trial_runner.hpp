// trial_runner.hpp — fan independent seeded trials across worker threads.
//
// The experiment binaries repeat a (build world, fuzz, run, check) cell for
// dozens of independent seeds; the trials share nothing, so they scale
// embarrassingly. run_trials() executes fn(0..trials-1) across a pool of
// std::threads:
//
//   - one StringPool per worker, installed as the thread's current pool for
//     the worker's lifetime: every Simulator a trial constructs interns into
//     its worker's pool — workers never contend on interning and never
//     share id spaces;
//   - deterministic results: fn must derive all randomness from its trial
//     index (the binaries use seed0 + t), so results are identical for any
//     worker count, including --threads 1. Results land in a trial-indexed
//     vector and are folded in trial order by the caller — aggregation
//     order is fixed too;
//   - fn must return plain data (numbers, strings, structs of those).
//     Returning a Value or an Observation would dangle: it carries a StrId
//     into the worker's pool, which dies with the pool.
#ifndef SNAPSTAB_BENCH_TRIAL_RUNNER_HPP
#define SNAPSTAB_BENCH_TRIAL_RUNNER_HPP

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/cli.hpp"
#include "msg/strpool.hpp"

namespace snapstab::bench {

// Worker count for `trials` trials: the --threads flag when given (0 =
// auto), otherwise all hardware threads, never more than one per trial.
inline int trial_thread_count(const CliArgs& args, int trials) {
  int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? static_cast<int>(hw) : 1;
  }
  if (threads > trials) threads = trials;
  return threads > 0 ? threads : 1;
}

template <typename Fn>
auto run_trials(int trials, int threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  using Result = std::invoke_result_t<Fn&, int>;
  static_assert(std::is_default_constructible_v<Result>);
  // vector<bool> packs results into shared words — concurrent writes to
  // results[t] from different workers would race. Return a struct instead.
  static_assert(!std::is_same_v<Result, bool>,
                "trial results must not be bool (vector<bool> slots share "
                "words across workers); wrap the flag in a struct");
  std::vector<Result> results(static_cast<std::size_t>(trials > 0 ? trials
                                                                  : 0));
  if (trials <= 0) return results;
  if (threads > trials) threads = trials;  // callers may pass a raw --threads

  // Work claiming is a single shared counter, not a static partition: every
  // trial index in [0, trials) is claimed exactly once whatever the
  // trials-to-threads ratio (7 trials on 3 threads leaves no tail slice
  // skipped or double-run), and each result lands in its own trial-indexed
  // slot. Determinism then rests solely on fn deriving its randomness from
  // the trial index.
  std::atomic<int> next{0};
  const auto worker = [&]() {
    StringPool pool;  // one Simulator + one pool per worker thread
    ScopedStringPool scope(pool);
    for (int t = next.fetch_add(1); t < trials; t = next.fetch_add(1))
      results[static_cast<std::size_t>(t)] = fn(t);
  };

  if (threads <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) workers.emplace_back(worker);
  for (auto& w : workers) w.join();
  return results;
}

}  // namespace snapstab::bench

#endif  // SNAPSTAB_BENCH_TRIAL_RUNNER_HPP
