// census — IDs-Learning as a census / leader election (Algorithm 2).
//
// Eight anonymous-looking processes each learn every neighbor's identity
// and elect the minimum as leader, in one snap-stabilizing computation per
// process, starting from a corrupted configuration. This is the paper's
// IDL protocol doing what its ME layer uses it for.
//
// Build & run:  ./examples/census [--n 8] [--corrupt]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

using namespace snapstab;

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"n", "corrupt", "seed"});
  const int n = static_cast<int>(args.get_int("n", 8));
  const bool corrupt = args.get_bool("corrupt", true);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4711));

  std::printf("IDs-Learning census over %d processes (%s start)\n\n", n,
              corrupt ? "corrupted" : "clean");

  // Scatter some identities (globally unique, not consecutive).
  std::vector<std::int64_t> ids;
  Rng id_rng(seed);
  for (int i = 0; i < n; ++i) ids.push_back(id_rng.range(100, 999) * 10 + i);

  sim::Simulator world(n, 1, seed);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::IdlProcess>(
        ids[static_cast<std::size_t>(i)], n - 1, 1));
  if (corrupt) {
    Rng chaos(seed + 1);
    sim::fuzz(world, chaos);
  }
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 2));

  for (int p = 0; p < n; ++p) core::request_idl(world, p);
  const auto reason = world.run(4'000'000, [n](sim::Simulator& s) {
    for (int p = 0; p < n; ++p)
      if (!s.process_as<core::IdlProcess>(p).idl().done()) return false;
    return true;
  });
  if (reason != sim::Simulator::StopReason::Predicate) {
    std::printf("ERROR: the census did not terminate\n");
    return 1;
  }

  TextTable table({"process", "own id", "learned minimum", "leader?",
                   "neighbor table (by channel)"});
  std::int64_t true_min = ids[0];
  for (const auto id : ids) true_min = std::min(true_min, id);
  bool all_exact = true;
  for (int p = 0; p < n; ++p) {
    const auto& idl = world.process_as<core::IdlProcess>(p).idl();
    std::string tab;
    for (int ch = 0; ch < n - 1; ++ch) {
      if (ch > 0) tab += " ";
      tab += std::to_string(idl.id_tab(ch));
    }
    if (idl.min_id() != true_min) all_exact = false;
    table.add_row({TextTable::cell(p), TextTable::cell(idl.own_id()),
                   TextTable::cell(idl.min_id()),
                   idl.min_id() == idl.own_id() ? "LEADER" : "",
                   tab});
  }
  table.print();
  std::printf("\n%s — every process agrees the leader is %lld\n",
              all_exact ? "census exact" : "CENSUS WRONG",
              static_cast<long long>(true_min));
  return all_exact ? 0 : 1;
}
