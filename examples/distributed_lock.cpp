// distributed_lock — Protocol ME guarding a shared counter on real threads.
//
// Each of the n processes (one OS thread each, lossy capacity-1 mailboxes)
// repeatedly requests the critical section and performs a deliberately
// racy read-pause-write increment on a shared, unsynchronized counter.
// If two critical sections ever overlapped, increments would be lost and
// the final count would fall short. With Protocol ME, the count is exact.
//
// Build & run:  ./examples/distributed_lock [--n 3] [--rounds 5]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/cli.hpp"
#include "core/stack.hpp"
#include "runtime/thread_runtime.hpp"

using namespace snapstab;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"n", "rounds", "seed"});
  const int n = static_cast<int>(args.get_int("n", 3));
  const int rounds = static_cast<int>(args.get_int("rounds", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

  std::printf(
      "Distributed lock: %d threads x %d increments on an unsynchronized "
      "counter,\nguarded by snap-stabilizing mutual exclusion.\n\n",
      n, rounds);

  // The shared resource: NOT atomic, NOT mutex-protected. The only thing
  // standing between this counter and lost updates is Protocol ME.
  volatile long long shared_counter = 0;
  std::atomic<int> grants{0};

  runtime::ThreadRuntime rt(n, {.seed = seed});
  for (int i = 0; i < n; ++i) {
    core::StackOptions opts;
    opts.me.cs_length = 2;
    opts.me.cs_body = [&shared_counter, &grants] {
      const long long observed = shared_counter;          // read
      std::this_thread::sleep_for(std::chrono::microseconds(300));  // pause
      shared_counter = observed + 1;                      // write
      grants.fetch_add(1);
    };
    rt.add_process(
        std::make_unique<core::MeStackProcess>(i + 1, n - 1, opts));
  }

  // Request driver: every process re-requests until it has completed
  // `rounds` critical sections.
  std::vector<int> completed(static_cast<std::size_t>(n), 0);
  std::vector<bool> pending(static_cast<std::size_t>(n), false);
  const bool finished = rt.run(
      [&] {
        bool all = true;
        for (int p = 0; p < n; ++p) {
          const auto pi = static_cast<std::size_t>(p);
          if (completed[pi] >= rounds) continue;
          all = false;
          rt.with_process<core::MeStackProcess>(
              p, [&completed, &pending, pi, rounds](core::MeStackProcess& s) {
                if (s.me().request_state() != core::RequestState::Done)
                  return 0;  // request in flight
                if (pending[pi]) {
                  ++completed[pi];  // the pending request just finished
                  pending[pi] = false;
                }
                if (completed[pi] < rounds && s.me().request_cs())
                  pending[pi] = true;
                return 0;
              });
        }
        return all;
      },
      120s);

  const long long expected = static_cast<long long>(grants.load());
  std::printf("grants served      : %d\n", grants.load());
  std::printf("counter (observed) : %lld\n",
              static_cast<long long>(shared_counter));
  std::printf("counter (expected) : %lld\n", expected);
  const bool exact = shared_counter == expected && finished;
  std::printf("\n%s\n", exact ? "No lost updates: every racy increment ran "
                                "inside an exclusive critical section."
                              : "LOST UPDATES — mutual exclusion failed!");
  return exact ? 0 : 1;
}
