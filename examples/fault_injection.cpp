// fault_injection — snap-stabilization under repeated transient faults.
//
// A PIF service answers requests in a loop. Between any two computations an
// adversary scrambles every process variable and refills the channels with
// garbage (a fresh transient fault each round). Snap-stabilization promises
// that *every* request — including the very first after each fault — is
// served correctly; self-stabilization would only promise it eventually.
//
// Build & run:  ./examples/fault_injection [--faults 10]
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

using namespace snapstab;

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"faults", "n", "seed"});
  const int faults = static_cast<int>(args.get_int("faults", 10));
  const int n = static_cast<int>(args.get_int("n", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  std::printf(
      "Fault injection: %d rounds of (scramble everything -> request -> "
      "verify)\non a %d-process PIF service.\n\n",
      faults, n);

  sim::Simulator world(n, 1, seed);
  for (int i = 0; i < n; ++i)
    world.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  Rng chaos(seed + 2);

  TextTable table({"round", "stale msgs injected", "steps to decide",
                   "peers reached", "verdict"});
  bool all_good = true;
  for (int round = 0; round < faults; ++round) {
    // The transient fault: arbitrary states, garbage-filled channels.
    sim::fuzz(world, chaos,
              sim::FuzzOptions{.channel_fill = 1.0, .flag_limit = 4});
    const auto injected = world.network().total_messages_in_flight();

    const Value payload = Value::integer(7'000'000 + round);
    const std::uint64_t before = world.step_count();
    const std::size_t log_before = world.log().events().size();
    core::request_pif(world, 0, payload);
    const auto reason = world.run(500'000, [](sim::Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });

    int peers_reached = 0;
    const auto& events = world.log().events();
    for (std::size_t i = log_before; i < events.size(); ++i)
      if (events[i].kind == sim::ObsKind::RecvBrd &&
          events[i].value == payload)
        ++peers_reached;
    const bool good = reason == sim::Simulator::StopReason::Predicate &&
                      peers_reached == n - 1;
    all_good = all_good && good;
    table.add_row({TextTable::cell(round + 1), TextTable::cell(injected),
                   TextTable::cell(world.step_count() - before),
                   TextTable::cell(peers_reached),
                   good ? "served correctly" : "FAILED"});
  }
  table.print();
  std::printf("\n%s\n",
              all_good
                  ? "Every post-fault request was served correctly on the "
                    "first try — no convergence phase."
                  : "Some request was not served correctly!");
  return all_good ? 0 : 1;
}
