// message_routing — the forwarding service as an application would use it.
//
// A random tree of 8 nodes, every channel lossy and bounded; node 2 sends
// "meet at noon" to node 7. The payload crosses the tree hop by hop, each
// hop guarded by the PIF flag-counting handshake — and we start from a
// deliberately corrupted configuration (scrambled hop handshakes, garbage
// queues, channels stuffed with forged forwarding traffic). The message
// still arrives, exactly once: snap-stabilization, now end-to-end.
//
// The submission is a ForwardMsg session: the admission reason is explicit
// (Accepted / BufferFull / NoRoute / SelfDestination) and the session
// completes when the delivery ack surfaces at the destination.
//
// Build & run:  ./examples/example_message_routing
#include <cstdio>
#include <memory>

#include "core/forward_world.hpp"
#include "core/specs.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"
#include "svc/client.hpp"

using namespace snapstab;

int main() {
  std::printf("Snap-stabilizing message forwarding: 2 -> 7 over a tree\n\n");

  auto world = core::forward_world(sim::Topology::random_tree(8, /*seed=*/4),
                                   /*channel capacity=*/1, /*seed=*/2026);
  const sim::RoutingTable routes(world->topology());
  std::printf("route: 2");
  for (int at = 2; at != 7; at = routes.next_hop(at, 7))
    std::printf(" -> %d", routes.next_hop(at, 7));
  std::printf("  (%d hops)\n", routes.distance(2, 7));

  // Transient fault: scramble every hop handshake and queue, stuff forged
  // FwdData/FwdEcho datagrams into the channels.
  Rng chaos(11);
  sim::FuzzOptions fuzz_opts;
  fuzz_opts.flag_limit = 4;
  fuzz_opts.forward_header_n = 8;
  sim::fuzz(*world, chaos, fuzz_opts);
  std::printf("initial configuration: corrupted (%zu forged messages in "
              "flight)\n\n",
              world->network().total_messages_in_flight());

  world->set_scheduler(std::make_unique<sim::RandomScheduler>(
      5, sim::LossOptions{.rate = 0.2, .max_consecutive = 4}));

  // The request, made after the faults ceased: one ForwardMsg session.
  svc::Client client(*world);
  const svc::Session msg = client.submit(
      2, svc::ForwardMsg{.dst = 7, .payload = Value::text("meet at noon")});
  std::printf("submission admitted: %s\n",
              core::forward_submit_name(msg.admission));
  if (!msg.accepted()) {
    // A refused session is born Done with completed=false — run_until
    // returning true would NOT mean delivery.
    std::printf("ERROR: the service refused the submission\n");
    return 1;
  }

  if (!client.run_until(msg, {.max_steps = 2'000'000})) {
    std::printf("ERROR: the payload was not delivered\n");
    return 1;
  }

  sim::TimelineOptions only_service;
  only_service.layer = sim::Layer::Service;
  std::printf("%s\n", sim::render_timeline(world->log(), only_service).c_str());

  const auto report = core::check_forward_spec(
      *world, {.require_all_delivered = true,
               .max_ghost_deliveries = 1'000'000});  // ghosts shown above
  std::printf("\nforwarding spec (exactly-once): %s\n",
              report.ok() ? "OK" : report.summary().c_str());
  std::printf("delivery ack '%s' across %llu acked hops in %llu steps, "
              "despite the corrupted start and 20%% loss.\n",
              client.result(msg).value.to_string().c_str(),
              static_cast<unsigned long long>([&] {
                std::uint64_t hops = 0;
                for (int p = 0; p < 8; ++p)
                  hops += world->process_as<core::ForwardProcess>(p)
                              .forward()
                              .hops_acked();
                return hops;
              }()),
              static_cast<unsigned long long>(world->step_count()));
  return 0;
}
