// quickstart — the paper's own running example (Section 4.1).
//
// Process p wants to know the age of process q. It performs a PIF of the
// message "How old are you?"; q answers its age in the feedback. We start
// from a deliberately corrupted configuration — garbage in both channels,
// scrambled protocol variables — and the request is still served correctly:
// that is snap-stabilization.
//
// The request goes through the unified service API: submit a typed
// descriptor, get a Session mirroring the paper's Request variable
// (Wait -> In -> Done), await it with run_until.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"
#include "svc/client.hpp"

using namespace snapstab;

int main() {
  std::printf("Snap-stabilizing PIF quickstart: 'How old are you?'\n\n");

  const std::int64_t age_of_q = 33;

  // Two processes; q's application-level feedback hook answers its age
  // whenever it sees the age question.
  sim::Simulator world(2, /*channel capacity=*/1, /*seed=*/2024);
  world.add_process(std::make_unique<core::PifProcess>(1, 1));  // p
  world.add_process(std::make_unique<core::PifProcess>(
      1, 1, [age_of_q](sim::Context&, int, const Value& question) -> Value {
        if (question.as_text() == "How old are you?")
          return Value::integer(age_of_q);
        return Value::token(Token::Ok);
      }));  // q
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(99));

  // Transient fault: scramble every variable and stuff garbage into the
  // channels — the arbitrary initial configuration of the paper.
  Rng chaos(7);
  sim::fuzz(world, chaos);
  std::printf("initial configuration: corrupted (fuzzed states, %zu stale "
              "messages in flight)\n",
              world.network().total_messages_in_flight());

  // The request: one session of the PifBroadcast service at p. Submitting
  // sets PIF.Request_p := Wait, exactly as the paper prescribes.
  svc::Client client(world);
  const svc::Session ask =
      client.submit(0, svc::PifBroadcast{Value::text("How old are you?")});
  if (!client.run_until(ask, {.max_steps = 100'000})) {
    std::printf("ERROR: the computation did not terminate\n");
    return 1;
  }

  // The full protocol-event timeline of the execution.
  std::printf("%s\n", sim::render_timeline(world.log()).c_str());
  std::printf("\nsession (origin=%d, service=%s, seq=%u) is %s after "
              "%llu steps, %llu messages sent\n",
              ask.key.origin, svc::service_name(ask.key.service), ask.key.seq,
              core::request_state_name(client.state(ask)),
              static_cast<unsigned long long>(world.step_count()),
              static_cast<unsigned long long>(world.metrics().sends));
  std::printf("q is %lld years old. Despite the corrupted start.\n",
              static_cast<long long>(age_of_q));
  return 0;
}
