// service_client — ONE client program, THREE execution backends.
//
// The unified service API (svc::ServiceHost + svc::Client) exposes every
// snap-stabilizing protocol through the same submit / poll / complete
// surface — the paper's three-valued Request variable, turned into a
// session handle. This example writes a single client program (a PIF
// broadcast, a queued second broadcast, and a full leader election) and
// runs it, unchanged, against
//   1. the deterministic discrete-event Simulator,
//   2. the ThreadRuntime (one OS thread per process, codec-encoded
//      mailboxes, genuine concurrency), and
//   3. the SocketRuntime (real UDP datagrams over the loopback
//      interface — every message crosses the kernel as a framed packet).
//
// Build & run:  ./examples/example_service_client
#include <cstdio>
#include <memory>
#include <vector>

#include "net/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"

using namespace snapstab;

namespace {

constexpr int kN = 4;

// Every node hosts PIF + IDL + election; ids descend so node 3 leads.
svc::HostConfig host_config(int p) {
  svc::HostConfig cfg;
  cfg.id = 100 - p;
  cfg.degree = kN - 1;
  cfg.channel_capacity = 1;
  cfg.with_election = true;
  return cfg;
}

// The client program — written once against the backend-neutral Client.
template <typename Backend>
bool client_program(Backend& backend, const char* label) {
  std::printf("--- %s ---\n", label);
  svc::Client client(backend);

  // Two broadcasts at node 0: the second queues behind the first (the
  // pending-request queue replaces caller-managed retries).
  auto hello = client.submit(0, svc::PifBroadcast{Value::text("hello")});
  auto world = client.submit(0, svc::PifBroadcast{Value::text("world")});
  std::printf("submitted %s seq=%u and %s seq=%u (second queued: %s)\n",
              svc::service_name(hello.key.service), hello.key.seq,
              svc::service_name(world.key.service), world.key.seq,
              client.state(world) == svc::SessionState::Wait ? "yes" : "no");

  // A full election, one session per node.
  std::vector<svc::Session> sessions = {hello, world};
  for (int p = 0; p < kN; ++p)
    sessions.push_back(client.submit(p, svc::Election{}));

  if (!client.run_until(sessions)) {
    std::printf("ERROR: sessions did not complete\n");
    return false;
  }
  for (int p = 0; p < kN; ++p) {
    const auto r = client.result(sessions[2 + static_cast<std::size_t>(p)]);
    std::printf("node %d: leader=%lld rank=%d\n", p,
                static_cast<long long>(r.min_id), r.rank);
  }
  std::printf("broadcasts: '%s', '%s' — both Done\n\n",
              client.result(hello).value.to_string().c_str(),
              client.result(world).value.to_string().c_str());
  return true;
}

}  // namespace

int main() {
  std::printf("One service-client program, three backends\n\n");

  // Backend 1: the deterministic Simulator.
  sim::Simulator world(kN, 1, 2026);
  for (int p = 0; p < kN; ++p)
    world.add_process(std::make_unique<svc::ServiceHost>(host_config(p)));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(7));
  if (!client_program(world, "Simulator (deterministic)")) return 1;
  std::printf("simulator finished in %llu steps\n\n",
              static_cast<unsigned long long>(world.step_count()));

  // Backend 2: the thread runtime — same hosts, same program.
  runtime::ThreadRuntime rt(kN, {.seed = 2026});
  for (int p = 0; p < kN; ++p)
    rt.add_process(std::make_unique<svc::ServiceHost>(host_config(p)));
  if (!client_program(rt, "ThreadRuntime (one thread per process)")) return 1;

  // Backend 3: the real-wire runtime — same hosts, same program, but every
  // message is a UDP datagram through the kernel's loopback stack.
  net::SocketRuntime srt(kN, {.seed = 2026});
  for (int p = 0; p < kN; ++p)
    srt.add_process(std::make_unique<svc::ServiceHost>(host_config(p)));
  if (!client_program(srt, "SocketRuntime (UDP loopback)")) return 1;
  srt.shutdown();
  const auto stats = srt.wire_stats();
  std::printf("socket runtime: %llu datagrams sent, %llu delivered\n\n",
              static_cast<unsigned long long>(stats.datagrams_sent),
              static_cast<unsigned long long>(stats.delivered));

  std::printf("same client code, same sessions, same answers.\n");
  return 0;
}
