// termination_detection — watching a diffusing computation die out.
//
// A token game runs across the system: tokens hop to random neighbors and
// expire after a TTL. The termination-detection service (PIF probe waves,
// Safra-style double probe over sent/received counters) watches it and
// announces — correctly — the moment the game is over.
//
// Build & run:  ./examples/termination_detection [--n 4] [--tokens 10]
#include <cstdio>
#include <deque>
#include <memory>

#include "common/cli.hpp"
#include "core/stack.hpp"
#include "sim/simulator.hpp"

using namespace snapstab;

namespace {

struct TokenApp {
  std::deque<int> held;
  std::uint32_t sent = 0;
  std::uint32_t received = 0;
  std::uint32_t absorbed = 0;

  core::DiffusingApp hooks() {
    core::DiffusingApp app;
    app.counters = [this] {
      return core::AppCounters{held.empty(), sent, received};
    };
    app.has_work = [this] { return !held.empty(); };
    app.on_tick = [this](sim::Context& ctx) {
      if (held.empty()) return;
      const int ttl = held.front();
      if (ttl <= 0) {
        held.pop_front();
        ++absorbed;
        return;
      }
      const int ch = static_cast<int>(
          ctx.rng().below(static_cast<std::uint64_t>(ctx.degree())));
      if (ctx.send(ch, Message::app(Value::integer(ttl - 1)))) {
        held.pop_front();
        ++sent;
      }
    };
    app.on_message = [this](sim::Context&, int, const Value& v) {
      ++received;
      held.push_back(static_cast<int>(v.as_int(0)));
    };
    return app;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv, {"n", "tokens", "seed"});
  const int n = static_cast<int>(args.get_int("n", 4));
  const int tokens = static_cast<int>(args.get_int("tokens", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 77));

  std::printf(
      "Termination detection: %d tokens hopping over %d processes, watched\n"
      "by snap-stabilizing PIF probe waves.\n\n",
      tokens, n);

  sim::Simulator world(n, 1, seed);
  std::vector<std::unique_ptr<TokenApp>> apps;
  for (int i = 0; i < n; ++i) {
    apps.push_back(std::make_unique<TokenApp>());
    world.add_process(
        std::make_unique<core::TermDetectProcess>(n - 1, 1,
                                                  apps.back()->hooks()));
  }
  Rng rng(seed + 1);
  for (int t = 0; t < tokens; ++t)
    apps[rng.below(static_cast<std::uint64_t>(n))]->held.push_back(
        3 + static_cast<int>(rng.below(10)));
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 2));

  core::request_termdetect(world, 0);
  const auto reason = world.run(8'000'000, [](sim::Simulator& s) {
    return s.process_as<core::TermDetectProcess>(0).detector().done();
  });
  if (reason != sim::Simulator::StopReason::Predicate) {
    std::printf("ERROR: detection did not finish\n");
    return 1;
  }

  const auto& detector =
      world.process_as<core::TermDetectProcess>(0).detector();
  std::printf("detector claimed termination after %d probe waves and %llu "
              "steps\n\n",
              detector.waves_used(),
              static_cast<unsigned long long>(world.step_count()));

  std::uint64_t hops = 0;
  std::uint64_t absorbed = 0;
  bool any_left = false;
  for (const auto& app : apps) {
    hops += app->sent;
    absorbed += app->absorbed;
    any_left = any_left || !app->held.empty();
  }
  std::printf("token hops      : %llu\n",
              static_cast<unsigned long long>(hops));
  std::printf("tokens absorbed : %llu\n",
              static_cast<unsigned long long>(absorbed));
  std::printf("tokens left     : %s\n", any_left ? "SOME (bug!)" : "none");
  std::printf("\n%s\n", any_left
                            ? "FALSE CLAIM — the detector lied."
                            : "The claim was sound: the game really was "
                              "over when the detector said so.");
  return any_left ? 1 : 0;
}
