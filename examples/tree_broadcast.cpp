// tree_broadcast — a snap-stabilizing broadcast wave on a tree.
//
// The paper's PIF broadcasts to the initiator's *neighbors*; on the
// complete graph that is everyone. On a sparse topology the application
// layer composes waves out of PIFs, one hop at a time (cf. Cournier et
// al., snap-stabilizing message forwarding on trees): when a process first
// receives the broadcast value, it starts its own PIF of that value. On a
// tree every process is reached exactly once per wave — no duplicate
// suppression beyond "have I already relayed this" is needed — and each
// hop inherits PIF's snap-stabilization: requests made after the fault
// stops are served correctly, even from the fuzzed configuration this demo
// starts in.
//
// Build & run:  ./examples/example_tree_broadcast [seed]
#include <cstdio>
#include <memory>

#include "core/pif.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

using namespace snapstab;

namespace {

// One node of the wave: a PIF instance plus the "relay once" rule.
class WaveProcess final : public sim::Process {
 public:
  explicit WaveProcess(int degree) : pif_(degree, /*channel_capacity=*/1) {
    pif_.set_callbacks({
        .on_brd = [this](sim::Context&, int, const Value& b) -> Value {
          if (!relayed_) {
            relayed_ = true;
            payload_ = b;
            pif_.request(b);  // extend the wave one hop
          }
          return Value::token(Token::Ok);
        },
        .on_fck = {},
        .on_decide = {},
    });
  }

  void start_wave(const Value& b) {
    relayed_ = true;
    payload_ = b;
    pif_.request(b);
  }

  bool reached() const noexcept { return relayed_; }
  bool settled() const noexcept { return !relayed_ || pif_.done(); }
  const Value& payload() const noexcept { return payload_; }

  void on_tick(sim::Context& ctx) override { pif_.tick(ctx); }
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override { return pif_.tick_enabled(); }
  void randomize(Rng& rng) override { pif_.randomize(rng); }

 private:
  core::Pif pif_;
  bool relayed_ = false;
  Value payload_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 2026;
  const int n = 24;

  auto topo = sim::Topology::random_tree(n, seed);
  std::printf("Broadcast wave over a random tree: n=%d, %d directed edges, "
              "max degree %d\n\n",
              n, topo.edge_count(), topo.max_degree());

  sim::Simulator world(std::move(topo), /*channel capacity=*/1, seed);
  for (int p = 0; p < n; ++p)
    world.add_process(
        std::make_unique<WaveProcess>(world.topology().degree(p)));

  // Transient fault: arbitrary initial configuration.
  Rng chaos(seed ^ 0x5EEDu);
  sim::fuzz(world, chaos);
  std::printf("initial configuration: fuzzed states, %zu stale messages in "
              "flight\n",
              world.network().total_messages_in_flight());

  // The root starts the wave after the fault stops.
  world.process_as<WaveProcess>(0).start_wave(Value::text("wave"));

  world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  const auto reason = world.run(5'000'000, [](sim::Simulator& s) {
    for (int p = 0; p < s.process_count(); ++p) {
      auto& w = s.process_as<WaveProcess>(p);
      if (!w.reached() || !w.settled()) return false;
    }
    return true;
  });
  if (reason != sim::Simulator::StopReason::Predicate) {
    std::printf("ERROR: the wave did not cover the tree\n");
    return 1;
  }

  int reached = 0;
  for (int p = 0; p < n; ++p)
    if (world.process_as<WaveProcess>(p).reached()) ++reached;
  std::printf("\nwave complete: %d/%d processes reached in %llu steps "
              "(%llu deliveries, %llu sends)\n",
              reached, n, static_cast<unsigned long long>(world.step_count()),
              static_cast<unsigned long long>(world.metrics().deliveries),
              static_cast<unsigned long long>(world.metrics().sends));
  std::printf("every hop is a PIF: the wave is snap-stabilizing despite the "
              "corrupted start.\n");
  return 0;
}
