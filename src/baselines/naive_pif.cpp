#include "baselines/naive_pif.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace snapstab::baselines {

NaivePifProcess::NaivePifProcess(int degree) : degree_(degree) {
  SNAPSTAB_CHECK(degree_ >= 1);
  acked_.assign(static_cast<std::size_t>(degree_), false);
}

void NaivePifProcess::request(const Value& b) {
  b_mes_ = b;
  request_ = core::RequestState::Wait;
}

void NaivePifProcess::on_tick(sim::Context& ctx) {
  if (request_ != core::RequestState::Wait) return;
  // Start: one broadcast message per neighbor — and nothing more, ever.
  request_ = core::RequestState::In;
  std::fill(acked_.begin(), acked_.end(), false);
  ctx.observe(sim::Layer::Baseline, sim::ObsKind::Start, -1, b_mes_);
  for (int ch = 0; ch < degree_; ++ch)
    ctx.send(ch, Message::naive_brd(b_mes_));
}

void NaivePifProcess::on_message(sim::Context& ctx, int ch,
                                 const Message& m) {
  switch (m.kind) {
    case MsgKind::NaiveBrd: {
      ctx.observe(sim::Layer::Baseline, sim::ObsKind::RecvBrd, ch, m.b);
      ctx.send(ch, Message::naive_fck(Value::token(Token::Ok)));
      return;
    }
    case MsgKind::NaiveFck: {
      if (request_ != core::RequestState::In) return;
      const auto chi = static_cast<std::size_t>(ch);
      if (acked_[chi]) return;
      acked_[chi] = true;
      ctx.observe(sim::Layer::Baseline, sim::ObsKind::RecvFck, ch, m.f);
      if (std::all_of(acked_.begin(), acked_.end(),
                      [](bool a) { return a; })) {
        request_ = core::RequestState::Done;
        ctx.observe(sim::Layer::Baseline, sim::ObsKind::Decide, -1, b_mes_);
      }
      return;
    }
    default:
      return;  // foreign message kinds are ignored
  }
}

void NaivePifProcess::randomize(Rng& rng) {
  request_ = core::random_request_state(rng);
  b_mes_ = Value::random(rng);
  for (int ch = 0; ch < degree_; ++ch)
    acked_[static_cast<std::size_t>(ch)] = rng.chance(0.5);
}

}  // namespace snapstab::baselines
