// naive_pif.hpp — the paper's "naive attempt" at a PIF (Section 4.1).
//
// The broadcast is sent once, the feedback is sent once, and the initiator
// decides as soon as it has collected one feedback per neighbor. The paper
// explains precisely why this is not snap-stabilizing, and the negative
// experiments reproduce both failure modes:
//
//  (1) channels are unreliable — if a broadcast or a feedback is lost, the
//      computation never terminates (no retransmission);
//  (2) the initial configuration is arbitrary — a stale feedback sitting in
//      a channel is indistinguishable from a genuine one, so the initiator
//      may decide without its broadcast having been received ("ghost
//      decision"), violating the Correctness and Decision properties.
//
// Events are emitted under Layer::Baseline, so the very same
// check_pif_spec() that certifies Protocol PIF convicts this one.
#ifndef SNAPSTAB_BASELINES_NAIVE_PIF_HPP
#define SNAPSTAB_BASELINES_NAIVE_PIF_HPP

#include <vector>

#include "core/request.hpp"
#include "sim/process.hpp"

namespace snapstab::baselines {

class NaivePifProcess final : public sim::Process {
 public:
  explicit NaivePifProcess(int degree);

  // External request: broadcast `b` (Request := Wait).
  void request(const Value& b);

  core::RequestState request_state() const noexcept { return request_; }
  bool done() const noexcept {
    return request_ == core::RequestState::Done;
  }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override;
  bool tick_enabled() const override {
    return request_ == core::RequestState::Wait;
  }
  void randomize(Rng& rng) override;

 private:
  int degree_;
  core::RequestState request_ = core::RequestState::Done;
  Value b_mes_;
  std::vector<bool> acked_;
};

}  // namespace snapstab::baselines

#endif  // SNAPSTAB_BASELINES_NAIVE_PIF_HPP
