#include "baselines/seq_pif.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace snapstab::baselines {

SeqPifProcess::SeqPifProcess(int degree, std::int32_t k)
    : degree_(degree), k_(k) {
  SNAPSTAB_CHECK(degree_ >= 1);
  SNAPSTAB_CHECK_MSG(k_ >= 2, "sequence space needs at least two values");
  acked_.assign(static_cast<std::size_t>(degree_), true);
  last_seen_.assign(static_cast<std::size_t>(degree_), -1);
  f_mes_.assign(static_cast<std::size_t>(degree_), Value::token(Token::Ok));
}

void SeqPifProcess::request(const Value& b) {
  b_mes_ = b;
  request_ = core::RequestState::Wait;
}

void SeqPifProcess::on_tick(sim::Context& ctx) {
  // Start: stamp the computation with the next number and reset the acks.
  if (request_ == core::RequestState::Wait) {
    request_ = core::RequestState::In;
    seq_ = (seq_ + 1) % k_;
    std::fill(acked_.begin(), acked_.end(), false);
    ctx.observe(sim::Layer::Baseline, sim::ObsKind::Start, -1, b_mes_);
  }
  // Retransmit to every neighbor that has not echoed the current number.
  if (request_ == core::RequestState::In) {
    bool all = true;
    for (int ch = 0; ch < degree_; ++ch) {
      if (!acked_[static_cast<std::size_t>(ch)]) {
        all = false;
        ctx.send(ch, Message::seq_brd(b_mes_, seq_));
      }
    }
    if (all) {
      request_ = core::RequestState::Done;
      ctx.observe(sim::Layer::Baseline, sim::ObsKind::Decide, -1, b_mes_);
    }
  }
}

void SeqPifProcess::on_message(sim::Context& ctx, int ch, const Message& m) {
  switch (m.kind) {
    case MsgKind::SeqBrd: {
      const auto chi = static_cast<std::size_t>(ch);
      if (m.state != last_seen_[chi]) {
        // A fresh number announces a new computation… unless the initial
        // value of last_seen_ accidentally equals the genuine first number,
        // in which case the broadcast is wrongly treated as a duplicate —
        // one of the two stale-state failure modes measured in E10.
        last_seen_[chi] = m.state;
        ctx.observe(sim::Layer::Baseline, sim::ObsKind::RecvBrd, ch, m.b);
        f_mes_[chi] = Value::token(Token::Ok);
      }
      ctx.send(ch, Message::seq_fck(f_mes_[chi], m.state));
      return;
    }
    case MsgKind::SeqFck: {
      if (request_ != core::RequestState::In) return;
      if (m.state != seq_) return;  // echo of an older computation
      const auto chi = static_cast<std::size_t>(ch);
      if (acked_[chi]) return;
      acked_[chi] = true;
      ctx.observe(sim::Layer::Baseline, sim::ObsKind::RecvFck, ch, m.f);
      return;
    }
    default:
      return;  // foreign message kinds are ignored
  }
}

void SeqPifProcess::randomize(Rng& rng) {
  request_ = core::random_request_state(rng);
  b_mes_ = Value::random(rng);
  seq_ = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(k_)));
  for (int ch = 0; ch < degree_; ++ch) {
    const auto chi = static_cast<std::size_t>(ch);
    acked_[chi] = rng.chance(0.5);
    last_seen_[chi] =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(k_)));
    f_mes_[chi] = Value::random(rng);
  }
}

}  // namespace snapstab::baselines
