// seq_pif.hpp — a *self-stabilizing* (not snap-stabilizing) PIF built on
// mod-K sequence numbers with retransmission.
//
// This is the classical counter-based recipe the paper contrasts itself
// with (Afek & Brown's randomized sequence numbers, Varghese's counter
// flushing): the initiator stamps each computation with the next sequence
// number modulo K, retransmits until every neighbor echoed the current
// number, and accepts only matching echoes.
//
// From an arbitrary initial configuration, a stale feedback whose number
// happens to match the current computation (probability ≈ 1/K per stale
// message) is accepted as genuine — an early computation can therefore
// violate Correctness/Decision. Once a computation completes, the bounded
// channels are flushed and subsequent computations are correct: the
// protocol *converges* (self-stabilization) instead of being correct from
// the first request (snap-stabilization). Experiment E10 measures exactly
// this per-request-index violation curve against Protocol PIF's flat zero.
#ifndef SNAPSTAB_BASELINES_SEQ_PIF_HPP
#define SNAPSTAB_BASELINES_SEQ_PIF_HPP

#include <cstdint>
#include <vector>

#include "core/request.hpp"
#include "sim/process.hpp"

namespace snapstab::baselines {

class SeqPifProcess final : public sim::Process {
 public:
  // K >= 2 is the sequence-number space; larger K stabilizes faster (fewer
  // collisions with stale state) at the cost of more bits per message.
  SeqPifProcess(int degree, std::int32_t k);

  void request(const Value& b);

  core::RequestState request_state() const noexcept { return request_; }
  bool done() const noexcept {
    return request_ == core::RequestState::Done;
  }
  std::int32_t seq() const noexcept { return seq_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override;
  bool tick_enabled() const override {
    return request_ != core::RequestState::Done;
  }
  void randomize(Rng& rng) override;

 private:
  int degree_;
  std::int32_t k_;
  core::RequestState request_ = core::RequestState::Done;
  Value b_mes_;
  std::int32_t seq_ = 0;
  std::vector<bool> acked_;
  // Last broadcast sequence number seen per channel (duplicate-suppression
  // for retransmitted broadcasts).
  std::vector<std::int32_t> last_seen_;
  std::vector<Value> f_mes_;
};

}  // namespace snapstab::baselines

#endif  // SNAPSTAB_BASELINES_SEQ_PIF_HPP
