// check.hpp — lightweight precondition / invariant checking.
//
// Following the C++ Core Guidelines (I.6, E.12) we express contracts
// explicitly. SNAPSTAB_CHECK is active in all build types: the library
// simulates adversarial executions, so silent memory corruption from a
// violated invariant would invalidate every experimental result.
#ifndef SNAPSTAB_COMMON_CHECK_HPP
#define SNAPSTAB_COMMON_CHECK_HPP

#include <cstdio>
#include <cstdlib>

namespace snapstab {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace snapstab

#define SNAPSTAB_CHECK(expr)                                         \
  do {                                                               \
    if (!(expr)) ::snapstab::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SNAPSTAB_CHECK_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) ::snapstab::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#endif  // SNAPSTAB_COMMON_CHECK_HPP
