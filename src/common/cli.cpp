#include "common/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace snapstab {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known) {
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "error: %s\nknown options:", what.c_str());
    for (const auto& k : known) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // boolean flag form
    }
    if (std::find(known.begin(), known.end(), arg) == known.end())
      fail("unknown option --" + arg);
    options_[arg] = std::move(value);
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                        nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback
                              : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace snapstab
