// cli.hpp — minimal command-line option parsing for examples and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
// Unknown options abort with a usage hint: experiment binaries must not
// silently ignore a mistyped sweep parameter.
#ifndef SNAPSTAB_COMMON_CLI_HPP
#define SNAPSTAB_COMMON_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace snapstab {

class CliArgs {
 public:
  // `known` lists accepted option names (without leading dashes); passing an
  // option outside this list is a fatal usage error.
  CliArgs(int argc, const char* const* argv, std::vector<std::string> known);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_CLI_HPP
