// fenwick.hpp — a Fenwick (binary indexed) tree over 0/1 membership bits.
//
// Backs the simulator's enabled-step index: the scheduler needs "how many
// items are in the set" and "which is the k-th smallest member" without
// scanning or allocating. Both are O(log n); flipping a bit is O(log n).
#ifndef SNAPSTAB_COMMON_FENWICK_HPP
#define SNAPSTAB_COMMON_FENWICK_HPP

#include <vector>

#include "common/check.hpp"

namespace snapstab {

class FenwickSet {
 public:
  FenwickSet() = default;

  // Resets to the empty set over the universe {0, .., universe-1}.
  void reset(int universe) {
    n_ = universe;
    log_ = 0;
    while ((1 << (log_ + 1)) <= n_) ++log_;
    tree_.assign(static_cast<std::size_t>(n_) + 1, 0);
    count_ = 0;
  }

  int universe() const noexcept { return n_; }
  int count() const noexcept { return count_; }

  // Adds `delta` (+1 insert, -1 erase) at item i. The caller tracks
  // membership; double inserts would corrupt the counts.
  void add(int i, int delta) {
    SNAPSTAB_CHECK(i >= 0 && i < n_);
    count_ += delta;
    for (int j = i + 1; j <= n_; j += j & -j)
      tree_[static_cast<std::size_t>(j)] += delta;
  }

  // The k-th smallest member, k in [0, count()).
  //
  // The descent is branchless: each level's take/skip decision depends on
  // the (effectively random) rank k, so a conditional branch mispredicts
  // about half the time — several mispredicts per lookup on the simulator's
  // hottest path (measured ~3.5x slower than this form). The decisions are
  // folded into all-ones/all-zero masks, which compilers cannot turn back
  // into branches (they re-branch ternaries); out-of-range probes read the
  // always-present, always-zero root slot 0 instead of branching around
  // the load.
  int kth(int k) const {
    SNAPSTAB_CHECK(k >= 0 && k < count_);
    int pos = 0;
    int rem = k + 1;
    for (int pw = 1 << log_; pw > 0; pw >>= 1) {
      const int npos = pos + pw;
      const int guard = -static_cast<int>(npos <= n_);  // ~0 in range, else 0
      const int v = tree_[static_cast<std::size_t>(npos & guard)];
      const int take = guard & -static_cast<int>(v < rem);
      pos += pw & take;
      rem -= v & take;
    }
    return pos;  // 1-based tree: item index is `pos` in 0-based terms
  }

 private:
  int n_ = 0;
  int log_ = 0;
  int count_ = 0;
  std::vector<int> tree_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_FENWICK_HPP
