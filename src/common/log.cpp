#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace snapstab {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_write(LogLevel level, const char* fmt, ...) {
  char buf[1024];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
}

}  // namespace snapstab
