// log.hpp — leveled logging with printf-style formatting.
//
// The simulator can execute millions of steps; logging therefore defaults to
// Warn and the level check happens before any formatting work.
#ifndef SNAPSTAB_COMMON_LOG_HPP
#define SNAPSTAB_COMMON_LOG_HPP

#include <cstdarg>

namespace snapstab {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

bool log_enabled(LogLevel level) noexcept;

// printf-style; a trailing newline is appended automatically.
void log_write(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace snapstab

#define SNAPSTAB_LOG(level, ...)                                   \
  do {                                                             \
    if (::snapstab::log_enabled(level))                            \
      ::snapstab::log_write(level, __VA_ARGS__);                   \
  } while (false)

#define SNAPSTAB_TRACE(...) SNAPSTAB_LOG(::snapstab::LogLevel::Trace, __VA_ARGS__)
#define SNAPSTAB_DEBUG(...) SNAPSTAB_LOG(::snapstab::LogLevel::Debug, __VA_ARGS__)
#define SNAPSTAB_INFO(...) SNAPSTAB_LOG(::snapstab::LogLevel::Info, __VA_ARGS__)
#define SNAPSTAB_WARN(...) SNAPSTAB_LOG(::snapstab::LogLevel::Warn, __VA_ARGS__)
#define SNAPSTAB_ERROR(...) SNAPSTAB_LOG(::snapstab::LogLevel::Error, __VA_ARGS__)

#endif  // SNAPSTAB_COMMON_LOG_HPP
