// rankset.hpp — a branchless order-statistics set over a bitmap.
//
// Backs the simulator's enabled-step index. Same interface as FenwickSet
// (reset / count / add ±1 / kth), different cost model, tuned for the
// sealed step loop's access pattern:
//
//   add  — O(1): one bit flip plus two count increments. The index flips a
//          membership bit on every channel empty↔nonempty transition (twice
//          per message at capacity 1), so this beats the Fenwick tree's
//          O(log n) cascade where it hurts most.
//   kth  — a popcount prefix scan over 512-bit groups, then over the ≤ 8
//          words of one group, then a 6-level binary search inside one
//          word. Every level is mask arithmetic: the rank k is effectively
//          random, so data-dependent branches would mispredict ~50% of the
//          time, and the masks keep the whole lookup pipeline-friendly
//          (the Fenwick descent it replaces was a serial, mispredicting
//          load chain).
//
// Members are reported by kth in ascending order, which is what the
// engine's candidate-enumeration contract requires.
#ifndef SNAPSTAB_COMMON_RANKSET_HPP
#define SNAPSTAB_COMMON_RANKSET_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace snapstab {

class RankSet {
 public:
  RankSet() = default;

  // Resets to the empty set over the universe {0, .., universe-1}.
  void reset(int universe) {
    n_ = universe;
    count_ = 0;
    const std::size_t words =
        (static_cast<std::size_t>(universe) + 63) / 64;
    words_.assign(words, 0);
    group_count_.assign((words + kGroupWords - 1) / kGroupWords, 0);
    // First probe span of the in-word binary search: half the bit width of
    // the widest word in use. A 16-item universe starts at span 8 instead
    // of wasting two full-width levels on bits that are always zero.
    select_start_ = 32;
    if (words <= 1) {
      const unsigned width = std::bit_ceil(
          static_cast<unsigned>(universe > 0 ? universe : 1));
      select_start_ = static_cast<int>(width) >> 1;
    }
  }

  int universe() const noexcept { return n_; }
  int count() const noexcept { return count_; }

  // Adds `delta` (+1 insert, -1 erase) at item i. The caller tracks
  // membership; the bit state is checked, so double inserts trap instead
  // of corrupting the counts.
  void add(int i, int delta) {
    SNAPSTAB_CHECK(i >= 0 && i < n_);
    SNAPSTAB_CHECK(delta == 1 || delta == -1);
    const std::size_t w = static_cast<std::size_t>(i) >> 6;
    const std::uint64_t bit = 1ull << (i & 63);
    SNAPSTAB_CHECK(((words_[w] & bit) != 0) == (delta < 0));
    words_[w] ^= bit;
    group_count_[w >> kGroupShift] += delta;
    count_ += delta;
  }

  // The k-th smallest member, k in [0, count()).
  int kth(int k) const {
    SNAPSTAB_CHECK(k >= 0 && k < count_);
    int rem = k;

    // Group scan: `still` is all-ones while the running rank has not yet
    // landed; it collapses to 0 monotonically, so later groups stop
    // contributing without a branch.
    std::size_t g = 0;
    int still = -1;
    for (std::size_t j = 0; j + 1 < group_count_.size(); ++j) {
      const int c = group_count_[j];
      still &= -static_cast<int>(rem >= c);
      g += static_cast<std::size_t>(1 & still);
      rem -= c & still;
    }

    // Word scan within the chosen group, same monotone-mask pattern.
    const std::size_t base = g << kGroupShift;
    const std::size_t last =
        (base + kGroupWords < words_.size()) ? base + kGroupWords
                                             : words_.size();
    std::size_t w = base;
    still = -1;
    for (std::size_t j = base; j + 1 < last; ++j) {
      const int c = std::popcount(words_[j]);
      still &= -static_cast<int>(rem >= c);
      w += static_cast<std::size_t>(1 & still);
      rem -= c & still;
    }

    return static_cast<int>(w << 6) + select_bit(words_[w], rem);
  }

 private:
  static constexpr std::size_t kGroupWords = 8;  // 512 items per group
  static constexpr unsigned kGroupShift = 3;

  // Position of the rank-th (0-based) set bit of w; rank < popcount(w).
  // Branchless binary search on popcounts of the low half at each level;
  // the descent is instantiated per starting span so the level loop fully
  // unrolls with constant masks, and the dispatch switch takes the same arm
  // for the lifetime of the set — a perfectly predicted branch.
  template <int Start>
  static int select_from(std::uint64_t w, int rank) {
    int pos = 0;
    for (int span = Start; span > 0; span >>= 1) {
      const std::uint64_t low_mask = (1ull << span) - 1;
      const int pc = std::popcount(w & low_mask);
      const int high = -static_cast<int>(rank >= pc);
      rank -= pc & high;
      pos += span & high;
      w >>= span & high;
    }
    return pos;
  }

  int select_bit(std::uint64_t w, int rank) const {
    switch (select_start_) {
      case 1: return select_from<1>(w, rank);
      case 2: return select_from<2>(w, rank);
      case 4: return select_from<4>(w, rank);
      case 8: return select_from<8>(w, rank);
      case 16: return select_from<16>(w, rank);
      default: return select_from<32>(w, rank);
    }
  }

  int n_ = 0;
  int count_ = 0;
  int select_start_ = 32;  // see reset()
  std::vector<std::uint64_t> words_;
  std::vector<int> group_count_;  // members per kGroupWords-word group
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_RANKSET_HPP
