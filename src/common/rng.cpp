#include "common/rng.hpp"

#include "common/check.hpp"

namespace snapstab {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  SNAPSTAB_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 would mean the full 2^64 range; then any value is valid.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  std::uint64_t sm = s_[0] ^ rotl_(salt, 29) ^ (s_[3] + 0xA3EC647659359ACDull);
  return Rng(splitmix64(sm));
}

}  // namespace snapstab
