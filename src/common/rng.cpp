#include "common/rng.hpp"

#include "common/check.hpp"

namespace snapstab {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  SNAPSTAB_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  SNAPSTAB_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 would mean the full 2^64 range; then any value is valid.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  std::uint64_t sm = s_[0] ^ rotl(salt, 29) ^ (s_[3] + 0xA3EC647659359ACDull);
  return Rng(splitmix64(sm));
}

}  // namespace snapstab
