// rng.hpp — seeded, reproducible pseudo-random number generation.
//
// Every stochastic component of the library (schedulers, loss adversaries,
// configuration fuzzers) draws from an explicitly seeded Rng so that every
// experiment and every test is reproducible from its seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is both
// faster and statistically stronger than std::minstd and has a tiny,
// copyable state — useful when forking deterministic sub-streams.
#ifndef SNAPSTAB_COMMON_RNG_HPP
#define SNAPSTAB_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <limits>

namespace snapstab {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
// can also be plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1CEu) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform integer in [0, bound), bound > 0. Uses Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  // Derive an independent child generator; deterministic in (state, salt).
  Rng fork(std::uint64_t salt) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_RNG_HPP
