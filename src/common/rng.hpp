// rng.hpp — seeded, reproducible pseudo-random number generation.
//
// Every stochastic component of the library (schedulers, loss adversaries,
// configuration fuzzers) draws from an explicitly seeded Rng so that every
// experiment and every test is reproducible from its seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is both
// faster and statistically stronger than std::minstd and has a tiny,
// copyable state — useful when forking deterministic sub-streams.
#ifndef SNAPSTAB_COMMON_RNG_HPP
#define SNAPSTAB_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace snapstab {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
// can also be plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1CEu) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  // The draw primitives are inline: the simulator's sealed step loop draws
  // once per step, and an out-of-line call would dominate the ~10
  // instructions of xoshiro256**.
  result_type next() noexcept {
    const std::uint64_t result = rotl_(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound), bound > 0. Uses Lemire's unbiased method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    SNAPSTAB_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Derive an independent child generator; deterministic in (state, salt).
  Rng fork(std::uint64_t salt) noexcept;

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_RNG_HPP
