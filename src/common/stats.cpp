#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.hpp"

namespace snapstab {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  SNAPSTAB_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  SNAPSTAB_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Summary::mean() const {
  SNAPSTAB_CHECK(!samples_.empty());
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  SNAPSTAB_CHECK(!samples_.empty());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double pct) const {
  SNAPSTAB_CHECK(!samples_.empty());
  SNAPSTAB_CHECK(pct >= 0.0 && pct <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = pct / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Summary::total() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

std::string Summary::brief() const {
  if (samples_.empty()) return "(no samples)";
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.1f ±%.1f [%.0f..%.0f]", mean(), stddev(),
                min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SNAPSTAB_CHECK(hi > lo);
  SNAPSTAB_CHECK(bins > 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((sample - lo_) / span *
                                      static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::string Histogram::render(std::size_t width) const {
  std::string out;
  const std::size_t peak =
      std::max<std::size_t>(1, *std::max_element(counts_.begin(), counts_.end()));
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  char line[160];
  if (underflow_ > 0) {
    std::snprintf(line, sizeof line, "   < %8.1f : %zu\n", lo_, underflow_);
    out += line;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bin_lo = lo_ + step * static_cast<double>(i);
    const std::size_t bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "  [%8.1f) %6zu |", bin_lo, counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof line, "  >= %8.1f : %zu\n", hi_, overflow_);
    out += line;
  }
  return out;
}

}  // namespace snapstab
