// stats.hpp — descriptive statistics used by the benchmark harness.
#ifndef SNAPSTAB_COMMON_STATS_HPP
#define SNAPSTAB_COMMON_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace snapstab {

// Accumulates samples and reports summary statistics. Percentiles are exact
// (nearest-rank over the sorted sample set), suitable for the sample counts
// used in the experiments (10^2..10^6).
class Summary {
 public:
  void add(double sample);
  void merge(const Summary& other);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;  // sample standard deviation (n-1 denominator)
  double percentile(double pct) const;  // pct in [0, 100]
  double median() const { return percentile(50.0); }
  double total() const;

  // "mean ± stddev [min..max]" — used in experiment tables.
  std::string brief() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width histogram over [lo, hi) with `bins` buckets plus overflow /
// underflow buckets; renders as ASCII rows for the experiment binaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  std::size_t total() const noexcept { return total_; }
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_STATS_HPP
