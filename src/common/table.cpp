#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace snapstab {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SNAPSTAB_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SNAPSTAB_CHECK_MSG(cells.size() <= headers_.size(),
                     "row has more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string TextTable::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TextTable::cell(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += ' ';
      const std::string& text = c < row.size() ? row[c] : std::string();
      out += text;
      out.append(widths[c] - text.size(), ' ');
      out += " |";
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace snapstab
