// table.hpp — aligned text tables for the experiment binaries.
//
// Every exp_* benchmark prints its results through TextTable so the output
// resembles the rows a paper table would report and diffing runs is easy.
#ifndef SNAPSTAB_COMMON_TABLE_HPP
#define SNAPSTAB_COMMON_TABLE_HPP

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace snapstab {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row cells; missing cells render empty, excess cells are rejected.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats arithmetic cells with a reasonable precision.
  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(std::int64_t v);
  static std::string cell(std::uint64_t v);
  static std::string cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  static std::string cell(double v, int precision = 2);

  std::string render() const;
  void print() const;  // render() to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_COMMON_TABLE_HPP
