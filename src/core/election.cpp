#include "core/election.hpp"

#include <algorithm>

namespace snapstab::core {

std::vector<std::int64_t> Election::members() const {
  std::vector<std::int64_t> all;
  all.reserve(static_cast<std::size_t>(idl_.state().id_tab.size()) + 1);
  all.push_back(idl_.own_id());
  for (const auto id : idl_.state().id_tab) all.push_back(id);
  std::sort(all.begin(), all.end());
  return all;
}

int Election::rank() const {
  const auto all = members();
  const auto it = std::find(all.begin(), all.end(), idl_.own_id());
  return static_cast<int>(it - all.begin());
}

}  // namespace snapstab::core
