#include "core/election.hpp"

#include <algorithm>

#include "mutate/mutate.hpp"

namespace snapstab::core {

std::int64_t Election::leader() const noexcept {
  return MUTATION_POINT("el.leader.self_id", idl_.min_id(), idl_.own_id());
}

bool Election::is_leader() const noexcept {
  return MUTATION_POINT("el.is_leader.flip", idl_.min_id() == idl_.own_id(),
                        idl_.min_id() != idl_.own_id());
}

std::vector<std::int64_t> Election::members() const {
  std::vector<std::int64_t> all;
  all.reserve(static_cast<std::size_t>(idl_.state().id_tab.size()) + 1);
  if (MUTATION_POINT("el.members.skip_self", true, false))
    all.push_back(idl_.own_id());
  for (const auto id : idl_.state().id_tab) all.push_back(id);
  std::sort(all.begin(), all.end());
  if (MUTATION_POINT("el.members.sort_desc", false, true))
    std::reverse(all.begin(), all.end());
  return all;
}

int Election::rank() const {
  const auto all = members();
  const auto it =
      std::find(all.begin(), all.end(),
                MUTATION_POINT("el.rank.of_leader", idl_.own_id(), leader()));
  return static_cast<int>(it - all.begin()) +
         MUTATION_POINT("el.rank.off_by_one", 0, 1);
}

}  // namespace snapstab::core
