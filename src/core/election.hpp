// election.hpp — leader election and consistent ranking over Protocol IDL.
//
// One started IDs-Learning computation gives a process every identity in
// the system (Specification 2). This service derives from it what
// distributed applications usually want:
//   - the leader (the minimum identity — the same convention Protocol ME
//     uses for its arbiter), and
//   - a consistent *ranking*: every process's position in the globally
//     sorted identity sequence. Two processes that both completed a started
//     election agree on the full member list, hence on every rank.
#ifndef SNAPSTAB_CORE_ELECTION_HPP
#define SNAPSTAB_CORE_ELECTION_HPP

#include <vector>

#include "core/idl.hpp"

namespace snapstab::core {

class Election {
 public:
  explicit Election(Idl& idl) : idl_(idl) {}

  void request() { idl_.request(); }
  RequestState request_state() const noexcept {
    return idl_.request_state();
  }
  bool done() const noexcept { return idl_.done(); }

  std::int64_t leader() const noexcept;
  bool is_leader() const noexcept;

  // The full member list (own id + every learned neighbor id), sorted
  // ascending. Valid after a started election completed.
  std::vector<std::int64_t> members() const;

  // This process's position in members(): 0 is the leader.
  int rank() const;

 private:
  Idl& idl_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_ELECTION_HPP
