#include "core/forward.hpp"
#include "core/forward_world.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

Forward::Forward(sim::ProcessId self, int degree,
                 std::shared_ptr<const sim::RoutingTable> routes,
                 Options options)
    : self_(self),
      routes_(std::move(routes)),
      options_(options),
      flag_bound_(MUTATION_POINT("fwd.flag_bound.short",
                                 2 * options.channel_capacity + 2,
                                 2 * options.channel_capacity + 1)) {
  SNAPSTAB_CHECK(routes_ != nullptr);
  SNAPSTAB_CHECK(self_ >= 0 && self_ < routes_->process_count());
  SNAPSTAB_CHECK_MSG(routes_->process_count() <= 0x10000,
                     "process ids must fit the 16-bit FwdHeader fields");
  SNAPSTAB_CHECK_MSG(degree >= 1, "forwarding needs at least one link");
  SNAPSTAB_CHECK_MSG(options_.channel_capacity >= 1,
                     "snap-stabilization requires a known capacity bound");
  SNAPSTAB_CHECK_MSG(options_.hop_buffer >= 1,
                     "a hop needs room for at least one payload");
  out_.resize(static_cast<std::size_t>(degree));
  // The constructed state is quiescent (no transfer running, every
  // handshake complete) — randomize() overwrites everything.
  racc_.assign(static_cast<std::size_t>(degree), flag_bound_);
}

std::int32_t Forward::clamp_flag(std::int32_t v) const noexcept {
  return std::clamp<std::int32_t>(v, 0, flag_bound_);
}

ForwardSubmit Forward::submit(const Value& payload, sim::ProcessId dst) {
  if (dst < 0 || dst >= routes_->process_count())
    return ForwardSubmit::NoRoute;
  const Item item{payload,
                  pack_fwd_header({self_, dst, next_seq_})};
  if (dst == self_) {
    // Self-addressed submissions honor the same per-hop bound as routed
    // ones — the local delivery queue is a buffer like any other.
    if (local_.size() >= static_cast<std::size_t>(options_.hop_buffer))
      return ForwardSubmit::SelfDestination;
    ++next_seq_;
    local_.push_back(item);
    return ForwardSubmit::Accepted;
  }
  if (!enqueue(MUTATION_POINT("fwd.submit.wrong_first_hop",
                              (routes_->next_index(self_, dst)),
                              ((routes_->next_index(self_, dst) + 1) %
                               degree())),
               item))
    return ForwardSubmit::BufferFull;
  ++next_seq_;
  return ForwardSubmit::Accepted;
}

int Forward::relay_index(sim::ProcessId dst) const {
  return MUTATION_POINT("fwd.relay.wrong_neighbor",
                        (routes_->next_index(self_, dst)),
                        ((routes_->next_index(self_, dst) + 1) % degree()));
}

bool Forward::link_full(const OutLink& out) const noexcept {
  return out.pending.size() + (out.active ? 1 : 0) >=
         static_cast<std::size_t>(options_.hop_buffer);
}

bool Forward::enqueue(int ch, const Item& item) {
  OutLink& out = out_[static_cast<std::size_t>(ch)];
  if (link_full(out)) return false;
  out.pending.push_back(item);
  return true;
}

void Forward::deliver(sim::Context& ctx, const Item& item) {
  const FwdHeader h = unpack_fwd_header(item.header);
  const int origin =
      MUTATION_POINT("fwd.deliver.misattribute_origin",
                     (h.origin >= 0 && h.origin < routes_->process_count()
                          ? h.origin
                          : -1),
                     h.dst);
  delivered_ += MUTATION_POINT("fwd.deliver.uncounted", 1, 0);
  ctx.observe(sim::Layer::Service, sim::ObsKind::FwdDeliver, origin,
              item.payload);
  if (on_deliver_) on_deliver_(h, item.payload);
}

void Forward::tick(sim::Context& ctx) {
  // Self-addressed submissions (and randomize()-planted local garbage).
  while (!local_.empty()) {
    deliver(ctx, local_.front());
    local_.pop_front();
  }
  for (int ch = 0; ch < degree(); ++ch) {
    OutLink& out = out_[static_cast<std::size_t>(ch)];
    // Self-correction: a fault can leave a zombie transfer whose flag is
    // already at (or beyond) the bound — it would never retransmit and no
    // echo could ever complete it, wedging the link forever. Retire it; a
    // transfer in that state is complete for all the handshake can tell.
    if (out.active &&
        MUTATION_POINT("fwd.zombie.immortal", out.sstate >= flag_bound_,
                       out.sstate > flag_bound_))
      out.active = false;
    // Start the next queued transfer (the analogue of PIF's A1: the hop
    // flag restarts from 0, which is what makes the handshake exact).
    if (!out.active && !out.pending.empty()) {
      out.current = out.pending.front();
      out.pending.pop_front();
      out.active = true;
      out.sstate = MUTATION_POINT("fwd.start.skew", 0, 1);
    }
    // Retransmit (the analogue of A2). A refused push — full channel — is
    // simply a loss; the next tick retries.
    if (out.active && MUTATION_POINT("fwd.tick.mute_retransmit",
                                     out.sstate < flag_bound_,
                                     out.sstate == 0))
      ctx.send(ch, Message::fwd_data(out.current.payload, out.current.header,
                                     out.sstate));
  }
}

bool Forward::tick_enabled() const noexcept {
  if (!local_.empty()) return true;
  for (const OutLink& out : out_)
    if (out.active || !out.pending.empty()) return true;
  return false;
}

void Forward::accept(sim::Context& ctx, const Message& m) {
  // The accepted payload is whatever genuinely arrived — never stored
  // state — so a corrupted queue cannot substitute contents.
  if (!m.f.is_int()) {
    ++discarded_;
    return;
  }
  const FwdHeader h = unpack_fwd_header(m.f.as_int());
  if (h.dst < 0 || h.dst >= routes_->process_count()) {
    ++discarded_;
    return;
  }
  const Item item{m.b, m.f.as_int()};
  if (h.dst == self_) {
    deliver(ctx, item);
    return;
  }
  // accept() only runs after the caller verified there is room.
  SNAPSTAB_CHECK(enqueue(relay_index(h.dst), item));
  ++relayed_;
}

bool Forward::handle_message(sim::Context& ctx, int ch, const Message& m) {
  SNAPSTAB_CHECK(ch >= 0 && ch < degree());
  const auto chi = static_cast<std::size_t>(ch);

  if (m.kind == MsgKind::FwdEcho) {
    // Sender role: an echo carrying the exact current flag advances the
    // handshake; anything else is stale and ignored (safety over speed).
    OutLink& out = out_[chi];
    const std::int32_t es = clamp_flag(m.state);
    if (out.active &&
        MUTATION_POINT("fwd.echo.accept_stale", es == out.sstate,
                       es >= out.sstate) &&
        out.sstate < flag_bound_) {
      ++out.sstate;
      if (MUTATION_POINT("fwd.echo.early_ack", out.sstate == flag_bound_,
                         out.sstate >= flag_bound_ - 1)) {
        out.active = false;  // hop acknowledged; tick starts the next item
        ++acked_;
      }
    }
    return true;
  }

  if (m.kind != MsgKind::FwdData) return false;

  // Receiver role.
  const std::int32_t ds = clamp_flag(m.state);
  const bool accepting =
      MUTATION_POINT("fwd.accept.duplicates",
                     (racc_[chi] != flag_bound_ - 1 && ds == flag_bound_ - 1),
                     (ds == flag_bound_ - 1));
  if (accepting && m.f.is_int()) {
    const FwdHeader h = unpack_fwd_header(m.f.as_int());
    if (h.dst >= 0 && h.dst < routes_->process_count() && h.dst != self_) {
      const OutLink& relay =
          out_[static_cast<std::size_t>(relay_index(h.dst))];
      if (link_full(relay)) {
        // Bounded-buffer backpressure: stall the handshake instead of
        // dropping the payload. Ignoring the message is indistinguishable
        // from channel loss; the sender's retransmission completes the
        // transfer once the relay queue drains.
        ++stalled_;
        return true;
      }
    }
  }
  racc_[chi] = ds;
  if (accepting) accept(ctx, m);
  if (ds < flag_bound_) ctx.send(ch, Message::fwd_echo(racc_[chi]));
  return true;
}

void Forward::randomize(Rng& rng) {
  local_.clear();
  next_seq_ = static_cast<std::uint32_t>(rng.below(1u << 20));
  const auto random_item = [&] {
    return Item{Value::random(rng), static_cast<std::int64_t>(rng.next())};
  };
  for (int ch = 0; ch < degree(); ++ch) {
    OutLink& out = out_[static_cast<std::size_t>(ch)];
    out.pending.clear();
    const std::uint64_t queued = rng.below(3);  // 0..2 garbage payloads
    for (std::uint64_t i = 0; i < queued; ++i)
      out.pending.push_back(random_item());
    out.active = rng.chance(0.5);
    out.current = random_item();
    out.sstate = static_cast<std::int32_t>(rng.range(0, flag_bound_));
    racc_[static_cast<std::size_t>(ch)] =
        static_cast<std::int32_t>(rng.range(0, flag_bound_));
  }
}

std::uint64_t Forward::queued_payloads() const noexcept {
  std::uint64_t total = local_.size();
  for (const OutLink& out : out_)
    total += out.pending.size() + (out.active ? 1 : 0);
  return total;
}

std::uint64_t forward_ghost_budget(sim::Simulator& sim) {
  std::uint64_t budget = 0;
  for (sim::EdgeId e = 0; e < sim.network().edge_count(); ++e)
    for (const Message& m : sim.network().edge_channel(e).contents())
      if (m.kind == MsgKind::FwdData) ++budget;
  for (int p = 0; p < sim.process_count(); ++p)
    budget += sim.process_as<svc::ServiceHost>(p).forward().queued_payloads();
  return budget;
}

namespace {

svc::HostConfig forward_only_config(
    sim::ProcessId self, int degree,
    std::shared_ptr<const sim::RoutingTable> routes,
    Forward::Options options) {
  svc::HostConfig cfg;
  cfg.with_pif = false;
  cfg.self = self;
  cfg.degree = degree;
  cfg.channel_capacity = options.channel_capacity;
  cfg.routes = std::move(routes);
  cfg.forward_options = options;
  return cfg;
}

}  // namespace

ForwardProcess::ForwardProcess(sim::ProcessId self, int degree,
                               std::shared_ptr<const sim::RoutingTable> routes,
                               Forward::Options options)
    : ServiceHost(forward_only_config(self, degree, std::move(routes),
                                      options)) {}

std::unique_ptr<sim::Simulator> forward_world(sim::Topology topology,
                                              std::size_t channel_capacity,
                                              std::uint64_t seed,
                                              Forward::Options options) {
  auto sim = std::make_unique<sim::Simulator>(std::move(topology),
                                              channel_capacity, seed);
  auto routes = std::make_shared<const sim::RoutingTable>(sim->topology());
  options.channel_capacity = static_cast<int>(channel_capacity);
  for (int p = 0; p < sim->process_count(); ++p)
    sim->add_process(std::make_unique<ForwardProcess>(
        p, sim->topology().degree(p), routes, options));
  return sim;
}

bool request_forward(sim::Simulator& sim, sim::ProcessId origin,
                     sim::ProcessId dst, const Value& payload) {
  auto& proc = sim.process_as<svc::ServiceHost>(origin);
  // The historic bool contract: any refusal reason collapses to false.
  if (proc.forward().submit(payload, dst) != ForwardSubmit::Accepted)
    return false;
  sim.log().emit(sim::Observation{sim.step_count(), origin,
                                  sim::Layer::Service, sim::ObsKind::FwdSubmit,
                                  dst, payload});
  return true;
}

}  // namespace snapstab::core
