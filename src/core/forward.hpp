// forward.hpp — a snap-stabilizing point-to-point message-forwarding
// service, the end-to-end layer the follow-up literature builds on PIF
// (Cournier–Dubois–Villain, "Two snap-stabilizing point-to-point
// communication protocols in message-switched networks").
//
// The service routes application payloads hop by hop along shortest paths
// (sim::RoutingTable — read-only configuration derived from the topology,
// which the paper's corruption model leaves intact). Every hop transfer is
// guarded by the *same flag-counting handshake that makes Protocol PIF
// snap-stabilizing*, specialized to a single directed link:
//
//   sender (per out-link)              receiver (per in-link)
//   ----------------------             ----------------------
//   sstate ∈ {0..F}, F = 2c+2          racc ∈ {0..F}
//   start transfer: sstate := 0
//   retransmit <FwdData, payload,      on FwdData ds:
//     header, sstate> while              accept payload iff racc != F-1
//     sstate < F                           and ds = F-1  (first sight)
//   on FwdEcho es:                       racc := ds
//     if es = sstate: sstate += 1        reply <FwdEcho, racc> if ds < F
//   sstate = F: hop acknowledged,
//     start next queued payload
//
// Lemma-4 argument, per hop: once a transfer starts, sstate climbs one by
// one and each increment consumes an echo carrying the exact current value.
// Arbitrary initial channel contents supply at most c stale echoes plus c
// echoes of stale data = 2c bogus increments, so with F = 2c+2 the final
// increments ride genuine round trips; FIFO order then guarantees the
// receiver's accept at flag F-1 fires exactly once per started transfer,
// with the genuinely transferred payload. Hence, from *any* initial
// configuration: every payload submitted after the faults cease is
// delivered to its destination exactly once. Initial-configuration garbage
// can still surface as deliveries (ghosts) — each corrupted buffer entry
// yields at most one, and core/specs.hpp's check_forward_spec bounds them.
//
// Bounded per-hop buffers: each out-link holds at most `hop_buffer` queued
// payloads. Local submissions that would overflow are refused (submit()
// returns false); relayed payloads are never dropped — the receiver simply
// stalls the hop handshake (ignores the accepting FwdData) until its relay
// queue has room, and the sender's retransmission completes the transfer
// later. Store-and-forward deadlock across a saturated cycle is the classic
// price of this scheme; see ROADMAP "Open items" for the linear-forwarding
// variant that removes it.
#ifndef SNAPSTAB_CORE_FORWARD_HPP
#define SNAPSTAB_CORE_FORWARD_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "msg/message.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace snapstab::core {

struct ForwardOptions {
  int channel_capacity = 1;  // known bound c; hop flag range is {0..2c+2}
  int hop_buffer = 8;        // max queued payloads per out-link
};

// Admission status of submit(). Everything except Accepted is a refusal:
// the submission is NOT covered by the exactly-once guarantee and must be
// resubmitted by the application once the refusing condition clears.
enum class ForwardSubmit : std::uint8_t {
  Accepted,         // queued on the first hop (or the local delivery queue)
  BufferFull,       // the first-hop out-link buffer is full (backpressure)
  NoRoute,          // dst is not a process of this topology
  SelfDestination,  // dst == self and the local delivery queue is full
};

inline constexpr int kForwardSubmitCount = 4;

constexpr const char* forward_submit_name(ForwardSubmit s) noexcept {
  static_assert(kForwardSubmitCount ==
                    static_cast<int>(ForwardSubmit::SelfDestination) + 1,
                "new ForwardSubmit: update count and forward_submit_name");
  switch (s) {
    case ForwardSubmit::Accepted: return "accepted";
    case ForwardSubmit::BufferFull: return "buffer-full";
    case ForwardSubmit::NoRoute: return "no-route";
    case ForwardSubmit::SelfDestination: return "self-destination";
  }
  return "?";
}

class Forward {
 public:
  using Options = ForwardOptions;

  // `routes` is shared by every process of the world (it is a pure function
  // of the topology). `self` is this process's global id, `degree` its
  // incident-channel count in the topology the table was built from.
  Forward(sim::ProcessId self, int degree,
          std::shared_ptr<const sim::RoutingTable> routes,
          Options options = {});

  sim::ProcessId self() const noexcept { return self_; }
  std::int32_t flag_bound() const noexcept { return flag_bound_; }
  int hop_buffer() const noexcept { return options_.hop_buffer; }

  // Accepts `payload` for delivery at `dst`; anything except Accepted is a
  // refusal with its reason (see ForwardSubmit above).
  ForwardSubmit submit(const Value& payload, sim::ProcessId dst);

  // The wire sequence number the next accepted submission will carry in its
  // packed FwdHeader (20-bit field; see msg/message.hpp). The service layer
  // reads it before submit() to key end-to-end delivery matching.
  std::uint32_t next_wire_seq() const noexcept { return next_seq_ & 0xFFFFF; }

  // Optional delivery hook: called for every payload delivered *here*
  // (genuine and ghost alike), after the FwdDeliver observation, with the
  // unpacked routing header. The svc::ServiceHost uses it to record
  // (origin, seq, payload) for end-to-end session completion.
  void set_on_deliver(
      std::function<void(const FwdHeader&, const Value&)> hook) {
    on_deliver_ = std::move(hook);
  }

  // Spontaneous actions: deliver self-addressed submissions, start queued
  // transfers, retransmit active hops.
  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  // Receive action for FwdData / FwdEcho; other kinds are ignored
  // (returns false).
  bool handle_message(sim::Context& ctx, int ch, const Message& m);

  // Arbitrary initial state: scrambles handshake flags, sequence counter and
  // per-hop queues (queued garbage payloads are exactly the "corrupted
  // routing state" the snap-stabilization tests start from).
  void randomize(Rng& rng);

  // --- diagnostics ---
  std::uint64_t delivered_count() const noexcept { return delivered_; }
  std::uint64_t relayed_count() const noexcept { return relayed_; }
  std::uint64_t hops_acked() const noexcept { return acked_; }
  std::uint64_t discarded_invalid() const noexcept { return discarded_; }
  std::uint64_t stalled_accepts() const noexcept { return stalled_; }
  // Queued + in-transfer payloads — after randomize(), the number of ghost
  // deliveries this process's corrupted queues can still produce.
  std::uint64_t queued_payloads() const noexcept;

 private:
  struct Item {
    Value payload;
    std::int64_t header = 0;
  };
  struct OutLink {
    std::deque<Item> pending;
    bool active = false;
    Item current;
    std::int32_t sstate = 0;
  };

  int degree() const noexcept { return static_cast<int>(out_.size()); }
  void accept(sim::Context& ctx, const Message& m);
  void deliver(sim::Context& ctx, const Item& item);
  // The one definition of hop-buffer fullness: the stall check in
  // handle_message and the refusal in enqueue must agree, or accept()'s
  // post-stall enqueue assertion fires.
  bool link_full(const OutLink& out) const noexcept;
  // The one definition of the relay out-link for a destination: the stall
  // check and accept() must pick the same link for the same header, or
  // accept()'s post-stall enqueue assertion fires.
  int relay_index(sim::ProcessId dst) const;
  bool enqueue(int ch, const Item& item);
  std::int32_t clamp_flag(std::int32_t v) const noexcept;

  sim::ProcessId self_;
  std::shared_ptr<const sim::RoutingTable> routes_;
  Options options_;
  std::int32_t flag_bound_;
  std::function<void(const FwdHeader&, const Value&)> on_deliver_;

  std::vector<OutLink> out_;        // sender role, one per local index
  std::vector<std::int32_t> racc_;  // receiver role, one per local index
  std::deque<Item> local_;          // self-addressed, delivered on tick
  std::uint32_t next_seq_ = 0;

  std::uint64_t delivered_ = 0;
  std::uint64_t relayed_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t stalled_ = 0;
};

// The ForwardProcess simulator wrapper, forward_world, request_forward and
// forward_ghost_budget moved to core/forward_world.hpp (the wrapper is a
// svc::ServiceHost now, and this header must stay includable from there).

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_FORWARD_HPP
