// forward_world.hpp — simulator wiring for the forwarding service.
//
// Split out of forward.hpp: the per-node wrapper is a svc::ServiceHost
// (forward-only configuration) since PR 5, and forward.hpp itself must stay
// includable from svc/host.hpp. Everything here works uniformly over
// ForwardProcess worlds and full ServiceHost worlds (svc::service_world
// with forwarding enabled).
#ifndef SNAPSTAB_CORE_FORWARD_WORLD_HPP
#define SNAPSTAB_CORE_FORWARD_WORLD_HPP

#include <memory>

#include "core/forward.hpp"
#include "svc/host.hpp"

namespace snapstab::core {

// Wrapper running the forwarding service alone (no PIF stack) — a named
// forward-only ServiceHost, kept for the historic constructor signature.
class ForwardProcess final : public svc::ServiceHost {
 public:
  ForwardProcess(sim::ProcessId self, int degree,
                 std::shared_ptr<const sim::RoutingTable> routes,
                 Forward::Options options = {});
};

// Builds a forwarding world: one ForwardProcess per node of `topology`, all
// sharing one routing table.
std::unique_ptr<sim::Simulator> forward_world(sim::Topology topology,
                                              std::size_t channel_capacity,
                                              std::uint64_t seed,
                                              Forward::Options options = {});

// Submits a payload at `origin` for `dst` and records the submission in the
// observation log (the event check_forward_spec matches deliveries
// against). Returns false — and records nothing — when the service refused
// the submission (LEGACY SHIM: any ForwardSubmit refusal reason collapses
// to false; svc::Client::submit surfaces the reason).
bool request_forward(sim::Simulator& sim, sim::ProcessId origin,
                     sim::ProcessId dst, const Value& payload);

// The number of corrupted entries in `sim`'s *current* configuration that
// can lawfully surface as ghost deliveries: forged FwdData messages in the
// channels plus payloads sitting in per-hop queues. Capture it right after
// fuzzing and pass it as ForwardSpecOptions::max_ghost_deliveries — the
// single definition the tests, exp_forwarding and the svc session tests
// use. Works over any world whose processes are ServiceHosts with the
// forwarding service configured.
std::uint64_t forward_ghost_budget(sim::Simulator& sim);

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_FORWARD_WORLD_HPP
