#include "core/idl.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

Idl::Idl(std::int64_t own_id, int degree, Pif& pif)
    : own_id_(own_id), degree_(degree), pif_(pif) {
  SNAPSTAB_CHECK(degree_ >= 1);
  st_.min_id = own_id_;
  st_.id_tab.assign(static_cast<std::size_t>(degree_), 0);
}

void Idl::request() { st_.request = RequestState::Wait; }

bool Idl::tick_enabled() const noexcept {
  if (st_.request == RequestState::Wait) return true;  // A1
  // EQUIVALENT: dropping the PIF guard here is unobservable. The only
  // consumer is svc::ServiceHost::tick_enabled(), an OR over the layers, and
  // Pif::tick_enabled() is exactly !pif_.done() — so in every state where the
  // two guards differ (In ∧ ¬PIF.Done) the PIF layer already enables the
  // host, and tick() re-checks pif_.done() itself (A2) before deciding.
  return st_.request == RequestState::In &&
         MUTATION_EQUIVALENT("idl.enabled.ignore_pif", pif_.done(),
                             true);  // A2
}

void Idl::tick(sim::Context& ctx) {
  // A1 — start: reset the accumulator and launch the PIF of the IDL query.
  if (st_.request == RequestState::Wait) {
    st_.request = RequestState::In;
    st_.min_id = MUTATION_POINT("idl.a1.keep_min", own_id_, st_.min_id);
    if (MUTATION_POINT("idl.a1.skip_query", true, false))
      pif_.request(Value::token(Token::IdlQuery));
    ctx.observe(sim::Layer::Idl, sim::ObsKind::Start, -1,
                Value::integer(own_id_));
    return;  // the PIF starts on a later activation; A2 cannot hold yet
  }
  // A2 — termination: the underlying PIF decided.
  if (st_.request == RequestState::In &&
      MUTATION_POINT("idl.a2.early_decide", pif_.done(), true)) {
    st_.request = RequestState::Done;
    ctx.observe(sim::Layer::Idl, sim::ObsKind::Decide, -1,
                Value::integer(st_.min_id));
  }
}

Value Idl::on_brd(sim::Context&, int) {
  // A3 — feed our identity back to the broadcaster.
  return Value::integer(
      MUTATION_POINT("idl.a3.misreport_id", own_id_, own_id_ + 1));
}

void Idl::on_fck(sim::Context&, int ch, const Value& f) {
  // A4 — collect the neighbor's identity. The feedback of a *started*
  // computation is a genuine identity (Theorem 2); a garbage payload can
  // only reach here for a non-started computation, whose results carry no
  // guarantee anyway — it is folded in without further ado.
  const std::int64_t qid = f.as_int(/*fallback=*/0);
  if (MUTATION_POINT("idl.a4.drop_table", true, false))
    st_.id_tab[static_cast<std::size_t>(ch)] = qid;
  st_.min_id = MUTATION_POINT("idl.a4.fold_max", (std::min(st_.min_id, qid)),
                              (std::max(st_.min_id, qid)));
}

void Idl::randomize(Rng& rng) {
  st_.request = random_request_state(rng);
  st_.min_id = rng.range(-1000, 1000);
  for (auto& id : st_.id_tab) id = rng.range(-1000, 1000);
}

}  // namespace snapstab::core
