// idl.hpp — Protocol IDL (Algorithm 2 of the paper): IDs-Learning.
//
// A direct application of Protocol PIF: broadcast the IDL query, collect
// every neighbor's identity in the feedbacks. After one complete (started)
// computation, ID-Tab[q] holds the identity of the neighbor on channel q
// and minID holds the minimum identity of the system — which is how the
// mutual-exclusion layer elects its leader.
//
// Actions (paper numbering):
//   A1  Request = Wait -> Request := In; minID := ID;
//                         PIF.B-Mes := IDL; PIF.Request := Wait     (start)
//   A2  Request = In and PIF.Request = Done -> Request := Done  (terminate)
//   A3  receive-brd<IDL> from q -> PIF.F-Mes[q] := ID
//   A4  receive-fck<qID> from q -> ID-Tab[q] := qID; minID := min(...)
//
// A3/A4 are invoked through the protocol-stack dispatch (stack.hpp): a
// received broadcast payload IDL selects A3; a feedback while our own
// PIF.B-Mes is IDL selects A4.
#ifndef SNAPSTAB_CORE_IDL_HPP
#define SNAPSTAB_CORE_IDL_HPP

#include <cstdint>
#include <vector>

#include "core/pif.hpp"
#include "core/request.hpp"

namespace snapstab::core {

class Idl {
 public:
  Idl(std::int64_t own_id, int degree, Pif& pif);

  void request();  // external Request := Wait
  RequestState request_state() const noexcept { return st_.request; }
  bool done() const noexcept { return st_.request == RequestState::Done; }

  std::int64_t own_id() const noexcept { return own_id_; }
  std::int64_t min_id() const noexcept { return st_.min_id; }
  std::int64_t id_tab(int ch) const {
    return st_.id_tab[static_cast<std::size_t>(ch)];
  }

  // Spontaneous actions A1 and A2, in text order.
  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  // Dispatch targets (see stack.hpp).
  Value on_brd(sim::Context& ctx, int ch);                  // A3
  void on_fck(sim::Context& ctx, int ch, const Value& f);   // A4

  void randomize(Rng& rng);

  struct State {
    RequestState request = RequestState::Done;
    std::int64_t min_id = 0;
    std::vector<std::int64_t> id_tab;
  };
  const State& state() const noexcept { return st_; }
  State& mutable_state() noexcept { return st_; }

 private:
  std::int64_t own_id_;
  int degree_;
  Pif& pif_;
  State st_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_IDL_HPP
