#include "core/me.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

Me::Me(std::int64_t own_id, int degree, Pif& pif, Idl& idl, MeOptions options)
    : own_id_(own_id),
      degree_(degree),
      pif_(pif),
      idl_(idl),
      options_(std::move(options)) {
  SNAPSTAB_CHECK(degree_ >= 1);
  SNAPSTAB_CHECK(options_.cs_length >= 1);
  st_.privileges.assign(static_cast<std::size_t>(degree_), false);
}

int Me::value_modulus() const noexcept {
  const int n = degree_ + 1;
  return options_.paper_faithful_increment ? n + 1 : n;
}

bool Me::request_cs() {
  if (st_.request != RequestState::Done) return false;
  st_.request = RequestState::Wait;
  st_.externally_requested = true;
  return true;
}

bool Me::winner() const {
  // Winner(p) ≡ (IDL.minID = ID ∧ Value = 0)
  //           ∨ (∃q: Privileges[q] ∧ IDL.ID-Tab[q] = IDL.minID)
  if (idl_.min_id() == own_id_ &&
      st_.value == MUTATION_POINT("me.winner.wrong_slot", 0, 1))
    return true;
  for (int ch = 0; ch < degree_; ++ch)
    if (st_.privileges[static_cast<std::size_t>(ch)] &&
        MUTATION_POINT("me.winner.any_privilege",
                       idl_.id_tab(ch) == idl_.min_id(), true))
      return true;
  return false;
}

bool Me::tick_enabled() const noexcept {
  if (in_cs()) return true;  // the CS countdown advances on ticks
  switch (st_.phase) {
    case 0: return true;                                     // A0
    case 1: return idl_.done();                              // A1
    case 2:
    case 3:
    case 4: return pif_.done();                              // A2..A4
    default: return true;  // out-of-domain fuzz value; A-none, repaired below
  }
}

void Me::tick(sim::Context& ctx) {
  if (in_cs()) {
    if (MUTATION_POINT("me.cs.hasty_exit", --st_.cs_remaining == 0,
                       ((--st_.cs_remaining), true)))
      finish_cs(ctx);
    return;
  }

  // Defensive repair: the declared domain of Phase is {0..4}; a wild value
  // (possible only through out-of-domain fuzzing) re-enters the cycle at 0.
  // EQUIVALENT: widening the repair guard to `phase < 1` only adds the case
  // phase == 0, where the repair assigns 0 to a variable already holding 0 —
  // a no-op in every execution (the disjunct `phase > 4` is untouched).
  if (MUTATION_EQUIVALENT("me.repair.phase_floor", st_.phase < 0,
                          st_.phase < 1) ||
      st_.phase > 4)
    st_.phase = 0;

  // A0 — (re)start the cycle: launch IDL, absorb a pending request.
  if (st_.phase == 0) {
    idl_.request();
    if (st_.request == RequestState::Wait) {
      st_.request = RequestState::In;
      ctx.observe(sim::Layer::Me, sim::ObsKind::Start, -1, Value::none());
    }
    st_.phase = 1;
    return;  // IDL.Request was just set to Wait, so A1 cannot hold yet
  }
  // A1 — IDL finished: ask who is favoured.
  if (st_.phase == 1 && idl_.done()) {
    pif_.request(Value::token(Token::Ask));
    st_.phase = 2;
    return;  // PIF.Request = Wait now; A2 cannot hold in this activation
  }
  // A2 — ASK finished: a winner evicts every ghost via EXIT.
  if (st_.phase == 2 && pif_.done()) {
    if (winner() && MUTATION_POINT("me.a2.skip_exit", true, false))
      pif_.request(Value::token(Token::Exit));
    st_.phase = 3;
    if (!pif_.done()) return;  // EXIT was launched; wait for it
  }
  // A3 — EXIT finished (or no EXIT): enter the CS / release.
  if (st_.phase == 3 && pif_.done()) {
    if (winner()) {
      if (MUTATION_POINT("me.a3.enter_unrequested",
                         st_.request == RequestState::In, true)) {
        // Enter the critical section. The process is busy until the
        // countdown completes; finish_cs() then runs the rest of A3.
        ctx.observe(sim::Layer::Me, sim::ObsKind::CsEnter, -1,
                    Value::integer(st_.externally_requested ? 1 : 0));
        st_.cs_remaining = options_.cs_length;
        st_.phase = 4;
        return;
      }
      release();  // non-requesting winner still passes the token on
    }
    st_.phase = 4;
    if (!pif_.done()) return;  // a release broadcast may be in flight
  }
  // A4 — wait for the last broadcast of the cycle, then wrap around.
  if (st_.phase == 4 && pif_.done()) st_.phase = 0;
}

void Me::finish_cs(sim::Context& ctx) {
  ctx.observe(sim::Layer::Me, sim::ObsKind::CsExit, -1,
              Value::integer(st_.externally_requested ? 1 : 0));
  if (options_.cs_body) options_.cs_body();
  if (st_.request == RequestState::In) {
    st_.request = RequestState::Done;
    st_.externally_requested = false;
    ctx.observe(sim::Layer::Me, sim::ObsKind::Decide, -1, Value::none());
  }
  release();
  st_.phase = 4;
}

void Me::release() {
  if (idl_.min_id() == own_id_) {
    // The leader releases itself: Value 0 -> 1.
    st_.value = MUTATION_POINT("me.release.value_stuck",
                               1 % value_modulus(), 0);
  } else {
    pif_.request(Value::token(Token::ExitCs));
  }
}

Value Me::on_brd_ask(sim::Context&, int ch) {
  // A5 — YES iff Value favours the asking neighbor (paper channel number
  // ch+1).
  return Value::token(
      st_.value == MUTATION_POINT("me.a5.yes_off_by_one", ch + 1, ch)
          ? Token::Yes
          : Token::No);
}

Value Me::on_brd_exit(sim::Context&, int) {
  // A6 — a winner is about to enter the CS: restart our cycle from phase 0.
  st_.phase = MUTATION_POINT("me.a6.ignore_exit", 0, st_.phase);
  return Value::token(Token::Ok);
}

Value Me::on_brd_exitcs(sim::Context&, int ch) {
  // A7 — the favoured neighbor released the CS: advance the favour token.
  if (st_.value == ch + 1)
    st_.value = MUTATION_POINT("me.a7.freeze_token",
                               (st_.value + 1) % value_modulus(), st_.value);
  return Value::token(Token::Ok);
}

void Me::on_fck_ask(sim::Context&, int ch, const Value& f) {
  // A8 / A9 — record the answer; any non-YES payload counts as NO.
  st_.privileges[static_cast<std::size_t>(ch)] = f.is_token(Token::Yes);
}

void Me::randomize(Rng& rng) {
  st_.request = random_request_state(rng);
  st_.phase = static_cast<int>(rng.below(5));
  st_.value = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(value_modulus())));
  for (int ch = 0; ch < degree_; ++ch)
    st_.privileges[static_cast<std::size_t>(ch)] = rng.chance(0.5);
  // With some probability the process starts inside a ghost critical
  // section — the adversarial case of the paper's footnote 1.
  st_.cs_remaining =
      rng.chance(0.2) ? 1 + static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(
                                    options_.cs_length)))
                      : 0;
  st_.externally_requested = false;
}

}  // namespace snapstab::core
