// me.hpp — Protocol ME (Algorithm 3 of the paper): snap-stabilizing mutual
// exclusion.
//
// The process with the smallest identity (the *leader* L) arbitrates: its
// variable Value designates the process currently authorized to enter the
// critical section ("L favours p"): Value = 0 favours L itself, Value = q
// (a local channel number, 1..n-1 in the paper, local index q-1 here)
// favours the neighbor on that channel.
//
// Each process cycles through five phases; every phase-change waits for the
// termination of the sub-computation launched by the previous phase:
//
//   Phase 0 (A0): start an IDL computation; take a pending request into
//                 account (Request: Wait -> In).
//   Phase 1 (A1): IDL done — the leader is known; PIF-broadcast ASK.
//   Phase 2 (A2): ASK done — Privileges[] holds everyone's answer; if
//                 Winner, PIF-broadcast EXIT to force every other process
//                 back to phase 0 (kills ghost winners).
//   Phase 3 (A3): if Winner: execute the CS when Request = In, then release
//                 — the leader advances Value from 0 to 1 itself, a
//                 non-leader PIF-broadcasts EXITCS so the leader advances.
//   Phase 4 (A4): wait for the release broadcast to finish; back to 0.
//
// Receive handlers (dispatched via the shared PIF, see stack.hpp):
//   A5 receive-brd<ASK> from q    -> feedback YES iff Value = q
//   A6 receive-brd<EXIT> from q   -> Phase := 0, feedback OK
//   A7 receive-brd<EXITCS> from q -> if Value = q: advance Value; OK
//   A8/A9 receive-fck<YES|NO>     -> Privileges[q] := true|false
//   A10 receive-fck<OK>           -> nothing
//
// Deviations from the paper (see DESIGN.md §6):
//  * Value advances modulo n, not the paper's literal (n+1): the declared
//    domain is {0..n-1} and value n would favour nobody forever — a
//    deadlock, reproduced by `paper_faithful_increment` and the regression
//    tests.
//  * The critical section occupies an interval of `cs_length` activations
//    during which the process is busy (receives nothing); the paper folds
//    the CS into atomic action A3, which would make mutual-exclusion
//    violations unobservable in a faithful simulator.
#ifndef SNAPSTAB_CORE_ME_HPP
#define SNAPSTAB_CORE_ME_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/idl.hpp"
#include "core/pif.hpp"
#include "core/request.hpp"

namespace snapstab::core {

struct MeOptions {
  int cs_length = 3;  // critical-section duration in activations (>= 1)
  // Use the paper's literal A7 increment `(Value+1) mod (n+1)`; deadlocks
  // once Value reaches n (experiment E5 regression).
  bool paper_faithful_increment = false;
  // Optional body executed when the critical section completes.
  std::function<void()> cs_body;
};

class Me {
 public:
  Me(std::int64_t own_id, int degree, Pif& pif, Idl& idl, MeOptions options);

  // External request for the critical section (Request := Wait). Ignored
  // while a previous request is still being served, per the paper's usage
  // rule. Returns true when the request was accepted. Callers inside the
  // simulator should use core::request_cs (stack.hpp), which also records
  // the request in the observation log.
  bool request_cs();

  RequestState request_state() const noexcept { return st_.request; }
  int phase() const noexcept { return st_.phase; }
  int value() const noexcept { return st_.value; }
  bool in_cs() const noexcept { return st_.cs_remaining > 0; }
  bool privilege(int ch) const {
    return st_.privileges[static_cast<std::size_t>(ch)];
  }
  std::int64_t own_id() const noexcept { return own_id_; }

  // The paper's Winner(p) predicate.
  bool winner() const;

  // True when this process currently believes it is the leader.
  bool believes_leader() const { return idl_.min_id() == own_id_; }

  // Spontaneous actions A0..A4 in text order, plus the CS countdown.
  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  // Dispatch targets (see stack.hpp).
  Value on_brd_ask(sim::Context& ctx, int ch);     // A5
  Value on_brd_exit(sim::Context& ctx, int ch);    // A6
  Value on_brd_exitcs(sim::Context& ctx, int ch);  // A7
  void on_fck_ask(sim::Context& ctx, int ch, const Value& f);  // A8 / A9

  void randomize(Rng& rng);

  struct State {
    RequestState request = RequestState::Done;
    int phase = 0;
    int value = 0;
    std::vector<bool> privileges;
    int cs_remaining = 0;  // > 0 while inside the critical section
    // Instrumentation, not protocol state: set only by request_cs(), so the
    // specification checker can tell externally-requested computations from
    // ghost computations present in the arbitrary initial configuration.
    bool externally_requested = false;
  };
  const State& state() const noexcept { return st_; }
  State& mutable_state() noexcept { return st_; }

 private:
  int value_modulus() const noexcept;
  void release();  // the token hand-off half of A3
  void finish_cs(sim::Context& ctx);

  std::int64_t own_id_;
  int degree_;
  Pif& pif_;
  Idl& idl_;
  MeOptions options_;
  State st_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_ME_HPP
