#include "core/pif.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

Pif::Pif(int degree, int channel_capacity, std::int32_t flag_bound_override)
    : degree_(degree),
      capacity_(channel_capacity),
      flag_bound_(flag_bound_override != 0
                      ? flag_bound_override
                      : MUTATION_POINT("pif.flag_bound.short",
                                       2 * channel_capacity + 2,
                                       2 * channel_capacity + 1)) {
  SNAPSTAB_CHECK_MSG(degree_ >= 1, "PIF needs at least one neighbor");
  SNAPSTAB_CHECK_MSG(capacity_ >= 1,
                     "snap-stabilization requires a known capacity bound");
  SNAPSTAB_CHECK_MSG(flag_bound_ >= 1, "flag bound must be positive");
  const auto d = static_cast<std::size_t>(degree_);
  st_.f_mes.assign(d, Value::token(Token::Ok));
  // The constructed state is quiescent: no computation running, every
  // handshake complete. Snap-stabilization of course never relies on this —
  // randomize() overwrites everything.
  st_.state.assign(d, flag_bound_);
  st_.neig_state.assign(d, flag_bound_);
}

void Pif::request(const Value& b) {
  st_.b_mes = b;
  st_.request = RequestState::Wait;
}

std::int32_t Pif::clamp_flag(std::int32_t v) const noexcept {
  return MUTATION_POINT("pif.clamp.shrink_domain",
                        (std::clamp<std::int32_t>(v, 0, flag_bound_)),
                        (std::clamp<std::int32_t>(v, 0, flag_bound_ - 1)));
}

void Pif::send_to(sim::Context& ctx, int ch) {
  ctx.send(ch, Message::pif(st_.b_mes,
                            st_.f_mes[static_cast<std::size_t>(ch)],
                            st_.state[static_cast<std::size_t>(ch)],
                            st_.neig_state[static_cast<std::size_t>(ch)]));
}

void Pif::tick(sim::Context& ctx) {
  // A1 — start.
  if (st_.request == RequestState::Wait) {
    st_.request = MUTATION_POINT("pif.a1.start_done", RequestState::In,
                                 RequestState::Done);
    std::fill(st_.state.begin(), st_.state.end(),
              MUTATION_POINT("pif.a1.stale_state", 0, 1));
    ctx.observe(sim::Layer::Pif, sim::ObsKind::Start, -1, st_.b_mes);
  }
  // A2 — decide, or retransmit to every unfinished neighbor.
  if (st_.request == RequestState::In) {
    const auto at_bound = [this](std::int32_t s) { return s == flag_bound_; };
    const bool all_done =
        MUTATION_POINT("pif.a2.decide_on_any",
                       (std::all_of(st_.state.begin(), st_.state.end(),
                                    at_bound)),
                       (std::any_of(st_.state.begin(), st_.state.end(),
                                    at_bound)));
    if (all_done) {
      st_.request = RequestState::Done;
      ctx.observe(sim::Layer::Pif, sim::ObsKind::Decide, -1, st_.b_mes);
      if (cb_.on_decide) cb_.on_decide(ctx);
    } else {
      for (int ch = 0; ch < degree_; ++ch)
        if (MUTATION_POINT(
                "pif.a2.retransmit_done_only",
                st_.state[static_cast<std::size_t>(ch)] != flag_bound_,
                st_.state[static_cast<std::size_t>(ch)] == flag_bound_))
          send_to(ctx, ch);
    }
  }
}

bool Pif::handle_message(sim::Context& ctx, int ch, const Message& m) {
  if (m.kind != MsgKind::Pif) return false;
  SNAPSTAB_CHECK(ch >= 0 && ch < degree_);
  const auto chi = static_cast<std::size_t>(ch);
  const std::int32_t q_state = m.state;       // sender's flag for this link
  const std::int32_t p_state = m.neig_state;  // sender's copy of our flag
  const std::int32_t brd_flag = flag_bound_ - 1;

  // receive-brd: first sight of the sender's flag reaching F-1 announces the
  // sender's broadcast payload; the application installs the feedback.
  if (MUTATION_POINT("pif.a3.rereceive_brd",
                     st_.neig_state[chi] != brd_flag && q_state == brd_flag,
                     q_state == brd_flag)) {
    ctx.observe(sim::Layer::Pif, sim::ObsKind::RecvBrd, ch, m.b);
    st_.f_mes[chi] =
        cb_.on_brd ? cb_.on_brd(ctx, ch, m.b) : Value::token(Token::Ok);
  }

  // Out-of-domain flags (wild bytes from a corrupted wire) are stored
  // clamped into the declared domain; comparisons below use the raw value,
  // which can only make a match *less* likely — safety is preserved.
  st_.neig_state[chi] = clamp_flag(q_state);

  if (st_.state[chi] == p_state &&
      MUTATION_POINT("pif.a3.count_past_bound",
                     st_.state[chi] < flag_bound_, true)) {
    ++st_.state[chi];
    if (st_.state[chi] == flag_bound_) {
      ctx.observe(sim::Layer::Pif, sim::ObsKind::RecvFck, ch, m.f);
      if (cb_.on_fck) cb_.on_fck(ctx, ch, m.f);
    }
  }

  if (MUTATION_POINT("pif.a3.mute_final_echo", q_state < flag_bound_,
                     q_state < flag_bound_ - 1))
    send_to(ctx, ch);
  return true;
}

void Pif::randomize(Rng& rng) {
  st_.request = random_request_state(rng);
  st_.b_mes = Value::random(rng);
  for (int ch = 0; ch < degree_; ++ch) {
    const auto chi = static_cast<std::size_t>(ch);
    st_.f_mes[chi] = Value::random(rng);
    st_.state[chi] = static_cast<std::int32_t>(rng.range(0, flag_bound_));
    st_.neig_state[chi] = static_cast<std::int32_t>(rng.range(0, flag_bound_));
  }
}

}  // namespace snapstab::core
