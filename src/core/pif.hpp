// pif.hpp — Protocol PIF (Algorithm 1 of the paper).
//
// Snap-stabilizing Propagation of Information with Feedback over a
// fully-connected network with FIFO, lossy, bounded-capacity channels.
//
// Per neighbor q the process keeps two flags:
//   State[q]     ∈ {0..F}  — progress of the handshake with q
//                            (F = flag_bound = 2c + 2 for capacity c;
//                             the paper's capacity-1 instance has F = 4);
//   NeigState[q] ∈ {0..F}  — the last State value received from q.
//
// Actions (paper numbering):
//   A1  Request = Wait  ->  Request := In; State[q] := 0 for all q   (start)
//   A2  Request = In    ->  if all State[q] = F then Request := Done (decide)
//                           else retransmit <PIF, B-Mes, F-Mes[q],
//                                            State[q], NeigState[q]> to
//                           every q with State[q] != F
//   A3  receive <PIF, B, F, qState, pState> from q ->
//         if NeigState[q] != F-1 and qState = F-1: generate receive-brd<B>
//         NeigState[q] := qState
//         if State[q] = pState and State[q] < F: State[q] += 1
//             if State[q] = F: generate receive-fck<F>
//         if qState < F: echo <PIF, B-Mes, F-Mes[q], State[q], NeigState[q]>
//
// Why it is snap-stabilizing (Lemma 4): after a start, State[q] climbs one
// by one; at most 2c + 1 increments can be caused by stale data (c messages
// initially in each direction of the link, plus q's initial NeigState), so
// the transition (F-2) -> (F-1) is reachable only via a genuine round trip,
// and the final (F-1) -> F carries the genuine feedback.
//
// The capacity-c generalization (flag range {0..2c+2}) is the extension the
// paper calls straightforward (Section 4); experiment E7 validates it.
#ifndef SNAPSTAB_CORE_PIF_HPP
#define SNAPSTAB_CORE_PIF_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/request.hpp"
#include "msg/message.hpp"
#include "sim/process.hpp"

namespace snapstab::core {

class Pif {
 public:
  struct Callbacks {
    // receive-brd<B> from channel ch: the application returns the feedback
    // message to install in F-Mes[ch] (the paper's footnote 2).
    std::function<Value(sim::Context&, int ch, const Value& b)> on_brd;
    // receive-fck<F> from channel ch (only for the initiator's own
    // computation, once per neighbor, at the State[ch] = F switch).
    std::function<void(sim::Context&, int ch, const Value& f)> on_fck;
    // Decision event (Request: In -> Done).
    std::function<void(sim::Context&)> on_decide;
  };

  // `degree` is n-1; `channel_capacity` is the known bound c >= 1 on the
  // channel capacity the protocol is configured for. A non-zero
  // `flag_bound_override` replaces the derived bound 2c+2 — FOR THE
  // ABLATION EXPERIMENT ONLY (exp_ablation shows every smaller bound is
  // unsound, which is the quantitative content of Lemma 4).
  explicit Pif(int degree, int channel_capacity = 1,
               std::int32_t flag_bound_override = 0);

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  // External request: sets B-Mes := b and Request := Wait. The application
  // must not re-request before the decision (Hypothesis 1); re-requesting
  // anyway is tolerated and simply restarts the computation — the ME layer
  // relies on this when an EXIT broadcast resets a cycle.
  void request(const Value& b);

  RequestState request_state() const noexcept { return st_.request; }
  bool done() const noexcept { return st_.request == RequestState::Done; }

  int degree() const noexcept { return degree_; }
  int capacity() const noexcept { return capacity_; }
  // F = 2c + 2: the flag value at which the handshake with a neighbor is
  // complete; also the number of increments a started computation performs.
  std::int32_t flag_bound() const noexcept { return flag_bound_; }

  // Spontaneous actions A1 and A2, in text order.
  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept {
    return st_.request != RequestState::Done;
  }

  // Receive action A3. Returns false (message ignored) for non-PIF kinds.
  bool handle_message(sim::Context& ctx, int ch, const Message& m);

  // Arbitrary initial state over the declared domains.
  void randomize(Rng& rng);

  // Full state exposure: the proofs reason about exact variable values and
  // the tests reproduce those arguments (Figure 1, Lemmas 2-6), so tests and
  // fuzzers may inspect and set the state directly.
  struct State {
    RequestState request = RequestState::Done;
    Value b_mes;
    std::vector<Value> f_mes;
    std::vector<std::int32_t> state;
    std::vector<std::int32_t> neig_state;
  };
  const State& state() const noexcept { return st_; }
  State& mutable_state() noexcept { return st_; }

  const Value& b_mes() const noexcept { return st_.b_mes; }

 private:
  void send_to(sim::Context& ctx, int ch);
  std::int32_t clamp_flag(std::int32_t v) const noexcept;

  int degree_;
  int capacity_;
  std::int32_t flag_bound_;
  Callbacks cb_;
  State st_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_PIF_HPP
