// request.hpp — the three-valued request interface of the paper.
//
// Every protocol exposes an input/output variable Request:
//   Wait — the application requested a computation (set externally);
//   In   — a computation is in progress (set by the starting action);
//   Done — the last computation terminated (the decision event).
#ifndef SNAPSTAB_CORE_REQUEST_HPP
#define SNAPSTAB_CORE_REQUEST_HPP

#include <cstdint>

#include "common/rng.hpp"

namespace snapstab::core {

enum class RequestState : std::uint8_t { Wait, In, Done };

inline constexpr int kRequestStateCount = 3;

// Exhaustive by construction: -Wswitch flags a missing enumerator, the
// static_assert forces the count (and every helper switching on it) to be
// revisited when a state is added — a new state can't silently print "?".
constexpr const char* request_state_name(RequestState s) noexcept {
  static_assert(kRequestStateCount ==
                    static_cast<int>(RequestState::Done) + 1,
                "new RequestState: update kRequestStateCount and every "
                "switch over the enum");
  switch (s) {
    case RequestState::Wait: return "Wait";
    case RequestState::In: return "In";
    case RequestState::Done: return "Done";
  }
  return "?";
}

inline RequestState random_request_state(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return RequestState::Wait;
    case 1: return RequestState::In;
    default: return RequestState::Done;
  }
}

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_REQUEST_HPP
