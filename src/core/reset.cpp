#include "core/reset.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "mutate/mutate.hpp"

namespace snapstab::core {

Reset::Reset(Pif& pif, std::function<void(sim::Context&)> on_reset)
    : pif_(pif), on_reset_(std::move(on_reset)) {}

void Reset::request() { request_ = RequestState::Wait; }

bool Reset::tick_enabled() const noexcept {
  if (MUTATION_POINT("reset.enabled.never_start",
                     request_ == RequestState::Wait, false))
    return true;
  return request_ == RequestState::In && pif_.done();
}

void Reset::tick(sim::Context& ctx) {
  if (request_ == RequestState::Wait) {
    request_ = RequestState::In;
    // The initiator resets itself at the start, then propagates the order.
    if (MUTATION_POINT("reset.a1.skip_self", true, false)) {
      ++executed_;
      if (on_reset_) on_reset_(ctx);
    }
    pif_.request(Value::token(
        MUTATION_POINT("reset.a1.wrong_token", Token::Reset, Token::Ok)));
    ctx.observe(sim::Layer::Service, sim::ObsKind::Start, -1,
                Value::token(Token::Reset));
    return;
  }
  if (request_ == RequestState::In &&
      MUTATION_POINT("reset.a2.early_done", pif_.done(), true)) {
    request_ = RequestState::Done;
    ctx.observe(sim::Layer::Service, sim::ObsKind::Decide, -1,
                Value::token(Token::Reset));
  }
}

Value Reset::on_brd(sim::Context& ctx, int) {
  if (MUTATION_POINT("reset.brd.skip_execute", true, false)) {
    executed_ += MUTATION_POINT("reset.brd.double_execute", 1, 2);
    if (on_reset_) on_reset_(ctx);
  }
  return Value::token(Token::Ok);
}

void Reset::randomize(Rng& rng) { request_ = random_request_state(rng); }

}  // namespace snapstab::core
