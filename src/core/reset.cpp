#include "core/reset.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

namespace snapstab::core {

Reset::Reset(Pif& pif, std::function<void(sim::Context&)> on_reset)
    : pif_(pif), on_reset_(std::move(on_reset)) {}

void Reset::request() { request_ = RequestState::Wait; }

bool Reset::tick_enabled() const noexcept {
  if (request_ == RequestState::Wait) return true;
  return request_ == RequestState::In && pif_.done();
}

void Reset::tick(sim::Context& ctx) {
  if (request_ == RequestState::Wait) {
    request_ = RequestState::In;
    // The initiator resets itself at the start, then propagates the order.
    ++executed_;
    if (on_reset_) on_reset_(ctx);
    pif_.request(Value::token(Token::Reset));
    ctx.observe(sim::Layer::Service, sim::ObsKind::Start, -1,
                Value::token(Token::Reset));
    return;
  }
  if (request_ == RequestState::In && pif_.done()) {
    request_ = RequestState::Done;
    ctx.observe(sim::Layer::Service, sim::ObsKind::Decide, -1,
                Value::token(Token::Reset));
  }
}

Value Reset::on_brd(sim::Context& ctx, int) {
  ++executed_;
  if (on_reset_) on_reset_(ctx);
  return Value::token(Token::Ok);
}

void Reset::randomize(Rng& rng) { request_ = random_request_state(rng); }

}  // namespace snapstab::core
