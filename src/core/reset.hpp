// reset.hpp — snap-stabilizing global reset, a PIF-based service.
//
// The paper motivates PIF precisely because "many fundamental protocols,
// e.g., Reset, Snapshot, Leader Election, and Termination Detection, can be
// solved using a PIF-based solution" (§4.1). This is the Reset: the
// initiator PIF-broadcasts a RESET order; every process runs its
// application reset hook inside the receive-brd event and acknowledges.
// When the computation decides, the initiator knows that
//   (a) every process executed the hook during the window (PIF
//       Correctness), and
//   (b) no pre-reset message survives in its incident channels (Property 1)
// — all of it from any initial configuration, because PIF is
// snap-stabilizing.
#ifndef SNAPSTAB_CORE_RESET_HPP
#define SNAPSTAB_CORE_RESET_HPP

#include <functional>

#include "core/pif.hpp"
#include "core/request.hpp"

namespace snapstab::core {

class Reset {
 public:
  // `on_reset` is the application hook executed at every process when the
  // reset order arrives (may be empty).
  Reset(Pif& pif, std::function<void(sim::Context&)> on_reset);

  void request();  // external Request := Wait
  RequestState request_state() const noexcept { return request_; }
  bool done() const noexcept { return request_ == RequestState::Done; }

  // Number of reset orders this process has executed (diagnostic).
  std::uint64_t resets_executed() const noexcept { return executed_; }

  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  // Dispatch target for a received RESET broadcast.
  Value on_brd(sim::Context& ctx, int ch);

  void randomize(Rng& rng);

 private:
  Pif& pif_;
  std::function<void(sim::Context&)> on_reset_;
  RequestState request_ = RequestState::Done;
  std::uint64_t executed_ = 0;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_RESET_HPP
