#include "core/snapshot.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace snapstab::core {

Snapshot::Snapshot(Pif& pif, int degree, std::function<Value()> local_state)
    : pif_(pif), degree_(degree), local_state_(std::move(local_state)) {
  SNAPSTAB_CHECK(degree_ >= 1);
  SNAPSTAB_CHECK_MSG(local_state_ != nullptr,
                     "a snapshot needs the application's state reader");
  collected_.assign(static_cast<std::size_t>(degree_), Value::none());
}

void Snapshot::request() { request_ = RequestState::Wait; }

bool Snapshot::tick_enabled() const noexcept {
  if (request_ == RequestState::Wait) return true;
  return request_ == RequestState::In && pif_.done();
}

void Snapshot::tick(sim::Context& ctx) {
  if (request_ == RequestState::Wait) {
    request_ = RequestState::In;
    pif_.request(Value::token(Token::SnapQuery));
    ctx.observe(sim::Layer::Service, sim::ObsKind::Start, -1,
                Value::token(Token::SnapQuery));
    return;
  }
  if (request_ == RequestState::In && pif_.done()) {
    request_ = RequestState::Done;
    own_state_ = local_state_();
    ctx.observe(sim::Layer::Service, sim::ObsKind::Decide, -1, own_state_);
  }
}

Value Snapshot::on_brd(sim::Context&, int) { return local_state_(); }

void Snapshot::on_fck(sim::Context&, int ch, const Value& f) {
  collected_[static_cast<std::size_t>(ch)] = f;
}

void Snapshot::randomize(Rng& rng) {
  request_ = random_request_state(rng);
  for (auto& v : collected_) v = Value::random(rng);
}

}  // namespace snapstab::core
