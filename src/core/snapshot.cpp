#include "core/snapshot.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

Snapshot::Snapshot(Pif& pif, int degree, std::function<Value()> local_state)
    : pif_(pif), degree_(degree), local_state_(std::move(local_state)) {
  SNAPSTAB_CHECK(degree_ >= 1);
  SNAPSTAB_CHECK_MSG(local_state_ != nullptr,
                     "a snapshot needs the application's state reader");
  collected_.assign(static_cast<std::size_t>(degree_), Value::none());
}

void Snapshot::request() { request_ = RequestState::Wait; }

bool Snapshot::tick_enabled() const noexcept {
  if (MUTATION_POINT("snap.enabled.never_start",
                     request_ == RequestState::Wait, false))
    return true;
  return request_ == RequestState::In && pif_.done();
}

void Snapshot::tick(sim::Context& ctx) {
  if (request_ == RequestState::Wait) {
    request_ = RequestState::In;
    pif_.request(Value::token(MUTATION_POINT("snap.a1.wrong_token",
                                             Token::SnapQuery, Token::Ok)));
    ctx.observe(sim::Layer::Service, sim::ObsKind::Start, -1,
                Value::token(Token::SnapQuery));
    return;
  }
  if (request_ == RequestState::In &&
      MUTATION_POINT("snap.a2.early_done", pif_.done(), true)) {
    request_ = RequestState::Done;
    own_state_ = MUTATION_POINT("snap.a2.skip_own", local_state_(),
                                own_state_);
    ctx.observe(sim::Layer::Service, sim::ObsKind::Decide, -1, own_state_);
  }
}

Value Snapshot::on_brd(sim::Context&, int) {
  return MUTATION_POINT("snap.brd.report_none", local_state_(),
                        Value::none());
}

void Snapshot::on_fck(sim::Context&, int ch, const Value& f) {
  if (MUTATION_POINT("snap.fck.drop", true, false))
    collected_[MUTATION_POINT(
        "snap.fck.shift_neighbor", (static_cast<std::size_t>(ch)),
        (static_cast<std::size_t>((ch + 1) % degree_)))] = f;
}

void Snapshot::randomize(Rng& rng) {
  request_ = random_request_state(rng);
  for (auto& v : collected_) v = Value::random(rng);
}

}  // namespace snapstab::core
