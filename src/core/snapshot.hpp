// snapshot.hpp — global state collection, the remaining item of the
// paper's §4.1 list ("Reset, Snapshot, Leader Election, and Termination
// Detection can be solved using a PIF-based solution").
//
// The initiator PIF-broadcasts a snapshot query; every process feeds back
// its application-supplied local state value. When the computation decides,
// the initiator holds one state value per process, each read *after* the
// process received the query (PIF Correctness), with every pre-snapshot
// message flushed from the initiator's incident channels (Property 1).
// Because the underlying PIF is snap-stabilizing, a requested snapshot is
// authentic from any initial configuration — ghost snapshot results can
// only belong to non-requested computations.
//
// The collected vector is a PIF-consistent *reading*, not a Chandy–Lamport
// channel-state snapshot: third-party channel contents are not recorded
// (the paper's list names the building block, not a full snapshot
// algorithm; extending this service with message logging is future work).
#ifndef SNAPSTAB_CORE_SNAPSHOT_HPP
#define SNAPSTAB_CORE_SNAPSHOT_HPP

#include <functional>
#include <vector>

#include "core/pif.hpp"
#include "core/request.hpp"

namespace snapstab::core {

class Snapshot {
 public:
  // `local_state` supplies this process's state value when a snapshot query
  // arrives (and for the initiator's own entry at the decision).
  Snapshot(Pif& pif, int degree, std::function<Value()> local_state);

  void request();  // external Request := Wait
  RequestState request_state() const noexcept { return request_; }
  bool done() const noexcept { return request_ == RequestState::Done; }

  // Valid after a started snapshot decided: the neighbor states by channel
  // and this process's own state sampled at the decision.
  const std::vector<Value>& collected() const noexcept { return collected_; }
  const Value& own_state() const noexcept { return own_state_; }

  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  Value on_brd(sim::Context& ctx, int ch);                 // query arrives
  void on_fck(sim::Context& ctx, int ch, const Value& f);  // state collected

  void randomize(Rng& rng);

 private:
  Pif& pif_;
  int degree_;
  std::function<Value()> local_state_;
  RequestState request_ = RequestState::Done;
  std::vector<Value> collected_;
  Value own_state_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_SNAPSHOT_HPP
