#include "core/specs.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

namespace snapstab::core {

namespace {

std::string fmt(const char* pattern, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, pattern, args...);
  return buf;
}

}  // namespace

std::string SpecReport::summary() const {
  if (ok()) return "OK";
  std::string out = fmt("%zu violation(s):", violations.size());
  for (const auto& v : violations) {
    out += "\n  - ";
    out += v;
  }
  return out;
}

SpecReport check_pif_spec(const sim::Simulator& sim,
                          const PifSpecOptions& options) {
  SpecReport report;
  // Observation values were interned in the simulator's pool; resolve and
  // format them against it even when the checker runs on another thread
  // (the parallel trial harness checks inside worker threads).
  ScopedStringPool pool_scope(sim.string_pool());
  const auto& events = sim.log().events();
  const int n = sim.process_count();
  const auto& net = sim.network();

  for (sim::ProcessId p = 0; p < n; ++p) {
    // Walk p's request / start / decide timeline for the checked layer.
    std::vector<std::size_t> starts;
    std::vector<std::size_t> decides;
    std::vector<std::size_t> requests;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      if (e.process != p || e.layer != options.layer) continue;
      if (e.kind == sim::ObsKind::Start) starts.push_back(i);
      if (e.kind == sim::ObsKind::Decide) decides.push_back(i);
      if (e.kind == sim::ObsKind::RequestWait) requests.push_back(i);
    }

    // Start property (Lemma 1): every request is followed by a start.
    if (options.require_start) {
      for (const std::size_t r : requests) {
        const bool started = std::any_of(
            starts.begin(), starts.end(),
            [&](std::size_t s) { return s > r; });
        if (!started)
          report.add(fmt("p%d: request at event %zu never started", p, r));
      }
    }

    for (const std::size_t s : starts) {
      // The computation window is [start, first decide after start].
      const auto d_it = std::find_if(decides.begin(), decides.end(),
                                     [&](std::size_t d) { return d > s; });
      if (d_it == decides.end()) {
        if (options.require_termination)
          report.add(fmt("p%d: computation started at event %zu never decided",
                         p, s));
        continue;
      }
      const std::size_t d = *d_it;
      const Value& m = events[s].value;

      // Correctness, part 1: every other process received m within the
      // window ("any process different of p receives m"). On a sparse
      // topology a single PIF layer reaches p's neighbors; processes with
      // no channel from p are exempt (wave protocols stack PIFs per hop).
      for (sim::ProcessId q = 0; q < n; ++q) {
        if (q == p || !net.topology().adjacent(p, q)) continue;
        const int ch_at_q = net.index_of(q, p);
        const bool received = std::any_of(
            events.begin() + static_cast<std::ptrdiff_t>(s),
            events.begin() + static_cast<std::ptrdiff_t>(d) + 1,
            [&](const sim::Observation& e) {
              return e.process == q && e.layer == options.layer &&
                     e.kind == sim::ObsKind::RecvBrd && e.peer == ch_at_q &&
                     e.value == m;
            });
        if (!received)
          report.add(fmt(
              "p%d: broadcast started at event %zu was never received by p%d",
              p, s, q));
      }

      // Correctness + Decision, part 2: within the window, p received
      // exactly one feedback per neighbor ("p decides taking all
      // acknowledgments of the last message it broadcast into account
      // only").
      std::map<int, int> fck_count;
      for (std::size_t i = s; i <= d; ++i) {
        const auto& e = events[i];
        if (e.process == p && e.layer == options.layer &&
            e.kind == sim::ObsKind::RecvFck)
          ++fck_count[e.peer];
      }
      for (int ch = 0; ch < net.degree(p); ++ch) {
        const int count = fck_count.count(ch) != 0 ? fck_count.at(ch) : 0;
        if (count != 1)
          report.add(
              fmt("p%d: computation started at event %zu saw %d feedback(s) "
                  "from channel %d (expected exactly 1)",
                  p, s, count, ch));
      }
    }
  }
  return report;
}

SpecReport check_idl_spec(
    const sim::Simulator& sim,
    const std::function<const Idl&(sim::ProcessId)>& idl_of,
    const std::vector<std::int64_t>& ids) {
  SpecReport report;
  ScopedStringPool pool_scope(sim.string_pool());
  const int n = sim.process_count();
  const auto& net = sim.network();

  const auto& events = sim.log().events();
  for (sim::ProcessId p = 0; p < n; ++p) {
    // Did p run a started-and-terminated IDL computation?
    bool started = false;
    bool decided_after_start = false;
    for (const auto& e : events) {
      if (e.process != p || e.layer != sim::Layer::Idl) continue;
      if (e.kind == sim::ObsKind::Start) started = true;
      if (e.kind == sim::ObsKind::Decide && started)
        decided_after_start = true;
    }
    if (!decided_after_start) continue;

    const Idl& idl = idl_of(p);
    if (idl.request_state() != RequestState::Done) continue;  // re-running

    // IDL learns ids over p's closed neighborhood (self + one feedback per
    // incident channel); on the complete graph that is the global minimum.
    std::int64_t expected_min = ids[static_cast<std::size_t>(p)];
    for (int ch = 0; ch < net.degree(p); ++ch)
      expected_min = std::min(
          expected_min,
          ids[static_cast<std::size_t>(net.peer_of(p, ch))]);
    if (idl.min_id() != expected_min)
      report.add(fmt("p%d: minID = %lld, expected %lld", p,
                     static_cast<long long>(idl.min_id()),
                     static_cast<long long>(expected_min)));
    for (int ch = 0; ch < net.degree(p); ++ch) {
      const sim::ProcessId q = net.peer_of(p, ch);
      if (idl.id_tab(ch) != ids[static_cast<std::size_t>(q)])
        report.add(fmt("p%d: ID-Tab[%d] = %lld, expected %lld (p%d)", p, ch,
                       static_cast<long long>(idl.id_tab(ch)),
                       static_cast<long long>(ids[static_cast<std::size_t>(q)]),
                       q));
    }
  }
  return report;
}

SpecReport check_forward_spec(const sim::Simulator& sim,
                              const ForwardSpecOptions& options) {
  SpecReport report;
  ScopedStringPool pool_scope(sim.string_pool());
  const auto& events = sim.log().events();

  // A routed payload is identified by (origin, destination, payload). The
  // service carries a sequence number on the wire, but the submission event
  // predates it conceptually — the checker therefore matches multisets, so
  // two identical submissions demand two deliveries.
  struct Route {
    sim::ProcessId origin;
    sim::ProcessId dst;
    std::string payload;

    auto operator<=>(const Route&) const = default;
  };
  std::map<Route, std::uint64_t> submitted;
  std::map<Route, std::uint64_t> delivered;
  for (const auto& e : events) {
    if (e.layer != sim::Layer::Service) continue;
    if (e.kind == sim::ObsKind::FwdSubmit)
      ++submitted[Route{e.process, e.peer, e.value.to_string()}];
    else if (e.kind == sim::ObsKind::FwdDeliver)
      ++delivered[Route{e.peer, e.process, e.value.to_string()}];
  }

  std::uint64_t ghosts = 0;
  for (const auto& [route, count] : delivered) {
    const auto it = submitted.find(route);
    const std::uint64_t wanted = it != submitted.end() ? it->second : 0;
    if (wanted == 0) {
      ghosts += count;
    } else if (count > wanted) {
      report.add(fmt("p%d -> p%d payload %s delivered %llu time(s), "
                     "submitted %llu time(s) — duplicate delivery",
                     route.origin, route.dst, route.payload.c_str(),
                     static_cast<unsigned long long>(count),
                     static_cast<unsigned long long>(wanted)));
    }
  }
  if (options.require_all_delivered) {
    for (const auto& [route, count] : submitted) {
      const auto it = delivered.find(route);
      const std::uint64_t got = it != delivered.end() ? it->second : 0;
      if (got < count)
        report.add(fmt("p%d -> p%d payload %s submitted %llu time(s) but "
                       "delivered only %llu time(s)",
                       route.origin, route.dst, route.payload.c_str(),
                       static_cast<unsigned long long>(count),
                       static_cast<unsigned long long>(got)));
    }
  }
  if (ghosts > options.max_ghost_deliveries)
    report.add(fmt("%llu ghost delivery(ies), at most %llu corrupted initial "
                   "entries could account for them",
                   static_cast<unsigned long long>(ghosts),
                   static_cast<unsigned long long>(
                       options.max_ghost_deliveries)));
  return report;
}

SpecReport check_me_spec(const sim::Simulator& sim,
                         const MeSpecOptions& options) {
  SpecReport report;
  ScopedStringPool pool_scope(sim.string_pool());
  const auto& events = sim.log().events();
  // Open intervals extend to just past the last thing we know happened.
  std::uint64_t horizon = sim.step_count() + 1;
  for (const auto& e : events) horizon = std::max(horizon, e.step + 1);

  struct Interval {
    sim::ProcessId process;
    std::uint64_t enter;
    std::uint64_t exit;
    bool requested;  // CsEnter flag value 1 = externally requested
  };
  std::vector<Interval> intervals;
  std::map<sim::ProcessId, std::size_t> open;  // process -> intervals index

  for (const auto& e : events) {
    if (e.layer != sim::Layer::Me) continue;
    if (e.kind == sim::ObsKind::CsEnter) {
      if (open.count(e.process) != 0)
        report.add(fmt("p%d: nested CsEnter at step %llu", e.process,
                       static_cast<unsigned long long>(e.step)));
      open[e.process] = intervals.size();
      intervals.push_back(
          Interval{e.process, e.step, horizon, e.value.as_int(0) == 1});
    } else if (e.kind == sim::ObsKind::CsExit) {
      const auto it = open.find(e.process);
      if (it != open.end()) {
        intervals[it->second].exit = e.step;
        open.erase(it);
      } else {
        // Ghost CS running since before the first step (fuzzed
        // configuration): interval [0, exit]; never "requested".
        intervals.push_back(Interval{e.process, 0, e.step, false});
      }
    }
  }

  // Correctness: a requesting process executes the CS alone.
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (!intervals[i].requested) continue;
    for (std::size_t j = 0; j < intervals.size(); ++j) {
      if (i == j || intervals[i].process == intervals[j].process) continue;
      const bool overlap = intervals[i].enter < intervals[j].exit &&
                           intervals[j].enter < intervals[i].exit;
      if (overlap)
        report.add(fmt(
            "mutual exclusion violated: p%d in CS [%llu, %llu] overlaps "
            "p%d in CS [%llu, %llu]",
            intervals[i].process,
            static_cast<unsigned long long>(intervals[i].enter),
            static_cast<unsigned long long>(intervals[i].exit),
            intervals[j].process,
            static_cast<unsigned long long>(intervals[j].enter),
            static_cast<unsigned long long>(intervals[j].exit)));
    }
  }

  // Start property (Lemma 12): every observed request is eventually served
  // by a requested CS interval of the same process.
  if (options.require_liveness) {
    for (const auto& e : events) {
      if (e.layer != sim::Layer::Me || e.kind != sim::ObsKind::RequestWait)
        continue;
      const bool served = std::any_of(
          intervals.begin(), intervals.end(), [&](const Interval& iv) {
            return iv.process == e.process && iv.requested &&
                   iv.enter >= e.step;
          });
      if (!served)
        report.add(fmt("p%d: CS request at step %llu never served", e.process,
                       static_cast<unsigned long long>(e.step)));
    }
  }
  return report;
}

}  // namespace snapstab::core
