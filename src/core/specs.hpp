// specs.hpp — executable specification checkers.
//
// Snap-stabilization is a property of *executions*: starting from any
// configuration, every execution must satisfy the specification. The
// checkers below validate the paper's Specifications 1-3 against the
// observation stream of a finished run:
//
//   Specification 1 (PIF-execution):   Start / Correctness / Termination /
//                                      Decision;
//   Specification 2 (IDs-Learning):    exact ID-Tab and minID after every
//                                      started computation;
//   Specification 3 (ME-execution):    every requesting process enters the
//                                      CS (Start) and executes it alone
//                                      (Correctness).
//
// The checkers are deliberately protocol-agnostic: they consume only the
// event stream (plus ground-truth IDs for Spec 2), so the same checker that
// certifies Protocol PIF also *convicts* the naive and sequence-number
// baselines in the negative experiments.
#ifndef SNAPSTAB_CORE_SPECS_HPP
#define SNAPSTAB_CORE_SPECS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/idl.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {

struct SpecReport {
  std::vector<std::string> violations;

  bool ok() const noexcept { return violations.empty(); }
  void add(std::string v) { violations.push_back(std::move(v)); }
  std::string summary() const;
};

struct PifSpecOptions {
  // Protocol layer whose events are checked (Layer::Pif for Protocol PIF,
  // Layer::Baseline for the baseline protocols).
  sim::Layer layer = sim::Layer::Pif;
  // Require every started computation to have decided by the end of the run
  // (Termination); disable for runs cut off by a tight step budget.
  bool require_termination = true;
  // Require every RequestWait to be followed by a Start (Lemma 1).
  bool require_start = true;
};

// Checks Specification 1 over the whole run: for every Start event at p
// carrying broadcast payload m, within the window up to the matching
// Decide, every other process received m (receive-brd) and p received
// exactly one feedback per neighbor (receive-fck) — the Decision property.
SpecReport check_pif_spec(const sim::Simulator& sim,
                          const PifSpecOptions& options = {});

// Checks Specification 2: every IDL computation that was externally
// requested and has terminated left the process with the exact neighbor
// table and the exact global minimum. `idl_of` extracts the Idl component
// of process p; `ids` is the ground truth, indexed by global process id.
SpecReport check_idl_spec(
    const sim::Simulator& sim,
    const std::function<const Idl&(sim::ProcessId)>& idl_of,
    const std::vector<std::int64_t>& ids);

struct MeSpecOptions {
  // Require every observed request to have entered the CS by the end of the
  // run (the Start property / Lemma 12); disable for short runs.
  bool require_liveness = true;
};

struct ForwardSpecOptions {
  // Require every accepted submission to have been delivered by the end of
  // the run; disable for runs cut off by a tight step budget.
  bool require_all_delivered = true;
  // Deliveries matching no submission are ghosts: payloads already sitting
  // in corrupted channel buffers or per-hop queues when the run started.
  // Snap-stabilization cannot prevent them (the paper's §4.1 remark about
  // unexpected events) but it bounds them: each corrupted entry surfaces at
  // most once. Pass the corrupted-entry count observed at fuzz time; every
  // ghost beyond it is a violation, as is any ghost when the run started
  // clean (the default 0).
  std::uint64_t max_ghost_deliveries = 0;
};

// Checks the forwarding-service specification over the whole run: every
// accepted submission (FwdSubmit at the origin, peer = destination) is
// matched by exactly one delivery (FwdDeliver at the destination, peer =
// origin) of the same payload — no loss, no duplication, no delivery at the
// wrong process — and unmatched deliveries stay within the ghost budget.
//
// Matching is by (origin, destination, payload) multisets. A ghost whose
// forged header and payload collide with a genuine submission is
// indistinguishable from it: it shows up as a spurious duplicate, or —
// if the genuine copy was itself mishandled — stands in for it. Drive
// the checker with payloads that fuzzed garbage cannot produce; the
// suites use integers >= 10^6, outside Value::random's range.
SpecReport check_forward_spec(const sim::Simulator& sim,
                              const ForwardSpecOptions& options = {});

// Checks Specification 3. CS intervals are reconstructed from CsEnter /
// CsExit events; a CsExit without a preceding CsEnter is a ghost interval
// that was already running in the initial configuration. Correctness
// requires that an interval belonging to a *requesting* process (CsEnter
// value 1) overlaps no other interval whatsoever; ghost-vs-ghost overlaps
// are permitted (paper, footnote 1).
SpecReport check_me_spec(const sim::Simulator& sim,
                         const MeSpecOptions& options = {});

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_SPECS_HPP
