#include "core/stack.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

namespace snapstab::core {

namespace {

svc::HostConfig base_config(int degree, int channel_capacity) {
  svc::HostConfig cfg;
  cfg.degree = degree;
  cfg.channel_capacity = channel_capacity;
  return cfg;
}

svc::HostConfig pif_config(
    int degree, int channel_capacity,
    std::function<Value(sim::Context&, int, const Value&)> app_brd) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.app_brd = std::move(app_brd);
  return cfg;
}

svc::HostConfig idl_config(std::int64_t id, int degree, int channel_capacity,
                           bool unsafe_lower_layer_first) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.id = id;
  cfg.with_idl = true;
  cfg.unsafe_lower_layer_first = unsafe_lower_layer_first;
  return cfg;
}

svc::HostConfig me_config(std::int64_t id, int degree, StackOptions options) {
  svc::HostConfig cfg = base_config(degree, options.channel_capacity);
  cfg.id = id;
  cfg.with_me = true;
  cfg.me_options = std::move(options.me);
  return cfg;
}

svc::HostConfig reset_config(int degree, int channel_capacity,
                             std::function<void(sim::Context&)> on_reset) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.with_reset = true;
  cfg.on_reset = std::move(on_reset);
  return cfg;
}

svc::HostConfig election_config(std::int64_t id, int degree,
                                int channel_capacity) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.id = id;
  cfg.with_election = true;
  return cfg;
}

svc::HostConfig snapshot_config(int degree, int channel_capacity,
                                std::function<Value()> local_state) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.with_snapshot = true;
  cfg.local_state = std::move(local_state);
  return cfg;
}

svc::HostConfig termdetect_config(int degree, int channel_capacity,
                                  DiffusingApp app) {
  svc::HostConfig cfg = base_config(degree, channel_capacity);
  cfg.with_termdetect = true;
  cfg.app = std::move(app);
  return cfg;
}

}  // namespace

PifProcess::PifProcess(
    int degree, int channel_capacity,
    std::function<Value(sim::Context&, int, const Value&)> app_brd)
    : ServiceHost(pif_config(degree, channel_capacity, std::move(app_brd))) {}

IdlProcess::IdlProcess(std::int64_t id, int degree, int channel_capacity,
                       bool unsafe_lower_layer_first)
    : ServiceHost(
          idl_config(id, degree, channel_capacity, unsafe_lower_layer_first)) {
}

MeStackProcess::MeStackProcess(std::int64_t id, int degree,
                               StackOptions options)
    : ServiceHost(me_config(id, degree, std::move(options))) {}

ResetProcess::ResetProcess(int degree, int channel_capacity,
                           std::function<void(sim::Context&)> on_reset)
    : ServiceHost(
          reset_config(degree, channel_capacity, std::move(on_reset))) {}

ElectionProcess::ElectionProcess(std::int64_t id, int degree,
                                 int channel_capacity)
    : ServiceHost(election_config(id, degree, channel_capacity)) {}

SnapshotProcess::SnapshotProcess(int degree, int channel_capacity,
                                 std::function<Value()> local_state)
    : ServiceHost(
          snapshot_config(degree, channel_capacity, std::move(local_state))) {}

TermDetectProcess::TermDetectProcess(int degree, int channel_capacity,
                                     DiffusingApp app)
    : ServiceHost(
          termdetect_config(degree, channel_capacity, std::move(app))) {}

// --- legacy shims ----------------------------------------------------------
// Direct Request pokes with the historic observation format; no session
// bookkeeping (request_pif's restart-on-rerequest and request_cs's refusal
// are part of the pinned contract).

void request_pif(sim::Simulator& sim, sim::ProcessId p, const Value& b) {
  auto& host = sim.process_as<svc::ServiceHost>(p);
  host.pif().request(b);
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Pif,
                                  sim::ObsKind::RequestWait, -1, b});
}

void request_idl(sim::Simulator& sim, sim::ProcessId p) {
  auto& host = sim.process_as<svc::ServiceHost>(p);
  host.idl().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Idl,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
}

bool request_cs(sim::Simulator& sim, sim::ProcessId p) {
  auto& host = sim.process_as<svc::ServiceHost>(p);
  if (!host.me().request_cs()) return false;
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Me,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
  return true;
}

void request_reset(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<svc::ServiceHost>(p).reset().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::Reset)});
}

void request_election(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<svc::ServiceHost>(p).election().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Idl,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
}

void request_termdetect(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<svc::ServiceHost>(p).detector().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::Probe)});
}

void request_snapshot(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<svc::ServiceHost>(p).snapshot().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::SnapQuery)});
}

}  // namespace snapstab::core
