#include "core/stack.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

namespace snapstab::core {

PifProcess::PifProcess(
    int degree, int channel_capacity,
    std::function<Value(sim::Context&, int, const Value&)> app_brd)
    : pif_(degree, channel_capacity) {
  Pif::Callbacks cb;
  if (app_brd) cb.on_brd = std::move(app_brd);
  pif_.set_callbacks(std::move(cb));
}

IdlProcess::IdlProcess(std::int64_t id, int degree, int channel_capacity,
                       bool unsafe_lower_layer_first)
    : pif_(degree, channel_capacity),
      idl_(id, degree, pif_),
      unsafe_lower_layer_first_(unsafe_lower_layer_first) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    if (b.is_token(Token::IdlQuery)) return idl_.on_brd(ctx, ch);
    return Value::token(Token::Ok);  // ghost broadcast: acknowledge politely
  };
  cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
    if (pif_.b_mes().is_token(Token::IdlQuery)) idl_.on_fck(ctx, ch, f);
  };
  pif_.set_callbacks(std::move(cb));
}

void IdlProcess::on_tick(sim::Context& ctx) {
  // Upper layer first: when IDL's A1 sets PIF.Request := Wait, PIF's A1
  // (the flag reset) executes within the same atomic activation. Ticking
  // PIF first would leave a one-step window in which the *fuzzed* PIF flags
  // are still live under the new request, and a delivery in that window
  // could fire a ghost receive-fck that A4 folds into the monotone minID.
  // The paper's all-enabled-actions-per-activation semantics has no such
  // window; this ordering restores it (see DESIGN.md §6). The unsafe order
  // exists only so exp_ablation can quantify the hazard.
  if (unsafe_lower_layer_first_) {
    pif_.tick(ctx);
    idl_.tick(ctx);
    return;
  }
  idl_.tick(ctx);
  pif_.tick(ctx);
}

void IdlProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  idl_.randomize(rng);
}

MeStackProcess::MeStackProcess(std::int64_t id, int degree,
                               StackOptions options)
    : pif_(degree, options.channel_capacity),
      idl_(id, degree, pif_),
      me_(id, degree, pif_, idl_, std::move(options.me)) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    switch (b.as_token(Token::Ok)) {
      case Token::IdlQuery: return idl_.on_brd(ctx, ch);       // IDL A3
      case Token::Ask: return me_.on_brd_ask(ctx, ch);         // ME A5
      case Token::Exit: return me_.on_brd_exit(ctx, ch);       // ME A6
      case Token::ExitCs: return me_.on_brd_exitcs(ctx, ch);   // ME A7
      default: return Value::token(Token::Ok);  // ghost broadcast
    }
  };
  cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
    const Value& mine = pif_.b_mes();
    if (mine.is_token(Token::IdlQuery)) {
      idl_.on_fck(ctx, ch, f);                                 // IDL A4
    } else if (mine.is_token(Token::Ask)) {
      me_.on_fck_ask(ctx, ch, f);                              // ME A8/A9
    }
    // EXIT / EXITCS / ghost feedbacks: ME A10 — do nothing.
  };
  pif_.set_callbacks(std::move(cb));
}

void MeStackProcess::on_tick(sim::Context& ctx) {
  // A process inside its critical section executes nothing else: the CS sits
  // inside atomic action A3 in the paper, so no other action may interleave.
  if (me_.in_cs()) {
    me_.tick(ctx);
    return;
  }
  // Upper layers before PIF: a sub-protocol request submitted during this
  // activation (ME A0 -> IDL A1 -> PIF A1) starts within the same atomic
  // step, exactly as the paper's activation semantics prescribes. See the
  // comment in IdlProcess::on_tick for the corruption window this closes.
  me_.tick(ctx);
  if (me_.in_cs()) return;  // A3 just entered the CS
  idl_.tick(ctx);
  pif_.tick(ctx);
}

void MeStackProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  idl_.randomize(rng);
  me_.randomize(rng);
}

ResetProcess::ResetProcess(int degree, int channel_capacity,
                           std::function<void(sim::Context&)> on_reset)
    : pif_(degree, channel_capacity), reset_(pif_, std::move(on_reset)) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    if (b.is_token(Token::Reset)) return reset_.on_brd(ctx, ch);
    return Value::token(Token::Ok);
  };
  pif_.set_callbacks(std::move(cb));
}

void ResetProcess::on_tick(sim::Context& ctx) {
  reset_.tick(ctx);
  pif_.tick(ctx);
}

void ResetProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  reset_.randomize(rng);
}

ElectionProcess::ElectionProcess(std::int64_t id, int degree,
                                 int channel_capacity)
    : pif_(degree, channel_capacity),
      idl_(id, degree, pif_),
      election_(idl_) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    if (b.is_token(Token::IdlQuery)) return idl_.on_brd(ctx, ch);
    return Value::token(Token::Ok);
  };
  cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
    if (pif_.b_mes().is_token(Token::IdlQuery)) idl_.on_fck(ctx, ch, f);
  };
  pif_.set_callbacks(std::move(cb));
}

void ElectionProcess::on_tick(sim::Context& ctx) {
  idl_.tick(ctx);
  pif_.tick(ctx);
}

void ElectionProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  idl_.randomize(rng);
}

SnapshotProcess::SnapshotProcess(int degree, int channel_capacity,
                                 std::function<Value()> local_state)
    : pif_(degree, channel_capacity),
      snapshot_(pif_, degree, std::move(local_state)) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    if (b.is_token(Token::SnapQuery)) return snapshot_.on_brd(ctx, ch);
    return Value::token(Token::Ok);
  };
  cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
    if (pif_.b_mes().is_token(Token::SnapQuery)) snapshot_.on_fck(ctx, ch, f);
  };
  pif_.set_callbacks(std::move(cb));
}

void SnapshotProcess::on_tick(sim::Context& ctx) {
  snapshot_.tick(ctx);
  pif_.tick(ctx);
}

void SnapshotProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  snapshot_.randomize(rng);
}

TermDetectProcess::TermDetectProcess(int degree, int channel_capacity,
                                     DiffusingApp app)
    : pif_(degree, channel_capacity),
      app_(std::move(app)),
      detect_(pif_, degree, app_.counters) {
  Pif::Callbacks cb;
  cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) -> Value {
    if (b.is_token(Token::Probe)) return detect_.on_brd(ctx, ch);
    return Value::token(Token::Ok);
  };
  cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
    if (pif_.b_mes().is_token(Token::Probe)) detect_.on_fck(ctx, ch, f);
  };
  pif_.set_callbacks(std::move(cb));
}

void TermDetectProcess::on_tick(sim::Context& ctx) {
  detect_.tick(ctx);
  pif_.tick(ctx);
  if (app_.on_tick) app_.on_tick(ctx);
}

void TermDetectProcess::on_message(sim::Context& ctx, int ch,
                                   const Message& m) {
  if (m.kind == MsgKind::App) {
    if (app_.on_message) app_.on_message(ctx, ch, m.b);
    return;
  }
  pif_.handle_message(ctx, ch, m);
}

bool TermDetectProcess::tick_enabled() const {
  if (pif_.tick_enabled() || detect_.tick_enabled()) return true;
  return app_.has_work && app_.has_work();
}

void TermDetectProcess::randomize(Rng& rng) {
  pif_.randomize(rng);
  detect_.randomize(rng);
}

void request_pif(sim::Simulator& sim, sim::ProcessId p, const Value& b) {
  auto& proc = sim.process_as<PifProcess>(p);
  proc.pif().request(b);
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Pif,
                                  sim::ObsKind::RequestWait, -1, b});
}

void request_idl(sim::Simulator& sim, sim::ProcessId p) {
  auto& proc = sim.process_as<IdlProcess>(p);
  proc.idl().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Idl,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
}

bool request_cs(sim::Simulator& sim, sim::ProcessId p) {
  auto& proc = sim.process_as<MeStackProcess>(p);
  if (!proc.me().request_cs()) return false;
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Me,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
  return true;
}

void request_reset(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<ResetProcess>(p).reset().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::Reset)});
}

void request_election(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<ElectionProcess>(p).election().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Idl,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::none()});
}

void request_termdetect(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<TermDetectProcess>(p).detector().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::Probe)});
}

void request_snapshot(sim::Simulator& sim, sim::ProcessId p) {
  sim.process_as<SnapshotProcess>(p).snapshot().request();
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Service,
                                  sim::ObsKind::RequestWait, -1,
                                  Value::token(Token::SnapQuery)});
}

}  // namespace snapstab::core
