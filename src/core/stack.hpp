// stack.hpp — per-process protocol stacks.
//
// The paper layers its protocols: IDL runs on top of PIF, and ME runs on
// top of both, all sharing a *single* PIF instance per process (the paper
// uses one PIF message type for every computation). The wrappers here wire
// that sharing:
//
//   PifProcess — Protocol PIF alone, with an application feedback hook
//                (e.g. the quickstart's "How old are you?" exchange);
//   IdlProcess — IDL over PIF (experiment E4);
//   MeStackProcess — ME over IDL over PIF (experiments E5, E11).
//
// Dispatch rule (mirrors the paper's actions): a received broadcast payload
// selects the receive-brd handler (IDL -> Idl::on_brd, ASK/EXIT/EXITCS ->
// the ME handlers A5-A7, anything else is politely acknowledged with OK);
// a feedback is routed by the process's *own* current B-Mes, because
// receive-fck events only concern the process's own computation.
//
// The request_* helpers submit external requests between simulator steps
// and record them in the observation log so the specification checkers can
// verify the Start properties.
#ifndef SNAPSTAB_CORE_STACK_HPP
#define SNAPSTAB_CORE_STACK_HPP

#include <cstdint>
#include <memory>

#include "core/election.hpp"
#include "core/idl.hpp"
#include "core/me.hpp"
#include "core/pif.hpp"
#include "core/reset.hpp"
#include "core/snapshot.hpp"
#include "core/termdetect.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {

// ---------------------------------------------------------------------------
// PIF alone.
// ---------------------------------------------------------------------------

class PifProcess final : public sim::Process {
 public:
  // `app_brd` supplies the feedback for a received broadcast; by default
  // every broadcast is acknowledged with OK.
  PifProcess(int degree, int channel_capacity,
             std::function<Value(sim::Context&, int, const Value&)> app_brd =
                 {});

  Pif& pif() noexcept { return pif_; }
  const Pif& pif() const noexcept { return pif_; }

  void on_tick(sim::Context& ctx) override { pif_.tick(ctx); }
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override { return pif_.tick_enabled(); }
  void randomize(Rng& rng) override { pif_.randomize(rng); }

 private:
  Pif pif_;
};

// ---------------------------------------------------------------------------
// IDL over PIF.
// ---------------------------------------------------------------------------

class IdlProcess final : public sim::Process {
 public:
  // `unsafe_lower_layer_first` reverses the tick order (PIF before IDL),
  // reopening the ghost-feedback window of DESIGN.md §6.3 — FOR THE
  // ABLATION EXPERIMENT ONLY.
  IdlProcess(std::int64_t id, int degree, int channel_capacity,
             bool unsafe_lower_layer_first = false);

  Pif& pif() noexcept { return pif_; }
  Idl& idl() noexcept { return idl_; }
  const Idl& idl() const noexcept { return idl_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override {
    return pif_.tick_enabled() || idl_.tick_enabled();
  }
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  Idl idl_;
  bool unsafe_lower_layer_first_;
};

// ---------------------------------------------------------------------------
// The full ME stack.
// ---------------------------------------------------------------------------

struct StackOptions {
  int channel_capacity = 1;
  MeOptions me;
};

class MeStackProcess final : public sim::Process {
 public:
  MeStackProcess(std::int64_t id, int degree, StackOptions options = {});

  Pif& pif() noexcept { return pif_; }
  Idl& idl() noexcept { return idl_; }
  Me& me() noexcept { return me_; }
  const Me& me() const noexcept { return me_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override {
    return pif_.tick_enabled() || idl_.tick_enabled() || me_.tick_enabled();
  }
  bool busy() const override { return me_.in_cs(); }
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  Idl idl_;
  Me me_;
};

// ---------------------------------------------------------------------------
// PIF-based services (the paper's §4.1 list: Reset, Leader Election,
// Termination Detection).
// ---------------------------------------------------------------------------

class ResetProcess final : public sim::Process {
 public:
  ResetProcess(int degree, int channel_capacity,
               std::function<void(sim::Context&)> on_reset = {});

  Pif& pif() noexcept { return pif_; }
  Reset& reset() noexcept { return reset_; }
  const Reset& reset() const noexcept { return reset_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override {
    return pif_.tick_enabled() || reset_.tick_enabled();
  }
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  Reset reset_;
};

class ElectionProcess final : public sim::Process {
 public:
  ElectionProcess(std::int64_t id, int degree, int channel_capacity);

  Pif& pif() noexcept { return pif_; }
  Idl& idl() noexcept { return idl_; }
  Election& election() noexcept { return election_; }
  const Election& election() const noexcept { return election_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override {
    return pif_.tick_enabled() || idl_.tick_enabled();
  }
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  Idl idl_;
  Election election_;
};

class SnapshotProcess final : public sim::Process {
 public:
  SnapshotProcess(int degree, int channel_capacity,
                  std::function<Value()> local_state);

  Pif& pif() noexcept { return pif_; }
  Snapshot& snapshot() noexcept { return snapshot_; }
  const Snapshot& snapshot() const noexcept { return snapshot_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override {
    return pif_.tick_enabled() || snapshot_.tick_enabled();
  }
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  Snapshot snapshot_;
};

// The application observed by the termination detector: a diffusing
// computation exchanging App messages. All hooks are optional except
// `counters`.
struct DiffusingApp {
  // An App message arrived on channel `ch` with the given payload.
  std::function<void(sim::Context&, int ch, const Value&)> on_message;
  // Spontaneous application work (may send App messages via the context;
  // a send returning false was refused by the full channel — keep the work
  // and retry on a later activation).
  std::function<void(sim::Context&)> on_tick;
  std::function<bool()> has_work;  // drives scheduling of on_tick
  std::function<AppCounters()> counters;  // required
};

class TermDetectProcess final : public sim::Process {
 public:
  TermDetectProcess(int degree, int channel_capacity, DiffusingApp app);

  Pif& pif() noexcept { return pif_; }
  TermDetect& detector() noexcept { return detect_; }
  const TermDetect& detector() const noexcept { return detect_; }

  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override;
  bool tick_enabled() const override;
  void randomize(Rng& rng) override;

 private:
  Pif pif_;
  DiffusingApp app_;
  TermDetect detect_;
};

// ---------------------------------------------------------------------------
// External request drivers (record the request in the observation log).
// ---------------------------------------------------------------------------

// Requests a PIF broadcast of `b` at process `p` (a PifProcess).
void request_pif(sim::Simulator& sim, sim::ProcessId p, const Value& b);

// Requests an IDs-Learning computation at process `p` (an IdlProcess).
void request_idl(sim::Simulator& sim, sim::ProcessId p);

// Requests the critical section at process `p` (a MeStackProcess); returns
// false when a previous request is still in service.
bool request_cs(sim::Simulator& sim, sim::ProcessId p);

// Requests a global reset at process `p` (a ResetProcess).
void request_reset(sim::Simulator& sim, sim::ProcessId p);

// Requests a leader election at process `p` (an ElectionProcess).
void request_election(sim::Simulator& sim, sim::ProcessId p);

// Requests a termination detection at process `p` (a TermDetectProcess).
void request_termdetect(sim::Simulator& sim, sim::ProcessId p);

// Requests a global snapshot at process `p` (a SnapshotProcess).
void request_snapshot(sim::Simulator& sim, sim::ProcessId p);

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_STACK_HPP
