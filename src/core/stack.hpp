// stack.hpp — the historic per-process protocol-stack wrappers, now thin
// configured views over svc::ServiceHost.
//
// The paper layers its protocols: IDL runs on top of PIF, and ME runs on
// top of both, all sharing a *single* PIF instance per process. That
// sharing — and the dispatch rule routing received broadcasts/feedbacks to
// the right layer — lives in svc::ServiceHost since PR 5; each class below
// is just a named HostConfig so existing worlds, tests and the pinned
// golden traces keep constructing the exact same stacks:
//
//   PifProcess        — Protocol PIF alone, with an application hook;
//   IdlProcess        — IDL over PIF (experiment E4);
//   MeStackProcess    — ME over IDL over PIF (experiments E5, E11);
//   ResetProcess / ElectionProcess / SnapshotProcess / TermDetectProcess
//                     — the PIF-based services of the paper's §4.1 list.
//
// New code should prefer svc::ServiceHost + svc::Client (the session API,
// see svc/client.hpp): one submit/poll/complete surface over every
// protocol, with queuing and uniform results.
//
// The request_* helpers below are retained as *legacy shims*: they poke the
// layer's Request variable directly between simulator steps and record the
// request in the observation log — the exact historic semantics (including
// request_pif's restart-on-rerequest), with no session bookkeeping. They
// keep the six golden traces bit-identical; see README "Service API" for
// the migration table.
#ifndef SNAPSTAB_CORE_STACK_HPP
#define SNAPSTAB_CORE_STACK_HPP

#include <cstdint>
#include <memory>

#include "core/election.hpp"
#include "core/idl.hpp"
#include "core/me.hpp"
#include "core/pif.hpp"
#include "core/reset.hpp"
#include "core/snapshot.hpp"
#include "core/termdetect.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "svc/host.hpp"

namespace snapstab::core {

// ---------------------------------------------------------------------------
// PIF alone.
// ---------------------------------------------------------------------------

class PifProcess final : public svc::ServiceHost {
 public:
  // `app_brd` supplies the feedback for a received broadcast; by default
  // every broadcast is acknowledged with OK.
  PifProcess(int degree, int channel_capacity,
             std::function<Value(sim::Context&, int, const Value&)> app_brd =
                 {});
};

// ---------------------------------------------------------------------------
// IDL over PIF.
// ---------------------------------------------------------------------------

class IdlProcess final : public svc::ServiceHost {
 public:
  // `unsafe_lower_layer_first` reverses the tick order (PIF before IDL),
  // reopening the ghost-feedback window of DESIGN.md §6.3 — FOR THE
  // ABLATION EXPERIMENT ONLY.
  IdlProcess(std::int64_t id, int degree, int channel_capacity,
             bool unsafe_lower_layer_first = false);
};

// ---------------------------------------------------------------------------
// The full ME stack.
// ---------------------------------------------------------------------------

struct StackOptions {
  int channel_capacity = 1;
  MeOptions me;
};

class MeStackProcess final : public svc::ServiceHost {
 public:
  MeStackProcess(std::int64_t id, int degree, StackOptions options = {});
};

// ---------------------------------------------------------------------------
// PIF-based services (the paper's §4.1 list: Reset, Leader Election,
// Snapshot, Termination Detection).
// ---------------------------------------------------------------------------

class ResetProcess final : public svc::ServiceHost {
 public:
  ResetProcess(int degree, int channel_capacity,
               std::function<void(sim::Context&)> on_reset = {});
};

class ElectionProcess final : public svc::ServiceHost {
 public:
  ElectionProcess(std::int64_t id, int degree, int channel_capacity);
};

class SnapshotProcess final : public svc::ServiceHost {
 public:
  SnapshotProcess(int degree, int channel_capacity,
                  std::function<Value()> local_state);
};

class TermDetectProcess final : public svc::ServiceHost {
 public:
  TermDetectProcess(int degree, int channel_capacity, DiffusingApp app);
};

// ---------------------------------------------------------------------------
// External request drivers — LEGACY SHIMS over the svc layer (see the file
// comment). They work on any svc::ServiceHost with the named layer
// configured, record the request in the observation log, and preserve the
// historic semantics exactly. New code: svc::Client::submit.
// ---------------------------------------------------------------------------

// Requests a PIF broadcast of `b` at process `p`. Re-requesting before the
// decision restarts the computation (historic behavior; sessions queue
// instead).
void request_pif(sim::Simulator& sim, sim::ProcessId p, const Value& b);

// Requests an IDs-Learning computation at process `p`.
void request_idl(sim::Simulator& sim, sim::ProcessId p);

// Requests the critical section at process `p`; returns false when a
// previous request is still in service (sessions queue instead).
bool request_cs(sim::Simulator& sim, sim::ProcessId p);

// Requests a global reset at process `p`.
void request_reset(sim::Simulator& sim, sim::ProcessId p);

// Requests a leader election at process `p`.
void request_election(sim::Simulator& sim, sim::ProcessId p);

// Requests a termination detection at process `p`.
void request_termdetect(sim::Simulator& sim, sim::ProcessId p);

// Requests a global snapshot at process `p`.
void request_snapshot(sim::Simulator& sim, sim::ProcessId p);

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_STACK_HPP
