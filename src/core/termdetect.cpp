#include "core/termdetect.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::core {

TermDetect::TermDetect(Pif& pif, int degree,
                       std::function<AppCounters()> counters)
    : pif_(pif), degree_(degree), counters_(std::move(counters)) {
  SNAPSTAB_CHECK(degree_ >= 1);
  SNAPSTAB_CHECK_MSG(counters_ != nullptr,
                     "the detector needs the application's counters");
  current_.peers.assign(static_cast<std::size_t>(degree_), AppCounters{});
  previous_.peers.assign(static_cast<std::size_t>(degree_), AppCounters{});
}

void TermDetect::request() { request_ = RequestState::Wait; }

bool TermDetect::tick_enabled() const noexcept {
  if (request_ == RequestState::Wait) return true;
  return request_ == RequestState::In && pif_.done();
}

void TermDetect::start_wave() {
  pif_.request(Value::token(Token::Probe));
  waves_ += MUTATION_POINT("td.wave.uncounted", 1, 0);
}

void TermDetect::tick(sim::Context& ctx) {
  if (request_ == RequestState::Wait) {
    request_ = RequestState::In;
    claim_ = false;
    have_prev_ = false;
    waves_ = MUTATION_POINT("td.start.keep_waves", 0, waves_);
    ctx.observe(sim::Layer::Service, sim::ObsKind::Start, -1,
                Value::token(Token::Probe));
    start_wave();
    return;
  }
  if (request_ != RequestState::In || !pif_.done()) return;

  // A probe wave just completed: fold in our own counters and decide
  // whether this snapshot, paired with the previous one, proves
  // termination.
  current_.self = counters_();
  const bool quiet = snapshot_is_quiet(current_);
  if (quiet && MUTATION_POINT("td.claim.single_probe",
                              (have_prev_ && current_ == previous_),
                              have_prev_)) {
    claim_ = true;
    request_ = RequestState::Done;
    ctx.observe(sim::Layer::Service, sim::ObsKind::Decide, -1,
                Value::integer(waves_));
    return;
  }
  previous_ = current_;
  // Only a quiet snapshot can anchor a double probe.
  // EQUIVALENT: anchoring on every snapshot changes nothing observable —
  // a claim additionally requires `quiet && current_ == previous_`, and
  // snapshot quietness is a pure function of the snapshot, so an equal
  // previous snapshot was itself quiet; the conjunct the anchor encodes is
  // implied. A fresh Start always resets have_prev_ to false first.
  have_prev_ = MUTATION_EQUIVALENT("td.anchor.redundant", quiet, true);
  start_wave();
}

bool TermDetect::snapshot_is_quiet(const Snapshot& s) const {
  std::uint64_t sent = s.self.sent;
  std::uint64_t received = s.self.received;
  bool all_passive = s.self.passive;
  for (const auto& c : s.peers) {
    all_passive = all_passive && c.passive;
    sent += c.sent;
    received += c.received;
  }
  return MUTATION_POINT("td.quiet.ignore_passive", all_passive, true) &&
         MUTATION_POINT("td.quiet.allow_inflight", sent == received,
                        sent >= received);
}

Value TermDetect::on_brd(sim::Context&, int) { return pack(counters_()); }

void TermDetect::on_fck(sim::Context&, int ch, const Value& f) {
  if (MUTATION_POINT("td.fck.drop_peer", true, false))
    current_.peers[static_cast<std::size_t>(ch)] = unpack(f);
}

Value TermDetect::pack(const AppCounters& c) {
  const std::uint64_t bits =
      (c.passive ? 1ull : 0ull) |
      (static_cast<std::uint64_t>(c.sent & 0x7FFFFFFFu) << 1) |
      (static_cast<std::uint64_t>(c.received & 0x7FFFFFFFu)
       << MUTATION_POINT("td.pack.field_overlap", 32, 1));
  return Value::integer(static_cast<std::int64_t>(bits));
}

AppCounters TermDetect::unpack(const Value& v) {
  const auto bits = static_cast<std::uint64_t>(v.as_int(0));
  AppCounters c;
  c.passive = (bits & 1ull) != 0;
  c.sent = static_cast<std::uint32_t>((bits >> 1) & 0x7FFFFFFFu);
  c.received = static_cast<std::uint32_t>((bits >> 32) & 0x7FFFFFFFu);
  return c;
}

void TermDetect::randomize(Rng& rng) {
  request_ = random_request_state(rng);
  claim_ = rng.chance(0.5);
  have_prev_ = rng.chance(0.5);
  previous_.self.passive = rng.chance(0.5);
  for (auto& c : previous_.peers) {
    c.passive = rng.chance(0.5);
    c.sent = static_cast<std::uint32_t>(rng.below(100));
    c.received = static_cast<std::uint32_t>(rng.below(100));
  }
}

}  // namespace snapstab::core
