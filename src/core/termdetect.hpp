// termdetect.hpp — termination detection for diffusing computations,
// a PIF-based service (the fourth item on the paper's §4.1 list).
//
// The observed application runs at every process, exchanges App messages,
// and exposes three local counters:
//     passive   — no local work pending,
//     sent      — App messages successfully handed to a channel,
//     received  — App messages delivered.
// The initiator runs repeated PIF probe waves; each wave collects every
// process's (passive, sent, received) snapshot through the feedbacks. It
// claims termination when
//   (1) every process (itself included) reported passive,
//   (2) the global sent and received totals balance (no App message is in
//       flight on any channel — including third-party channels the probe
//       wave itself never traverses), and
//   (3) the snapshot vector is identical to the previous wave's
//       (the Safra-style double probe: nothing moved in between).
// Under reliable App delivery (the classical assumption for termination
// detection; the counters cannot distinguish a lost message from one
// eternally in flight) a claim is sound, and the claim is reached in
// finitely many waves once the computation quiesces.
//
// The probes themselves ride on the snap-stabilizing PIF, so a *started*
// detection works from arbitrary protocol state; the application counters
// are application state and are assumed authentic (they are not part of
// the protocol's corruption model, exactly as the CS body in Protocol ME).
#ifndef SNAPSTAB_CORE_TERMDETECT_HPP
#define SNAPSTAB_CORE_TERMDETECT_HPP

#include <functional>
#include <vector>

#include "core/pif.hpp"
#include "core/request.hpp"

namespace snapstab::core {

struct AppCounters {
  bool passive = true;
  std::uint32_t sent = 0;
  std::uint32_t received = 0;

  bool operator==(const AppCounters&) const = default;
};

// The application observed by the termination detector: a diffusing
// computation exchanging App messages. All hooks are optional except
// `counters`.
struct DiffusingApp {
  // An App message arrived on channel `ch` with the given payload.
  std::function<void(sim::Context&, int ch, const Value&)> on_message;
  // Spontaneous application work (may send App messages via the context;
  // a send returning false was refused by the full channel — keep the work
  // and retry on a later activation).
  std::function<void(sim::Context&)> on_tick;
  std::function<bool()> has_work;  // drives scheduling of on_tick
  std::function<AppCounters()> counters;  // required
};

class TermDetect {
 public:
  TermDetect(Pif& pif, int degree, std::function<AppCounters()> counters);

  void request();  // start a detection (external Request := Wait)
  RequestState request_state() const noexcept { return request_; }
  bool done() const noexcept { return request_ == RequestState::Done; }
  // Valid after done(): whether the detector claimed global termination.
  bool termination_claimed() const noexcept { return claim_; }
  int waves_used() const noexcept { return waves_; }

  void tick(sim::Context& ctx);
  bool tick_enabled() const noexcept;

  // Dispatch targets for PROBE broadcasts / feedbacks.
  Value on_brd(sim::Context& ctx, int ch);
  void on_fck(sim::Context& ctx, int ch, const Value& f);

  void randomize(Rng& rng);

  // Wire packing of AppCounters into a single integer payload:
  //   bit 0      — passive
  //   bits 1..31 — sent   (31 bits)
  //   bits 32..62 — received (31 bits)
  // unpack() is total: any Value yields some AppCounters (garbage payloads
  // can only occur for non-started computations).
  static Value pack(const AppCounters& c);
  static AppCounters unpack(const Value& v);

 private:
  struct Snapshot {
    std::vector<AppCounters> peers;  // per channel
    AppCounters self;

    bool operator==(const Snapshot&) const = default;
  };

  bool snapshot_is_quiet(const Snapshot& s) const;
  void start_wave();

  Pif& pif_;
  int degree_;
  std::function<AppCounters()> counters_;
  RequestState request_ = RequestState::Done;
  bool claim_ = false;
  bool have_prev_ = false;
  int waves_ = 0;
  Snapshot current_;
  Snapshot previous_;
};

}  // namespace snapstab::core

#endif  // SNAPSTAB_CORE_TERMDETECT_HPP
