#include "fault/injector.hpp"

#include <algorithm>

#include "svc/host.hpp"

namespace snapstab::fault {

namespace {

// One `fault` observation per window open: the golden crash-restart trace
// pins window application itself, not just its downstream effects. The
// value carries the kind's ordinal; the peer the target edge (or -1).
void emit_fault(sim::Simulator& sim, const FaultWindow& w) {
  sim.log().emit(sim::Observation{
      sim.step_count(), w.process, sim::Layer::Service, sim::ObsKind::Fault,
      w.edge, Value::integer(static_cast<std::int64_t>(w.kind))});
}

}  // namespace

void Injector::scramble_process(sim::Simulator& sim, sim::ProcessId p) {
  // A crashed-and-restarted ServiceHost also fails its live sessions (the
  // driver-side contract: no silent hangs); any other process type takes
  // the plain arbitrary-state scramble.
  if (auto* host = dynamic_cast<svc::ServiceHost*>(&sim.process(p)))
    host->crash_restart(rng_);
  else
    sim.process(p).randomize(rng_);
  ++counters_.crashes;
}

void Injector::garbage_fill(sim::Simulator& sim, sim::EdgeId e) {
  sim::Channel& ch = sim.network().edge_channel(e);
  ch.clear();
  const std::size_t count =
      ch.unbounded() ? 1 + rng_.below(3) : 1 + rng_.below(ch.capacity());
  const int fwd_n = plan_->forward_header_n();
  for (std::size_t i = 0; i < count; ++i)
    ch.push(fwd_n > 0
                ? Message::random_forward(rng_, plan_->flag_limit(), fwd_n)
                : Message::random(rng_, plan_->flag_limit()));
  ++counters_.garbage_bursts;
}

void Injector::open_window(sim::Simulator& sim, std::uint32_t idx) {
  const FaultWindow& w = plan_->windows()[idx];
  emit_fault(sim, w);
  switch (w.kind) {
    case FaultKind::CrashRestart:
      scramble_process(sim, w.process);
      break;
    case FaultKind::ChannelGarbage:
      garbage_fill(sim, w.edge);
      break;
    case FaultKind::EdgeLoss:
    case FaultKind::EdgeDuplicate:
      break;  // per-poll probabilistic effects only (apply_active)
    case FaultKind::LinkPartition:
    case FaultKind::LinkDown:
      (void)apply_active(sim, idx);  // wipe immediately
      break;
  }
}

int Injector::apply_active(sim::Simulator& sim, std::uint32_t idx) {
  const FaultWindow& w = plan_->windows()[idx];
  switch (w.kind) {
    case FaultKind::CrashRestart:
      // The process stays down for the window: every poll re-scrambles, so
      // no coherent recovery can begin before the window closes.
      scramble_process(sim, w.process);
      return 1;
    case FaultKind::ChannelGarbage:
      if (rng_.chance(w.rate)) {
        garbage_fill(sim, w.edge);
        return 1;
      }
      return 0;
    case FaultKind::EdgeLoss:
      if (rng_.chance(w.rate) &&
          sim.network().edge_channel(w.edge).drop_head()) {
        ++counters_.drops;
        return 1;
      }
      return 0;
    case FaultKind::EdgeDuplicate: {
      sim::Channel& ch = sim.network().edge_channel(w.edge);
      if (rng_.chance(w.rate) && !ch.empty() && ch.push(ch.peek())) {
        ++counters_.duplicates;
        return 1;
      }
      return 0;
    }
    case FaultKind::LinkPartition: {
      // Wipe everything in flight across the cut, both directions.
      int wiped = 0;
      const sim::Topology& topo = sim.topology();
      for (sim::EdgeId e = 0; e < topo.edge_count(); ++e) {
        const bool src_a = (w.partition_mask >> topo.edge_src(e)) & 1u;
        const bool dst_a = (w.partition_mask >> topo.edge_dst(e)) & 1u;
        if (src_a == dst_a) continue;
        sim::Channel& ch = sim.network().edge_channel(e);
        if (ch.empty()) continue;
        counters_.partition_wipes += ch.size();
        ch.clear();
        ++wiped;
      }
      return wiped;
    }
    case FaultKind::LinkDown: {
      // The edge is fully dead while the window is open: every poll wipes
      // whatever arrived since the last one.
      sim::Channel& ch = sim.network().edge_channel(w.edge);
      if (ch.empty()) return 0;
      counters_.down_wipes += ch.size();
      ch.clear();
      return 1;
    }
  }
  return 0;
}

int Injector::poll(sim::Simulator& sim) {
  if (done()) return 0;
  // Garbage refills may intern text payloads: they belong to the victim
  // simulator's pool (same rule as sim::Adversary::strike).
  ScopedStringPool pool_scope(sim.string_pool());
  const std::uint64_t now = sim.step_count();
  int applied = 0;

  // Advance the event cursor: close windows whose span has passed, collect
  // the ones opening at this poll (they take their opening burst exactly
  // once; already-open windows take their continued per-poll effects).
  std::vector<std::uint32_t> opened;
  const auto& events = plan_->events();
  while (cursor_ < events.size() && events[cursor_].step <= now) {
    const FaultPlan::Event ev = events[cursor_++];
    if (ev.open) {
      active_.push_back(ev.window);
      opened.push_back(ev.window);
    } else {
      const auto it = std::find(active_.begin(), active_.end(), ev.window);
      if (it != active_.end()) active_.erase(it);
      // An opened-and-closed-within-one-poll window still fires its burst.
    }
  }
  for (const std::uint32_t idx : active_) {
    if (std::find(opened.begin(), opened.end(), idx) != opened.end()) {
      open_window(sim, idx);
      ++applied;
    } else {
      applied += apply_active(sim, idx);
    }
  }
  // Windows whose whole span fell between two polls (coarse check_every):
  // the burst must not be skipped, or the plan would silently thin out.
  for (const std::uint32_t idx : opened) {
    if (std::find(active_.begin(), active_.end(), idx) == active_.end()) {
      open_window(sim, idx);
      ++applied;
    }
  }
  return applied;
}

}  // namespace snapstab::fault
