// injector.hpp — applies a compiled FaultPlan to a running Simulator.
//
// The Injector is driven from the engine's stop predicate (the PR-4 sealed
// loop reconciles the enabled-step index after every predicate call, so
// the injector may scramble process state and mutate channels freely): on
// each poll it advances a cursor over the plan's sorted event list, fires
// window-open effects once (with one `fault` observation each — the golden
// crash-restart trace pins them), and applies the continued effects of
// every still-open window (re-scramble for a crashed process, probabilistic
// drops/duplicates, partition wipes). All randomness comes from the
// injector's own stream seeded by the plan, so the same (seed, plan, drive
// cadence) replays bit-identically.
#ifndef SNAPSTAB_FAULT_INJECTOR_HPP
#define SNAPSTAB_FAULT_INJECTOR_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "sim/simulator.hpp"

namespace snapstab::fault {

class Injector {
 public:
  // The plan must outlive the injector. The injector's draw stream is
  // derived from the plan seed, independent of world/scheduler streams.
  explicit Injector(const FaultPlan& plan)
      : plan_(&plan), rng_(plan.seed() ^ 0xFA17FA17FA17FA17ull) {}

  // Applies every fault effect due at the simulator's current step.
  // Returns the number of effects applied (diagnostics). Idempotent for a
  // step with no open windows and no pending events — O(active windows).
  int poll(sim::Simulator& sim);

  // True once every window has closed and the event cursor has drained:
  // further polls are inert (the fault has ceased, in the paper's sense).
  bool done() const noexcept {
    return cursor_ >= plan_->events().size() && active_.empty();
  }

  const FaultPlan& plan() const noexcept { return *plan_; }

  struct Counters {
    std::uint64_t crashes = 0;          // crash-restart scrambles applied
    std::uint64_t garbage_bursts = 0;   // channel clear+refill bursts
    std::uint64_t drops = 0;            // adversarial head drops
    std::uint64_t duplicates = 0;       // head re-enqueues
    std::uint64_t partition_wipes = 0;  // messages wiped crossing a cut
    std::uint64_t down_wipes = 0;       // messages wiped on a dead link
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  void open_window(sim::Simulator& sim, std::uint32_t idx);
  int apply_active(sim::Simulator& sim, std::uint32_t idx);
  void scramble_process(sim::Simulator& sim, sim::ProcessId p);
  void garbage_fill(sim::Simulator& sim, sim::EdgeId e);

  const FaultPlan* plan_;
  Rng rng_;
  std::size_t cursor_ = 0;             // next unprocessed plan event
  std::vector<std::uint32_t> active_;  // open windows, plan order
  Counters counters_{};
};

}  // namespace snapstab::fault

#endif  // SNAPSTAB_FAULT_INJECTOR_HPP
