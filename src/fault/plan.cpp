#include "fault/plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace snapstab::fault {

FaultPlan FaultPlan::compile(const FaultPlanSpec& spec,
                             const sim::Topology& topology) {
  SNAPSTAB_CHECK_MSG(spec.min_len >= 1 && spec.min_len <= spec.max_len,
                     "fault window length bounds must satisfy 1 <= min <= max");
  SNAPSTAB_CHECK_MSG(spec.horizon >= 1, "fault horizon must be >= 1 step");
  const int n = topology.process_count();
  const int edges = topology.edge_count();
  SNAPSTAB_CHECK_MSG(spec.partition_windows == 0 || n <= 64,
                     "partition windows encode the cut as a 64-bit mask");

  FaultPlan plan;
  plan.seed_ = spec.seed;
  plan.flag_limit_ = spec.flag_limit;
  plan.forward_header_n_ = spec.forward_header_n;
  Rng rng(spec.seed);

  const auto draw_span = [&](FaultWindow& w) {
    w.begin = rng.below(spec.horizon);
    w.end = w.begin + spec.min_len +
            rng.below(spec.max_len - spec.min_len + 1);
  };
  const auto push = [&](int count, FaultKind kind) {
    for (int i = 0; i < count; ++i) {
      FaultWindow w;
      w.kind = kind;
      draw_span(w);
      w.rate = spec.rate;
      switch (kind) {
        case FaultKind::CrashRestart:
          w.process = static_cast<sim::ProcessId>(
              rng.below(static_cast<std::uint64_t>(n)));
          break;
        case FaultKind::ChannelGarbage:
        case FaultKind::EdgeLoss:
        case FaultKind::EdgeDuplicate:
          w.edge = static_cast<sim::EdgeId>(
              rng.below(static_cast<std::uint64_t>(edges)));
          break;
        case FaultKind::LinkPartition: {
          // A non-trivial cut: side A is a uniform non-empty proper subset.
          const std::uint64_t full =
              n == 64 ? ~0ull : ((1ull << n) - 1);
          std::uint64_t mask = 0;
          while (mask == 0 || mask == full) mask = rng.next() & full;
          w.partition_mask = mask;
          break;
        }
      }
      plan.windows_.push_back(w);
    }
  };
  push(spec.crash_windows, FaultKind::CrashRestart);
  push(spec.garbage_windows, FaultKind::ChannelGarbage);
  push(spec.loss_windows, FaultKind::EdgeLoss);
  push(spec.duplicate_windows, FaultKind::EdgeDuplicate);
  push(spec.partition_windows, FaultKind::LinkPartition);

  // Canonical window order: by begin step, then kind, then target — the
  // Injector applies same-step openings in this order, so the order is part
  // of the replay contract (and of the digest).
  std::sort(plan.windows_.begin(), plan.windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.process != b.process) return a.process < b.process;
              if (a.edge != b.edge) return a.edge < b.edge;
              return a.partition_mask < b.partition_mask;
            });

  plan.events_.reserve(plan.windows_.size() * 2);
  for (std::uint32_t i = 0; i < plan.windows_.size(); ++i) {
    const FaultWindow& w = plan.windows_[i];
    plan.events_.push_back(Event{w.begin, i, true});
    plan.events_.push_back(Event{w.end, i, false});
    if (w.end > plan.last_end_) plan.last_end_ = w.end;
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const Event& a, const Event& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.open != b.open) return !a.open;  // closes before opens
              return a.window < b.window;
            });
  plan.first_begin_ =
      plan.windows_.empty() ? 0 : plan.windows_.front().begin;
  return plan;
}

std::uint64_t FaultPlan::digest() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(seed_);
  for (const FaultWindow& w : windows_) {
    mix(static_cast<std::uint64_t>(w.kind));
    mix(w.begin);
    mix(w.end);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(w.process)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(w.edge)));
    // The rate is spec-provided (finite, not NaN); its bit pattern is
    // stable for identical specs.
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof w.rate);
    __builtin_memcpy(&bits, &w.rate, sizeof bits);
    mix(bits);
    mix(w.partition_mask);
  }
  return h;
}

std::string FaultPlan::repro_line() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "fault-plan seed=%llu windows=%zu plan-digest=%016llx",
                static_cast<unsigned long long>(seed_), windows_.size(),
                static_cast<unsigned long long>(digest()));
  return buf;
}

}  // namespace snapstab::fault
