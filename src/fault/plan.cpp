#include "fault/plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace snapstab::fault {

FaultPlan FaultPlan::compile(const FaultPlanSpec& spec,
                             const sim::Topology& topology) {
  SNAPSTAB_CHECK_MSG(spec.min_len >= 1 && spec.min_len <= spec.max_len,
                     "fault window length bounds must satisfy 1 <= min <= max");
  SNAPSTAB_CHECK_MSG(spec.horizon >= 1, "fault horizon must be >= 1 step");
  const int n = topology.process_count();
  const int edges = topology.edge_count();
  SNAPSTAB_CHECK_MSG(spec.partition_windows == 0 || n <= 64,
                     "partition windows encode the cut as a 64-bit mask");

  FaultPlan plan;
  plan.seed_ = spec.seed;
  plan.flag_limit_ = spec.flag_limit;
  plan.forward_header_n_ = spec.forward_header_n;
  Rng rng(spec.seed);

  const auto draw_span = [&](FaultWindow& w) {
    w.begin = rng.below(spec.horizon);
    w.end = w.begin + spec.min_len +
            rng.below(spec.max_len - spec.min_len + 1);
  };
  // Target draw shared by the independent windows and the Cascade pattern:
  // the per-kind draw sequence is part of the replay contract.
  const auto draw_target = [&](FaultWindow& w) {
    switch (w.kind) {
      case FaultKind::CrashRestart:
        w.process = static_cast<sim::ProcessId>(
            rng.below(static_cast<std::uint64_t>(n)));
        break;
      case FaultKind::ChannelGarbage:
      case FaultKind::EdgeLoss:
      case FaultKind::EdgeDuplicate:
      case FaultKind::LinkDown:
        w.edge = static_cast<sim::EdgeId>(
            rng.below(static_cast<std::uint64_t>(edges)));
        break;
      case FaultKind::LinkPartition: {
        // A non-trivial cut: side A is a uniform non-empty proper subset.
        const std::uint64_t full = n == 64 ? ~0ull : ((1ull << n) - 1);
        std::uint64_t mask = 0;
        while (mask == 0 || mask == full) mask = rng.next() & full;
        w.partition_mask = mask;
        break;
      }
    }
  };
  const auto push = [&](int count, FaultKind kind) {
    for (int i = 0; i < count; ++i) {
      FaultWindow w;
      w.kind = kind;
      draw_span(w);
      w.rate = spec.rate;
      draw_target(w);
      plan.windows_.push_back(w);
    }
  };
  push(spec.crash_windows, FaultKind::CrashRestart);
  push(spec.garbage_windows, FaultKind::ChannelGarbage);
  push(spec.loss_windows, FaultKind::EdgeLoss);
  push(spec.duplicate_windows, FaultKind::EdgeDuplicate);
  push(spec.partition_windows, FaultKind::LinkPartition);

  // Correlated storm patterns, compiled after (and drawing strictly after)
  // the independent windows: a patterns-free spec consumes the exact RNG
  // stream it consumed before patterns existed, so storms-off plans —
  // windows, digest, and every downstream draw — stay bit-identical.
  const auto compile_pattern = [&](const PatternSpec& ps) {
    SNAPSTAB_CHECK_MSG(ps.count >= 1 && ps.len >= 1,
                       "pattern needs count >= 1 and len >= 1");
    const auto emit = [&](FaultKind kind, std::uint64_t begin) {
      FaultWindow w;
      w.kind = kind;
      w.begin = begin;
      w.end = begin + ps.len;
      w.rate = ps.rate;
      plan.windows_.push_back(w);
      return &plan.windows_.back();
    };
    switch (ps.kind) {
      case PatternKind::RollingPartition: {
        // A cut sweeping the process space: `count` contiguous (wrapping)
        // segments of ~n/count processes, cut off one after another across
        // the span, starting from a drawn rotation offset.
        SNAPSTAB_CHECK_MSG(n <= 64,
                           "rolling partitions encode cuts as 64-bit masks");
        const std::uint64_t full = n == 64 ? ~0ull : ((1ull << n) - 1);
        const int seg = std::max(1, n / ps.count);
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, ps.span / static_cast<std::uint64_t>(
                                           ps.count));
        const int offset =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
        for (int i = 0; i < ps.count; ++i) {
          std::uint64_t mask = 0;
          for (int j = 0; j < seg; ++j)
            mask |= 1ull << ((offset + i * seg + j) % n);
          if (mask == 0 || mask == full) continue;  // trivial cut: no-op
          FaultWindow* w = emit(FaultKind::LinkPartition,
                                ps.begin + static_cast<std::uint64_t>(i) *
                                               stride);
          w->partition_mask = mask;
        }
        break;
      }
      case PatternKind::CrashStorm: {
        // Burst-arrival crash-restarts on k distinct hosts: victims via a
        // partial Fisher–Yates shuffle, begins a random walk over the span
        // with uniform gaps of mean span/count (integer Poisson-burst
        // stand-in — no libm, so digests stay cross-platform stable).
        const int k = std::min(ps.count, n);
        std::vector<sim::ProcessId> victims(static_cast<std::size_t>(n));
        for (int p = 0; p < n; ++p)
          victims[static_cast<std::size_t>(p)] = p;
        for (int i = 0; i < k; ++i) {
          const int j =
              i + static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(n - i)));
          std::swap(victims[static_cast<std::size_t>(i)],
                    victims[static_cast<std::size_t>(j)]);
        }
        const std::uint64_t mean =
            std::max<std::uint64_t>(1, ps.span / static_cast<std::uint64_t>(
                                           ps.count));
        std::uint64_t t = ps.begin;
        for (int i = 0; i < k; ++i) {
          t += rng.below(2 * mean + 1);
          FaultWindow* w = emit(FaultKind::CrashRestart, t);
          w->process = victims[static_cast<std::size_t>(i)];
        }
        break;
      }
      case PatternKind::FlappingLink: {
        // Periodic down-phases on one link, both directions each phase.
        SNAPSTAB_CHECK_MSG(edges > 0 && ps.edge < edges,
                           "flapping-link needs an edge in range");
        const sim::EdgeId e =
            ps.edge >= 0 ? ps.edge
                         : static_cast<sim::EdgeId>(rng.below(
                               static_cast<std::uint64_t>(edges)));
        const sim::EdgeId rev =
            topology.edge_between(topology.edge_dst(e), topology.edge_src(e));
        for (int f = 0; f < ps.count; ++f) {
          const std::uint64_t begin =
              ps.begin + static_cast<std::uint64_t>(f) * ps.period;
          emit(FaultKind::LinkDown, begin)->edge = e;
          emit(FaultKind::LinkDown, begin)->edge = rev;
        }
        break;
      }
      case PatternKind::Cascade: {
        // One trigger window, then `count` dependent follow-ons, each
        // lagging its predecessor by a drawn 1..lag_max steps — the
        // targets drawn exactly like independent windows of that kind.
        const std::uint64_t lag_max = std::max<std::uint64_t>(1, ps.lag_max);
        FaultWindow* w = emit(ps.trigger, ps.begin);
        draw_target(*w);
        std::uint64_t t = ps.begin;
        for (int i = 0; i < ps.count; ++i) {
          t += 1 + rng.below(lag_max);
          w = emit(ps.follow, t);
          draw_target(*w);
        }
        break;
      }
    }
  };
  for (const PatternSpec& ps : spec.patterns) compile_pattern(ps);

  // Canonical window order: by begin step, then kind, then target — the
  // Injector applies same-step openings in this order, so the order is part
  // of the replay contract (and of the digest).
  std::sort(plan.windows_.begin(), plan.windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.process != b.process) return a.process < b.process;
              if (a.edge != b.edge) return a.edge < b.edge;
              return a.partition_mask < b.partition_mask;
            });

  plan.events_.reserve(plan.windows_.size() * 2);
  for (std::uint32_t i = 0; i < plan.windows_.size(); ++i) {
    const FaultWindow& w = plan.windows_[i];
    plan.events_.push_back(Event{w.begin, i, true});
    plan.events_.push_back(Event{w.end, i, false});
    if (w.end > plan.last_end_) plan.last_end_ = w.end;
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const Event& a, const Event& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.open != b.open) return !a.open;  // closes before opens
              return a.window < b.window;
            });
  plan.first_begin_ =
      plan.windows_.empty() ? 0 : plan.windows_.front().begin;
  return plan;
}

std::uint64_t FaultPlan::digest() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(seed_);
  for (const FaultWindow& w : windows_) {
    mix(static_cast<std::uint64_t>(w.kind));
    mix(w.begin);
    mix(w.end);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(w.process)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(w.edge)));
    // The rate is spec-provided (finite, not NaN); its bit pattern is
    // stable for identical specs.
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof w.rate);
    __builtin_memcpy(&bits, &w.rate, sizeof bits);
    mix(bits);
    mix(w.partition_mask);
  }
  return h;
}

std::string FaultPlan::repro_line() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "fault-plan seed=%llu windows=%zu plan-digest=%016llx",
                static_cast<unsigned long long>(seed_), windows_.size(),
                static_cast<unsigned long long>(digest()));
  return buf;
}

}  // namespace snapstab::fault
