// plan.hpp — deterministic, step-clock-driven fault schedules.
//
// The paper's fault model is the transient fault: a burst of arbitrary
// corruption that eventually *ceases*, after which every new request must
// be served correctly. The sim::Adversary realizes that model between
// requests; a FaultPlan realizes it *during* them — a seeded schedule of
// timed fault windows (process crash-restart, channel garbage, per-edge
// loss/duplication, link partitions) compiled against a concrete topology
// into a begin/end event list sorted on the engine's step clock.
//
// Determinism contract: a plan is a pure function of (spec, topology), and
// applying it (fault::Injector) draws only from the plan's own seeded
// stream at stop-predicate boundaries — so the same (seed, plan) replays
// bit-identically, and any failing run is reproducible from the one-line
// repro_line(): seed + plan digest.
#ifndef SNAPSTAB_FAULT_PLAN_HPP
#define SNAPSTAB_FAULT_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.hpp"

namespace snapstab::fault {

enum class FaultKind : std::uint8_t {
  CrashRestart,    // process state scrambled arbitrary (the transient fault)
  ChannelGarbage,  // one directed channel cleared and refilled with garbage
  EdgeLoss,        // per-poll probabilistic head drop on one directed edge
  EdgeDuplicate,   // per-poll probabilistic head re-enqueue on one edge
  LinkPartition,   // channels crossing a node cut wiped while open
  LinkDown,        // one directed edge fully dead: every poll wipes it
};

inline constexpr int kFaultKindCount = 6;

// Exhaustive-switch constexpr name helper, matching service_name /
// obs_kind_name: -Wswitch flags a missing enumerator, the static_assert
// forces the count to track the enum.
constexpr const char* fault_kind_name(FaultKind k) noexcept {
  static_assert(kFaultKindCount == static_cast<int>(FaultKind::LinkDown) + 1,
                "new FaultKind: update kFaultKindCount and every switch");
  switch (k) {
    case FaultKind::CrashRestart: return "crash-restart";
    case FaultKind::ChannelGarbage: return "channel-garbage";
    case FaultKind::EdgeLoss: return "edge-loss";
    case FaultKind::EdgeDuplicate: return "edge-duplicate";
    case FaultKind::LinkPartition: return "link-partition";
    case FaultKind::LinkDown: return "link-down";
  }
  return "?";
}

// Correlated fault patterns: each PatternSpec compiles into a *sequence* of
// plain FaultWindows (same event list, same Injector machinery, same
// digest/repro contract) whose spans and targets are correlated the way
// real outages are, instead of independently drawn.
enum class PatternKind : std::uint8_t {
  RollingPartition,  // a cut sweeping the process space segment by segment
  CrashStorm,        // burst-arrival crash-restarts on k distinct hosts
  FlappingLink,      // periodic up/down (LinkDown phases) on one link
  Cascade,           // a trigger window spawning dependent follow-ons
};

inline constexpr int kPatternKindCount = 4;

constexpr const char* pattern_kind_name(PatternKind k) noexcept {
  static_assert(kPatternKindCount ==
                    static_cast<int>(PatternKind::Cascade) + 1,
                "new PatternKind: update kPatternKindCount and every switch");
  switch (k) {
    case PatternKind::RollingPartition: return "rolling-partition";
    case PatternKind::CrashStorm: return "crash-storm";
    case PatternKind::FlappingLink: return "flapping-link";
    case PatternKind::Cascade: return "cascade";
  }
  return "?";
}

// One pattern-generator instance. Field use is kind-specific (the unused
// ones are ignored):
//   RollingPartition: `count` segments swept across [begin, begin+span),
//                     each cut open for `len` steps (n <= 64).
//   CrashStorm:       `count` crash windows of `len` steps on distinct
//                     hosts, begins a burst-arrival walk over the span
//                     (uniform gaps, mean span/count).
//   FlappingLink:     `count` down-phases of `len` steps every `period`
//                     steps on `edge` (both directions; -1 draws the edge).
//   Cascade:          one `trigger` window at begin, then `count` dependent
//                     `follow` windows, each lagging its predecessor by a
//                     drawn 1..lag_max steps.
struct PatternSpec {
  PatternKind kind = PatternKind::CrashStorm;
  std::uint64_t begin = 0;     // anchor step of the pattern
  std::uint64_t span = 4'000;  // sweep / burst span (RollingPartition, CrashStorm)
  int count = 3;               // segments | crashes | flaps | followers
  std::uint64_t len = 400;     // length of each generated window
  double rate = 1.0;           // carried into rate-bearing windows
  std::uint64_t period = 800;  // FlappingLink: down+up cycle length
  sim::EdgeId edge = -1;       // FlappingLink: directed edge; -1 = drawn
  FaultKind trigger = FaultKind::CrashRestart;   // Cascade: trigger kind
  FaultKind follow = FaultKind::ChannelGarbage;  // Cascade: follow-on kind
  std::uint64_t lag_max = 600;  // Cascade: per-follower lag bound (>= 1)
};

// One timed fault window [begin, end) on the engine's step clock. The
// target fields are kind-specific: `process` for CrashRestart, `edge` for
// the channel kinds, `partition_mask` (bit p = side-A membership, n <= 64)
// for LinkPartition.
struct FaultWindow {
  FaultKind kind = FaultKind::CrashRestart;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  sim::ProcessId process = -1;
  sim::EdgeId edge = -1;
  double rate = 0.5;  // EdgeLoss / EdgeDuplicate per-poll probability
  std::uint64_t partition_mask = 0;

  bool covers(std::uint64_t step) const noexcept {
    return step >= begin && step < end;
  }
};

// How many windows of each kind to draw, over what horizon, at what
// severity. All-zero window counts compile to an empty (inert) plan — the
// load generator's faults-off default.
struct FaultPlanSpec {
  std::uint64_t seed = 1;
  std::uint64_t horizon = 20'000;  // window begins drawn in [0, horizon)
  int crash_windows = 0;
  int garbage_windows = 0;
  int loss_windows = 0;
  int duplicate_windows = 0;
  int partition_windows = 0;  // requires n <= 64 at compile()
  std::uint64_t min_len = 200;   // window length bounds, inclusive
  std::uint64_t max_len = 2'000;
  double rate = 0.5;             // loss/duplication per-poll probability
  std::int32_t flag_limit = 4;   // garbage flag domain (the PIF bound)
  // When > 0, garbage refills also draw forwarding kinds with packed
  // headers over this many processes (see sim::FuzzOptions).
  int forward_header_n = 0;

  // Correlated storm patterns, compiled AFTER the independent windows above
  // (so a patterns-free spec draws the exact stream it always did). Each
  // entry expands into several windows in the same sorted event list.
  std::vector<PatternSpec> patterns;

  // Independent (non-pattern) window count; the compiled plan may hold more
  // windows when `patterns` is non-empty.
  int total_windows() const noexcept {
    return crash_windows + garbage_windows + loss_windows +
           duplicate_windows + partition_windows;
  }
  // True when compiling this spec can yield a non-empty plan — the load
  // generator's faults-on switch.
  bool enabled() const noexcept {
    return total_windows() > 0 || !patterns.empty();
  }
};

// A compiled schedule: the windows plus a begin/end event list sorted on
// the step clock (what the Injector's cursor walks).
class FaultPlan {
 public:
  struct Event {
    std::uint64_t step = 0;
    std::uint32_t window = 0;  // index into windows()
    bool open = false;         // begin (true) or end (false)
  };

  // Draws every window from spec.seed against the topology's process/edge
  // address space. Pure: same (spec, topology shape) => same plan.
  static FaultPlan compile(const FaultPlanSpec& spec,
                           const sim::Topology& topology);

  const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }
  const std::vector<Event>& events() const noexcept { return events_; }
  bool empty() const noexcept { return windows_.empty(); }
  std::uint64_t seed() const noexcept { return seed_; }

  // Close of the last window: the paper's "the fault ceases" instant.
  // Every session submitted at or after this step must complete correctly.
  std::uint64_t last_end() const noexcept { return last_end_; }
  std::uint64_t first_begin() const noexcept { return first_begin_; }
  bool any_active(std::uint64_t step) const noexcept {
    for (const FaultWindow& w : windows_)
      if (w.covers(step)) return true;
    return false;
  }

  // FNV-1a over the serialized window list — stable across platforms, so
  // (seed, digest) pins the schedule a failing run executed.
  std::uint64_t digest() const noexcept;
  // The one-line repro: "fault-plan seed=S windows=N plan-digest=HEX".
  std::string repro_line() const;

  // Garbage-generation parameters, carried from the spec for the Injector.
  std::int32_t flag_limit() const noexcept { return flag_limit_; }
  int forward_header_n() const noexcept { return forward_header_n_; }

 private:
  std::int32_t flag_limit_ = 4;
  int forward_header_n_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t first_begin_ = 0;
  std::uint64_t last_end_ = 0;
  std::vector<FaultWindow> windows_;
  std::vector<Event> events_;  // sorted by (step, !open, window)
};

}  // namespace snapstab::fault

#endif  // SNAPSTAB_FAULT_PLAN_HPP
