#include "fault/runtime_injector.hpp"

#include <signal.h>

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "msg/strpool.hpp"
#include "net/wire.hpp"
#include "svc/host.hpp"

namespace snapstab::fault {

RuntimeInjector::RuntimeInjector(const FaultPlan& plan,
                                 runtime::ThreadRuntime& rt,
                                 RuntimeInjectorOptions options)
    : plan_(&plan),
      rt_(&rt),
      options_(options),
      rng_(plan.seed() ^ 0xFA17FA17FA17FA17ull) {
  SNAPSTAB_CHECK_MSG(options_.step_duration.count() > 0,
                     "step_duration must be positive");
}

RuntimeInjector::RuntimeInjector(const FaultPlan& plan,
                                 net::SocketRuntime& srt,
                                 RuntimeInjectorOptions options)
    : plan_(&plan),
      srt_(&srt),
      options_(options),
      rng_(plan.seed() ^ 0xFA17FA17FA17FA17ull) {
  SNAPSTAB_CHECK_MSG(options_.step_duration.count() > 0,
                     "step_duration must be positive");
}

void RuntimeInjector::set_node_pid(int node, ::pid_t pid) {
  SNAPSTAB_CHECK_MSG(!thread_.joinable(),
                     "register node pids before start()");
  node_pids_[node] = pid;
}

RuntimeInjector::~RuntimeInjector() { stop(); }

void RuntimeInjector::start() {
  SNAPSTAB_CHECK_MSG(!thread_.joinable(), "injector already started");
  if (plan_->empty()) {
    done_.store(true, std::memory_order_release);
    return;
  }
  thread_ = std::thread([this] { thread_main(); });
}

void RuntimeInjector::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // Socket filters persist until cleared; an early stop() must still mean
  // "the fault has ceased", so disarm whatever windows were mid-flight.
  if (srt_ != nullptr) srt_->clear_edge_faults();
}

void RuntimeInjector::crash(sim::ProcessId p) {
  const auto scramble = [this](sim::Process& proc) {
    // Same dispatch as the simulator-side Injector: a ServiceHost also
    // fails its live sessions; anything else takes the plain scramble.
    if (auto* host = dynamic_cast<svc::ServiceHost*>(&proc))
      host->crash_restart(rng_);
    else
      proc.randomize(rng_);
    return 0;
  };
  if (rt_ != nullptr)
    rt_->with_process<sim::Process>(p, scramble);
  else
    srt_->with_process<sim::Process>(p, scramble);
  ++counters_.crashes;
}

void RuntimeInjector::garbage_fill(sim::EdgeId e) {
  const sim::Topology& topo = rt_->topology();
  runtime::Mailbox& mb =
      rt_->mailbox_mut(topo.edge_src(e), topo.edge_dst(e));
  while (mb.try_pop().has_value()) {
  }
  const std::size_t count = 1 + rng_.below(mb.capacity());
  const int fwd_n = plan_->forward_header_n();
  for (std::size_t i = 0; i < count; ++i)
    mb.try_push(fwd_n > 0
                    ? Message::random_forward(rng_, plan_->flag_limit(), fwd_n)
                    : Message::random(rng_, plan_->flag_limit()));
  ++counters_.garbage_bursts;
}

// Socket mode: garbage arrives as real datagrams on the victim's socket —
// a burst of validly framed random messages on edge `e` (the in-channel
// garbage of the paper's fault model) plus one raw-noise datagram that
// must die in frame validation.
void RuntimeInjector::garbage_datagrams(sim::EdgeId e) {
  const sim::Topology& topo = srt_->topology();
  const int dst = topo.edge_dst(e);
  const std::size_t count = 1 + rng_.below(3);
  const int fwd_n = plan_->forward_header_n();
  for (std::size_t i = 0; i < count; ++i) {
    const Message m =
        fwd_n > 0 ? Message::random_forward(rng_, plan_->flag_limit(), fwd_n)
                  : Message::random(rng_, plan_->flag_limit());
    const std::vector<std::uint8_t> frame = net::encode_frame(e, m);
    srt_->inject_datagram(dst, frame.data(), frame.size());
  }
  std::array<std::uint8_t, 48> noise;
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng_.below(256));
  srt_->inject_datagram(dst, noise.data(), noise.size());
  ++counters_.garbage_bursts;
}

// Socket mode: windows arm the runtime's per-edge recv filter. Rates are
// re-asserted every poll (cheap atomic stores), so overlapping windows
// self-heal after one of them closes and clears the edge.
void RuntimeInjector::apply_window_socket(const FaultWindow& w,
                                          bool opening) {
  const sim::Topology& topo = srt_->topology();
  switch (w.kind) {
    case FaultKind::CrashRestart: {
      if (srt_->hosts(w.process)) {
        // Every poll re-scrambles: the process stays down for the window.
        crash(w.process);
        break;
      }
      const auto it = node_pids_.find(w.process);
      if (it != node_pids_.end() && opening) {
        if (::kill(it->second, SIGKILL) == 0) ++counters_.process_kills;
      }
      break;
    }
    case FaultKind::ChannelGarbage:
      if (opening || rng_.chance(w.rate)) garbage_datagrams(w.edge);
      break;
    case FaultKind::EdgeLoss:
      srt_->set_edge_drop(w.edge, w.rate);
      if (opening) ++counters_.drops;
      break;
    case FaultKind::EdgeDuplicate:
      srt_->set_edge_duplicate(w.edge, w.rate);
      if (opening) ++counters_.duplicates;
      break;
    case FaultKind::LinkPartition:
      for (sim::EdgeId e = 0; e < topo.edge_count(); ++e) {
        const bool src_a = (w.partition_mask >> topo.edge_src(e)) & 1u;
        const bool dst_a = (w.partition_mask >> topo.edge_dst(e)) & 1u;
        if (src_a == dst_a) continue;
        srt_->set_edge_down(e, true);
        if (opening) ++counters_.partition_wipes;
      }
      break;
    case FaultKind::LinkDown:
      srt_->set_edge_down(w.edge, true);
      if (opening) ++counters_.down_wipes;
      break;
  }
}

// Socket mode: a closing window disarms whatever filter state it set. An
// overlapping window on the same edge is re-asserted by the next poll's
// apply pass, so the clear is at worst one poll_interval too wide.
void RuntimeInjector::close_window(const FaultWindow& w) {
  if (srt_ == nullptr) return;  // mailbox effects have nothing to undo
  const sim::Topology& topo = srt_->topology();
  switch (w.kind) {
    case FaultKind::CrashRestart:
    case FaultKind::ChannelGarbage:
      break;
    case FaultKind::EdgeLoss:
      srt_->set_edge_drop(w.edge, 0.0);
      break;
    case FaultKind::EdgeDuplicate:
      srt_->set_edge_duplicate(w.edge, 0.0);
      break;
    case FaultKind::LinkPartition:
      for (sim::EdgeId e = 0; e < topo.edge_count(); ++e) {
        const bool src_a = (w.partition_mask >> topo.edge_src(e)) & 1u;
        const bool dst_a = (w.partition_mask >> topo.edge_dst(e)) & 1u;
        if (src_a != dst_a) srt_->set_edge_down(e, false);
      }
      break;
    case FaultKind::LinkDown:
      srt_->set_edge_down(w.edge, false);
      break;
  }
}

void RuntimeInjector::apply_window(const FaultWindow& w, bool opening) {
  if (srt_ != nullptr) {
    apply_window_socket(w, opening);
    return;
  }
  const sim::Topology& topo = rt_->topology();
  switch (w.kind) {
    case FaultKind::CrashRestart:
      // Every poll re-scrambles: the process stays down for the window.
      crash(w.process);
      break;
    case FaultKind::ChannelGarbage:
      if (opening || rng_.chance(w.rate)) garbage_fill(w.edge);
      break;
    case FaultKind::EdgeLoss:
      if (!opening && rng_.chance(w.rate)) {
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
        if (mb.try_pop().has_value()) ++counters_.drops;
      }
      break;
    case FaultKind::EdgeDuplicate:
      if (!opening && rng_.chance(w.rate)) {
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
        // Mailboxes have no peek: re-enqueue the popped head twice. The
        // tail reordering is fair game under real concurrency.
        if (auto m = mb.try_pop()) {
          mb.try_push(*m);
          if (mb.try_push(*m)) ++counters_.duplicates;
        }
      }
      break;
    case FaultKind::LinkPartition:
      for (sim::EdgeId e = 0; e < topo.edge_count(); ++e) {
        const bool src_a = (w.partition_mask >> topo.edge_src(e)) & 1u;
        const bool dst_a = (w.partition_mask >> topo.edge_dst(e)) & 1u;
        if (src_a == dst_a) continue;
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(e), topo.edge_dst(e));
        while (mb.try_pop().has_value()) ++counters_.partition_wipes;
      }
      break;
    case FaultKind::LinkDown: {
      // The edge is dead for the window: drain whatever arrived since the
      // last poll.
      runtime::Mailbox& mb =
          rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
      while (mb.try_pop().has_value()) ++counters_.down_wipes;
      break;
    }
  }
}

void RuntimeInjector::thread_main() {
  // Garbage payloads intern into the runtime's pool, same rule as every
  // node thread (see ThreadRuntime::thread_main).
  ScopedStringPool pool_scope(rt_ != nullptr ? rt_->string_pool()
                                             : srt_->string_pool());
  const auto epoch = std::chrono::steady_clock::now();
  const auto& events = plan_->events();
  const auto& windows = plan_->windows();
  std::size_t cursor = 0;
  std::vector<std::uint32_t> active;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now_step = static_cast<std::uint64_t>(
        (std::chrono::steady_clock::now() - epoch) / options_.step_duration);
    while (cursor < events.size() && events[cursor].step <= now_step) {
      const FaultPlan::Event ev = events[cursor++];
      if (ev.open) {
        active.push_back(ev.window);
        apply_window(windows[ev.window], /*opening=*/true);
      } else {
        const auto it = std::find(active.begin(), active.end(), ev.window);
        if (it != active.end()) active.erase(it);
        close_window(windows[ev.window]);
      }
    }
    for (const std::uint32_t idx : active)
      apply_window(windows[idx], /*opening=*/false);
    if (cursor >= events.size() && active.empty()) break;
    std::this_thread::sleep_for(options_.poll_interval);
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace snapstab::fault
