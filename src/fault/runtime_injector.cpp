#include "fault/runtime_injector.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "msg/strpool.hpp"
#include "svc/host.hpp"

namespace snapstab::fault {

RuntimeInjector::RuntimeInjector(const FaultPlan& plan,
                                 runtime::ThreadRuntime& rt,
                                 RuntimeInjectorOptions options)
    : plan_(&plan),
      rt_(&rt),
      options_(options),
      rng_(plan.seed() ^ 0xFA17FA17FA17FA17ull) {
  SNAPSTAB_CHECK_MSG(options_.step_duration.count() > 0,
                     "step_duration must be positive");
}

RuntimeInjector::~RuntimeInjector() { stop(); }

void RuntimeInjector::start() {
  SNAPSTAB_CHECK_MSG(!thread_.joinable(), "injector already started");
  if (plan_->empty()) {
    done_.store(true, std::memory_order_release);
    return;
  }
  thread_ = std::thread([this] { thread_main(); });
}

void RuntimeInjector::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void RuntimeInjector::crash(sim::ProcessId p) {
  rt_->with_process<sim::Process>(p, [this](sim::Process& proc) {
    // Same dispatch as the simulator-side Injector: a ServiceHost also
    // fails its live sessions; anything else takes the plain scramble.
    if (auto* host = dynamic_cast<svc::ServiceHost*>(&proc))
      host->crash_restart(rng_);
    else
      proc.randomize(rng_);
    return 0;
  });
  ++counters_.crashes;
}

void RuntimeInjector::garbage_fill(sim::EdgeId e) {
  const sim::Topology& topo = rt_->topology();
  runtime::Mailbox& mb =
      rt_->mailbox_mut(topo.edge_src(e), topo.edge_dst(e));
  while (mb.try_pop().has_value()) {
  }
  const std::size_t count = 1 + rng_.below(mb.capacity());
  const int fwd_n = plan_->forward_header_n();
  for (std::size_t i = 0; i < count; ++i)
    mb.try_push(fwd_n > 0
                    ? Message::random_forward(rng_, plan_->flag_limit(), fwd_n)
                    : Message::random(rng_, plan_->flag_limit()));
  ++counters_.garbage_bursts;
}

void RuntimeInjector::apply_window(const FaultWindow& w, bool opening) {
  const sim::Topology& topo = rt_->topology();
  switch (w.kind) {
    case FaultKind::CrashRestart:
      // Every poll re-scrambles: the process stays down for the window.
      crash(w.process);
      break;
    case FaultKind::ChannelGarbage:
      if (opening || rng_.chance(w.rate)) garbage_fill(w.edge);
      break;
    case FaultKind::EdgeLoss:
      if (!opening && rng_.chance(w.rate)) {
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
        if (mb.try_pop().has_value()) ++counters_.drops;
      }
      break;
    case FaultKind::EdgeDuplicate:
      if (!opening && rng_.chance(w.rate)) {
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
        // Mailboxes have no peek: re-enqueue the popped head twice. The
        // tail reordering is fair game under real concurrency.
        if (auto m = mb.try_pop()) {
          mb.try_push(*m);
          if (mb.try_push(*m)) ++counters_.duplicates;
        }
      }
      break;
    case FaultKind::LinkPartition:
      for (sim::EdgeId e = 0; e < topo.edge_count(); ++e) {
        const bool src_a = (w.partition_mask >> topo.edge_src(e)) & 1u;
        const bool dst_a = (w.partition_mask >> topo.edge_dst(e)) & 1u;
        if (src_a == dst_a) continue;
        runtime::Mailbox& mb =
            rt_->mailbox_mut(topo.edge_src(e), topo.edge_dst(e));
        while (mb.try_pop().has_value()) ++counters_.partition_wipes;
      }
      break;
    case FaultKind::LinkDown: {
      // The edge is dead for the window: drain whatever arrived since the
      // last poll.
      runtime::Mailbox& mb =
          rt_->mailbox_mut(topo.edge_src(w.edge), topo.edge_dst(w.edge));
      while (mb.try_pop().has_value()) ++counters_.down_wipes;
      break;
    }
  }
}

void RuntimeInjector::thread_main() {
  // Garbage payloads intern into the runtime's pool, same rule as every
  // node thread (see ThreadRuntime::thread_main).
  ScopedStringPool pool_scope(rt_->string_pool());
  const auto epoch = std::chrono::steady_clock::now();
  const auto& events = plan_->events();
  const auto& windows = plan_->windows();
  std::size_t cursor = 0;
  std::vector<std::uint32_t> active;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now_step = static_cast<std::uint64_t>(
        (std::chrono::steady_clock::now() - epoch) / options_.step_duration);
    while (cursor < events.size() && events[cursor].step <= now_step) {
      const FaultPlan::Event ev = events[cursor++];
      if (ev.open) {
        active.push_back(ev.window);
        apply_window(windows[ev.window], /*opening=*/true);
      } else {
        const auto it = std::find(active.begin(), active.end(), ev.window);
        if (it != active.end()) active.erase(it);
      }
    }
    for (const std::uint32_t idx : active)
      apply_window(windows[idx], /*opening=*/false);
    if (cursor >= events.size() && active.empty()) break;
    std::this_thread::sleep_for(options_.poll_interval);
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace snapstab::fault
