// runtime_injector.hpp — applies a FaultPlan to a live runtime.
//
// The live-runtime counterpart of fault::Injector: a dedicated injection
// thread maps the plan's step-clock window spans onto wall time (one step =
// `step_duration`) and applies the same effects against real concurrency.
// Two targets share the schedule machinery:
//   * ThreadRuntime — crash-restart through with_process (under the node
//     lock), channel garbage/loss/duplication/partition wipes against the
//     internally synchronized mailboxes;
//   * SocketRuntime — the same crash path for hosted nodes plus
//     SIGKILL-based process crash for nodes registered as living in another
//     OS process (set_node_pid), garbage bursts as real datagrams through
//     inject_datagram (framed random messages and raw noise), and
//     loss/duplication/LinkDown/partition as the runtime's socket-level
//     per-edge filter between recv and dispatch — rates armed when a window
//     opens, re-asserted every poll, cleared when it closes.
// Unlike the simulator path this is NOT replayable bit-for-bit (the whole
// runtime is racy by design); what it preserves is the fault *schedule* and
// the recovery contract under test: after stop() the fault has ceased and
// fresh sessions must complete.
#ifndef SNAPSTAB_FAULT_RUNTIME_INJECTOR_HPP
#define SNAPSTAB_FAULT_RUNTIME_INJECTOR_HPP

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "net/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace snapstab::fault {

struct RuntimeInjectorOptions {
  // Wall-clock length of one plan step: a window [b, e) runs from
  // b*step_duration to e*step_duration after start().
  std::chrono::microseconds step_duration{50};
  std::chrono::milliseconds poll_interval{2};
};

class RuntimeInjector {
 public:
  RuntimeInjector(const FaultPlan& plan, runtime::ThreadRuntime& rt,
                  RuntimeInjectorOptions options = {});
  RuntimeInjector(const FaultPlan& plan, net::SocketRuntime& srt,
                  RuntimeInjectorOptions options = {});
  ~RuntimeInjector();  // stops and joins

  RuntimeInjector(const RuntimeInjector&) = delete;
  RuntimeInjector& operator=(const RuntimeInjector&) = delete;

  // Socket mode, multi-process: declares that node `node` lives in OS
  // process `pid`. A CrashRestart window targeting it delivers a real
  // SIGKILL when it opens (once per opening). Call before start().
  void set_node_pid(int node, ::pid_t pid);

  // Spawns the injection thread; the plan's step 0 is "now".
  void start();
  // Signals and joins. Idempotent. After stop() returns no further fault
  // effect is applied — the fault has ceased.
  void stop();
  // True once every window span has elapsed (the thread exits on its own;
  // stop() is still required before destruction to join it).
  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

  struct Counters {
    std::uint64_t crashes = 0;
    std::uint64_t garbage_bursts = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t partition_wipes = 0;
    std::uint64_t down_wipes = 0;
    std::uint64_t process_kills = 0;  // socket mode: SIGKILLs delivered
  };
  // Stable only after stop().
  const Counters& counters() const noexcept { return counters_; }

 private:
  void thread_main();
  void apply_window(const FaultWindow& w, bool opening);
  void close_window(const FaultWindow& w);
  void apply_window_socket(const FaultWindow& w, bool opening);
  void crash(sim::ProcessId p);
  void garbage_fill(sim::EdgeId e);
  void garbage_datagrams(sim::EdgeId e);

  const FaultPlan* plan_;
  runtime::ThreadRuntime* rt_ = nullptr;
  net::SocketRuntime* srt_ = nullptr;
  RuntimeInjectorOptions options_;
  Rng rng_;
  std::unordered_map<int, ::pid_t> node_pids_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  Counters counters_{};
};

}  // namespace snapstab::fault

#endif  // SNAPSTAB_FAULT_RUNTIME_INJECTOR_HPP
