#include "impossibility/construction.hpp"

#include <cstdio>
#include <memory>

#include "common/check.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/simulator.hpp"

namespace snapstab::impossibility {

namespace {

using sim::Simulator;

constexpr std::int64_t kIdP = 10;  // process 0 — the leader (smallest id)
constexpr std::int64_t kIdQ = 20;  // process 1
constexpr int kCsLength = 1 << 20;  // long CS: the winner parks inside it
constexpr std::uint64_t kRecordBudget = 2'000'000;

std::string fmt(const char* pattern, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, pattern, args...);
  return buf;
}

core::StackOptions stack_options() {
  core::StackOptions opts;
  opts.channel_capacity = 1;
  opts.me.cs_length = kCsLength;
  return opts;
}

std::unique_ptr<Simulator> fresh_world(std::size_t capacity,
                                       std::uint64_t seed) {
  auto sim = std::make_unique<Simulator>(2, capacity, seed);
  sim->add_process(
      std::make_unique<core::MeStackProcess>(kIdP, 1, stack_options()));
  sim->add_process(
      std::make_unique<core::MeStackProcess>(kIdQ, 1, stack_options()));
  return sim;
}

bool in_cs(Simulator& sim, sim::ProcessId p) {
  return sim.process_as<core::MeStackProcess>(p).me().in_cs();
}

// Step 1/2 of the construction: a fresh system in which `initiator`
// requests the CS; runs deterministically until the initiator enters the
// CS and returns the simulator with its recording intact.
std::unique_ptr<Simulator> record_initiator_run(sim::ProcessId initiator,
                                                std::uint64_t seed,
                                                ConstructionReport& report) {
  auto sim = fresh_world(/*capacity=*/1, seed);
  sim->enable_recording();
  sim->set_scheduler(std::make_unique<sim::RoundRobinScheduler>(seed));
  core::request_cs(*sim, initiator);
  const auto reason = sim->run(kRecordBudget, [&](Simulator& s) {
    return in_cs(s, initiator);
  });
  SNAPSTAB_CHECK_MSG(reason == Simulator::StopReason::Predicate,
                     "recording run did not reach the critical section");
  report.narrative.push_back(
      fmt("recorded e_%c: initiator p%d entered the CS after %llu steps, "
          "having received %zu messages",
          initiator == 0 ? 'p' : 'q', initiator,
          static_cast<unsigned long long>(sim->step_count()),
          sim->delivered(1 - initiator, initiator).size()));
  return sim;
}

// Replays one recorded activation sequence against the stuffed world.
void replay_process(Simulator& world, sim::ProcessId p,
                    const std::vector<sim::Activation>& activations,
                    ConstructionReport& report) {
  const sim::ProcessId other = 1 - p;
  for (const auto& act : activations) {
    if (act.kind == sim::StepKind::Tick) {
      world.execute(sim::Step::tick(p));
      continue;
    }
    // Deliver: the head of the preloaded channel must be exactly the
    // recorded message — that is the heart of the proof (the process cannot
    // distinguish the stuffed configuration from the recorded execution).
    auto& ch = world.network().channel(other, p);
    if (ch.empty() || !(ch.peek() == act.message)) ++report.replay_mismatches;
    world.execute(sim::Step::deliver(other, p));
  }
}

}  // namespace

ConstructionReport run_unbounded_construction(std::uint64_t seed) {
  ConstructionReport report;

  // Steps 1 and 2 — record e_p and e_q.
  auto run_p = record_initiator_run(0, seed, report);
  auto run_q = record_initiator_run(1, seed + 1, report);

  // Step 3 — the stuffed initial configuration γ0 on unbounded channels.
  auto world = fresh_world(sim::Channel::kUnbounded, seed + 2);
  core::request_cs(*world, 0);
  core::request_cs(*world, 1);
  for (const auto& m : run_p->delivered(1, 0)) {
    if (world->network().channel(1, 0).push(m))
      ++report.preloaded_to_p;
    else
      ++report.preload_refused;
  }
  for (const auto& m : run_q->delivered(0, 1)) {
    if (world->network().channel(0, 1).push(m))
      ++report.preloaded_to_q;
    else
      ++report.preload_refused;
  }
  report.narrative.push_back(
      fmt("stuffed γ0: %zu messages in channel q->p, %zu in channel p->q, "
          "%zu refused",
          report.preloaded_to_p, report.preloaded_to_q,
          report.preload_refused));

  // Step 4 — replay both bad factors.
  replay_process(*world, 0, run_p->activations(0), report);
  const bool p_in_cs = in_cs(*world, 0);
  replay_process(*world, 1, run_q->activations(1), report);
  const bool q_in_cs = in_cs(*world, 1);

  report.both_requested_cs = true;  // both requests were installed in γ0
  report.both_in_cs_concurrently = p_in_cs && q_in_cs;
  report.narrative.push_back(
      fmt("after replay: p0 in CS = %s, p1 in CS = %s, replay mismatches = "
          "%zu",
          p_in_cs ? "yes" : "no", q_in_cs ? "yes" : "no",
          report.replay_mismatches));
  if (report.both_in_cs_concurrently)
    report.narrative.push_back(
        "=> two REQUESTING processes execute the critical section "
        "concurrently: the bad factor of the mutual-exclusion specification "
        "(Theorem 1)");
  return report;
}

ConstructionReport run_bounded_counterfactual(std::size_t capacity,
                                              std::uint64_t seed) {
  SNAPSTAB_CHECK(capacity >= 1);
  ConstructionReport report;

  auto run_p = record_initiator_run(0, seed, report);
  auto run_q = record_initiator_run(1, seed + 1, report);

  // The same stuffing attempt against channels with a known bound: almost
  // all of it is refused — the configuration required by Theorem 1 is not
  // installable. The critical section is short here so the counterfactual
  // run completes.
  auto bounded = std::make_unique<Simulator>(2, capacity, seed + 2);
  core::StackOptions opts;
  opts.channel_capacity = static_cast<int>(capacity);
  opts.me.cs_length = 3;
  bounded->add_process(std::make_unique<core::MeStackProcess>(kIdP, 1, opts));
  bounded->add_process(std::make_unique<core::MeStackProcess>(kIdQ, 1, opts));
  core::request_cs(*bounded, 0);
  core::request_cs(*bounded, 1);
  for (const auto& m : run_p->delivered(1, 0)) {
    if (bounded->network().channel(1, 0).push(m))
      ++report.preloaded_to_p;
    else
      ++report.preload_refused;
  }
  for (const auto& m : run_q->delivered(0, 1)) {
    if (bounded->network().channel(0, 1).push(m))
      ++report.preloaded_to_q;
    else
      ++report.preload_refused;
  }
  report.narrative.push_back(
      fmt("bounded stuffing (capacity %zu): %zu + %zu accepted, %zu refused",
          capacity, report.preloaded_to_p, report.preloaded_to_q,
          report.preload_refused));

  // Run a fair execution from the installable remainder of γ0 and check
  // Specification 3: the guarantee holds.
  bounded->set_scheduler(
      std::make_unique<sim::RandomScheduler>(seed + 3));
  bounded->run(400'000, [&](Simulator& s) {
    // Stop once both requests were served (both back to Done).
    return s.process_as<core::MeStackProcess>(0).me().request_state() ==
               core::RequestState::Done &&
           s.process_as<core::MeStackProcess>(1).me().request_state() ==
               core::RequestState::Done;
  });
  const auto spec = core::check_me_spec(*bounded, {.require_liveness = true});
  report.spec_violations = spec.violations;
  report.both_in_cs_concurrently = false;
  for (const auto& v : spec.violations)
    if (v.find("mutual exclusion violated") != std::string::npos)
      report.both_in_cs_concurrently = true;
  report.narrative.push_back(
      fmt("counterfactual fair run: %zu specification violation(s)",
          report.spec_violations.size()));
  return report;
}

}  // namespace snapstab::impossibility
