// construction.hpp — Theorem 1, executable.
//
// The paper proves that no safety-distributed specification (mutual
// exclusion among them) admits a snap-stabilizing solution when channel
// capacity is finite but unbounded. The proof is constructive, and this
// module runs it, literally, against our own Protocol ME (which Theorem 4
// proves snap-stabilizing for *known capacity 1*):
//
//   1. Record execution e_p: process p requests the critical section in a
//      fresh two-process system and eventually enters it. Keep p's exact
//      activation sequence and the message sequence MesSeq_q->p it received.
//   2. Record execution e_q: symmetric, q requests and enters the CS.
//   3. Build the stuffed initial configuration γ0: fresh process states with
//      both requests pending, channel q->p preloaded with MesSeq_q->p and
//      channel p->q preloaded with MesSeq_p->q. This needs channels able to
//      hold |MesSeq| messages — hence *unbounded* capacity.
//   4. Replay: drive p through its recorded activations (its deliveries pop
//      exactly the preloaded messages, so p cannot distinguish γ0 from e_p
//      and walks into the CS), then drive q likewise. Both requesting
//      processes are now in the CS simultaneously — the bad factor.
//
// The bounded counterfactual shows where the construction collapses when
// the capacity bound is known: the preload no longer fits (sends into full
// channels are lost), and a fair execution from the resulting — installable
// — configuration keeps the mutual-exclusion guarantee.
#ifndef SNAPSTAB_IMPOSSIBILITY_CONSTRUCTION_HPP
#define SNAPSTAB_IMPOSSIBILITY_CONSTRUCTION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace snapstab::impossibility {

struct ConstructionReport {
  // Outcome of the replay.
  bool both_requested_cs = false;  // both processes' requests reached the CS
  bool both_in_cs_concurrently = false;  // the safety violation
  // Size of the stuffed initial configuration.
  std::size_t preloaded_to_p = 0;  // messages stuffed into channel q -> p
  std::size_t preloaded_to_q = 0;  // messages stuffed into channel p -> q
  std::size_t preload_refused = 0;  // stuffs refused by bounded channels
  // Replay fidelity: deliveries whose message differed from the recording
  // (must be 0 on unbounded channels).
  std::size_t replay_mismatches = 0;
  // Violations reported by the mutual-exclusion specification checker on
  // the counterfactual run (must stay empty for bounded channels).
  std::vector<std::string> spec_violations;
  // Human-readable narration for the experiment binary.
  std::vector<std::string> narrative;
};

// Runs steps 1-4 above on channels of unbounded capacity. With the default
// arguments the violation is reproduced deterministically.
ConstructionReport run_unbounded_construction(std::uint64_t seed);

// Attempts the same stuffing on channels of the given bounded capacity
// (>= 1), then runs a fair execution from the resulting configuration and
// checks Specification 3. Demonstrates that a known capacity bound defeats
// the adversary of Theorem 1.
ConstructionReport run_bounded_counterfactual(std::size_t capacity,
                                              std::uint64_t seed);

}  // namespace snapstab::impossibility

#endif  // SNAPSTAB_IMPOSSIBILITY_CONSTRUCTION_HPP
