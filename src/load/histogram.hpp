// histogram.hpp — fixed-bucket log-scale latency histogram (HDR-style).
//
// The load generator records one latency sample per completed session; a
// workload sweep completes millions, across shards, and the aggregate JSON
// must be bit-identical for any worker count. Both constraints rule out the
// sample-keeping Summary (common/stats.hpp): this histogram is a flat POD of
// fixed-width counters, so recording is O(1) with no allocation, merging two
// shards is element-wise addition (associative and commutative — any merge
// tree produces identical bits), and the whole state can be hashed for the
// determinism pin.
//
// Bucketing: values below kSubBuckets (32) get one bucket each (exact);
// above that, each octave [32·2^(o-1), 32·2^o) splits into 32 buckets of
// width 2^(o-1), so the relative quantization error is bounded by 1/32
// everywhere. percentile() is nearest-rank over bucket counts and returns
// the bucket's inclusive upper bound clamped to the recorded maximum —
// always >= the exact sorted-vector answer and within 1/32 above it
// (tests/test_load.cpp pins both bounds against an oracle).
#ifndef SNAPSTAB_LOAD_HISTOGRAM_HPP
#define SNAPSTAB_LOAD_HISTOGRAM_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <type_traits>

namespace snapstab::load {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32
  // Octave 0 covers [0, 32); octaves 1..59 cover [32·2^(o-1), 32·2^o),
  // which reaches past 2^63 — any uint64 latency has a bucket.
  static constexpr int kOctaves = 60;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  void record(std::uint64_t v) noexcept { record_n(v, 1); }

  void record_n(std::uint64_t v, std::uint64_t n) noexcept {
    if (n == 0) return;
    counts_[static_cast<std::size_t>(index_of(v))] += n;
    count_ += n;
    sum_ += v * n;
    if (count_ == n || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Nearest-rank percentile (pct in [0, 100]): the value at rank
  // ceil(pct/100 · count) of the sorted sample multiset, reported as its
  // bucket's inclusive upper bound, clamped to the recorded maximum.
  std::uint64_t percentile(double pct) const noexcept {
    if (count_ == 0) return 0;
    if (pct <= 0.0) return min();
    std::uint64_t rank =
        static_cast<std::uint64_t>(pct / 100.0 * static_cast<double>(count_));
    if (static_cast<double>(rank) * 100.0 <
        pct * static_cast<double>(count_))
      ++rank;  // ceil
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<std::size_t>(b)];
      if (seen >= rank) {
        const std::uint64_t hi = bucket_high(b);
        return hi < max_ ? hi : max_;
      }
    }
    return max_;
  }

  // Element-wise addition: associative, commutative, allocation-free.
  void merge(const LatencyHistogram& o) noexcept {
    if (o.count_ == 0) return;
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
    for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  }

  bool operator==(const LatencyHistogram&) const = default;

  // FNV-1a over the full counter state — the determinism pin's digest.
  std::uint64_t digest() const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ull;
      }
    };
    mix(count_);
    mix(sum_);
    mix(min());
    mix(max_);
    for (const std::uint64_t c : counts_) mix(c);
    return h;
  }

  // --- bucket geometry (exposed for the oracle tests) ---
  static int index_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);   // >= kSubBits
    const int octave = msb - kSubBits + 1;      // >= 1
    const auto sub = static_cast<int>((v >> (octave - 1)) - kSubBuckets);
    return octave * kSubBuckets + sub;
  }
  static std::uint64_t bucket_high(int index) noexcept {
    const int octave = index >> kSubBits;
    const int sub = index & (kSubBuckets - 1);
    if (octave == 0) return static_cast<std::uint64_t>(sub);
    const std::uint64_t low = static_cast<std::uint64_t>(kSubBuckets + sub)
                              << (octave - 1);
    return low + ((std::uint64_t{1} << (octave - 1)) - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// The shard runner moves histograms between worker threads and folds them
// into the aggregate by plain assignment — keep them trivially copyable.
static_assert(std::is_trivially_copyable_v<LatencyHistogram>);

}  // namespace snapstab::load

#endif  // SNAPSTAB_LOAD_HISTOGRAM_HPP
