// shard.hpp — the one-simulator-per-worker parallel fan primitive.
//
// PR 2's bench/trial_runner.hpp proved the pattern: fan seeded jobs across a
// pool of std::threads, one StringPool installed per worker for the worker's
// lifetime, every job claiming its index from a shared counter and writing
// its result into a job-indexed slot. Determinism then rests solely on each
// job deriving all of its randomness from its index — results are identical
// for any worker count, including threads == 1, and the caller folds them in
// index order so aggregation order is fixed too.
//
// This header promotes that primitive from the bench tree into the library,
// where the sharded load generator (load/workload.hpp) builds its
// coordinated-workload mode on it: N shards of ONE workload instead of N
// independent trials. bench/trial_runner.hpp now delegates here, so the
// independent-trial harness and the sharded runner are the same code path
// (pinned by tests/test_trial_runner.cpp and tests/test_load.cpp).
//
// Jobs must return plain data (numbers, POD structs, strings). Returning a
// Value or an Observation would dangle: it carries a StrId into the worker's
// pool, which dies with the worker.
#ifndef SNAPSTAB_LOAD_SHARD_HPP
#define SNAPSTAB_LOAD_SHARD_HPP

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "msg/strpool.hpp"

namespace snapstab::load {

// Executes fn(0..jobs-1) across `threads` workers (clamped to [1, jobs]);
// result i is fn(i) regardless of which worker ran it.
template <typename Fn>
auto parallel_shards(int jobs, int threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, int>> {
  using Result = std::invoke_result_t<Fn&, int>;
  static_assert(std::is_default_constructible_v<Result>);
  // vector<bool> packs results into shared words — concurrent writes to
  // results[i] from different workers would race. Return a struct instead.
  static_assert(!std::is_same_v<Result, bool>,
                "shard results must not be bool (vector<bool> slots share "
                "words across workers); wrap the flag in a struct");
  std::vector<Result> results(static_cast<std::size_t>(jobs > 0 ? jobs : 0));
  if (jobs <= 0) return results;
  if (threads > jobs) threads = jobs;

  // Work claiming is a single shared counter, not a static partition: every
  // index in [0, jobs) is claimed exactly once whatever the jobs-to-threads
  // ratio, and each result lands in its own index-addressed slot.
  std::atomic<int> next{0};
  const auto worker = [&]() {
    StringPool pool;  // one Simulator + one pool per worker thread
    ScopedStringPool scope(pool);
    for (int i = next.fetch_add(1); i < jobs; i = next.fetch_add(1))
      results[static_cast<std::size_t>(i)] = fn(i);
  };

  if (threads <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) workers.emplace_back(worker);
  for (auto& w : workers) w.join();
  return results;
}

}  // namespace snapstab::load

#endif  // SNAPSTAB_LOAD_SHARD_HPP
