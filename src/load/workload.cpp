#include "load/workload.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "load/shard.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab::load {

namespace {

using svc::ServiceId;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shard i's share of an aggregate target: totals split evenly, remainders
// to the lowest shard indices — sum over shards reconstructs the total.
std::uint64_t share(std::uint64_t total, int i, int k) {
  return total / static_cast<std::uint64_t>(k) +
         (static_cast<std::uint64_t>(i) <
                  total % static_cast<std::uint64_t>(k)
              ? 1
              : 0);
}

sim::Topology make_topology(const std::string& name, int n,
                            std::uint64_t seed) {
  if (name == "complete") return sim::Topology::complete(n);
  if (name == "ring") return sim::Topology::ring(n);
  if (name == "line") return sim::Topology::line(n);
  if (name == "star") return sim::Topology::star(n);
  if (name == "tree") return sim::Topology::random_tree(n, seed);
  SNAPSTAB_CHECK_MSG(false, "unknown workload topology");
  return sim::Topology::ring(n);
}

// One in-flight logical request, from the driver's point of view. The seq
// may be shared with other slots (coalesced submissions chain onto one
// host session); each slot still gets its own completion callback.
struct LiveSlot {
  std::uint64_t submit_step = 0;
  std::uint64_t submit_wall = 0;  // record_wall only
  std::uint32_t seq = 0;
  sim::ProcessId origin = -1;
  bool in_use = false;
};

struct Driver {
  const WorkloadSpec* spec = nullptr;
  sim::Simulator* sim = nullptr;
  svc::Client* client = nullptr;
  std::vector<svc::ServiceHost*> hosts;
  Rng rng;  // ALL driver randomness; seeded from (seed, shard, shard_count)

  // Weighted service pick: cumulative integer weights.
  std::array<std::uint32_t, svc::kServiceIdCount> cum{};
  std::uint32_t weight_total = 0;

  std::vector<LiveSlot> slots;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t live = 0;

  // ForwardMsg end-to-end matching: (origin << 20 | wire_seq) -> slot.
  std::unordered_map<std::uint64_t, std::uint32_t> fwd_wait;
  std::vector<svc::ServiceHost::Delivery> scratch;
  bool any_forward = false;

  std::uint64_t warmup = 0;   // this shard's discarded completions
  std::uint64_t target = 0;   // warmup + measured completions
  std::uint64_t completions = 0;
  std::uint64_t concurrency = 0;  // closed-loop in-flight target
  std::uint64_t next_arrival = 0;  // open loop, in engine steps
  std::int64_t next_payload = 0;

  WorkloadCounters counters;
  LatencyHistogram steps_hist;
  LatencyHistogram wall_hist;

  ServiceId pick_service() {
    const auto r = static_cast<std::uint32_t>(rng.below(weight_total));
    for (int i = 0; i < svc::kServiceIdCount; ++i)
      if (r < cum[static_cast<std::size_t>(i)])
        return static_cast<ServiceId>(i);
    return ServiceId::PifBroadcast;  // unreachable
  }

  void on_session_done(std::uint32_t si, const svc::SessionKey& key,
                       const svc::SessionResult& r) {
    LiveSlot& ls = slots[si];
    if (r.completed) {
      ++counters.completed;
      ++completions;
      if (completions > warmup) {
        steps_hist.record(sim->step_count() - ls.submit_step);
        if (spec->record_wall) wall_hist.record(now_ns() - ls.submit_wall);
      }
    } else {
      ++counters.refused;  // ForwardMsg admission refusal (born Done)
    }
    ls.in_use = false;
    free_slots.push_back(si);
    --live;
    // Recycle the host-side record immediately: O(live) memory however
    // many sessions pass through. A coalesced twin releases once; the
    // chained callbacks' repeat releases are no-ops.
    hosts[static_cast<std::size_t>(key.origin)]->release_session(key.seq);
  }

  // Submits one session of the weighted mix from a fresh driver slot.
  // Returns false when the submission was refused at admission (ForwardMsg
  // backpressure) — the caller should stop submitting until the engine
  // drains some hops.
  bool submit_one() {
    const ServiceId sid = pick_service();
    const int n = static_cast<int>(hosts.size());
    const auto origin =
        static_cast<sim::ProcessId>(rng.below(static_cast<std::uint64_t>(n)));
    svc::Descriptor d;
    d.service = sid;
    const bool fwd = sid == ServiceId::ForwardMsg;
    if (sid == ServiceId::PifBroadcast || fwd)
      d.payload = Value::integer(++next_payload);
    if (fwd) {
      // Uniform destination != origin (every pair is routable: the
      // workload topologies are connected).
      auto t = static_cast<sim::ProcessId>(
          rng.below(static_cast<std::uint64_t>(n - 1)));
      if (t >= origin) ++t;
      d.dst = t;
    }

    std::uint32_t si;
    if (!free_slots.empty()) {
      si = free_slots.back();
      free_slots.pop_back();
    } else {
      si = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    // Fill the slot BEFORE submitting: a refused ForwardMsg admission
    // fires the completion callback synchronously inside submit_desc.
    LiveSlot& ls = slots[si];
    ls.in_use = true;
    ls.origin = origin;
    ls.submit_step = sim->step_count();
    if (spec->record_wall) ls.submit_wall = now_ns();
    ++live;
    const svc::Session s = client->submit_desc(
        origin, d,
        [this, si](const svc::SessionKey& k, const svc::SessionResult& r) {
          on_session_done(si, k, r);
        });
    ++counters.submitted;
    if (s.coalesced) ++counters.coalesced;
    if (!slots[si].in_use) return false;  // refused synchronously
    slots[si].seq = s.key.seq;
    if (fwd) {
      any_forward = true;
      fwd_wait.emplace((static_cast<std::uint64_t>(s.key.origin) << 20) |
                           s.wire_seq,
                       si);
    }
    return true;
  }

  // The driver pump, run as the engine's stop predicate every check_every
  // steps: drains forward deliveries, refills the arrival model, bounds
  // the observation log. Returns true when the shard's completion target
  // is met.
  bool pump() {
    if (any_forward) {
      for (svc::ServiceHost* h : hosts) h->take_deliveries(scratch);
      for (const svc::ServiceHost::Delivery& del : scratch) {
        const auto it = fwd_wait.find(
            (static_cast<std::uint64_t>(del.origin) << 20) | del.wire_seq);
        if (it == fwd_wait.end()) continue;  // released / foreign traffic
        const std::uint32_t si = it->second;
        fwd_wait.erase(it);
        if (!slots[si].in_use) continue;
        // finish_forward completes the origin's session and fires the
        // slot's callback (which records latency and frees the slot).
        hosts[static_cast<std::size_t>(slots[si].origin)]->finish_forward(
            slots[si].seq);
      }
      scratch.clear();
    }

    if (completions >= target) return true;

    if (spec->arrival == WorkloadSpec::Arrival::Closed) {
      while (live < concurrency)
        if (!submit_one()) break;  // forward backpressure: wait for drain
    } else {
      const std::uint64_t now = sim->step_count();
      while (next_arrival <= now) {
        if (live >= spec->max_in_flight)
          ++counters.shed;  // the cap is load shedding, not queueing
        else
          submit_one();
        next_arrival += 1 + rng.below(2 * spec->inter_arrival - 1);
      }
    }

    // Session traffic logs one observation per request event; a million
    // sessions would grow the log unboundedly. The load driver is not a
    // trace consumer — keep the log bounded.
    if (sim->log().size() > (1u << 20)) sim->log().clear();
    return completions >= target;
  }
};

}  // namespace

ShardResult run_workload_shard(const WorkloadSpec& spec, int shard,
                               int shard_count) {
  SNAPSTAB_CHECK(shard_count >= 1 && shard >= 0 && shard < shard_count);
  SNAPSTAB_CHECK_MSG(spec.n >= 2, "a workload world needs >= 2 processes");

  if (spec.arrival == WorkloadSpec::Arrival::Open)
    SNAPSTAB_CHECK_MSG(spec.inter_arrival >= 1,
                       "open-loop mean inter-arrival must be >= 1 step");

  ShardResult out;
  const std::uint64_t wall_start = now_ns();

  // Effective weights: all-zero means a pure PIF-broadcast mix.
  std::array<std::uint32_t, svc::kServiceIdCount> w = spec.weights;
  std::uint32_t total = 0;
  for (const std::uint32_t x : w) total += x;
  if (total == 0) {
    w[static_cast<std::size_t>(ServiceId::PifBroadcast)] = 1;
    total = 1;
  }
  const bool with_cs =
      w[static_cast<std::size_t>(ServiceId::CriticalSection)] > 0;
  const bool with_fwd = w[static_cast<std::size_t>(ServiceId::ForwardMsg)] > 0;
  if (with_cs) {
    std::uint32_t others = 0;
    for (int i = 0; i < svc::kServiceIdCount; ++i) {
      const auto s = static_cast<ServiceId>(i);
      if (s != ServiceId::CriticalSection && s != ServiceId::ForwardMsg)
        others += w[static_cast<std::size_t>(i)];
    }
    SNAPSTAB_CHECK_MSG(others == 0,
                       "a CriticalSection mix admits only CS + ForwardMsg "
                       "(an ME host's phase cycle owns its IDL/PIF stack)");
  }

  // Everything this shard does derives from (seed, shard, shard_count):
  // identical results whichever worker thread runs it.
  std::uint64_t mix = spec.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(shard) + 1)) ^
                      (0xBF58476D1CE4E5B9ull *
                       static_cast<std::uint64_t>(shard_count));
  const std::uint64_t world_seed = splitmix64(mix);
  const std::uint64_t sched_seed = splitmix64(mix);
  const std::uint64_t driver_seed = splitmix64(mix);

  auto sim = svc::service_world(
      make_topology(spec.topology, spec.n, world_seed), spec.channel_capacity,
      world_seed,
      [&](sim::ProcessId p) {
        svc::HostConfig cfg;
        cfg.id = p + 1;  // distinct identities for IDL / ME / election
        cfg.with_me = with_cs;
        cfg.with_idl = w[static_cast<std::size_t>(ServiceId::Idl)] > 0;
        cfg.with_reset = w[static_cast<std::size_t>(ServiceId::Reset)] > 0;
        cfg.with_snapshot =
            w[static_cast<std::size_t>(ServiceId::Snapshot)] > 0;
        cfg.with_termdetect =
            w[static_cast<std::size_t>(ServiceId::TermDetect)] > 0;
        cfg.with_election =
            w[static_cast<std::size_t>(ServiceId::Election)] > 0;
        if (cfg.with_snapshot)
          cfg.local_state = [p] { return Value::integer(p); };
        if (cfg.with_termdetect)
          cfg.app.counters = [] { return core::AppCounters{}; };
        return cfg;
      },
      with_fwd);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(sched_seed));
  svc::Client client(*sim);

  Driver drv;
  drv.spec = &spec;
  drv.sim = sim.get();
  drv.client = &client;
  drv.hosts.reserve(static_cast<std::size_t>(spec.n));
  for (sim::ProcessId p = 0; p < sim->process_count(); ++p)
    drv.hosts.push_back(&sim->process_as<svc::ServiceHost>(p));
  drv.rng = Rng(driver_seed);
  std::uint32_t acc = 0;
  for (int i = 0; i < svc::kServiceIdCount; ++i) {
    acc += w[static_cast<std::size_t>(i)];
    drv.cum[static_cast<std::size_t>(i)] = acc;
  }
  drv.weight_total = total;
  drv.warmup = share(spec.warmup, shard, shard_count);
  drv.target = drv.warmup + share(spec.measure, shard, shard_count);
  drv.concurrency = share(spec.concurrency, shard, shard_count);
  if (spec.arrival == WorkloadSpec::Arrival::Closed && drv.concurrency == 0)
    drv.concurrency = drv.target > 0 ? 1 : 0;

  if (drv.target == 0) {
    out.wall_ns = now_ns() - wall_start;
    return out;  // this shard has no share of the measure phase
  }

  sim::StopPolicy policy;
  policy.check_every = static_cast<std::uint64_t>(
      spec.check_every > 0 ? spec.check_every : 1);

  bool done = drv.pump();  // initial arrivals / closed-loop fill
  while (!done) {
    const std::uint64_t used = sim->step_count();
    if (used >= spec.max_steps) {
      out.hit_step_budget = true;
      break;
    }
    const sim::Simulator::StopReason reason = sim->run(
        spec.max_steps - used,
        [&drv](sim::Simulator&) { return drv.pump(); }, policy);
    done = drv.completions >= drv.target;
    if (done) break;
    if (reason == sim::Simulator::StopReason::BudgetExhausted) {
      out.hit_step_budget = true;
      break;
    }
    if (reason == sim::Simulator::StopReason::Quiescent) {
      // No enabled step. Open loop: logical time jumps to the next
      // arrival. Either way the pump gets one chance to inject work; a
      // still-quiescent world with nothing submitted is a stall (e.g. an
      // all-shed arrival stream) — stop rather than spin.
      if (spec.arrival == WorkloadSpec::Arrival::Open)
        drv.next_arrival = sim->step_count();
      const std::uint64_t before = drv.counters.submitted;
      done = drv.pump();
      if (!done && drv.counters.submitted == before) {
        out.stalled = true;
        break;
      }
    }
  }

  out.counters = drv.counters;
  out.steps_hist = drv.steps_hist;
  out.wall_hist = drv.wall_hist;
  out.steps = sim->step_count();
  out.wall_ns = now_ns() - wall_start;
  return out;
}

LoadReport run_sharded(const WorkloadSpec& spec, int shards, int threads) {
  SNAPSTAB_CHECK(shards >= 1 && threads >= 1);
  LoadReport report;
  report.shard_count = shards;
  report.threads = threads;
  const std::uint64_t wall_start = now_ns();
  report.shards = parallel_shards(shards, threads, [&spec, shards](int i) {
    return run_workload_shard(spec, i, shards);
  });
  report.harness_wall_ns = now_ns() - wall_start;
  for (const ShardResult& s : report.shards) {
    report.total.counters.merge(s.counters);
    report.total.steps_hist.merge(s.steps_hist);
    report.total.wall_hist.merge(s.wall_hist);
    report.total.steps += s.steps;
    report.total.wall_ns += s.wall_ns;
    report.total.hit_step_budget |= s.hit_step_budget;
    report.total.stalled |= s.stalled;
  }
  return report;
}

std::string LoadReport::deterministic_json(const WorkloadSpec& spec) const {
  // Hand-rolled, field-order-fixed JSON: the determinism pin compares these
  // bytes across thread counts, so nothing wall-clock-derived may appear.
  std::string s;
  s.reserve(1024);
  char buf[64];
  const auto u = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    s += buf;
  };
  const LatencyHistogram& h = total.steps_hist;
  s += "{\"topology\":\"";
  s += spec.topology;
  s += "\",\"n\":";
  u(static_cast<std::uint64_t>(spec.n));
  s += ",\"seed\":";
  u(spec.seed);
  s += ",\"arrival\":\"";
  s += spec.arrival == WorkloadSpec::Arrival::Closed ? "closed" : "open";
  s += "\",\"shards\":";
  u(static_cast<std::uint64_t>(shard_count));
  s += ",\"counters\":{\"submitted\":";
  u(total.counters.submitted);
  s += ",\"completed\":";
  u(total.counters.completed);
  s += ",\"coalesced\":";
  u(total.counters.coalesced);
  s += ",\"refused\":";
  u(total.counters.refused);
  s += ",\"shed\":";
  u(total.counters.shed);
  s += "},\"steps_total\":";
  u(total.steps);
  s += ",\"budget_hit\":";
  s += total.hit_step_budget ? "true" : "false";
  s += ",\"stalled\":";
  s += total.stalled ? "true" : "false";
  s += ",\"latency_steps\":{\"count\":";
  u(h.count());
  s += ",\"min\":";
  u(h.min());
  s += ",\"p50\":";
  u(h.percentile(50));
  s += ",\"p90\":";
  u(h.percentile(90));
  s += ",\"p99\":";
  u(h.percentile(99));
  s += ",\"p999\":";
  u(h.percentile(99.9));
  s += ",\"max\":";
  u(h.max());
  s += ",\"sum\":";
  u(h.sum());
  s += ",\"digest\":\"";
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.digest()));
  s += buf;
  s += "\"},\"per_shard\":{\"completed\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) s += ',';
    u(shards[i].counters.completed);
  }
  s += "],\"steps\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) s += ',';
    u(shards[i].steps);
  }
  s += "]}}";
  return s;
}

}  // namespace snapstab::load
