#include "load/workload.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "load/shard.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab::load {

namespace {

using svc::ServiceId;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shard i's share of an aggregate target: totals split evenly, remainders
// to the lowest shard indices — sum over shards reconstructs the total.
std::uint64_t share(std::uint64_t total, int i, int k) {
  return total / static_cast<std::uint64_t>(k) +
         (static_cast<std::uint64_t>(i) <
                  total % static_cast<std::uint64_t>(k)
              ? 1
              : 0);
}

sim::Topology make_topology(const std::string& name, int n,
                            std::uint64_t seed) {
  if (name == "complete") return sim::Topology::complete(n);
  if (name == "ring") return sim::Topology::ring(n);
  if (name == "line") return sim::Topology::line(n);
  if (name == "star") return sim::Topology::star(n);
  if (name == "tree") return sim::Topology::random_tree(n, seed);
  SNAPSTAB_CHECK_MSG(false, "unknown workload topology");
  return sim::Topology::ring(n);
}

// One in-flight logical request, from the driver's point of view. The seq
// may be shared with other slots (coalesced submissions chain onto one
// host session); each slot still gets its own completion callback. Under a
// fault plan a request may span several attempts: `gen` stamps the current
// attempt so callbacks and delivery matches from abandoned attempts are
// recognized as stale, and `desc` is kept for resubmission.
struct LiveSlot {
  std::uint64_t submit_step = 0;  // first attempt: latency spans retries
  std::uint64_t submit_wall = 0;  // record_wall only
  std::uint64_t deadline = 0;     // faulted runs: abandon the attempt here
  std::uint32_t seq = 0;
  std::uint32_t gen = 0;
  std::uint32_t attempts = 0;
  sim::ProcessId origin = -1;
  bool in_use = false;
  svc::Descriptor desc;  // faulted runs only (retries resubmit it)
};

struct Driver {
  const WorkloadSpec* spec = nullptr;
  sim::Simulator* sim = nullptr;
  svc::Client* client = nullptr;
  std::vector<svc::ServiceHost*> hosts;
  Rng rng;  // ALL driver randomness; seeded from (seed, shard, shard_count)

  // Weighted service pick: cumulative integer weights.
  std::array<std::uint32_t, svc::kServiceIdCount> cum{};
  std::uint32_t weight_total = 0;

  std::vector<LiveSlot> slots;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t live = 0;

  // ForwardMsg end-to-end matching: (origin << 20 | wire_seq) ->
  // (gen << 32 | slot); the gen is checked on match so a delivery for an
  // abandoned attempt cannot complete the slot's current occupant.
  std::unordered_map<std::uint64_t, std::uint64_t> fwd_wait;
  std::vector<svc::ServiceHost::Delivery> scratch;
  bool any_forward = false;

  std::uint64_t warmup = 0;   // this shard's discarded completions
  std::uint64_t target = 0;   // warmup + measured completions
  std::uint64_t completions = 0;
  std::uint64_t concurrency = 0;  // closed-loop in-flight target
  std::uint64_t next_arrival = 0;  // open loop, in engine steps
  std::int64_t next_payload = 0;

  // Fault engine (faults_on iff the spec carries windows; everything below
  // is untouched otherwise, so faults-off streams stay bit-identical).
  bool faults_on = false;
  fault::Injector* injector = nullptr;
  std::uint64_t fault_first_begin = 0;
  std::uint64_t fault_last_end = 0;

  WorkloadCounters counters;
  LatencyHistogram steps_hist;
  LatencyHistogram wall_hist;
  // Recovery metrics (faulted runs).
  std::uint64_t completed_during_fault = 0;
  std::uint64_t completed_after_fault = 0;
  std::uint64_t first_success_after_fault = 0;
  bool recovered = false;
  LatencyHistogram recovery_hist;

  ServiceId pick_service() {
    const auto r = static_cast<std::uint32_t>(rng.below(weight_total));
    for (int i = 0; i < svc::kServiceIdCount; ++i)
      if (r < cum[static_cast<std::size_t>(i)])
        return static_cast<ServiceId>(i);
    return ServiceId::PifBroadcast;  // unreachable
  }

  void free_slot(std::uint32_t si) {
    slots[si].in_use = false;
    free_slots.push_back(si);
    --live;
  }

  void on_session_done(std::uint32_t si, std::uint32_t gen,
                       const svc::SessionKey& key,
                       const svc::SessionResult& r) {
    // Recycle the host-side record immediately: O(live) memory however
    // many sessions pass through. A coalesced twin releases once; the
    // chained callbacks' repeat releases are no-ops.
    hosts[static_cast<std::size_t>(key.origin)]->release_session(key.seq);
    LiveSlot& ls = slots[si];
    // A ghost completion of an attempt the driver already abandoned
    // (deadline-expired and resubmitted, or slot recycled): record nothing.
    if (!ls.in_use || ls.gen != gen) return;
    if (r.completed) {
      ++counters.completed;
      ++completions;
      const std::uint64_t step = sim->step_count();
      if (completions > warmup) {
        steps_hist.record(step - ls.submit_step);
        if (spec->record_wall) wall_hist.record(now_ns() - ls.submit_wall);
      }
      if (faults_on) {
        if (step >= fault_last_end)
          ++completed_after_fault;
        else if (step >= fault_first_begin)
          ++completed_during_fault;
        if (ls.submit_step >= fault_last_end) {
          recovery_hist.record(step - ls.submit_step);
          if (!recovered) {
            recovered = true;
            first_success_after_fault = step - fault_last_end;
          }
        }
      }
      free_slot(si);
      return;
    }
    // Failed attempt: a ForwardMsg admission refusal (backpressure) or a
    // session killed by a crash-restart window (admission stays Accepted).
    if (r.admission != core::ForwardSubmit::Accepted) ++counters.refused;
    if (!faults_on) {  // historic behavior: refusals are terminal
      free_slot(si);
      return;
    }
    retry_or_fail(si);
  }

  void retry_or_fail(std::uint32_t si) {
    LiveSlot& ls = slots[si];
    if (ls.attempts > static_cast<std::uint32_t>(spec->fault_max_retries)) {
      ++counters.failed;
      free_slot(si);
      return;
    }
    ++counters.retries;
    resubmit_slot(si);
  }

  // Resubmits the slot's descriptor as a fresh attempt (faulted runs). The
  // abandoned attempt's host record, if still live, is left to its ghost
  // completion; the gen bump makes that completion stale on arrival.
  void resubmit_slot(std::uint32_t si) {
    LiveSlot& ls = slots[si];
    ++ls.gen;
    ++ls.attempts;
    ls.deadline = sim->step_count() + spec->fault_deadline;
    const std::uint32_t gen = ls.gen;
    const svc::Session s = client->submit_desc(
        ls.origin, ls.desc,
        [this, si, gen](const svc::SessionKey& k,
                        const svc::SessionResult& r) {
          on_session_done(si, gen, k, r);
        });
    ++counters.submitted;
    if (s.coalesced) ++counters.coalesced;
    // A synchronous refusal re-enters retry_or_fail inside submit_desc:
    // by now the slot is free or carries a newer attempt — leave it alone.
    if (!slots[si].in_use || slots[si].gen != gen) return;
    slots[si].seq = s.key.seq;
    if (ls.desc.service == ServiceId::ForwardMsg) {
      fwd_wait[(static_cast<std::uint64_t>(s.key.origin) << 20) |
               s.wire_seq] = fwd_slot_token(si, gen);
    }
  }

  static std::uint64_t fwd_slot_token(std::uint32_t si, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | si;
  }

  // Submits one session of the weighted mix from a fresh driver slot.
  // Returns false when the submission was refused at admission (ForwardMsg
  // backpressure) — the caller should stop submitting until the engine
  // drains some hops.
  bool submit_one() {
    const ServiceId sid = pick_service();
    const int n = static_cast<int>(hosts.size());
    const auto origin =
        static_cast<sim::ProcessId>(rng.below(static_cast<std::uint64_t>(n)));
    svc::Descriptor d;
    d.service = sid;
    const bool fwd = sid == ServiceId::ForwardMsg;
    if (sid == ServiceId::PifBroadcast || fwd)
      d.payload = Value::integer(++next_payload);
    if (fwd) {
      // Uniform destination != origin (every pair is routable: the
      // workload topologies are connected).
      auto t = static_cast<sim::ProcessId>(
          rng.below(static_cast<std::uint64_t>(n - 1)));
      if (t >= origin) ++t;
      d.dst = t;
    }

    std::uint32_t si;
    if (!free_slots.empty()) {
      si = free_slots.back();
      free_slots.pop_back();
    } else {
      si = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    // Fill the slot BEFORE submitting: a refused ForwardMsg admission
    // fires the completion callback synchronously inside submit_desc.
    LiveSlot& ls = slots[si];
    ls.in_use = true;
    ls.origin = origin;
    ls.submit_step = sim->step_count();
    if (spec->record_wall) ls.submit_wall = now_ns();
    ++ls.gen;  // invalidate any ghost callback of the slot's previous life
    ls.attempts = 1;
    if (faults_on) {
      ls.desc = d;
      ls.deadline = ls.submit_step + spec->fault_deadline;
    }
    const std::uint32_t gen = ls.gen;
    ++live;
    const svc::Session s = client->submit_desc(
        origin, d,
        [this, si, gen](const svc::SessionKey& k,
                        const svc::SessionResult& r) {
          on_session_done(si, gen, k, r);
        });
    ++counters.submitted;
    if (s.coalesced) ++counters.coalesced;
    // Refused synchronously — and, under a fault plan, possibly already
    // resubmitted as a newer attempt from inside the callback.
    if (!slots[si].in_use || slots[si].gen != gen) return false;
    slots[si].seq = s.key.seq;
    if (fwd) {
      any_forward = true;
      fwd_wait.emplace((static_cast<std::uint64_t>(s.key.origin) << 20) |
                           s.wire_seq,
                       fwd_slot_token(si, gen));
    }
    return true;
  }

  // The driver pump, run as the engine's stop predicate every check_every
  // steps: drains forward deliveries, refills the arrival model, bounds
  // the observation log. Returns true when the shard's completion target
  // is met.
  bool pump() {
    // Fault effects apply first, at the pump's step-clock cadence, before
    // any completion is observed or any new work submitted.
    if (faults_on) injector->poll(*sim);

    if (any_forward) {
      for (svc::ServiceHost* h : hosts) h->take_deliveries(scratch);
      for (const svc::ServiceHost::Delivery& del : scratch) {
        const auto it = fwd_wait.find(
            (static_cast<std::uint64_t>(del.origin) << 20) | del.wire_seq);
        if (it == fwd_wait.end()) continue;  // released / foreign traffic
        const auto si = static_cast<std::uint32_t>(it->second & 0xFFFFFFFFu);
        const auto gen = static_cast<std::uint32_t>(it->second >> 32);
        fwd_wait.erase(it);
        if (!slots[si].in_use || slots[si].gen != gen) continue;
        // finish_forward completes the origin's session and fires the
        // slot's callback (which records latency and frees the slot).
        hosts[static_cast<std::size_t>(slots[si].origin)]->finish_forward(
            slots[si].seq);
      }
      scratch.clear();
    }

    // Deadline pass (faulted runs): an attempt whose in-flight computation
    // a window wiped would otherwise hang forever — abandon and retry it.
    if (faults_on) {
      const std::uint64_t now = sim->step_count();
      for (std::uint32_t si = 0; si < slots.size(); ++si) {
        if (slots[si].in_use && now >= slots[si].deadline) retry_or_fail(si);
      }
    }

    if (completions >= target) return true;

    if (spec->arrival == WorkloadSpec::Arrival::Closed) {
      while (live < concurrency)
        if (!submit_one()) break;  // forward backpressure: wait for drain
    } else {
      const std::uint64_t now = sim->step_count();
      while (next_arrival <= now) {
        if (live >= spec->max_in_flight)
          ++counters.shed;  // the cap is load shedding, not queueing
        else
          submit_one();
        next_arrival += 1 + rng.below(2 * spec->inter_arrival - 1);
      }
    }

    // Session traffic logs one observation per request event; a million
    // sessions would grow the log unboundedly. The load driver is not a
    // trace consumer — keep the log bounded.
    if (sim->log().size() > (1u << 20)) sim->log().clear();
    return completions >= target;
  }
};

}  // namespace

ShardResult run_workload_shard(const WorkloadSpec& spec, int shard,
                               int shard_count) {
  SNAPSTAB_CHECK(shard_count >= 1 && shard >= 0 && shard < shard_count);
  SNAPSTAB_CHECK_MSG(spec.n >= 2, "a workload world needs >= 2 processes");

  if (spec.arrival == WorkloadSpec::Arrival::Open)
    SNAPSTAB_CHECK_MSG(spec.inter_arrival >= 1,
                       "open-loop mean inter-arrival must be >= 1 step");

  ShardResult out;
  const std::uint64_t wall_start = now_ns();

  // Effective weights: all-zero means a pure PIF-broadcast mix.
  std::array<std::uint32_t, svc::kServiceIdCount> w = spec.weights;
  std::uint32_t total = 0;
  for (const std::uint32_t x : w) total += x;
  if (total == 0) {
    w[static_cast<std::size_t>(ServiceId::PifBroadcast)] = 1;
    total = 1;
  }
  const bool with_cs =
      w[static_cast<std::size_t>(ServiceId::CriticalSection)] > 0;
  const bool with_fwd = w[static_cast<std::size_t>(ServiceId::ForwardMsg)] > 0;
  if (with_cs) {
    std::uint32_t others = 0;
    for (int i = 0; i < svc::kServiceIdCount; ++i) {
      const auto s = static_cast<ServiceId>(i);
      if (s != ServiceId::CriticalSection && s != ServiceId::ForwardMsg)
        others += w[static_cast<std::size_t>(i)];
    }
    SNAPSTAB_CHECK_MSG(others == 0,
                       "a CriticalSection mix admits only CS + ForwardMsg "
                       "(an ME host's phase cycle owns its IDL/PIF stack)");
  }

  // Everything this shard does derives from (seed, shard, shard_count):
  // identical results whichever worker thread runs it.
  std::uint64_t mix = spec.seed ^
                      (0x9E3779B97F4A7C15ull *
                       (static_cast<std::uint64_t>(shard) + 1)) ^
                      (0xBF58476D1CE4E5B9ull *
                       static_cast<std::uint64_t>(shard_count));
  const std::uint64_t world_seed = splitmix64(mix);
  const std::uint64_t sched_seed = splitmix64(mix);
  const std::uint64_t driver_seed = splitmix64(mix);
  // Drawn ONLY for faulted specs, so faults-off runs keep the exact seed
  // streams (and bytes) they had before the fault engine existed.
  const bool faults_on = spec.faults.enabled();
  const std::uint64_t fault_seed = faults_on ? splitmix64(mix) : 0;

  auto sim = svc::service_world(
      make_topology(spec.topology, spec.n, world_seed), spec.channel_capacity,
      world_seed,
      [&](sim::ProcessId p) {
        svc::HostConfig cfg;
        cfg.id = p + 1;  // distinct identities for IDL / ME / election
        cfg.with_me = with_cs;
        cfg.with_idl = w[static_cast<std::size_t>(ServiceId::Idl)] > 0;
        cfg.with_reset = w[static_cast<std::size_t>(ServiceId::Reset)] > 0;
        cfg.with_snapshot =
            w[static_cast<std::size_t>(ServiceId::Snapshot)] > 0;
        cfg.with_termdetect =
            w[static_cast<std::size_t>(ServiceId::TermDetect)] > 0;
        cfg.with_election =
            w[static_cast<std::size_t>(ServiceId::Election)] > 0;
        if (cfg.with_snapshot)
          cfg.local_state = [p] { return Value::integer(p); };
        if (cfg.with_termdetect)
          cfg.app.counters = [] { return core::AppCounters{}; };
        return cfg;
      },
      with_fwd);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(sched_seed));
  svc::Client client(*sim);

  fault::FaultPlan plan;
  std::unique_ptr<fault::Injector> injector;
  if (faults_on) {
    fault::FaultPlanSpec fs = spec.faults;
    fs.seed = spec.faults.seed ^ fault_seed;  // per-shard schedule
    if (fs.forward_header_n == 0 && with_fwd) fs.forward_header_n = spec.n;
    plan = fault::FaultPlan::compile(fs, sim->topology());
    injector = std::make_unique<fault::Injector>(plan);
    out.fault_first_begin = plan.first_begin();
    out.fault_last_end = plan.last_end();
    out.plan_digest = plan.digest();
    out.fault_windows = static_cast<std::uint64_t>(plan.windows().size());
  }

  Driver drv;
  drv.spec = &spec;
  drv.sim = sim.get();
  drv.client = &client;
  drv.hosts.reserve(static_cast<std::size_t>(spec.n));
  for (sim::ProcessId p = 0; p < sim->process_count(); ++p)
    drv.hosts.push_back(&sim->process_as<svc::ServiceHost>(p));
  drv.rng = Rng(driver_seed);
  if (faults_on) {
    drv.faults_on = true;
    drv.injector = injector.get();
    drv.fault_first_begin = plan.first_begin();
    drv.fault_last_end = plan.last_end();
  }
  std::uint32_t acc = 0;
  for (int i = 0; i < svc::kServiceIdCount; ++i) {
    acc += w[static_cast<std::size_t>(i)];
    drv.cum[static_cast<std::size_t>(i)] = acc;
  }
  drv.weight_total = total;
  drv.warmup = share(spec.warmup, shard, shard_count);
  drv.target = drv.warmup + share(spec.measure, shard, shard_count);
  drv.concurrency = share(spec.concurrency, shard, shard_count);
  if (spec.arrival == WorkloadSpec::Arrival::Closed && drv.concurrency == 0)
    drv.concurrency = drv.target > 0 ? 1 : 0;

  if (drv.target == 0) {
    out.wall_ns = now_ns() - wall_start;
    return out;  // this shard has no share of the measure phase
  }

  sim::StopPolicy policy;
  policy.check_every = static_cast<std::uint64_t>(
      spec.check_every > 0 ? spec.check_every : 1);

  bool done = drv.pump();  // initial arrivals / closed-loop fill
  while (!done) {
    const std::uint64_t used = sim->step_count();
    if (used >= spec.max_steps) {
      out.hit_step_budget = true;
      break;
    }
    const sim::Simulator::StopReason reason = sim->run(
        spec.max_steps - used,
        [&drv](sim::Simulator&) { return drv.pump(); }, policy);
    done = drv.completions >= drv.target;
    if (done) break;
    if (reason == sim::Simulator::StopReason::BudgetExhausted) {
      out.hit_step_budget = true;
      break;
    }
    if (reason == sim::Simulator::StopReason::Quiescent) {
      // No enabled step. Open loop: logical time jumps to the next
      // arrival. Faulted runs: step time is frozen, so pending attempt
      // deadlines would never fire — expire every live attempt now (a
      // wiped in-flight computation strands its session otherwise) and let
      // the retry pass re-enable the world. Either way the pump gets one
      // chance to inject work; a still-quiescent world with nothing
      // submitted is a stall — stop rather than spin.
      if (spec.arrival == WorkloadSpec::Arrival::Open)
        drv.next_arrival = sim->step_count();
      if (faults_on) {
        for (LiveSlot& ls : drv.slots)
          if (ls.in_use && ls.deadline > sim->step_count())
            ls.deadline = sim->step_count();
      }
      const std::uint64_t before = drv.counters.submitted;
      done = drv.pump();
      if (!done && drv.counters.submitted == before) {
        out.stalled = true;
        break;
      }
    }
  }

  out.counters = drv.counters;
  out.steps_hist = drv.steps_hist;
  out.wall_hist = drv.wall_hist;
  out.steps = sim->step_count();
  out.wall_ns = now_ns() - wall_start;
  if (faults_on) {
    out.completed_during_fault = drv.completed_during_fault;
    out.completed_after_fault = drv.completed_after_fault;
    out.first_success_after_fault = drv.first_success_after_fault;
    out.recovered = drv.recovered;
    out.recovery_hist = drv.recovery_hist;
  }
  return out;
}

LoadReport run_sharded(const WorkloadSpec& spec, int shards, int threads) {
  SNAPSTAB_CHECK(shards >= 1 && threads >= 1);
  LoadReport report;
  report.shard_count = shards;
  report.threads = threads;
  const std::uint64_t wall_start = now_ns();
  report.shards = parallel_shards(shards, threads, [&spec, shards](int i) {
    return run_workload_shard(spec, i, shards);
  });
  report.harness_wall_ns = now_ns() - wall_start;
  for (const ShardResult& s : report.shards) {
    report.total.counters.merge(s.counters);
    report.total.steps_hist.merge(s.steps_hist);
    report.total.wall_hist.merge(s.wall_hist);
    report.total.steps += s.steps;
    report.total.wall_ns += s.wall_ns;
    report.total.hit_step_budget |= s.hit_step_budget;
    report.total.stalled |= s.stalled;
    // Fault span: envelope across per-shard plans; first success: the
    // fastest recovering shard (each measures from its own window close).
    if (s.fault_last_end > 0) {
      if (report.total.fault_last_end == 0 ||
          s.fault_first_begin < report.total.fault_first_begin)
        report.total.fault_first_begin = s.fault_first_begin;
      if (s.fault_last_end > report.total.fault_last_end)
        report.total.fault_last_end = s.fault_last_end;
    }
    report.total.fault_windows += s.fault_windows;
    report.total.completed_during_fault += s.completed_during_fault;
    report.total.completed_after_fault += s.completed_after_fault;
    report.total.recovery_hist.merge(s.recovery_hist);
    if (s.recovered &&
        (!report.total.recovered ||
         s.first_success_after_fault < report.total.first_success_after_fault)) {
      report.total.recovered = true;
      report.total.first_success_after_fault = s.first_success_after_fault;
    }
  }
  return report;
}

std::string LoadReport::deterministic_json(const WorkloadSpec& spec) const {
  // Hand-rolled, field-order-fixed JSON: the determinism pin compares these
  // bytes across thread counts, so nothing wall-clock-derived may appear.
  std::string s;
  s.reserve(1024);
  char buf[64];
  const auto u = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    s += buf;
  };
  const LatencyHistogram& h = total.steps_hist;
  s += "{\"topology\":\"";
  s += spec.topology;
  s += "\",\"n\":";
  u(static_cast<std::uint64_t>(spec.n));
  s += ",\"seed\":";
  u(spec.seed);
  s += ",\"arrival\":\"";
  s += spec.arrival == WorkloadSpec::Arrival::Closed ? "closed" : "open";
  s += "\",\"shards\":";
  u(static_cast<std::uint64_t>(shard_count));
  s += ",\"counters\":{\"submitted\":";
  u(total.counters.submitted);
  s += ",\"completed\":";
  u(total.counters.completed);
  s += ",\"coalesced\":";
  u(total.counters.coalesced);
  s += ",\"refused\":";
  u(total.counters.refused);
  s += ",\"shed\":";
  u(total.counters.shed);
  s += "},\"steps_total\":";
  u(total.steps);
  s += ",\"budget_hit\":";
  s += total.hit_step_budget ? "true" : "false";
  s += ",\"stalled\":";
  s += total.stalled ? "true" : "false";
  s += ",\"latency_steps\":{\"count\":";
  u(h.count());
  s += ",\"min\":";
  u(h.min());
  s += ",\"p50\":";
  u(h.percentile(50));
  s += ",\"p90\":";
  u(h.percentile(90));
  s += ",\"p99\":";
  u(h.percentile(99));
  s += ",\"p999\":";
  u(h.percentile(99.9));
  s += ",\"max\":";
  u(h.max());
  s += ",\"sum\":";
  u(h.sum());
  s += ",\"digest\":\"";
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.digest()));
  s += buf;
  s += "\"},\"per_shard\":{\"completed\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) s += ',';
    u(shards[i].counters.completed);
  }
  s += "],\"steps\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) s += ',';
    u(shards[i].steps);
  }
  s += "]}";
  // Fault/recovery section ONLY for faulted specs: the faults-off byte
  // stream is pinned by the cross-thread determinism test and must not
  // move when this feature ships.
  if (spec.faults.enabled()) {
    const LatencyHistogram& r = total.recovery_hist;
    s += ",\"faults\":{\"windows\":";
    u(static_cast<std::uint64_t>(spec.faults.total_windows()));
    // Storm patterns expand into extra compiled windows; emitted only when
    // present so storms-off faulted runs keep their exact PR-8 bytes.
    if (!spec.faults.patterns.empty()) {
      s += ",\"patterns\":";
      u(static_cast<std::uint64_t>(spec.faults.patterns.size()));
      s += ",\"compiled_windows\":";
      u(total.fault_windows);
    }
    s += ",\"plan_seed\":";
    u(spec.faults.seed);
    s += ",\"retries\":";
    u(total.counters.retries);
    s += ",\"failed\":";
    u(total.counters.failed);
    s += ",\"completed_during\":";
    u(total.completed_during_fault);
    s += ",\"completed_after\":";
    u(total.completed_after_fault);
    s += ",\"recovered\":";
    s += total.recovered ? "true" : "false";
    s += ",\"first_success_after\":";
    u(total.first_success_after_fault);
    s += ",\"recovery_latency\":{\"count\":";
    u(r.count());
    s += ",\"p50\":";
    u(r.percentile(50));
    s += ",\"p99\":";
    u(r.percentile(99));
    s += ",\"max\":";
    u(r.max());
    s += ",\"digest\":\"";
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(r.digest()));
    s += buf;
    s += "\"},\"plan_digests\":[";
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (i != 0) s += ',';
      s += '"';
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(shards[i].plan_digest));
      s += buf;
      s += '"';
    }
    s += "]}";
  }
  s += "}";
  return s;
}

}  // namespace snapstab::load
