// workload.hpp — the coordinated load generator over svc::Client.
//
// A Workload drives one svc world at production intensity: a weighted
// per-service mix (any subset of the eight ServiceIds), an arrival model
// (closed-loop with a fixed in-flight target, or open-loop with a
// deterministic seeded inter-arrival stream and an in-flight cap), a
// warmup phase whose completions are discarded, and a measure phase whose
// submit->Done latencies land in a LatencyHistogram (engine steps always;
// wall ns when requested). Sessions are recycled through the svc free list
// the moment they complete, so in-flight populations of 10^5-10^6 run at
// O(live) memory however many sessions pass through.
//
// Sharding (run_sharded) fans ONE workload across N shards: shard i runs
// its own Simulator + StringPool + histogram (the load::parallel_shards
// pattern) over the i-th share of the aggregate concurrency and completion
// targets, and the shard results merge in index order. Every shard derives
// all of its randomness from (spec.seed, shard, shard_count), never from
// the worker that happened to run it, so the merged report — and its
// deterministic_json() — is bit-identical for any --threads value
// (tests/test_load.cpp pins 1 vs 2 vs 4). Wall-clock fields are the one
// deliberate exception: they are reported beside the deterministic core
// and never inside it.
#ifndef SNAPSTAB_LOAD_WORKLOAD_HPP
#define SNAPSTAB_LOAD_WORKLOAD_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "load/histogram.hpp"
#include "svc/service.hpp"

namespace snapstab::load {

struct WorkloadSpec {
  // World shape: "complete" | "ring" | "line" | "star" | "tree".
  std::string topology = "ring";
  int n = 16;                        // processes
  std::size_t channel_capacity = 1;  // the paper's known bound c
  std::uint64_t seed = 1;

  // Integer weight per service (index = ServiceId). All-zero defaults to
  // a pure PifBroadcast mix. A CriticalSection weight > 0 requires every
  // other weight except ForwardMsg to be zero: an ME host's phase cycle
  // owns its IDL/PIF stack, so a CS world serves CS (+ forwarding) only.
  std::array<std::uint32_t, svc::kServiceIdCount> weights{};

  enum class Arrival : std::uint8_t { Closed, Open };
  Arrival arrival = Arrival::Closed;
  // Closed loop: aggregate in-flight session target, split across shards.
  std::uint64_t concurrency = 64;
  // Open loop: mean engine steps between arrivals, per shard; the actual
  // gaps are drawn uniformly from [1, 2*mean-1] (mean preserved) off the
  // shard's seeded stream. Arrivals beyond max_in_flight are shed.
  std::uint64_t inter_arrival = 4;
  std::uint64_t max_in_flight = 1u << 20;

  // Completion targets, aggregate across shards: the first `warmup`
  // completions per shard-share are discarded, the next `measure` are
  // recorded, then the shard stops (abandoning whatever is still queued).
  std::uint64_t warmup = 256;
  std::uint64_t measure = 4096;

  std::uint64_t max_steps = 500'000'000;  // per-shard engine budget
  int check_every = 64;                   // driver pump cadence (steps)
  // Record wall-clock latency per session (two clock reads per completion)
  // in addition to the always-on engine-step latency.
  bool record_wall = false;

  // Fault engine (inert when !enabled() — no windows, no patterns, the
  // default — in which case every draw stream and the deterministic_json
  // bytes are identical to a faults-free build). Each shard compiles its
  // own plan from
  // (faults.seed, shard derivation) against its own topology and polls a
  // fault::Injector from the driver pump.
  fault::FaultPlanSpec faults;
  // Faulted sessions only: a session that fails (killed by a crash-restart,
  // refused, or past its step deadline) is resubmitted with the SAME
  // descriptor, up to this many retries; latency spans all attempts.
  int fault_max_retries = 8;
  std::uint64_t fault_deadline = 20'000;  // per-attempt deadline, steps

  void set_weight(svc::ServiceId s, std::uint32_t w) {
    weights[static_cast<std::size_t>(s)] = w;
  }
};

struct WorkloadCounters {
  std::uint64_t submitted = 0;  // driver submissions (incl. coalesced)
  std::uint64_t completed = 0;  // sessions run to Done with completed=true
  std::uint64_t coalesced = 0;  // submissions that joined a queued twin
  std::uint64_t refused = 0;    // ForwardMsg admissions refused
  std::uint64_t shed = 0;       // open-loop arrivals dropped at the cap
  // Faulted runs only (always zero otherwise):
  std::uint64_t retries = 0;    // failed-attempt resubmissions
  std::uint64_t failed = 0;     // requests abandoned after the retry cap

  void merge(const WorkloadCounters& o) noexcept {
    submitted += o.submitted;
    completed += o.completed;
    coalesced += o.coalesced;
    refused += o.refused;
    shed += o.shed;
    retries += o.retries;
    failed += o.failed;
  }
  bool operator==(const WorkloadCounters&) const = default;
};

struct ShardResult {
  WorkloadCounters counters;
  LatencyHistogram steps_hist;  // submit->Done, engine steps (deterministic)
  LatencyHistogram wall_hist;   // submit->Done, wall ns (record_wall only)
  std::uint64_t steps = 0;      // engine steps this shard executed
  std::uint64_t wall_ns = 0;    // shard wall time (never in deterministic_json)
  bool hit_step_budget = false;
  bool stalled = false;         // quiescent with live work and no way forward

  // Recovery metrics, recorded only when the spec carries a fault plan.
  // The fault span is [fault_first_begin, fault_last_end) on this shard's
  // step clock; completions are bucketed by where their completion step
  // falls relative to it (goodput during vs after the fault).
  std::uint64_t fault_first_begin = 0;
  std::uint64_t fault_last_end = 0;
  std::uint64_t plan_digest = 0;
  std::uint64_t fault_windows = 0;  // compiled windows (patterns included)
  std::uint64_t completed_during_fault = 0;
  std::uint64_t completed_after_fault = 0;
  // Steps from the last window's close to the first completion of a session
  // SUBMITTED at/after that close — the paper's snap-stabilization latency
  // seen by the load generator. Valid iff `recovered`.
  std::uint64_t first_success_after_fault = 0;
  bool recovered = false;
  // submit->Done latency of sessions submitted after the fault ceased.
  LatencyHistogram recovery_hist;
};

struct LoadReport {
  ShardResult total;               // in-index-order merge of `shards`
  std::vector<ShardResult> shards;
  int shard_count = 1;
  int threads = 1;
  std::uint64_t harness_wall_ns = 0;  // wall around the whole fan

  // The deterministic core: spec echo, merged counters, step totals, and
  // the steps-latency histogram (count/min/p50/p90/p99/p999/max/sum plus
  // its FNV digest), with per-shard completed/steps arrays. Bit-identical
  // for any thread count; contains no wall-clock field.
  std::string deterministic_json(const WorkloadSpec& spec) const;
};

// Runs shard `shard` of `shard_count` to completion on the calling thread.
ShardResult run_workload_shard(const WorkloadSpec& spec, int shard,
                               int shard_count);

// Fans `shards` shard runs over `threads` workers (parallel_shards) and
// merges in shard order.
LoadReport run_sharded(const WorkloadSpec& spec, int shards, int threads);

}  // namespace snapstab::load

#endif  // SNAPSTAB_LOAD_WORKLOAD_HPP
