#include "msg/codec.hpp"

#include <cstring>
#include <string_view>

namespace snapstab {

namespace {

constexpr std::uint32_t kMaxTextLength = 1 << 16;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint32_t>(v) >>
                                            (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >>
                                            (8 * i)));
}

void put_value(std::vector<std::uint8_t>& out, const Value& v,
               const StringPool& pool) {
  if (v.is_none()) {
    put_u8(out, 0);
  } else if (v.is_int()) {
    put_u8(out, 1);
    put_i64(out, v.as_int());
  } else if (v.is_token()) {
    put_u8(out, 2);
    put_u8(out, static_cast<std::uint8_t>(v.as_token()));
  } else {
    // The only place interned text leaves the pool: id -> bytes. A StrId
    // minted by a *different* pool must not be applied to `pool` (same id,
    // unrelated string — silent aliasing); resolve it against its minting
    // pool, or to the empty string when that pool no longer exists.
    put_u8(out, 3);
    const StringPool* source = &pool;
    if (v.text_pool_tag() != pool.tag())
      source = StringPool::find_by_tag(v.text_pool_tag());
    const std::string& s =
        source != nullptr ? source->str(v.text_id()) : kEmptyText;
    put_i32(out, static_cast<std::int32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
}

// Cursor over the input buffer; every read checks bounds.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  StringPool& pool;
  std::size_t pos = 0;

  bool u8(std::uint8_t& out) {
    if (pos + 1 > size) return false;
    out = data[pos++];
    return true;
  }
  bool i32(std::int32_t& out) {
    if (pos + 4 > size) return false;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    out = static_cast<std::int32_t>(v);
    return true;
  }
  bool i64(std::int64_t& out) {
    if (pos + 8 > size) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    out = static_cast<std::int64_t>(v);
    return true;
  }
  bool value(Value& out) {
    std::uint8_t tag = 0;
    if (!u8(tag)) return false;
    switch (tag) {
      case 0:
        out = Value::none();
        return true;
      case 1: {
        std::int64_t v = 0;
        if (!i64(v)) return false;
        out = Value::integer(v);
        return true;
      }
      case 2: {
        std::uint8_t t = 0;
        if (!u8(t)) return false;
        if (t > kMaxTokenValue) return false;
        out = Value::token(static_cast<Token>(t));
        return true;
      }
      case 3: {
        std::int32_t len = 0;
        if (!i32(len)) return false;
        if (len < 0 || static_cast<std::uint32_t>(len) > kMaxTextLength)
          return false;
        if (pos + static_cast<std::size_t>(len) > size) return false;
        // The only place wire text enters the pool: bytes -> id. The id is
        // tagged with the pool it was re-interned into, not the calling
        // thread's current pool.
        const std::string_view s(reinterpret_cast<const char*>(data + pos),
                                 static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
        out = Value::text_id(pool.intern(s), pool);
        return true;
      }
      default:
        return false;
    }
  }
};

}  // namespace

std::vector<std::uint8_t> encode(const Message& m, const StringPool& pool) {
  std::vector<std::uint8_t> out;
  out.reserve(32);
  put_u8(out, static_cast<std::uint8_t>(m.kind));
  put_i32(out, m.state);
  put_i32(out, m.neig_state);
  put_value(out, m.b, pool);
  put_value(out, m.f, pool);
  return out;
}

std::optional<Message> decode(const std::uint8_t* data, std::size_t size,
                              StringPool& pool) {
  Reader r{data, size, pool};
  std::uint8_t kind = 0;
  Message m;
  if (!r.u8(kind)) return std::nullopt;
  if (kind > static_cast<std::uint8_t>(MsgKind::FwdEcho)) return std::nullopt;
  m.kind = static_cast<MsgKind>(kind);
  if (!r.i32(m.state)) return std::nullopt;
  if (!r.i32(m.neig_state)) return std::nullopt;
  if (!r.value(m.b)) return std::nullopt;
  if (!r.value(m.f)) return std::nullopt;
  if (r.pos != size) return std::nullopt;  // trailing garbage is rejected
  return m;
}

}  // namespace snapstab
