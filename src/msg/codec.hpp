// codec.hpp — binary wire format for Message.
//
// The thread runtime serializes every message through this codec so the
// protocols are exercised against a real byte-level wire format, not just
// in-memory structs. decode() is total: any byte sequence either yields a
// well-formed Message or nullopt — a corrupted datagram can never crash a
// process (the paper's arbitrary-initial-configuration assumption extends
// to arbitrary bytes on the wire).
//
// The codec is the StrId ↔ bytes boundary: encode() resolves interned text
// through a StringPool, decode() interns incoming bytes. In-memory, text
// only ever travels as a 4-byte id; actual characters exist on the wire and
// in the pool, nowhere else. The overloads without a pool argument use the
// calling thread's current pool (see msg/strpool.hpp).
//
// Layout (little-endian):
//   u8  kind | i32 state | i32 neig_state | value b | value f
// value:
//   u8 tag (0 none, 1 int, 2 token, 3 text) |
//   int:   i64
//   token: u8
//   text:  u32 length, bytes
#ifndef SNAPSTAB_MSG_CODEC_HPP
#define SNAPSTAB_MSG_CODEC_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "msg/message.hpp"
#include "msg/strpool.hpp"

namespace snapstab {

std::vector<std::uint8_t> encode(const Message& m, const StringPool& pool);
std::optional<Message> decode(const std::uint8_t* data, std::size_t size,
                              StringPool& pool);

inline std::vector<std::uint8_t> encode(const Message& m) {
  return encode(m, current_string_pool());
}
inline std::optional<Message> decode(const std::uint8_t* data,
                                     std::size_t size) {
  return decode(data, size, current_string_pool());
}
inline std::optional<Message> decode(const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}
inline std::optional<Message> decode(const std::vector<std::uint8_t>& bytes,
                                     StringPool& pool) {
  return decode(bytes.data(), bytes.size(), pool);
}

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_CODEC_HPP
