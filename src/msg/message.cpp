#include "msg/message.hpp"

#include <cstdio>

namespace snapstab {

const char* msg_kind_name(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::Pif: return "PIF";
    case MsgKind::NaiveBrd: return "NBRD";
    case MsgKind::NaiveFck: return "NFCK";
    case MsgKind::SeqBrd: return "SBRD";
    case MsgKind::SeqFck: return "SFCK";
    case MsgKind::App: return "APP";
  }
  return "?";
}

std::string Message::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "<%s,%s,%s,%d,%d>", msg_kind_name(kind),
                b.to_string().c_str(), f.to_string().c_str(), state,
                neig_state);
  return buf;
}

Message Message::random(Rng& rng, std::int32_t flag_limit, bool wild) {
  Message m;
  // Draw order is pinned (kind, b, f, flags): the fuzz RNG streams are part
  // of the golden-trace contract.
  switch (rng.below(6)) {
    case 0: m.kind = MsgKind::Pif; break;
    case 1: m.kind = MsgKind::NaiveBrd; break;
    case 2: m.kind = MsgKind::NaiveFck; break;
    case 3: m.kind = MsgKind::SeqBrd; break;
    case 4: m.kind = MsgKind::SeqFck; break;
    default: m.kind = MsgKind::App; break;
  }
  m.b = Value::random(rng);
  m.f = Value::random(rng);
  if (wild) {
    m.state = static_cast<std::int32_t>(rng.next());
    m.neig_state = static_cast<std::int32_t>(rng.next());
  } else {
    m.state = static_cast<std::int32_t>(rng.range(0, flag_limit));
    m.neig_state = static_cast<std::int32_t>(rng.range(0, flag_limit));
  }
  return m;
}

}  // namespace snapstab
