#include "msg/message.hpp"

#include <cstdio>

namespace snapstab {

std::int64_t pack_fwd_header(const FwdHeader& h) noexcept {
  const auto seq = static_cast<std::uint64_t>(h.seq) & 0xFFFFFu;
  const auto dst = static_cast<std::uint64_t>(h.dst) & 0xFFFFu;
  const auto origin = static_cast<std::uint64_t>(h.origin) & 0xFFFFu;
  return static_cast<std::int64_t>(seq | (dst << 20) | (origin << 36));
}

FwdHeader unpack_fwd_header(std::int64_t v) noexcept {
  const auto u = static_cast<std::uint64_t>(v);
  FwdHeader h;
  h.seq = static_cast<std::uint32_t>(u & 0xFFFFFu);
  h.dst = static_cast<int>((u >> 20) & 0xFFFFu);
  h.origin = static_cast<int>((u >> 36) & 0xFFFFu);
  return h;
}

std::string Message::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "<%s,%s,%s,%d,%d>", msg_kind_name(kind),
                b.to_string().c_str(), f.to_string().c_str(), state,
                neig_state);
  return buf;
}

Message Message::random(Rng& rng, std::int32_t flag_limit, bool wild) {
  Message m;
  // Draw order is pinned (kind, b, f, flags): the fuzz RNG streams are part
  // of the golden-trace contract.
  switch (rng.below(6)) {
    case 0: m.kind = MsgKind::Pif; break;
    case 1: m.kind = MsgKind::NaiveBrd; break;
    case 2: m.kind = MsgKind::NaiveFck; break;
    case 3: m.kind = MsgKind::SeqBrd; break;
    case 4: m.kind = MsgKind::SeqFck; break;
    default: m.kind = MsgKind::App; break;
  }
  m.b = Value::random(rng);
  m.f = Value::random(rng);
  if (wild) {
    m.state = static_cast<std::int32_t>(rng.next());
    m.neig_state = static_cast<std::int32_t>(rng.next());
  } else {
    m.state = static_cast<std::int32_t>(rng.range(0, flag_limit));
    m.neig_state = static_cast<std::int32_t>(rng.range(0, flag_limit));
  }
  return m;
}

Message Message::random_forward(Rng& rng, std::int32_t flag_limit, int n,
                                bool wild) {
  switch (rng.below(8)) {
    case 6: {
      Message m;
      m.kind = MsgKind::FwdData;
      m.b = Value::random(rng);
      // Mostly plausible headers (so corrupted buffers actually exercise the
      // ghost-suppression path), sometimes raw garbage.
      if (n > 0 && !rng.chance(0.25)) {
        FwdHeader h;
        h.origin = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
        h.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
        h.seq = static_cast<std::uint32_t>(rng.below(1u << 20));
        m.f = Value::integer(pack_fwd_header(h));
      } else {
        m.f = Value::random(rng);
      }
      m.state = wild ? static_cast<std::int32_t>(rng.next())
                     : static_cast<std::int32_t>(rng.range(0, flag_limit));
      m.neig_state = 0;
      return m;
    }
    case 7: {
      Message m;
      m.kind = MsgKind::FwdEcho;
      m.state = wild ? static_cast<std::int32_t>(rng.next())
                     : static_cast<std::int32_t>(rng.range(0, flag_limit));
      return m;
    }
    default:
      return random(rng, flag_limit, wild);
  }
}

}  // namespace snapstab
