// message.hpp — wire messages.
//
// One concrete message struct covers every protocol in the repository so
// that channels, fuzzers and the codec are protocol-agnostic:
//
//   Pif       — the paper's single message type <PIF, B, F, State, NeigState>
//               (Algorithm 1). `state` is the sender's flag for this channel,
//               `neig_state` is the sender's copy of the receiver's flag.
//   NaiveBrd / NaiveFck — the Section-4.1 "naive attempt" baseline.
//   SeqBrd / SeqFck     — the self-stabilizing mod-K sequence-number
//               baseline; `state` carries the sequence number.
//   App       — application-level payload (the diffusing computations the
//               termination-detection service observes).
#ifndef SNAPSTAB_MSG_MESSAGE_HPP
#define SNAPSTAB_MSG_MESSAGE_HPP

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "msg/value.hpp"

namespace snapstab {

enum class MsgKind : std::uint8_t {
  Pif,
  NaiveBrd,
  NaiveFck,
  SeqBrd,
  SeqFck,
  App,
};

const char* msg_kind_name(MsgKind k) noexcept;

struct Message {
  MsgKind kind = MsgKind::Pif;
  Value b;                     // broadcast payload (B-Mes)
  Value f;                     // feedback payload (F-Mes)
  std::int32_t state = 0;      // Pif flag / sequence number
  std::int32_t neig_state = 0; // Pif: echoed receiver flag

  bool operator==(const Message&) const = default;

  std::string to_string() const;

  static Message pif(Value b_mes, Value f_mes, std::int32_t state,
                     std::int32_t neig_state) {
    return Message{MsgKind::Pif, std::move(b_mes), std::move(f_mes), state,
                   neig_state};
  }
  static Message naive_brd(Value b_mes) {
    return Message{MsgKind::NaiveBrd, std::move(b_mes), Value::none(), 0, 0};
  }
  static Message naive_fck(Value f_mes) {
    return Message{MsgKind::NaiveFck, Value::none(), std::move(f_mes), 0, 0};
  }
  static Message seq_brd(Value b_mes, std::int32_t seq) {
    return Message{MsgKind::SeqBrd, std::move(b_mes), Value::none(), seq, 0};
  }
  static Message seq_fck(Value f_mes, std::int32_t seq) {
    return Message{MsgKind::SeqFck, Value::none(), std::move(f_mes), seq, 0};
  }
  static Message app(Value payload) {
    return Message{MsgKind::App, std::move(payload), Value::none(), 0, 0};
  }

  // Arbitrary well-formed message for initial-configuration fuzzing.
  // Flags are drawn from [0, flag_limit] (pass the protocol's flag bound);
  // with `wild` they are drawn from the full int32 range instead, which
  // exercises the defensive handling of out-of-domain bytes.
  static Message random(Rng& rng, std::int32_t flag_limit, bool wild = false);
};

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_MESSAGE_HPP
