// message.hpp — wire messages.
//
// One concrete message struct covers every protocol in the repository so
// that channels, fuzzers and the codec are protocol-agnostic:
//
//   Pif       — the paper's single message type <PIF, B, F, State, NeigState>
//               (Algorithm 1). `state` is the sender's flag for this channel,
//               `neig_state` is the sender's copy of the receiver's flag.
//   NaiveBrd / NaiveFck — the Section-4.1 "naive attempt" baseline.
//   SeqBrd / SeqFck     — the self-stabilizing mod-K sequence-number
//               baseline; `state` carries the sequence number.
//   App       — application-level payload (the diffusing computations the
//               termination-detection service observes).
//
// Message is a flat trivially-copyable struct (two 16-byte POD Values, two
// flags, a kind): channels and mailboxes move it as plain words — no
// allocation, no indirection — which is what makes the simulator's message
// hot path allocation-free.
#ifndef SNAPSTAB_MSG_MESSAGE_HPP
#define SNAPSTAB_MSG_MESSAGE_HPP

#include <cstdint>
#include <string>
#include <type_traits>

#include "common/rng.hpp"
#include "msg/value.hpp"

namespace snapstab {

enum class MsgKind : std::uint8_t {
  Pif,
  NaiveBrd,
  NaiveFck,
  SeqBrd,
  SeqFck,
  App,
  FwdData,  // forwarding service: payload hop transfer (core/forward.hpp)
  FwdEcho,  // forwarding service: hop acknowledgement echo
};

inline constexpr int kMsgKindCount = 8;

// Exhaustive-switch constexpr name helper: -Wswitch flags a missing
// enumerator, the static_assert forces the count (and the codec's
// validity bound) to be revisited when a kind is added.
constexpr const char* msg_kind_name(MsgKind k) noexcept {
  static_assert(kMsgKindCount == static_cast<int>(MsgKind::FwdEcho) + 1,
                "new MsgKind: update kMsgKindCount and every switch");
  switch (k) {
    case MsgKind::Pif: return "PIF";
    case MsgKind::NaiveBrd: return "NBRD";
    case MsgKind::NaiveFck: return "NFCK";
    case MsgKind::SeqBrd: return "SBRD";
    case MsgKind::SeqFck: return "SFCK";
    case MsgKind::App: return "APP";
    case MsgKind::FwdData: return "FDAT";
    case MsgKind::FwdEcho: return "FECH";
  }
  return "?";
}

// Routing header of the forwarding service, packed into one integer Value
// (the f slot of a FwdData message) so a routed payload still fits the flat
// 48-byte Message:
//   bits 0..19   seq    (20 bits, wraps)
//   bits 20..35  dst    (16 bits)
//   bits 36..51  origin (16 bits)
// unpack is total: any int64 yields some header; out-of-range process ids
// are the receiver's problem (it validates against its topology).
struct FwdHeader {
  int origin = 0;
  int dst = 0;
  std::uint32_t seq = 0;

  bool operator==(const FwdHeader&) const = default;
};

std::int64_t pack_fwd_header(const FwdHeader& h) noexcept;
FwdHeader unpack_fwd_header(std::int64_t v) noexcept;

struct Message {
  Value b;                     // broadcast payload (B-Mes)
  Value f;                     // feedback payload (F-Mes)
  std::int32_t state = 0;      // Pif flag / sequence number
  std::int32_t neig_state = 0; // Pif: echoed receiver flag
  MsgKind kind = MsgKind::Pif;

  bool operator==(const Message&) const = default;

  std::string to_string() const;

  static Message pif(Value b_mes, Value f_mes, std::int32_t state,
                     std::int32_t neig_state) {
    return Message{b_mes, f_mes, state, neig_state, MsgKind::Pif};
  }
  static Message naive_brd(Value b_mes) {
    return Message{b_mes, Value::none(), 0, 0, MsgKind::NaiveBrd};
  }
  static Message naive_fck(Value f_mes) {
    return Message{Value::none(), f_mes, 0, 0, MsgKind::NaiveFck};
  }
  static Message seq_brd(Value b_mes, std::int32_t seq) {
    return Message{b_mes, Value::none(), seq, 0, MsgKind::SeqBrd};
  }
  static Message seq_fck(Value f_mes, std::int32_t seq) {
    return Message{Value::none(), f_mes, seq, 0, MsgKind::SeqFck};
  }
  static Message app(Value payload) {
    return Message{payload, Value::none(), 0, 0, MsgKind::App};
  }
  // Forwarding-service hop transfer: `payload` rides in b, the packed
  // routing header (core/forward.hpp) in f, the hop flag in state.
  static Message fwd_data(Value payload, std::int64_t header,
                          std::int32_t flag) {
    return Message{payload, Value::integer(header), flag, 0, MsgKind::FwdData};
  }
  static Message fwd_echo(std::int32_t flag) {
    return Message{Value::none(), Value::none(), flag, 0, MsgKind::FwdEcho};
  }

  // Arbitrary well-formed message for initial-configuration fuzzing.
  // Flags are drawn from [0, flag_limit] (pass the protocol's flag bound);
  // with `wild` they are drawn from the full int32 range instead, which
  // exercises the defensive handling of out-of-domain bytes.
  //
  // The kind is drawn over the six pre-forwarding kinds only: the draw
  // sequence of this function is pinned by the golden fuzz traces. Worlds
  // that also want corrupted forwarding traffic use random_forward().
  static Message random(Rng& rng, std::int32_t flag_limit, bool wild = false);

  // Like random(), but the kind ranges over every kind including FwdData /
  // FwdEcho, and FwdData messages usually carry a plausible packed header
  // over `n` processes (sometimes deliberate garbage). New draw stream —
  // never used by the pinned golden scenarios.
  static Message random_forward(Rng& rng, std::int32_t flag_limit, int n,
                                bool wild = false);
};

static_assert(std::is_trivially_copyable_v<Message>);
static_assert(sizeof(Message) <= 48, "Message must stay a flat cache-friendly word bundle");

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_MESSAGE_HPP
