#include "msg/strpool.hpp"

#include <mutex>

namespace snapstab {

namespace {
thread_local StringPool* tls_current_pool = nullptr;
}  // namespace

StringPool::StringPool() { intern(std::string_view{}); }

StrId StringPool::intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = index_.find(s);  // re-check: another thread may have won
  if (it != index_.end()) return it->second;
  const StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& StringPool::str(StrId id) const noexcept {
  std::shared_lock lock(mu_);
  if (id >= strings_.size()) return kEmptyText;
  return strings_[id];
}

std::size_t StringPool::size() const noexcept {
  std::shared_lock lock(mu_);
  return strings_.size();
}

StringPool& StringPool::global() {
  static StringPool* pool = new StringPool();  // leaked: outlives statics
  return *pool;
}

StringPool& current_string_pool() noexcept {
  StringPool* p = tls_current_pool;
  return p != nullptr ? *p : StringPool::global();
}

ScopedStringPool::ScopedStringPool(StringPool& pool) noexcept
    : previous_(tls_current_pool) {
  tls_current_pool = &pool;
}

ScopedStringPool::~ScopedStringPool() { tls_current_pool = previous_; }

}  // namespace snapstab
