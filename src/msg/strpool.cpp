#include "msg/strpool.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace snapstab {

namespace {
thread_local StringPool* tls_current_pool = nullptr;

std::uint32_t next_pool_tag() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // never 0
}

// tag -> live pool. Leaked (like global()) so lookups stay valid during
// static teardown; pools deregister themselves on destruction.
std::mutex& registry_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::unordered_map<std::uint32_t, StringPool*>& registry() {
  static auto* map = new std::unordered_map<std::uint32_t, StringPool*>();
  return *map;
}
}  // namespace

StringPool::StringPool() : tag_(next_pool_tag()) {
  intern(std::string_view{});
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().emplace(tag_, this);
}

StringPool::~StringPool() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().erase(tag_);
}

StringPool* StringPool::find_by_tag(std::uint32_t tag) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(tag);
  return it != registry().end() ? it->second : nullptr;
}

StrId StringPool::intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = index_.find(s);  // re-check: another thread may have won
  if (it != index_.end()) return it->second;
  const StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& StringPool::str(StrId id) const noexcept {
  std::shared_lock lock(mu_);
  if (id >= strings_.size()) return kEmptyText;
  return strings_[id];
}

std::size_t StringPool::size() const noexcept {
  std::shared_lock lock(mu_);
  return strings_.size();
}

StringPool& StringPool::global() {
  static StringPool* pool = new StringPool();  // leaked: outlives statics
  return *pool;
}

StringPool& current_string_pool() noexcept {
  StringPool* p = tls_current_pool;
  return p != nullptr ? *p : StringPool::global();
}

ScopedStringPool::ScopedStringPool(StringPool& pool) noexcept
    : previous_(tls_current_pool) {
  tls_current_pool = &pool;
}

ScopedStringPool::~ScopedStringPool() { tls_current_pool = previous_; }

}  // namespace snapstab
