// strpool.hpp — interned message text.
//
// The protocols of the paper move tiny fixed payloads: tokens, small ints
// and a handful of distinct text strings ("How old are you?", "stale", …).
// Carrying those strings by value through every Channel::push/pop made the
// message hot path allocate; instead, text lives once in a StringPool and a
// Value carries a 4-byte StrId. Messages are then trivially copyable and
// move through channels as flat words — the same flat-wire-representation
// discipline the message-forwarding literature assumes when counting
// per-hop buffer costs.
//
// Pool model:
//   - A StrId is an index into one specific pool; id 0 is always "".
//   - Every thread has a *current* pool (thread-local), defaulting to the
//     process-wide StringPool::global(). Value::text() interns into the
//     current pool; Value::as_text() resolves against it.
//   - Scoped redirection (ScopedStringPool) gives a Simulator or a trial
//     worker its own pool; the parallel trial harness runs one Simulator +
//     one pool per worker thread, so workers never contend.
//   - Pools are append-only and never shrink: a StrId (and the reference
//     returned by str()) stays valid for the pool's lifetime. Values must
//     only be compared / resolved against the pool they were interned in —
//     crossing pools crosses id spaces. Cross-thread transport goes through
//     the codec, which resolves StrId ↔ bytes at the boundary.
//
// intern() and str() are thread-safe (ThreadRuntime nodes share their
// runtime's pool); interning is rare — the hot path copies ids, not text.
#ifndef SNAPSTAB_MSG_STRPOOL_HPP
#define SNAPSTAB_MSG_STRPOOL_HPP

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace snapstab {

using StrId = std::uint32_t;

// The empty string, namespace-level: accessors that fall back to "no text"
// return a reference to this object, never to a function-local.
inline const std::string kEmptyText{};

class StringPool {
 public:
  StringPool();  // pre-interns "" as id 0
  ~StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id of `s`, interning it on first sight. Thread-safe.
  StrId intern(std::string_view s);

  // Resolves an id; out-of-range ids resolve to kEmptyText (defensive:
  // a Value forged from raw bytes must not crash the resolver). The
  // returned reference is stable for the pool's lifetime. Thread-safe.
  const std::string& str(StrId id) const noexcept;

  // Number of distinct strings interned (including the empty string).
  std::size_t size() const noexcept;

  // Process-unique id-space tag (never 0, never reused). A text Value
  // records the tag of the pool its StrId was minted in, which is what lets
  // the resolver and the codec detect — instead of silently aliasing — a
  // StrId applied to the wrong pool.
  std::uint32_t tag() const noexcept { return tag_; }

  // The live pool carrying `tag`, or nullptr when it has been destroyed.
  // Used by the cross-pool slow paths; the hot paths compare tags only.
  // The returned pointer is NOT lifetime-protected: it is only safe to
  // dereference while the pool is known to stay alive (the callers are
  // defensive paths for same-thread rule violations; a pool being
  // destroyed concurrently by another thread is still a race).
  static StringPool* find_by_tag(std::uint32_t tag) noexcept;

  // The process-wide default pool. Never destroyed (intentionally leaked),
  // so ids interned into it stay resolvable during static teardown.
  static StringPool& global();

 private:
  const std::uint32_t tag_;
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;  // stable addresses, append-only
  std::unordered_map<std::string_view, StrId> index_;  // views into strings_
};

// The calling thread's current pool (defaults to StringPool::global()).
StringPool& current_string_pool() noexcept;

// Installs `pool` as the calling thread's current pool for the scope.
class ScopedStringPool {
 public:
  explicit ScopedStringPool(StringPool& pool) noexcept;
  ~ScopedStringPool();

  ScopedStringPool(const ScopedStringPool&) = delete;
  ScopedStringPool& operator=(const ScopedStringPool&) = delete;

 private:
  StringPool* previous_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_STRPOOL_HPP
