#include "msg/value.hpp"

#include <array>

namespace snapstab {

const std::string& Value::as_text() const noexcept {
  if (!is_text()) return kEmptyText;
  StringPool& current = current_string_pool();
  if (payload_.s.pool == current.tag()) return current.str(payload_.s.id);
  // Minted in a different pool: resolve there instead of aliasing whatever
  // string happens to own this id in the current pool.
  const StringPool* minted = StringPool::find_by_tag(payload_.s.pool);
  return minted != nullptr ? minted->str(payload_.s.id) : kEmptyText;
}

bool Value::cross_pool_text_equal(const Value& a, const Value& b) noexcept {
  const StringPool* pa = StringPool::find_by_tag(a.payload_.s.pool);
  const StringPool* pb = StringPool::find_by_tag(b.payload_.s.pool);
  // A dead pool's ids name nothing anymore; nothing compares equal to them.
  if (pa == nullptr || pb == nullptr) return false;
  return pa->str(a.payload_.s.id) == pb->str(b.payload_.s.id);
}

std::string Value::to_string() const {
  if (is_none()) return "-";
  if (is_int()) return std::to_string(payload_.i);
  if (is_token()) return token_name(payload_.t);
  return "\"" + as_text() + "\"";
}

Value Value::random(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return none();
    case 1: return integer(rng.range(-4, 1000));
    case 2: {
      static constexpr std::array<Token, 10> all = {
          Token::Ok,   Token::IdlQuery, Token::Ask,   Token::Exit,
          Token::ExitCs, Token::Yes,    Token::No,    Token::Reset,
          Token::Probe, Token::SnapQuery};
      return token(all[rng.below(all.size())]);
    }
    default: {
      // Same RNG consumption as the pre-interning implementation: one draw
      // for the length, one per character (the fuzz streams are pinned by
      // the golden traces).
      char buf[8];
      const auto len = rng.below(6);
      for (std::uint64_t i = 0; i < len; ++i)
        buf[i] = static_cast<char>('a' + rng.below(26));
      return text(std::string_view(buf, static_cast<std::size_t>(len)));
    }
  }
}

}  // namespace snapstab
