#include "msg/value.hpp"

#include <array>

namespace snapstab {

const char* token_name(Token t) noexcept {
  switch (t) {
    case Token::Ok: return "OK";
    case Token::IdlQuery: return "IDL";
    case Token::Ask: return "ASK";
    case Token::Exit: return "EXIT";
    case Token::ExitCs: return "EXITCS";
    case Token::Yes: return "YES";
    case Token::No: return "NO";
    case Token::Reset: return "RESET";
    case Token::Probe: return "PROBE";
    case Token::SnapQuery: return "SNAP";
  }
  return "?";
}

std::int64_t Value::as_int(std::int64_t fallback) const noexcept {
  const auto* p = std::get_if<std::int64_t>(&v_);
  return p != nullptr ? *p : fallback;
}

Token Value::as_token(Token fallback) const noexcept {
  const auto* p = std::get_if<Token>(&v_);
  return p != nullptr ? *p : fallback;
}

const std::string& Value::as_text() const noexcept {
  static const std::string empty;
  const auto* p = std::get_if<std::string>(&v_);
  return p != nullptr ? *p : empty;
}

std::string Value::to_string() const {
  if (is_none()) return "-";
  if (is_int()) return std::to_string(std::get<std::int64_t>(v_));
  if (is_token()) return token_name(std::get<Token>(v_));
  return "\"" + std::get<std::string>(v_) + "\"";
}

Value Value::random(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return none();
    case 1: return integer(rng.range(-4, 1000));
    case 2: {
      static constexpr std::array<Token, 10> all = {
          Token::Ok,   Token::IdlQuery, Token::Ask,   Token::Exit,
          Token::ExitCs, Token::Yes,    Token::No,    Token::Reset,
          Token::Probe, Token::SnapQuery};
      return token(all[rng.below(all.size())]);
    }
    default: {
      std::string s;
      const auto len = rng.below(6);
      for (std::uint64_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>('a' + rng.below(26)));
      return text(std::move(s));
    }
  }
}

}  // namespace snapstab
