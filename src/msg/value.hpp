// value.hpp — message payloads ("message-values" in the paper).
//
// The paper's messages are of the form <message-type, message-value...>.
// Value models a single message-value: either nothing, an integer (process
// IDs, ages, counters), a protocol token (IDL / ASK / EXIT / EXITCS / YES /
// NO / OK), or free text (application payloads such as the quickstart's
// "How old are you?"). Values are small, copyable, equality-comparable and
// fuzzable, which is what the arbitrary-initial-configuration machinery
// needs.
#ifndef SNAPSTAB_MSG_VALUE_HPP
#define SNAPSTAB_MSG_VALUE_HPP

#include <cstdint>
#include <string>
#include <variant>

#include "common/rng.hpp"

namespace snapstab {

// Protocol tokens used by the protocols in this repository.
//   Ok       — contentless acknowledgment (ME actions A6/A7 feedback)
//   IdlQuery — the IDL broadcast payload ("IDL" in Algorithm 2)
//   Ask / Exit / ExitCs — ME broadcast payloads (Algorithm 3)
//   Yes / No — ME feedback payloads (actions A5/A8/A9)
//   Reset    — global-reset service broadcast (services built on PIF)
//   Probe    — termination-detection probe broadcast
//   SnapQuery — snapshot-service state-collection broadcast
enum class Token : std::uint8_t {
  Ok,
  IdlQuery,
  Ask,
  Exit,
  ExitCs,
  Yes,
  No,
  Reset,
  Probe,
  SnapQuery,
};

// Highest valid token value; the codec rejects anything beyond it.
inline constexpr std::uint8_t kMaxTokenValue =
    static_cast<std::uint8_t>(Token::SnapQuery);

const char* token_name(Token t) noexcept;

class Value {
 public:
  Value() = default;  // none

  static Value none() { return Value(); }
  static Value integer(std::int64_t v) { return Value(v); }
  static Value token(Token t) { return Value(t); }
  static Value text(std::string s) { return Value(std::move(s)); }

  bool is_none() const noexcept {
    return std::holds_alternative<std::monostate>(v_);
  }
  bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(v_);
  }
  bool is_token() const noexcept { return std::holds_alternative<Token>(v_); }
  bool is_text() const noexcept {
    return std::holds_alternative<std::string>(v_);
  }

  // Accessors are total: a mismatching payload yields the fallback. The
  // protocols must tolerate arbitrary payloads (arbitrary initial
  // configurations put garbage into channels), so no accessor throws.
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  Token as_token(Token fallback = Token::Ok) const noexcept;
  const std::string& as_text() const noexcept;  // empty string fallback

  bool is_token(Token t) const noexcept {
    return is_token() && std::get<Token>(v_) == t;
  }

  bool operator==(const Value&) const = default;

  std::string to_string() const;

  // Uniformly random value over all four alternatives (fuzzing).
  static Value random(Rng& rng);

 private:
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(Token t) : v_(t) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  std::variant<std::monostate, std::int64_t, Token, std::string> v_;
};

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_VALUE_HPP
