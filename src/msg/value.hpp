// value.hpp — message payloads ("message-values" in the paper).
//
// The paper's messages are of the form <message-type, message-value...>.
// Value models a single message-value: either nothing, an integer (process
// IDs, ages, counters), a protocol token (IDL / ASK / EXIT / EXITCS / YES /
// NO / OK), or text (application payloads such as the quickstart's
// "How old are you?"). Values are small, copyable, equality-comparable and
// fuzzable, which is what the arbitrary-initial-configuration machinery
// needs.
//
// Representation: a tagged 16-byte trivially-copyable POD. Text is not
// stored inline — it is interned into the calling thread's current
// StringPool (see msg/strpool.hpp) and the Value carries only the 4-byte
// StrId. Copying a Value, and therefore pushing/popping a Message through a
// channel, never allocates; text bytes materialize only at the codec
// boundary and in to_string()/as_text().
#ifndef SNAPSTAB_MSG_VALUE_HPP
#define SNAPSTAB_MSG_VALUE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/rng.hpp"
#include "msg/strpool.hpp"

namespace snapstab {

// Protocol tokens used by the protocols in this repository.
//   Ok       — contentless acknowledgment (ME actions A6/A7 feedback)
//   IdlQuery — the IDL broadcast payload ("IDL" in Algorithm 2)
//   Ask / Exit / ExitCs — ME broadcast payloads (Algorithm 3)
//   Yes / No — ME feedback payloads (actions A5/A8/A9)
//   Reset    — global-reset service broadcast (services built on PIF)
//   Probe    — termination-detection probe broadcast
//   SnapQuery — snapshot-service state-collection broadcast
enum class Token : std::uint8_t {
  Ok,
  IdlQuery,
  Ask,
  Exit,
  ExitCs,
  Yes,
  No,
  Reset,
  Probe,
  SnapQuery,
};

// Highest valid token value; the codec rejects anything beyond it.
inline constexpr std::uint8_t kMaxTokenValue =
    static_cast<std::uint8_t>(Token::SnapQuery);

inline constexpr int kTokenCount = static_cast<int>(kMaxTokenValue) + 1;

// Exhaustive-switch constexpr name helper (see request_state_name for the
// pattern): a new token can't silently print "?".
constexpr const char* token_name(Token t) noexcept {
  static_assert(kTokenCount == static_cast<int>(Token::SnapQuery) + 1,
                "new Token: update kMaxTokenValue and every switch");
  switch (t) {
    case Token::Ok: return "OK";
    case Token::IdlQuery: return "IDL";
    case Token::Ask: return "ASK";
    case Token::Exit: return "EXIT";
    case Token::ExitCs: return "EXITCS";
    case Token::Yes: return "YES";
    case Token::No: return "NO";
    case Token::Reset: return "RESET";
    case Token::Probe: return "PROBE";
    case Token::SnapQuery: return "SNAP";
  }
  return "?";
}

class Value {
 public:
  Value() = default;  // none

  static Value none() { return Value(); }
  static Value integer(std::int64_t v) { return Value(v); }
  static Value token(Token t) { return Value(t); }
  // Interns `s` into the calling thread's current StringPool.
  static Value text(std::string_view s) {
    StringPool& pool = current_string_pool();
    return Value(pool.intern(s), pool.tag());
  }
  // Wraps an id already interned into the calling thread's current pool
  // (pre-interned hot paths).
  static Value text_id(StrId id) {
    return Value(id, current_string_pool().tag());
  }
  // Wraps an id already interned into a specific pool (codec decode).
  static Value text_id(StrId id, const StringPool& pool) {
    return Value(id, pool.tag());
  }

  bool is_none() const noexcept { return kind_ == Kind::None; }
  bool is_int() const noexcept { return kind_ == Kind::Int; }
  bool is_token() const noexcept { return kind_ == Kind::Token; }
  bool is_text() const noexcept { return kind_ == Kind::Text; }

  // Accessors are total: a mismatching payload yields the fallback. The
  // protocols must tolerate arbitrary payloads (arbitrary initial
  // configurations put garbage into channels), so no accessor throws.
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    return is_int() ? payload_.i : fallback;
  }
  Token as_token(Token fallback = Token::Ok) const noexcept {
    return is_token() ? payload_.t : fallback;
  }
  // Resolves against the pool the id was minted in: the calling thread's
  // current StringPool on the fast path, the minting pool (via its tag)
  // when they differ, kEmptyText when that pool is gone. A StrId is never
  // applied to a foreign pool — crossing id spaces silently aliased before
  // the tags existed.
  const std::string& as_text() const noexcept;
  // The interned id (0, the empty string, when not text).
  StrId text_id() const noexcept { return is_text() ? payload_.s.id : StrId{0}; }
  // Tag of the pool the id was minted in (0 when not text).
  std::uint32_t text_pool_tag() const noexcept {
    return is_text() ? payload_.s.pool : 0u;
  }

  bool is_token(Token t) const noexcept {
    return is_token() && payload_.t == t;
  }

  // Compares the tag and the active payload only. Within one pool interning
  // is injective, so same-pool text compares by id; text from different
  // pools lives in different id spaces and takes a slow path that compares
  // the resolved strings (pre-tag code compared raw ids and silently
  // aliased).
  friend bool operator==(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::None: return true;
      case Kind::Int: return a.payload_.i == b.payload_.i;
      case Kind::Token: return a.payload_.t == b.payload_.t;
      case Kind::Text:
        return a.payload_.s.pool == b.payload_.s.pool
                   ? a.payload_.s.id == b.payload_.s.id
                   : cross_pool_text_equal(a, b);
    }
    return false;
  }

  std::string to_string() const;

  // Uniformly random value over all four alternatives (fuzzing).
  static Value random(Rng& rng);

 private:
  enum class Kind : std::uint8_t { None, Int, Token, Text };

  // An interned id plus the tag of the pool that minted it — together they
  // name one string unambiguously across every pool in the process.
  struct TextRef {
    StrId id;
    std::uint32_t pool;
  };

  union Payload {
    std::int64_t i;
    Token t;
    TextRef s;
  };

  explicit Value(std::int64_t v) : kind_(Kind::Int) { payload_.i = v; }
  explicit Value(Token t) : kind_(Kind::Token) { payload_.t = t; }
  Value(StrId s, std::uint32_t pool_tag) : kind_(Kind::Text) {
    payload_.s = TextRef{s, pool_tag};
  }

  // Resolves both sides against their minting pools (value.cpp).
  static bool cross_pool_text_equal(const Value& a, const Value& b) noexcept;

  Kind kind_ = Kind::None;
  Payload payload_{};  // zero-initialized; inactive bits never compared
};

static_assert(std::is_trivially_copyable_v<Value>);
static_assert(sizeof(Value) == 16);

}  // namespace snapstab

#endif  // SNAPSTAB_MSG_VALUE_HPP
