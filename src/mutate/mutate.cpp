#include "mutate/mutate.hpp"

#include <algorithm>

namespace snapstab::mutate {

namespace {

// Function-local static: safe against any static-init ordering — the first
// registering TU constructs it. Registration happens before main (Reg's
// static member initializers run from .init_array), so no locking is needed.
std::vector<Point*>& registry() {
  static std::vector<Point*> points;
  return points;
}

std::vector<Point*> sorted_registry() {
  std::vector<Point*> points = registry();
  std::sort(points.begin(), points.end(),
            [](const Point* a, const Point* b) {
              return std::string_view(a->id) < std::string_view(b->id);
            });
  return points;
}

Point* find_mutable(std::string_view id) {
  for (Point* p : registry())
    if (id == p->id) return p;
  return nullptr;
}

}  // namespace

Point::Point(const char* id_, const char* live_, const char* mutant_,
             const char* file_, int line_, bool equivalent_) noexcept
    : id(id_),
      live(live_),
      mutant(mutant_),
      file(file_),
      line(line_),
      equivalent(equivalent_) {
  registry().push_back(this);
}

std::vector<const Point*> all_points() {
  const auto points = sorted_registry();
  return {points.begin(), points.end()};
}

const Point* find_point(std::string_view id) { return find_mutable(id); }

std::size_t point_count() { return registry().size(); }

std::vector<std::string> duplicate_ids() {
  std::vector<std::string> dups;
  const auto points = sorted_registry();
  for (std::size_t i = 1; i < points.size(); ++i)
    if (std::string_view(points[i - 1]->id) == points[i]->id &&
        (dups.empty() || dups.back() != points[i]->id))
      dups.emplace_back(points[i]->id);
  return dups;
}

bool ActiveSet::arm(std::string_view id) {
  Point* p = find_mutable(id);
  if (p == nullptr) return false;
  p->armed.store(true, std::memory_order_relaxed);
  return true;
}

bool ActiveSet::disarm(std::string_view id) {
  Point* p = find_mutable(id);
  if (p == nullptr) return false;
  p->armed.store(false, std::memory_order_relaxed);
  return true;
}

void ActiveSet::disarm_all() {
  for (Point* p : registry()) p->armed.store(false, std::memory_order_relaxed);
}

std::size_t ActiveSet::armed_count() {
  std::size_t n = 0;
  for (const Point* p : registry())
    if (p->on()) ++n;
  return n;
}

std::vector<const Point*> ActiveSet::armed() {
  std::vector<const Point*> on;
  for (const Point* p : sorted_registry())
    if (p->on()) on.push_back(p);
  return on;
}

ScopedMutant::ScopedMutant(std::string_view id)
    : id_(id), ok_(ActiveSet::arm(id)) {}

ScopedMutant::~ScopedMutant() {
  if (ok_) ActiveSet::disarm(id_);
}

}  // namespace snapstab::mutate
