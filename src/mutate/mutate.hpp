// mutate.hpp — the compile-time mutation-point registry.
//
// The repo's correctness story is behavioral: spec checkers, golden traces,
// fuzzed initial configurations and the fault-engine chaos campaign. This
// subsystem answers "would those notice if a transition rule were subtly
// wrong?" with a measured kill matrix instead of a shrug (ROADMAP's
// adversarial-coverage-harness item, in the spirit of mull).
//
// A MUTATION_POINT compiles BOTH the live expression and a deliberately
// wrong mutant into the binary and selects per-run:
//
//   if (st_.state[chi] == p_state &&
//       MUTATION_POINT("pif.a3.count_past_bound",
//                      st_.state[chi] < flag_bound_, true)) ...
//
// Disarmed (the default, and the only state ordinary builds ever see) the
// point evaluates the live side; mutate::ActiveSet::arm("id") flips one
// point process-globally so the next run executes the mutant. Every point
// self-registers at static-initialization time — a point on a never-executed
// path still enumerates — and tools/mutant_hunter drives each registered
// mutant through the cheapest-first kill ladder (spec checkers -> goldens ->
// seeded fuzz -> chaos campaign), failing loudly on any survivor.
//
// Cost when disarmed: one relaxed atomic bool load + a predictable branch
// per evaluation (micro_bench's engine-floor suite pins that this stays
// within noise). Arming/disarming is mutation-testing harness territory:
// do it from one thread, between runs, never mid-execution.
//
// Macro arguments containing top-level commas (function calls with several
// arguments) must be parenthesized: MUTATION_POINT("id", (f(a, b)), (g(a))).
//
// Equivalent mutants — points whose mutant is provably indistinguishable
// from the live expression in every execution — are declared with
// MUTATION_EQUIVALENT plus a comment carrying the proof sketch; the hunter
// expects them to SURVIVE the ladder and fails if one is killed (a killed
// "equivalent" means the annotation is wrong).
#ifndef SNAPSTAB_MUTATE_MUTATE_HPP
#define SNAPSTAB_MUTATE_MUTATE_HPP

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace snapstab::mutate {

// One registered mutation site. Immutable after registration except for
// `armed`, which the ActiveSet flips between runs. The relaxed load is
// deliberate: disarmed points must cost a plain byte load on the hot path,
// and the arm/run/disarm protocol is single-threaded by contract.
struct Point {
  const char* id;        // unique, dot-namespaced by core: "pif.a1.stale_state"
  const char* live;      // stringified live expression (for the kill matrix)
  const char* mutant;    // stringified mutant expression
  const char* file;
  int line;
  bool equivalent;       // declared via MUTATION_EQUIVALENT
  std::atomic<bool> armed{false};

  Point(const char* id_, const char* live_, const char* mutant_,
        const char* file_, int line_, bool equivalent_) noexcept;

  bool on() const noexcept { return armed.load(std::memory_order_relaxed); }
};

namespace detail {

// A structural string-literal wrapper usable as a C++20 non-type template
// parameter; one Reg instantiation per (id, live, mutant, site) gives each
// MUTATION_POINT exactly one Point with eager (pre-main) registration.
template <std::size_t N>
struct FixedStr {
  char s[N] = {};
  // NOLINTNEXTLINE(google-explicit-constructor): deduction from literals
  consteval FixedStr(const char (&x)[N]) {
    for (std::size_t i = 0; i < N; ++i) s[i] = x[i];
  }
};

template <FixedStr Id, FixedStr Live, FixedStr Mut, FixedStr File, int Line,
          bool Equivalent>
struct Reg {
  static inline Point point{Id.s, Live.s, Mut.s, File.s, Line, Equivalent};
};

}  // namespace detail

// --- registry enumeration (sorted by id — stable across link order) --------

// Every registered point, sorted lexicographically by id.
std::vector<const Point*> all_points();
const Point* find_point(std::string_view id);
std::size_t point_count();
// Ids registered more than once (must be empty; test_mutate asserts).
std::vector<std::string> duplicate_ids();

// Expected census, updated whenever a point is added or removed; the
// registry test and the hunter both fail on drift, in the same spirit as
// the kServiceIdCount/service_name static_assert pairing.
struct ExpectedCoreCount {
  const char* prefix;  // id namespace, e.g. "pif."
  int points;          // total points under the prefix
  int equivalent;      // MUTATION_EQUIVALENT points among them
};
inline constexpr ExpectedCoreCount kExpectedCoreCounts[] = {
    {"el.", 6, 0},  {"fwd.", 11, 0},  {"idl.", 7, 1},
    {"me.", 10, 1}, {"net.", 3, 0},   {"pif.", 9, 0},
    {"reset.", 6, 0}, {"snap.", 7, 0}, {"sup.", 5, 0},
    {"td.", 8, 1},
};
inline constexpr int kMutationPointCount =
    6 + 11 + 7 + 10 + 3 + 9 + 6 + 7 + 5 + 8;
inline constexpr int kEquivalentMutantCount = 3;

// --- the process-global active set -----------------------------------------

// Selects which registered mutants the current run executes. All methods
// are single-threaded-harness territory (see file comment).
class ActiveSet {
 public:
  // Arms the point; returns false (and arms nothing) for an unknown id.
  static bool arm(std::string_view id);
  static bool disarm(std::string_view id);
  static void disarm_all();
  static std::size_t armed_count();
  static std::vector<const Point*> armed();
};

// RAII single-mutant scope for tests: arms on construction (asserting the
// id resolves), disarms on destruction.
class ScopedMutant {
 public:
  explicit ScopedMutant(std::string_view id);
  ~ScopedMutant();
  ScopedMutant(const ScopedMutant&) = delete;
  ScopedMutant& operator=(const ScopedMutant&) = delete;

  bool ok() const noexcept { return ok_; }

 private:
  std::string id_;
  bool ok_;
};

}  // namespace snapstab::mutate

// The mutation-point selector. Both sides compile in every build; the
// disarmed fast path evaluates only `live`. `id` must be a string literal,
// unique across the program, namespaced "<core>.<action>.<flavor>".
#define SNAPSTAB_MUTATION_POINT_(id, live, mutant, equivalent)             \
  (::snapstab::mutate::detail::Reg<id, #live, #mutant, __FILE__, __LINE__, \
                                   equivalent>::point.on()                 \
       ? (mutant)                                                          \
       : (live))

#define MUTATION_POINT(id, live, mutant) \
  SNAPSTAB_MUTATION_POINT_(id, live, mutant, false)

// A mutant argued unobservable in every execution; the comment at the use
// site must carry the argument. The hunter lists these separately and
// fails if one is ever killed.
#define MUTATION_EQUIVALENT(id, live, mutant) \
  SNAPSTAB_MUTATION_POINT_(id, live, mutant, true)

#endif  // SNAPSTAB_MUTATE_MUTATE_HPP
