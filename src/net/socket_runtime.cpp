#include "net/socket_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace snapstab::net {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

int bind_udp(std::uint16_t port, std::uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  SNAPSTAB_CHECK_MSG(fd >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
  sockaddr_in addr = loopback_addr(port);
  SNAPSTAB_CHECK_MSG(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "cannot bind the node's loopback UDP port");
  socklen_t len = sizeof addr;
  SNAPSTAB_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  *bound = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

// Context backend bound to one hosted node. Only used by the owning
// thread while it holds the node mutex (same discipline as the
// ThreadRuntime's NodeContext).
class SocketRuntime::NodeContext final : public sim::ContextBackend {
 public:
  NodeContext(SocketRuntime& rt, Node& node) : rt_(rt), node_(node) {}

  int degree() const override { return rt_.topology_.degree(node_.id); }

  bool send(int channel_index, const Message& m) override {
    const sim::EdgeId e = rt_.topology_.out_edge(node_.id, channel_index);
    return rt_.send_frame(node_, e, m);
  }

  void observe(sim::Layer layer, sim::ObsKind kind, int peer,
               const Value& value) override {
    const std::uint64_t step =
        rt_.event_counter_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(rt_.log_mu_);
    rt_.log_.push_back(
        sim::Observation{step, node_.id, layer, kind, peer, value});
  }

  Rng& rng() override { return node_.rng; }

  std::uint64_t now() const override {
    return rt_.event_counter_.load(std::memory_order_relaxed);
  }

 private:
  SocketRuntime& rt_;
  Node& node_;
};

SocketRuntime::SocketRuntime(sim::Topology topology,
                             SocketRuntimeOptions options)
    : topology_(std::move(topology)),
      n_(topology_.process_count()),
      options_(std::move(options)),
      pool_(&current_string_pool()) {
  SNAPSTAB_CHECK_MSG(topology_.connected(),
                     "the model requires a connected network");
  SNAPSTAB_CHECK_MSG(
      options_.ports.empty() ||
          options_.ports.size() == static_cast<std::size_t>(n_),
      "ports must name one UDP port per node");

  std::vector<int> hosted = options_.local_nodes;
  if (hosted.empty())
    for (int i = 0; i < n_; ++i) hosted.push_back(i);
  std::sort(hosted.begin(), hosted.end());
  SNAPSTAB_CHECK_MSG(
      std::adjacent_find(hosted.begin(), hosted.end()) == hosted.end(),
      "duplicate node in local_nodes");
  SNAPSTAB_CHECK_MSG(
      hosted.size() == static_cast<std::size_t>(n_) || !options_.ports.empty(),
      "hosting a node subset requires an explicit per-node port table");

  local_slot_.assign(static_cast<std::size_t>(n_), -1);
  port_table_.assign(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i)
    if (!options_.ports.empty())
      port_table_[static_cast<std::size_t>(i)] =
          options_.ports[static_cast<std::size_t>(i)];

  Rng seeder(options_.seed);
  locals_.reserve(hosted.size());
  for (const int p : hosted) {
    SNAPSTAB_CHECK(p >= 0 && p < n_);
    auto node = std::make_unique<Node>();
    node->id = p;
    node->rng = seeder.fork(static_cast<std::uint64_t>(p) + 1);
    node->filter_rng =
        Rng(options_.seed ^ 0x50CE7F17ull).fork(static_cast<std::uint64_t>(p));
    std::uint16_t bound = 0;
    node->fd = bind_udp(port_table_[static_cast<std::size_t>(p)], &bound);
    port_table_[static_cast<std::size_t>(p)] = bound;
    local_slot_[static_cast<std::size_t>(p)] =
        static_cast<int>(locals_.size());
    locals_.push_back(std::move(node));
  }

  edge_faults_ = std::make_unique<EdgeFault[]>(
      static_cast<std::size_t>(topology_.edge_count()));

  inject_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  SNAPSTAB_CHECK_MSG(inject_fd_ >= 0, "cannot open the injection socket");
}

SocketRuntime::SocketRuntime(int process_count, SocketRuntimeOptions options)
    : SocketRuntime(sim::Topology::complete(process_count),
                    std::move(options)) {}

SocketRuntime::~SocketRuntime() {
  shutdown();
  for (auto& node : locals_)
    if (node->fd >= 0) ::close(node->fd);
  if (inject_fd_ >= 0) ::close(inject_fd_);
}

bool SocketRuntime::hosts(int node) const noexcept {
  return node >= 0 && node < n_ &&
         local_slot_[static_cast<std::size_t>(node)] >= 0;
}

std::uint16_t SocketRuntime::port_of(int node) const {
  SNAPSTAB_CHECK(node >= 0 && node < n_);
  const std::uint16_t port = port_table_[static_cast<std::size_t>(node)];
  SNAPSTAB_CHECK_MSG(port != 0, "no port known for a remote node");
  return port;
}

SocketRuntime::Node& SocketRuntime::local(int p) {
  SNAPSTAB_CHECK_MSG(hosts(p), "node is not hosted by this process");
  return *locals_[static_cast<std::size_t>(
      local_slot_[static_cast<std::size_t>(p)])];
}

void SocketRuntime::add_process(std::unique_ptr<sim::Process> p) {
  SNAPSTAB_CHECK(p != nullptr);
  for (auto& node : locals_) {
    if (node->process == nullptr) {
      node->process = std::move(p);
      return;
    }
  }
  SNAPSTAB_CHECK_MSG(false, "more processes than hosted nodes");
}

bool SocketRuntime::send_frame(Node& node, sim::EdgeId e, const Message& m) {
  const int dst = topology_.edge_dst(e);
  const std::uint16_t port = port_table_[static_cast<std::size_t>(dst)];
  if (port == 0) return false;  // remote node with no known port
  const std::vector<std::uint8_t> frame = encode_frame(e, m, *pool_);
  const sockaddr_in addr = loopback_addr(port);
  const ssize_t sent =
      ::sendto(node.fd, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (sent != static_cast<ssize_t>(frame.size())) return false;
  stats_.datagrams_sent.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SocketRuntime::inject_datagram(int dst_node, const void* data,
                                    std::size_t size) {
  SNAPSTAB_CHECK(dst_node >= 0 && dst_node < n_);
  const std::uint16_t port = port_table_[static_cast<std::size_t>(dst_node)];
  if (port == 0) return false;
  const sockaddr_in addr = loopback_addr(port);
  std::lock_guard<std::mutex> lock(inject_mu_);
  return ::sendto(inject_fd_, data, size, 0,
                  reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == static_cast<ssize_t>(size);
}

void SocketRuntime::set_edge_drop(sim::EdgeId e, double rate) {
  SNAPSTAB_CHECK(e >= 0 && e < topology_.edge_count());
  edge_faults_[static_cast<std::size_t>(e)].drop.store(
      rate, std::memory_order_relaxed);
}

void SocketRuntime::set_edge_duplicate(sim::EdgeId e, double rate) {
  SNAPSTAB_CHECK(e >= 0 && e < topology_.edge_count());
  edge_faults_[static_cast<std::size_t>(e)].duplicate.store(
      rate, std::memory_order_relaxed);
}

void SocketRuntime::set_edge_down(sim::EdgeId e, bool down) {
  SNAPSTAB_CHECK(e >= 0 && e < topology_.edge_count());
  edge_faults_[static_cast<std::size_t>(e)].down.store(
      down, std::memory_order_relaxed);
}

void SocketRuntime::clear_edge_faults() {
  for (int e = 0; e < topology_.edge_count(); ++e) {
    auto& f = edge_faults_[static_cast<std::size_t>(e)];
    f.drop.store(0.0, std::memory_order_relaxed);
    f.duplicate.store(0.0, std::memory_order_relaxed);
    f.down.store(false, std::memory_order_relaxed);
  }
}

void SocketRuntime::thread_main(Node& node) {
  // Every node thread interns into the runtime's shared pool, exactly
  // like the ThreadRuntime's node threads.
  ScopedStringPool pool_scope(*pool_);
  NodeContext backend(*this, node);
  sim::Context ctx(backend);
  std::vector<std::uint8_t> buf(kMaxDatagramSize);
  const int degree = topology_.degree(node.id);
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(node.mu);
      sim::Process& proc = *node.process;
      // Budget one datagram per incident channel per activation (the
      // ThreadRuntime's drain rule); a busy process receives nothing and
      // the kernel socket buffer holds the backlog.
      if (!proc.busy()) {
        for (int k = 0; k < degree && !proc.busy(); ++k) {
          const ssize_t r =
              ::recv(node.fd, buf.data(), buf.size(), MSG_DONTWAIT);
          if (r < 0) break;  // EAGAIN: nothing pending (or a transient error)
          stats_.datagrams_received.fetch_add(1, std::memory_order_relaxed);
          const DecodedFrame frame =
              decode_frame(buf.data(), static_cast<std::size_t>(r), *pool_);
          stats_.by_result[static_cast<std::size_t>(frame.result)].fetch_add(
              1, std::memory_order_relaxed);
          if (!frame.ok()) continue;  // counted and dropped, never delivered
          if (frame.edge < 0 || frame.edge >= topology_.edge_count() ||
              topology_.edge_dst(frame.edge) != node.id) {
            stats_.bad_edge.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // The socket-level fault filter: between recv and dispatch.
          const auto& fault =
              edge_faults_[static_cast<std::size_t>(frame.edge)];
          if (fault.down.load(std::memory_order_relaxed)) {
            stats_.down_drops.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (options_.loss_rate > 0.0 &&
              node.filter_rng.chance(options_.loss_rate)) {
            stats_.loss_drops.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const double drop = fault.drop.load(std::memory_order_relaxed);
          if (drop > 0.0 && node.filter_rng.chance(drop)) {
            stats_.filter_drops.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const int ch = topology_.edge_index_at_dst(frame.edge);
          proc.on_message(ctx, ch, frame.message);
          stats_.delivered.fetch_add(1, std::memory_order_relaxed);
          const double dup = fault.duplicate.load(std::memory_order_relaxed);
          if (dup > 0.0 && node.filter_rng.chance(dup) && !proc.busy()) {
            proc.on_message(ctx, ch, frame.message);
            stats_.delivered.fetch_add(1, std::memory_order_relaxed);
            stats_.filter_duplicates.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (proc.tick_enabled()) proc.on_tick(ctx);
    }
    if (options_.activation_pause.count() > 0)
      std::this_thread::sleep_for(options_.activation_pause);
    else
      std::this_thread::yield();
  }
}

void SocketRuntime::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  for (const auto& node : locals_)
    SNAPSTAB_CHECK_MSG(node->process != nullptr,
                       "install all hosted processes before start()");
  for (auto& node : locals_) {
    Node* raw = node.get();
    node->thread = std::thread([this, raw] { thread_main(*raw); });
  }
}

bool SocketRuntime::run(const std::function<bool()>& done,
                        std::chrono::milliseconds timeout) {
  if (stop_.load(std::memory_order_acquire)) return done();  // shut down
  start();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

void SocketRuntime::shutdown() {
  stop_.store(true, std::memory_order_release);
  for (auto& node : locals_)
    if (node->thread.joinable()) node->thread.join();
}

std::vector<sim::Observation> SocketRuntime::observations() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

void SocketRuntime::observe_external(int process, sim::Layer layer,
                                     sim::ObsKind kind, int peer,
                                     const Value& value) {
  const std::uint64_t step =
      event_counter_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(sim::Observation{step, process, layer, kind, peer, value});
}

SocketRuntime::WireStats SocketRuntime::wire_stats() const {
  WireStats out;
  out.datagrams_sent = stats_.datagrams_sent.load(std::memory_order_relaxed);
  out.datagrams_received =
      stats_.datagrams_received.load(std::memory_order_relaxed);
  out.delivered = stats_.delivered.load(std::memory_order_relaxed);
  for (int i = 0; i < kWireFrameResultCount; ++i) {
    const std::uint64_t c =
        stats_.by_result[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    out.by_result[static_cast<std::size_t>(i)] = c;
    if (i != static_cast<int>(WireFrameResult::Ok)) out.rejected_frames += c;
  }
  out.bad_edge = stats_.bad_edge.load(std::memory_order_relaxed);
  out.loss_drops = stats_.loss_drops.load(std::memory_order_relaxed);
  out.filter_drops = stats_.filter_drops.load(std::memory_order_relaxed);
  out.filter_duplicates =
      stats_.filter_duplicates.load(std::memory_order_relaxed);
  out.down_drops = stats_.down_drops.load(std::memory_order_relaxed);
  return out;
}

}  // namespace snapstab::net
