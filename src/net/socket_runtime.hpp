// socket_runtime.hpp — the real-wire backend: one UDP socket per node.
//
// The third execution backend behind sim::ContextBackend, alongside the
// deterministic Simulator and the in-process ThreadRuntime. Every node
// binds a UDP socket on the loopback interface; every protocol message
// crosses the kernel as a framed datagram (net/wire.hpp over msg::codec),
// so the stack faces a channel that genuinely loses, duplicates and
// reorders — the paper's unbounded-capacity lossy link, realized by an
// actual network instead of a simulated adversary.
//
// Hosting modes:
//   * single process (default): one SocketRuntime hosts every node of the
//     topology on ephemeral loopback ports — the loopback integration and
//     bench configuration;
//   * multi-process: `options.ports` fixes one UDP port per node and
//     `options.local_nodes` names the subset this OS process hosts (the
//     examples' `--node i` shape). Peers find each other through the
//     shared port table; a SIGKILLed process can rebind its port and
//     rejoin, which is what the fault engine's process-kill path tests.
//
// Receive path, per activation of a node thread (mirrors the
// ThreadRuntime's one-message-per-channel budget):
//   recvfrom -> decode_frame (corrupt/truncated datagrams counted and
//   dropped, never delivered) -> edge validation (must terminate here) ->
//   the fault filter (per-edge drop/duplicate/down, driven by
//   fault::RuntimeInjector between recv and dispatch) ->
//   Process::on_message, then on_tick. Datagrams a busy process leaves
//   unread queue in the kernel socket buffer — the unbounded channel.
//
// Concurrency discipline is the ThreadRuntime's: process state only under
// the node mutex, observation log under its own mutex with a monotonic
// event counter, one shared StringPool. Unlike the one-shot ThreadRuntime
// the node threads keep serving across run() calls until shutdown() —
// real servers outlive one await batch.
#ifndef SNAPSTAB_NET_SOCKET_RUNTIME_HPP
#define SNAPSTAB_NET_SOCKET_RUNTIME_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "msg/strpool.hpp"
#include "net/wire.hpp"
#include "sim/process.hpp"
#include "sim/topology.hpp"

namespace snapstab::net {

struct SocketRuntimeOptions {
  std::uint64_t seed = 1;  // seeds per-node protocol and filter RNGs
  // Receive-side injected datagram loss (on top of whatever the kernel
  // genuinely drops): each accepted frame is discarded with this
  // probability before dispatch. The bench ladder's loss knob.
  double loss_rate = 0.0;
  // Pause between consecutive activations of one node thread.
  std::chrono::microseconds activation_pause{20};
  // One UDP port per node (multi-process mode). Empty: every node binds
  // an ephemeral loopback port, which requires hosting all nodes here.
  std::vector<std::uint16_t> ports;
  // The nodes this OS process hosts. Empty: all of them.
  std::vector<int> local_nodes;
};

class SocketRuntime {
 public:
  SocketRuntime(sim::Topology topology, SocketRuntimeOptions options = {});
  // The paper's fully-connected network.
  SocketRuntime(int process_count, SocketRuntimeOptions options = {});
  ~SocketRuntime();

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  // Install exactly one process per hosted node, in ascending node order.
  void add_process(std::unique_ptr<sim::Process> p);

  int process_count() const noexcept { return n_; }
  const sim::Topology& topology() const noexcept { return topology_; }
  bool hosts(int node) const noexcept;
  // The UDP port node `node` is reachable on (actual bound port for
  // hosted nodes, the configured one for remote nodes).
  std::uint16_t port_of(int node) const;

  // Spawns the node threads (idempotent; run() calls it on demand).
  void start();
  // Polls `done()` every millisecond until it holds or `timeout` elapses;
  // returns whether it held. The threads keep serving afterwards — a
  // SocketRuntime awaits as many batches as the driver likes.
  bool run(const std::function<bool()>& done,
           std::chrono::milliseconds timeout);
  // Stops and joins the node threads. After shutdown() the runtime can no
  // longer make progress; run() just polls once.
  void shutdown();
  bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stop_.load(std::memory_order_acquire);
  }

  // Executes `f` on hosted node `p` (cast to T) under its node lock.
  template <typename T, typename F>
  auto with_process(int p, F&& f) {
    auto& node = local(p);
    std::lock_guard<std::mutex> lock(node.mu);
    return f(dynamic_cast<T&>(*node.process));
  }

  std::vector<sim::Observation> observations() const;
  void observe_external(int process, sim::Layer layer, sim::ObsKind kind,
                        int peer, const Value& value);
  StringPool& string_pool() const noexcept { return *pool_; }

  // --- wire accounting ----------------------------------------------------
  struct WireStats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t delivered = 0;         // dispatched to on_message
    std::uint64_t rejected_frames = 0;   // sum of the non-Ok results below
    std::array<std::uint64_t, kWireFrameResultCount> by_result{};
    std::uint64_t bad_edge = 0;       // frame named an edge not inbound here
    std::uint64_t loss_drops = 0;     // options.loss_rate discards
    std::uint64_t filter_drops = 0;   // fault-filter drop discards
    std::uint64_t filter_duplicates = 0;
    std::uint64_t down_drops = 0;     // fault-filter LinkDown discards
  };
  // Aggregated over every hosted node; safe to read concurrently.
  WireStats wire_stats() const;

  // --- the socket-level fault filter (fault::RuntimeInjector) -------------
  // Installed between recv and dispatch on the receiving node; rates and
  // flags are plain atomics so the injection thread flips them while the
  // node threads run.
  void set_edge_drop(sim::EdgeId e, double rate);
  void set_edge_duplicate(sim::EdgeId e, double rate);
  void set_edge_down(sim::EdgeId e, bool down);
  void clear_edge_faults();

  // Sends raw bytes to `dst_node`'s socket from a side-channel socket —
  // the garbage-burst path (valid frames carrying random messages, or
  // plain noise exercising the frame rejections). Returns whether the
  // kernel accepted the datagram.
  bool inject_datagram(int dst_node, const void* data, std::size_t size);

 private:
  struct Node {
    int id = -1;
    int fd = -1;
    std::mutex mu;
    std::unique_ptr<sim::Process> process;
    std::thread thread;
    Rng rng{0};         // protocol draws (Context::rng)
    Rng filter_rng{0};  // loss/duplicate filter draws — separate stream so
                        // the filter never perturbs protocol randomness
  };
  struct EdgeFault {
    std::atomic<double> drop{0.0};
    std::atomic<double> duplicate{0.0};
    std::atomic<bool> down{false};
  };
  struct AtomicWireStats {
    std::atomic<std::uint64_t> datagrams_sent{0};
    std::atomic<std::uint64_t> datagrams_received{0};
    std::atomic<std::uint64_t> delivered{0};
    std::array<std::atomic<std::uint64_t>, kWireFrameResultCount> by_result{};
    std::atomic<std::uint64_t> bad_edge{0};
    std::atomic<std::uint64_t> loss_drops{0};
    std::atomic<std::uint64_t> filter_drops{0};
    std::atomic<std::uint64_t> filter_duplicates{0};
    std::atomic<std::uint64_t> down_drops{0};
  };
  class NodeContext;

  Node& local(int p);
  void thread_main(Node& node);
  bool send_frame(Node& node, sim::EdgeId e, const Message& m);

  sim::Topology topology_;
  int n_;
  SocketRuntimeOptions options_;
  StringPool* pool_;
  std::vector<std::unique_ptr<Node>> locals_;   // hosted nodes, ascending id
  std::vector<int> local_slot_;                 // node id -> locals_ index | -1
  std::vector<std::uint16_t> port_table_;       // node id -> UDP port
  std::unique_ptr<EdgeFault[]> edge_faults_;    // one per directed edge
  int inject_fd_ = -1;
  mutable std::mutex inject_mu_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  AtomicWireStats stats_;
  std::atomic<std::uint64_t> event_counter_{0};
  mutable std::mutex log_mu_;
  std::vector<sim::Observation> log_;
};

}  // namespace snapstab::net

#endif  // SNAPSTAB_NET_SOCKET_RUNTIME_HPP
