#include "net/wire.hpp"

#include <cstring>

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::net {
namespace {

// Checksummed region: everything after the magic except the checksum
// field itself — version(1) + edge(4) + payload_len(4) at offset 4.
constexpr std::size_t kSumFieldsOff = 4;
constexpr std::size_t kSumFieldsLen = 9;
constexpr std::size_t kChecksumOff = 13;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t h) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t frame_checksum(const std::uint8_t* frame,
                             std::size_t size) noexcept {
  SNAPSTAB_CHECK(size >= kWireHeaderSize);
  const std::size_t avail = size - kWireHeaderSize;
  std::size_t payload_len = get_u32(frame + kSumFieldsOff + 5);
  if (payload_len > avail) payload_len = avail;  // stay total
  std::uint64_t h = fnv1a(frame + kSumFieldsOff, kSumFieldsLen);
  return fnv1a(frame + kWireHeaderSize, payload_len, h);
}

void patch_checksum(std::vector<std::uint8_t>& frame) noexcept {
  SNAPSTAB_CHECK(frame.size() >= kWireHeaderSize);
  const std::uint64_t sum = frame_checksum(frame.data(), frame.size());
  for (int i = 0; i < 8; ++i)
    frame[kChecksumOff + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
}

std::vector<std::uint8_t> encode_frame(sim::EdgeId edge, const Message& m,
                                       const StringPool& pool) {
  SNAPSTAB_CHECK(edge >= 0);
  const std::vector<std::uint8_t> payload = encode(m, pool);
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  put_u32(out, static_cast<std::uint32_t>(edge));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());
  patch_checksum(out);
  return out;
}

DecodedFrame decode_frame(const std::uint8_t* data, std::size_t size,
                          StringPool& pool) {
  DecodedFrame out;
  if (data == nullptr || size < kWireHeaderSize) {
    out.result = WireFrameResult::TooShort;
    return out;
  }
  if (get_u32(data) != kWireMagic) {
    out.result = WireFrameResult::BadMagic;
    return out;
  }
  const std::uint8_t version = data[4];
  if (!MUTATION_POINT("net.frame.any_version", (version == kWireVersion),
                      true)) {
    out.result = WireFrameResult::BadVersion;
    return out;
  }
  const std::size_t avail = size - kWireHeaderSize;
  const std::size_t payload_len = get_u32(data + 9);
  // The mutant tolerates trailing garbage (payload_len <= avail) but can
  // never read past the datagram, so an armed run stays memory-safe.
  if (!MUTATION_POINT("net.frame.loose_length", (payload_len == avail),
                      (payload_len <= avail))) {
    out.result = WireFrameResult::BadLength;
    return out;
  }
  const std::uint64_t declared = get_u64(data + kChecksumOff);
  const std::uint64_t computed = frame_checksum(data, size);
  if (!MUTATION_POINT("net.frame.skip_checksum", (declared == computed),
                      true)) {
    out.result = WireFrameResult::BadChecksum;
    return out;
  }
  const std::optional<Message> m =
      decode(data + kWireHeaderSize, payload_len, pool);
  if (!m.has_value()) {
    out.result = WireFrameResult::BadMessage;
    return out;
  }
  out.result = WireFrameResult::Ok;
  out.edge = static_cast<sim::EdgeId>(get_u32(data + 5));
  out.message = *m;
  return out;
}

}  // namespace snapstab::net
