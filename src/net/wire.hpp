// wire.hpp — the datagram frame of the real-wire runtime.
//
// The SocketRuntime moves every protocol message as one UDP datagram:
// the msg::codec payload (already total against arbitrary bytes) wrapped
// in a fixed header that lets a receiver route and validate a datagram
// before any protocol code sees it:
//
//   u32 magic    0x534E4150 ("SNAP" LE)  — rejects foreign traffic
//   u8  version  kWireVersion            — rejects incompatible peers
//   u32 edge     directed EdgeId         — the topology channel this
//                                          datagram travels (the receiver
//                                          checks it terminates at itself)
//   u32 payload_len                      — exact codec payload size
//   u64 checksum FNV-1a over version|edge|payload_len|payload
//   ... payload  msg::codec bytes
//
// decode_frame() is total, like the codec underneath it: any byte
// sequence yields either a validated (edge, Message) pair or a
// WireFrameResult naming the first failed check — corrupt or truncated
// datagrams are counted and dropped by the runtime, never delivered and
// never a crash. The three validation decisions (version gate, length
// guard, checksum check) carry MUTATION_POINTs so the kill ladder proves
// the rejections are load-bearing (see tests/mutate_scenarios.hpp,
// "spec.net.frame").
#ifndef SNAPSTAB_NET_WIRE_HPP
#define SNAPSTAB_NET_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "msg/codec.hpp"
#include "msg/message.hpp"
#include "msg/strpool.hpp"
#include "sim/topology.hpp"

namespace snapstab::net {

inline constexpr std::uint32_t kWireMagic = 0x534E4150u;  // "SNAP"
inline constexpr std::uint8_t kWireVersion = 1;
// magic(4) + version(1) + edge(4) + payload_len(4) + checksum(8).
inline constexpr std::size_t kWireHeaderSize = 21;
// Generous ceiling for one framed message (codec payloads are tens of
// bytes; text is capped at kMaxTextLength upstream). Receive buffers and
// the garbage injector size against this.
inline constexpr std::size_t kMaxDatagramSize = 65536 + 64;

// Every way a datagram can fail validation, in check order; Ok last-but
// listed first so a zeroed counter array reads naturally.
enum class WireFrameResult : std::uint8_t {
  Ok,
  TooShort,     // smaller than the fixed header
  BadMagic,     // not our traffic
  BadVersion,   // incompatible frame version
  BadLength,    // payload_len disagrees with the datagram size
  BadChecksum,  // FNV mismatch: bytes corrupted in flight
  BadMessage,   // frame intact but the codec payload does not parse
};

inline constexpr int kWireFrameResultCount = 7;

constexpr const char* wire_frame_result_name(WireFrameResult r) noexcept {
  static_assert(kWireFrameResultCount ==
                    static_cast<int>(WireFrameResult::BadMessage) + 1,
                "new WireFrameResult: update kWireFrameResultCount and "
                "every switch");
  switch (r) {
    case WireFrameResult::Ok: return "ok";
    case WireFrameResult::TooShort: return "too-short";
    case WireFrameResult::BadMagic: return "bad-magic";
    case WireFrameResult::BadVersion: return "bad-version";
    case WireFrameResult::BadLength: return "bad-length";
    case WireFrameResult::BadChecksum: return "bad-checksum";
    case WireFrameResult::BadMessage: return "bad-message";
  }
  return "?";
}

// FNV-1a (the repo's standing digest primitive — fault-plan digests and
// the mutation Fold use the same constants).
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t h = 0xcbf29ce484222325ull) noexcept;

// The checksum a well-formed frame of `size` bytes must carry: FNV-1a
// over the version/edge/payload_len fields and the declared payload.
// Requires size >= kWireHeaderSize; reads the payload length from the
// frame itself (clamped to the bytes present, so it is total too).
std::uint64_t frame_checksum(const std::uint8_t* frame,
                             std::size_t size) noexcept;
// Recomputes and stores the checksum of a hand-edited frame (tests and
// the kill configs forge frames with this).
void patch_checksum(std::vector<std::uint8_t>& frame) noexcept;

// Encodes `m` through the codec and wraps it for directed edge `edge`.
std::vector<std::uint8_t> encode_frame(sim::EdgeId edge, const Message& m,
                                       const StringPool& pool);
inline std::vector<std::uint8_t> encode_frame(sim::EdgeId edge,
                                              const Message& m) {
  return encode_frame(edge, m, current_string_pool());
}

struct DecodedFrame {
  WireFrameResult result = WireFrameResult::TooShort;
  sim::EdgeId edge = -1;  // valid only when result == Ok
  Message message;        // valid only when result == Ok

  bool ok() const noexcept { return result == WireFrameResult::Ok; }
};

// Total: never throws, never reads out of bounds, never crashes — the
// receiver's first line of defense against a network that delivers
// arbitrary bytes.
DecodedFrame decode_frame(const std::uint8_t* data, std::size_t size,
                          StringPool& pool);
inline DecodedFrame decode_frame(const std::uint8_t* data, std::size_t size) {
  return decode_frame(data, size, current_string_pool());
}
inline DecodedFrame decode_frame(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

}  // namespace snapstab::net

#endif  // SNAPSTAB_NET_WIRE_HPP
