#include "runtime/mailbox.hpp"

namespace snapstab::runtime {

bool Mailbox::try_push(const Message& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots_.size() >= capacity_) {
    ++stats_.lost_on_full;
    return false;
  }
  slots_.push_back(encode(m, *pool_));
  ++stats_.pushed;
  return true;
}

std::optional<Message> Mailbox::try_pop() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!slots_.empty()) {
    std::vector<std::uint8_t> bytes = std::move(slots_.front());
    slots_.pop_front();
    ++stats_.popped;
    auto decoded = decode(bytes, *pool_);
    if (decoded.has_value()) return decoded;
    ++stats_.decode_failures;  // corrupted datagram: drop and continue
  }
  return std::nullopt;
}

Mailbox::Stats Mailbox::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace snapstab::runtime
