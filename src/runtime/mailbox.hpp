// mailbox.hpp — a bounded, lossy, FIFO mailbox for the thread runtime.
//
// One mailbox realizes one directed channel between two OS threads. It
// enforces the paper's bounded-capacity semantics (a push into a full
// mailbox loses the pushed message) and round-trips every message through
// the binary codec, so the protocols run against a real wire format.
//
// The codec boundary is also the StrId boundary: try_push resolves interned
// text to bytes against the mailbox's StringPool, try_pop re-interns into
// the same pool — sender and receiver threads share one id space per
// runtime (the pool is thread-safe).
#ifndef SNAPSTAB_RUNTIME_MAILBOX_HPP
#define SNAPSTAB_RUNTIME_MAILBOX_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "msg/codec.hpp"
#include "msg/message.hpp"
#include "msg/strpool.hpp"

namespace snapstab::runtime {

class Mailbox {
 public:
  // `pool` is the id space messages are encoded from / decoded into;
  // nullptr selects the constructing thread's current pool.
  explicit Mailbox(std::size_t capacity = 1, StringPool* pool = nullptr)
      : capacity_(capacity),
        pool_(pool != nullptr ? pool : &current_string_pool()) {}

  // Thread-safe. Returns false when the mailbox was full (message lost).
  bool try_push(const Message& m);

  // Thread-safe. Returns the decoded head message, or nullopt when empty.
  // A datagram that fails to decode is dropped and counted.
  std::optional<Message> try_pop();

  std::size_t capacity() const noexcept { return capacity_; }
  StringPool& string_pool() const noexcept { return *pool_; }

  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t lost_on_full = 0;
    std::uint64_t popped = 0;
    std::uint64_t decode_failures = 0;
  };
  Stats stats() const;

 private:
  const std::size_t capacity_;
  StringPool* pool_;
  mutable std::mutex mu_;
  std::deque<std::vector<std::uint8_t>> slots_;
  Stats stats_;
};

}  // namespace snapstab::runtime

#endif  // SNAPSTAB_RUNTIME_MAILBOX_HPP
