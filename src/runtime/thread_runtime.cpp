#include "runtime/thread_runtime.hpp"

#include "common/check.hpp"

namespace snapstab::runtime {

// Context backend bound to one process of the thread runtime. Only ever
// used by the owning thread while it holds the node mutex; protocol code
// reaches it through sim::Context's generic (one virtual hop) path.
class ThreadRuntime::NodeContext final : public sim::ContextBackend {
 public:
  NodeContext(ThreadRuntime& rt, int self) : rt_(rt), self_(self) {}

  int degree() const override { return rt_.topology_.degree(self_); }

  bool send(int channel_index, const Message& m) override {
    // Same local-index mapping as the simulator: the shared Topology.
    const sim::EdgeId e = rt_.topology_.out_edge(self_, channel_index);
    auto& node = *rt_.nodes_[static_cast<std::size_t>(self_)];
    if (rt_.options_.loss_rate > 0.0 &&
        node.rng.chance(rt_.options_.loss_rate))
      return true;  // accepted, then the wire ate it (invisible loss)
    return rt_.mailboxes_[static_cast<std::size_t>(e)]->try_push(m);
  }

  void observe(sim::Layer layer, sim::ObsKind kind, int peer,
               const Value& value) override {
    const std::uint64_t step =
        rt_.event_counter_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(rt_.log_mu_);
    rt_.log_.push_back(
        sim::Observation{step, self_, layer, kind, peer, value});
  }

  Rng& rng() override {
    return rt_.nodes_[static_cast<std::size_t>(self_)]->rng;
  }

  std::uint64_t now() const override {
    return rt_.event_counter_.load(std::memory_order_relaxed);
  }

 private:
  ThreadRuntime& rt_;
  int self_;
};

ThreadRuntime::ThreadRuntime(sim::Topology topology,
                             ThreadRuntimeOptions options)
    : topology_(std::move(topology)),
      n_(topology_.process_count()),
      options_(options),
      pool_(&current_string_pool()) {
  SNAPSTAB_CHECK_MSG(topology_.connected(),
                     "the model requires a connected network");
  Rng seeder(options_.seed);
  nodes_.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    auto node = std::make_unique<Node>();
    node->rng = seeder.fork(static_cast<std::uint64_t>(i) + 1);
    nodes_.push_back(std::move(node));
  }
  const int edges = topology_.edge_count();
  mailboxes_.reserve(static_cast<std::size_t>(edges));
  for (int e = 0; e < edges; ++e)
    mailboxes_.push_back(
        std::make_unique<Mailbox>(options_.mailbox_capacity, pool_));
}

ThreadRuntime::ThreadRuntime(int process_count, ThreadRuntimeOptions options)
    : ThreadRuntime(sim::Topology::complete(process_count), options) {}

ThreadRuntime::~ThreadRuntime() {
  stop_.store(true);
  for (auto& node : nodes_)
    if (node->thread.joinable()) node->thread.join();
}

void ThreadRuntime::add_process(std::unique_ptr<sim::Process> p) {
  SNAPSTAB_CHECK(p != nullptr);
  for (auto& node : nodes_) {
    if (node->process == nullptr) {
      node->process = std::move(p);
      return;
    }
  }
  SNAPSTAB_CHECK_MSG(false, "more processes than runtime slots");
}

Mailbox& ThreadRuntime::mailbox_mut(int src, int dst) {
  return *mailboxes_[static_cast<std::size_t>(topology_.edge_between(src, dst))];
}

const Mailbox& ThreadRuntime::mailbox(int src, int dst) const {
  return *mailboxes_[static_cast<std::size_t>(topology_.edge_between(src, dst))];
}

void ThreadRuntime::thread_main(int p) {
  auto& node = *nodes_[static_cast<std::size_t>(p)];
  // Every node thread interns into the runtime's shared (thread-safe) pool.
  ScopedStringPool pool_scope(*pool_);
  NodeContext backend(*this, p);
  sim::Context ctx(backend);
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(node.mu);
      sim::Process& proc = *node.process;
      // Drain at most one message per incident channel, unless busy in the
      // critical section (a busy process receives nothing).
      if (!proc.busy()) {
        for (int ch = 0; ch < topology_.degree(p); ++ch) {
          if (proc.busy()) break;  // the CS may start mid-drain? (it cannot
                                   // — receives never start a CS — but stay
                                   // defensive)
          const sim::EdgeId e = topology_.in_edge(p, ch);
          if (auto m = mailboxes_[static_cast<std::size_t>(e)]->try_pop())
            proc.on_message(ctx, ch, *m);
        }
      }
      if (proc.tick_enabled()) proc.on_tick(ctx);
    }
    if (options_.activation_pause.count() > 0)
      std::this_thread::sleep_for(options_.activation_pause);
    else
      std::this_thread::yield();
  }
}

bool ThreadRuntime::run(const std::function<bool()>& done,
                        std::chrono::milliseconds timeout) {
  SNAPSTAB_CHECK_MSG(!started_, "ThreadRuntime is one-shot");
  for (const auto& node : nodes_)
    SNAPSTAB_CHECK_MSG(node->process != nullptr,
                       "install all processes before run()");
  started_ = true;

  for (int p = 0; p < n_; ++p)
    nodes_[static_cast<std::size_t>(p)]->thread =
        std::thread([this, p] { thread_main(p); });

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool ok = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) {
      ok = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_.store(true);
  for (auto& node : nodes_)
    if (node->thread.joinable()) node->thread.join();
  return ok;
}

std::vector<sim::Observation> ThreadRuntime::observations() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

void ThreadRuntime::observe_external(int process, sim::Layer layer,
                                     sim::ObsKind kind, int peer,
                                     const Value& value) {
  const std::uint64_t step =
      event_counter_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(sim::Observation{step, process, layer, kind, peer, value});
}

}  // namespace snapstab::runtime
