// thread_runtime.hpp — one OS thread per process.
//
// The paper closes with "actually implementing them is a future challenge";
// this runtime takes the same Process objects that run in the simulator and
// executes them under genuine concurrency: each process is a thread, each
// directed edge of the topology a capacity-bounded lossy Mailbox carrying
// codec-encoded datagrams. Protocol code is shared verbatim with the
// simulator — the Process/Context interfaces are the only coupling, and the
// local-index ↔ peer mapping is the same Topology object the simulator uses
// (historic constructor: the paper's fully-connected rotation numbering).
//
// Concurrency discipline: a process's state is touched only under its node
// mutex — by its own thread during an activation, or by with_process() /
// the stop predicate from the supervising thread. The observation log has
// its own mutex and a monotonic event counter standing in for steps.
#ifndef SNAPSTAB_RUNTIME_THREAD_RUNTIME_HPP
#define SNAPSTAB_RUNTIME_THREAD_RUNTIME_HPP

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "msg/strpool.hpp"
#include "runtime/mailbox.hpp"
#include "sim/process.hpp"
#include "sim/topology.hpp"

namespace snapstab::runtime {

struct ThreadRuntimeOptions {
  std::size_t mailbox_capacity = 1;
  double loss_rate = 0.0;      // per-send probability of losing the message
  std::uint64_t seed = 1;      // seeds the per-process loss/protocol RNGs
  // Pause between consecutive activations of one process; keeps the demo
  // from spinning a core per process.
  std::chrono::microseconds activation_pause{20};
};

class ThreadRuntime {
 public:
  ThreadRuntime(sim::Topology topology, ThreadRuntimeOptions options = {});
  // The paper's fully-connected network (historic constructor).
  ThreadRuntime(int process_count, ThreadRuntimeOptions options = {});
  ~ThreadRuntime();

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  // Install exactly `process_count` processes before run().
  void add_process(std::unique_ptr<sim::Process> p);

  int process_count() const noexcept { return n_; }
  const sim::Topology& topology() const noexcept { return topology_; }

  // Runs all process threads until `done()` holds (polled every
  // millisecond) or the timeout elapses; returns whether `done()` held.
  // One-shot: a ThreadRuntime instance runs once.
  bool run(const std::function<bool()>& done,
           std::chrono::milliseconds timeout);
  // Whether run() has already been called (it is one-shot). Callers that
  // may retry after a timeout — Client::run_until — check this instead of
  // tripping the one-shot assertion.
  bool started() const noexcept { return started_; }

  // Executes `f` on process `p` (cast to T) under its node lock. Safe to
  // call from the done-predicate and after run() returns.
  template <typename T, typename F>
  auto with_process(int p, F&& f) {
    auto& node = *nodes_[static_cast<std::size_t>(p)];
    std::lock_guard<std::mutex> lock(node.mu);
    return f(dynamic_cast<T&>(*node.process));
  }

  // Snapshot of the observation stream so far.
  std::vector<sim::Observation> observations() const;

  // Appends a driver-side event to the observation stream (the svc layer
  // records submissions here, mirroring the simulator's request events).
  void observe_external(int process, sim::Layer layer, sim::ObsKind kind,
                        int peer, const Value& value);

  const Mailbox& mailbox(int src, int dst) const;
  // Mutable access for the fault engine's injection thread (mailboxes are
  // internally synchronized; see fault::RuntimeInjector).
  Mailbox& mailbox_mut(int src, int dst);

  // The runtime's StringPool (the constructing thread's current pool): all
  // node threads intern into and resolve against it, so observation values
  // compare correctly with values interned by the supervising thread.
  StringPool& string_pool() const noexcept { return *pool_; }

 private:
  struct Node {
    std::mutex mu;
    std::unique_ptr<sim::Process> process;
    std::thread thread;
    Rng rng{0};
  };
  class NodeContext;

  void thread_main(int p);

  sim::Topology topology_;
  int n_;
  ThreadRuntimeOptions options_;
  StringPool* pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // one per directed edge

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> event_counter_{0};
  mutable std::mutex log_mu_;
  std::vector<sim::Observation> log_;
  bool started_ = false;
};

}  // namespace snapstab::runtime

#endif  // SNAPSTAB_RUNTIME_THREAD_RUNTIME_HPP
