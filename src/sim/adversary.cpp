#include "sim/adversary.hpp"

namespace snapstab::sim {

Adversary::StrikeReport Adversary::strike(Simulator& sim) {
  ++strikes_;
  // Struck-in text payloads belong to the victim simulator's pool.
  ScopedStringPool pool_scope(sim.string_pool());
  StrikeReport report;
  const int n = sim.process_count();
  for (ProcessId p = 0; p < n; ++p) {
    if (!rng_.chance(options_.process_probability)) continue;
    sim.process(p).randomize(rng_);
    ++report.processes_hit;
    report.processes.push_back(p);
  }
  Network& net = sim.network();
  for (EdgeId e = 0; e < net.edge_count(); ++e) {
    if (!rng_.chance(options_.channel_probability)) continue;
    Channel& ch = net.edge_channel(e);
    ch.clear();
    const std::size_t count =
        ch.unbounded() ? 1 + rng_.below(3) : 1 + rng_.below(ch.capacity());
    for (std::size_t i = 0; i < count; ++i)
      ch.push(Message::random(rng_, options_.flag_limit));
    ++report.channels_hit;
    report.channels.push_back(e);
  }
  return report;
}

std::string Adversary::StrikeReport::summary() const {
  std::string s = "struck processes=[";
  for (std::size_t i = 0; i < processes.size(); ++i) {
    if (i != 0) s += ' ';
    s += std::to_string(processes[i]);
  }
  s += "] channels=[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (i != 0) s += ' ';
    s += std::to_string(channels[i]);
  }
  s += ']';
  return s;
}

}  // namespace snapstab::sim
