// adversary.hpp — a transient-fault injector for running systems.
//
// Snap-stabilization is a statement about what happens *after* a transient
// fault: any request made once the fault ceases is served correctly. The
// Adversary makes that testable as a process over time: strike() applies a
// fresh burst of corruption (scrambled process states and/or garbage
// channel contents) to a randomly chosen subset of the system, between
// requests. The chaos test-suites alternate strike / request / verify for
// many rounds — the empirical form of "withstands transient faults".
#ifndef SNAPSTAB_SIM_ADVERSARY_HPP
#define SNAPSTAB_SIM_ADVERSARY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::sim {

struct AdversaryOptions {
  // Per-strike probability that a given process's state is scrambled.
  double process_probability = 0.5;
  // Per-strike probability that a given channel is refilled with garbage.
  double channel_probability = 0.5;
  // Flag domain for fuzzed messages (the protocol's flag bound).
  std::int32_t flag_limit = 4;
};

class Adversary {
 public:
  Adversary(std::uint64_t seed, AdversaryOptions options = {})
      : rng_(seed), options_(options) {}

  // Applies one burst of corruption. Returns WHO was hit — the ids, not
  // just the counts — so a failing chaos round can print exactly which
  // processes/channels the strike corrupted.
  struct StrikeReport {
    int processes_hit = 0;
    int channels_hit = 0;
    std::vector<ProcessId> processes;  // scrambled process ids
    std::vector<EdgeId> channels;      // garbage-refilled edge ids
    // "struck processes=[0 2] channels=[1 5 6]" — the chaos suites append
    // this (plus the seed) to every failure message.
    std::string summary() const;
  };
  StrikeReport strike(Simulator& sim);

  std::uint64_t strikes() const noexcept { return strikes_; }

 private:
  Rng rng_;
  AdversaryOptions options_;
  std::uint64_t strikes_ = 0;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_ADVERSARY_HPP
