#include "sim/channel.hpp"

#include "common/check.hpp"

namespace snapstab::sim {

bool Channel::push(const Message& m) {
  if (!unbounded() && queue_.size() >= capacity_) {
    ++stats_.lost_on_full;
    return false;
  }
  queue_.push_back(m);
  ++stats_.pushed;
  if (queue_.size() == 1 && listener_ != nullptr)
    listener_->channel_transition(tag_, true);
  return true;
}

std::optional<Message> Channel::pop() {
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.popped;
  if (queue_.empty() && listener_ != nullptr)
    listener_->channel_transition(tag_, false);
  return m;
}

const Message& Channel::peek() const {
  SNAPSTAB_CHECK(!queue_.empty());
  return queue_.front();
}

}  // namespace snapstab::sim
