// channel.hpp — a FIFO, lossy, capacity-limited communication channel.
//
// Model (paper, Section 2 and Section 4):
//  - channels are FIFO;
//  - messages may be lost, but if infinitely many messages are sent,
//    infinitely many are received (fair loss; realized by the scheduler);
//  - in the bounded-capacity setting, *a message sent into a full channel is
//    lost* (the channel content is unchanged).
//
// Capacity 0 encodes the unbounded channels of Section 3 (the impossibility
// construction requires stuffing arbitrarily long message sequences).
//
// Storage is a MessageRing: bounded channels size it once at construction
// (capacities up to 4 live inline in the Channel, no heap at all), the
// unbounded ones double it on demand. push/pop move one flat trivially-
// copyable Message — the channel hot path performs zero allocations.
#ifndef SNAPSTAB_SIM_CHANNEL_HPP
#define SNAPSTAB_SIM_CHANNEL_HPP

#include <cstdint>
#include <iterator>

#include "msg/message.hpp"
#include "sim/ring.hpp"

namespace snapstab::sim {

// Observes a channel's empty ↔ non-empty transitions. Every content change
// flows through push/pop/drop_head/clear, so a listener sees an exact image
// of channel occupancy — the basis of the simulator's incremental
// enabled-step index.
class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  // `tag` identifies the channel (Network binds the channel's EdgeId).
  virtual void channel_transition(int tag, bool nonempty) = 0;
};

class Channel {
 public:
  static constexpr std::size_t kUnbounded = 0;

  explicit Channel(std::size_t capacity = 1)
      : capacity_(capacity),
        ring_(capacity == kUnbounded ? MessageRing::kInlineSlots : capacity) {}

  Channel(Channel&&) noexcept = default;
  Channel& operator=(Channel&&) noexcept = default;

  // Registers the (single) transition observer; pass nullptr to detach.
  void bind_listener(ChannelListener* listener, int tag) noexcept {
    listener_ = listener;
    tag_ = tag;
  }

  bool unbounded() const noexcept { return capacity_ == kUnbounded; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return ring_.empty(); }

  // Appends `m`; returns false (and leaves the channel unchanged) when the
  // channel is full — the paper's send-into-full-channel loss rule.
  bool push(const Message& m) {
    if (!unbounded() && ring_.size() >= capacity_) {
      ++stats_.lost_on_full;
      return false;
    }
    ring_.push_back(m);
    ++stats_.pushed;
    if (ring_.size() == 1 && listener_ != nullptr)
      listener_->channel_transition(tag_, true);
    return true;
  }

  // Removes and returns the head message by value (a flat copy — no
  // std::optional wrapper, no extra move). Requires !empty(); callers on
  // speculative paths test empty() first. Counts as a delivery.
  Message pop() {
    const Message m = ring_.pop_front();
    ++stats_.popped;
    if (ring_.empty() && listener_ != nullptr)
      listener_->channel_transition(tag_, false);
    return m;
  }

  // Removes and discards the head message: an adversarial drop, accounted
  // separately from deliveries. A drop aimed at an empty channel is a no-op
  // that counts nothing (returns false) — adversaries race deliveries, and
  // a miss must not corrupt the conservation invariant (see Stats).
  bool drop_head() {
    if (ring_.empty()) return false;
    (void)ring_.pop_front();
    ++stats_.dropped;
    if (ring_.empty() && listener_ != nullptr)
      listener_->channel_transition(tag_, false);
    return true;
  }

  const Message& peek() const { return ring_.front(); }  // requires !empty()

  // Direct read access for checkers (e.g., Property 1 scans the remaining
  // content of the initiator's incident channels): indexable, iterable
  // in FIFO order.
  class ContentsView {
   public:
    explicit ContentsView(const MessageRing& ring) noexcept : ring_(&ring) {}

    std::size_t size() const noexcept { return ring_->size(); }
    bool empty() const noexcept { return ring_->empty(); }
    const Message& operator[](std::size_t i) const noexcept {
      return (*ring_)[i];
    }

    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Message;
      using difference_type = std::ptrdiff_t;
      using pointer = const Message*;
      using reference = const Message&;

      iterator(const MessageRing* ring, std::size_t i) noexcept
          : ring_(ring), i_(i) {}
      const Message& operator*() const noexcept { return (*ring_)[i_]; }
      const Message* operator->() const noexcept { return &(*ring_)[i_]; }
      iterator& operator++() noexcept {
        ++i_;
        return *this;
      }
      bool operator==(const iterator&) const noexcept = default;

     private:
      const MessageRing* ring_;
      std::size_t i_;
    };

    iterator begin() const noexcept { return {ring_, 0}; }
    iterator end() const noexcept { return {ring_, ring_->size()}; }

   private:
    const MessageRing* ring_;
  };

  ContentsView contents() const noexcept { return ContentsView(ring_); }

  void clear() {
    const bool was_nonempty = !ring_.empty();
    stats_.cleared += ring_.size();
    ring_.clear();
    if (was_nonempty && listener_ != nullptr)
      listener_->channel_transition(tag_, false);
  }

  struct Stats {
    std::uint64_t pushed = 0;        // messages accepted into the channel
    std::uint64_t lost_on_full = 0;  // sends refused because the channel was full
    std::uint64_t popped = 0;        // messages removed for actual delivery
    std::uint64_t dropped = 0;       // messages removed by the loss adversary
    std::uint64_t cleared = 0;       // messages wiped by clear() (fault bursts)

    // Every accepted message leaves exactly one way.
    std::uint64_t removed() const noexcept {
      return popped + dropped + cleared;
    }
  };
  const Stats& stats() const noexcept { return stats_; }

  // Conservation: accepted = delivered + adversary-dropped + fault-cleared
  // + still in flight, at every instant. The tests assert this per channel
  // and aggregated across a whole network.
  bool stats_consistent() const noexcept {
    return stats_.pushed == stats_.removed() + ring_.size();
  }

 private:
  std::size_t capacity_;
  MessageRing ring_;
  Stats stats_;
  ChannelListener* listener_ = nullptr;
  int tag_ = -1;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_CHANNEL_HPP
