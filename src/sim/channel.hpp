// channel.hpp — a FIFO, lossy, capacity-limited communication channel.
//
// Model (paper, Section 2 and Section 4):
//  - channels are FIFO;
//  - messages may be lost, but if infinitely many messages are sent,
//    infinitely many are received (fair loss; realized by the scheduler);
//  - in the bounded-capacity setting, *a message sent into a full channel is
//    lost* (the channel content is unchanged).
//
// Capacity 0 encodes the unbounded channels of Section 3 (the impossibility
// construction requires stuffing arbitrarily long message sequences).
#ifndef SNAPSTAB_SIM_CHANNEL_HPP
#define SNAPSTAB_SIM_CHANNEL_HPP

#include <cstdint>
#include <deque>
#include <optional>

#include "msg/message.hpp"

namespace snapstab::sim {

// Observes a channel's empty ↔ non-empty transitions. Every content change
// flows through push/pop/clear, so a listener sees an exact image of channel
// occupancy — the basis of the simulator's incremental enabled-step index.
class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  // `tag` identifies the channel (Network binds the channel's EdgeId).
  virtual void channel_transition(int tag, bool nonempty) = 0;
};

class Channel {
 public:
  static constexpr std::size_t kUnbounded = 0;

  explicit Channel(std::size_t capacity = 1) : capacity_(capacity) {}

  // Registers the (single) transition observer; pass nullptr to detach.
  void bind_listener(ChannelListener* listener, int tag) noexcept {
    listener_ = listener;
    tag_ = tag;
  }

  bool unbounded() const noexcept { return capacity_ == kUnbounded; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return queue_.size(); }
  bool empty() const noexcept { return queue_.empty(); }

  // Appends `m`; returns false (and leaves the channel unchanged) when the
  // channel is full — the paper's send-into-full-channel loss rule.
  bool push(const Message& m);

  // Removes and returns the head message; nullopt when empty.
  std::optional<Message> pop();

  const Message& peek() const;  // requires !empty()

  // Direct read access for checkers (e.g., Property 1 scans the remaining
  // content of the initiator's incident channels).
  const std::deque<Message>& contents() const noexcept { return queue_; }

  void clear() {
    const bool was_nonempty = !queue_.empty();
    queue_.clear();
    if (was_nonempty && listener_ != nullptr)
      listener_->channel_transition(tag_, false);
  }

  struct Stats {
    std::uint64_t pushed = 0;        // messages accepted into the channel
    std::uint64_t lost_on_full = 0;  // sends refused because the channel was full
    std::uint64_t popped = 0;        // messages removed (delivered or lost)
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  std::size_t capacity_;
  std::deque<Message> queue_;
  Stats stats_;
  ChannelListener* listener_ = nullptr;
  int tag_ = -1;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_CHANNEL_HPP
