#include "sim/fuzz.hpp"

namespace snapstab::sim {

void fuzz(Simulator& sim, Rng& rng, const FuzzOptions& options) {
  const int n = sim.process_count();

  if (options.processes)
    for (ProcessId p = 0; p < n; ++p) sim.process(p).randomize(rng);

  if (!options.channels) return;
  Network& net = sim.network();
  for (ProcessId src = 0; src < n; ++src) {
    for (ProcessId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      Channel& ch = net.channel(src, dst);
      ch.clear();
      if (!rng.chance(options.channel_fill)) continue;
      const std::size_t count =
          ch.unbounded()
              ? 1 + rng.below(static_cast<std::uint64_t>(
                        std::max(1, options.unbounded_messages)))
              : 1 + rng.below(ch.capacity());
      for (std::size_t i = 0; i < count; ++i)
        ch.push(Message::random(rng, options.flag_limit, options.wild_flags));
    }
  }
}

}  // namespace snapstab::sim
