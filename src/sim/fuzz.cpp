#include "sim/fuzz.hpp"

namespace snapstab::sim {

void fuzz(Simulator& sim, Rng& rng, const FuzzOptions& options) {
  // Fuzzed text payloads intern into the simulator's pool, not whatever
  // pool the calling thread happens to have current.
  ScopedStringPool pool_scope(sim.string_pool());
  const int n = sim.process_count();

  if (options.processes)
    for (ProcessId p = 0; p < n; ++p) sim.process(p).randomize(rng);

  if (!options.channels) return;
  // Canonical edge order is ascending (src, dst) — the same enumeration
  // order as the historic dense scan, so fuzzed configurations of complete
  // topologies are unchanged for a given RNG state.
  Network& net = sim.network();
  for (EdgeId e = 0; e < net.edge_count(); ++e) {
    Channel& ch = net.edge_channel(e);
    ch.clear();
    if (!rng.chance(options.channel_fill)) continue;
    const std::size_t count =
        ch.unbounded()
            ? 1 + rng.below(static_cast<std::uint64_t>(
                      std::max(1, options.unbounded_messages)))
            : 1 + rng.below(ch.capacity());
    for (std::size_t i = 0; i < count; ++i)
      ch.push(options.forward_header_n > 0
                  ? Message::random_forward(rng, options.flag_limit,
                                            options.forward_header_n,
                                            options.wild_flags)
                  : Message::random(rng, options.flag_limit,
                                    options.wild_flags));
  }
}

}  // namespace snapstab::sim
