// fuzz.hpp — arbitrary initial configurations.
//
// The paper considers transition systems whose set of initial configurations
// is the *whole* configuration space (I = C): any assignment of the process
// variables over their domains and any channel content. fuzz() realizes
// that: it redraws every process variable via Process::randomize and
// pre-loads channels with arbitrary well-formed messages (up to capacity
// for bounded channels). Snap-stabilization claims are then checked
// against executions started from these configurations.
#ifndef SNAPSTAB_SIM_FUZZ_HPP
#define SNAPSTAB_SIM_FUZZ_HPP

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace snapstab::sim {

struct FuzzOptions {
  bool processes = true;   // randomize process states
  bool channels = true;    // pre-load channel contents
  double channel_fill = 0.75;  // probability a channel receives any content
  // For unbounded channels, how many messages to stuff (bounded channels are
  // filled up to their capacity).
  int unbounded_messages = 4;
  // Upper bound for fuzzed flag fields; pass the protocol's flag bound
  // (2c + 2 for protocol PIF over capacity-c channels).
  std::int32_t flag_limit = 4;
  // Draw flags over the whole int32 range instead (defensive-coding tests).
  bool wild_flags = false;
  // When > 0, channel stuffing also draws forwarding-service kinds
  // (FwdData / FwdEcho) with packed headers over this many processes —
  // corrupted initial buffers for the forwarding layer. 0 keeps the
  // historic draw stream, which the golden fuzz traces pin.
  int forward_header_n = 0;
};

// Applies an arbitrary initial configuration in place.
void fuzz(Simulator& sim, Rng& rng, const FuzzOptions& options = {});

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_FUZZ_HPP
