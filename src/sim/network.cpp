#include "sim/network.hpp"

namespace snapstab::sim {

Network::Network(int process_count, std::size_t capacity)
    : n_(process_count), capacity_(capacity) {
  SNAPSTAB_CHECK_MSG(n_ >= 2, "a network needs at least two processes");
  channels_.reserve(static_cast<std::size_t>(n_) * n_);
  for (int i = 0; i < n_ * n_; ++i) channels_.emplace_back(capacity_);
}

std::size_t Network::slot(ProcessId src, ProcessId dst) const {
  SNAPSTAB_CHECK(src >= 0 && src < n_);
  SNAPSTAB_CHECK(dst >= 0 && dst < n_);
  SNAPSTAB_CHECK_MSG(src != dst, "no self channels in the model");
  return static_cast<std::size_t>(src) * n_ + dst;
}

Channel& Network::channel(ProcessId src, ProcessId dst) {
  return channels_[slot(src, dst)];
}

const Channel& Network::channel(ProcessId src, ProcessId dst) const {
  return channels_[slot(src, dst)];
}

ProcessId Network::peer_of(ProcessId p, int local_index) const {
  SNAPSTAB_CHECK(local_index >= 0 && local_index < degree());
  return (p + 1 + local_index) % n_;
}

int Network::index_of(ProcessId p, ProcessId peer) const {
  SNAPSTAB_CHECK(peer != p);
  return (peer - p - 1 + n_) % n_;
}

std::vector<std::pair<ProcessId, ProcessId>> Network::nonempty_channels()
    const {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  for (int src = 0; src < n_; ++src)
    for (int dst = 0; dst < n_; ++dst)
      if (src != dst && !channel(src, dst).empty()) out.emplace_back(src, dst);
  return out;
}

std::size_t Network::total_messages_in_flight() const {
  std::size_t total = 0;
  for (int src = 0; src < n_; ++src)
    for (int dst = 0; dst < n_; ++dst)
      if (src != dst) total += channel(src, dst).size();
  return total;
}

}  // namespace snapstab::sim
