#include "sim/network.hpp"

namespace snapstab::sim {

Network::Network(Topology topology, std::size_t capacity)
    : topology_(std::move(topology)), capacity_(capacity) {
  SNAPSTAB_CHECK_MSG(topology_.connected(),
                     "the model requires a connected network");
  const int edges = topology_.edge_count();
  channels_.reserve(static_cast<std::size_t>(edges));
  for (int e = 0; e < edges; ++e) channels_.emplace_back(capacity_);
  for (int e = 0; e < edges; ++e)
    channels_[static_cast<std::size_t>(e)].bind_listener(this, e);
  nonempty_.assign(static_cast<std::size_t>(edges), 0);
}

Network::Network(int process_count, std::size_t capacity)
    : Network(Topology::complete(process_count), capacity) {}

Channel& Network::channel(ProcessId src, ProcessId dst) {
  return channels_[static_cast<std::size_t>(topology_.edge_between(src, dst))];
}

const Channel& Network::channel(ProcessId src, ProcessId dst) const {
  return channels_[static_cast<std::size_t>(topology_.edge_between(src, dst))];
}

void Network::channel_transition(int tag, bool nonempty) {
  nonempty_[static_cast<std::size_t>(tag)] = nonempty ? 1 : 0;
  nonempty_count_ += nonempty ? 1 : -1;
  if (listener_ != nullptr) listener_->edge_occupancy_changed(tag, nonempty);
}

std::vector<std::pair<ProcessId, ProcessId>> Network::nonempty_channels()
    const {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  out.reserve(static_cast<std::size_t>(nonempty_count_));
  for (EdgeId e = 0; e < edge_count(); ++e)
    if (nonempty_[static_cast<std::size_t>(e)] != 0)
      out.emplace_back(topology_.edge_src(e), topology_.edge_dst(e));
  return out;
}

std::size_t Network::total_messages_in_flight() const {
  std::size_t total = 0;
  for (const Channel& ch : channels_) total += ch.size();
  return total;
}

Channel::Stats Network::aggregate_channel_stats() const {
  Channel::Stats total;
  for (const Channel& ch : channels_) {
    const Channel::Stats& s = ch.stats();
    total.pushed += s.pushed;
    total.lost_on_full += s.lost_on_full;
    total.popped += s.popped;
    total.dropped += s.dropped;
    total.cleared += s.cleared;
  }
  return total;
}

}  // namespace snapstab::sim
