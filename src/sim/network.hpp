// network.hpp — the channels of a topology.
//
// A Network owns one FIFO Channel per directed edge of its Topology, stored
// densely in the topology's canonical edge order. The local-index ↔ peer
// mapping is delegated to the Topology ("local numbers carry no global
// meaning"); the historic constructor builds the paper's fully-connected
// topology with the seed's rotation numbering
//     peer_of(p, k)  = (p + 1 + k) mod n
//     index_of(p, r) = (r - p - 1 + n) mod n
// so complete-topology executions are unchanged.
//
// The Network also maintains an exact set of non-empty edges, fed by the
// channels' transition hooks, and republishes transitions to an optional
// NetworkListener — the Simulator subscribes to keep its enabled-step index
// incremental instead of rescanning all channels per step.
#ifndef SNAPSTAB_SIM_NETWORK_HPP
#define SNAPSTAB_SIM_NETWORK_HPP

#include <vector>

#include "common/check.hpp"
#include "sim/channel.hpp"
#include "sim/observation.hpp"
#include "sim/topology.hpp"

namespace snapstab::sim {

// Observes edge occupancy changes (exact, per directed edge).
class NetworkListener {
 public:
  virtual ~NetworkListener() = default;
  virtual void edge_occupancy_changed(EdgeId e, bool nonempty) = 0;
};

class Network final : private ChannelListener {
 public:
  // `capacity` applies to every channel; Channel::kUnbounded (0) gives the
  // unbounded channels of the impossibility section.
  Network(Topology topology, std::size_t capacity);
  // The paper's fully-connected network (historic constructor).
  Network(int process_count, std::size_t capacity);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const noexcept { return topology_; }
  int process_count() const noexcept { return topology_.process_count(); }
  int edge_count() const noexcept { return topology_.edge_count(); }
  int degree(ProcessId p) const { return topology_.degree(p); }
  std::size_t capacity() const noexcept { return capacity_; }

  Channel& channel(ProcessId src, ProcessId dst);
  const Channel& channel(ProcessId src, ProcessId dst) const;
  // Edge-indexed channel access is on the per-step hot path — inline.
  Channel& edge_channel(EdgeId e) {
    SNAPSTAB_CHECK(e >= 0 && e < edge_count());
    return channels_[static_cast<std::size_t>(e)];
  }
  const Channel& edge_channel(EdgeId e) const {
    SNAPSTAB_CHECK(e >= 0 && e < edge_count());
    return channels_[static_cast<std::size_t>(e)];
  }

  // Local-index ↔ global-id mapping (delegated to the topology).
  ProcessId peer_of(ProcessId p, int local_index) const {
    return topology_.peer_of(p, local_index);
  }
  int index_of(ProcessId p, ProcessId peer) const {
    return topology_.index_of(p, peer);
  }

  // Exact occupancy, maintained through the channel transition hooks.
  bool edge_nonempty(EdgeId e) const {
    SNAPSTAB_CHECK(e >= 0 && e < edge_count());
    return nonempty_[static_cast<std::size_t>(e)] != 0;
  }
  int nonempty_edge_count() const noexcept { return nonempty_count_; }

  // All (src, dst) pairs with a non-empty channel, in ascending (src, dst)
  // order (the deterministic order the scanning schedulers relied on).
  std::vector<std::pair<ProcessId, ProcessId>> nonempty_channels() const;

  std::size_t total_messages_in_flight() const;

  // Sum of every channel's Stats — push/pop/loss accounting for the whole
  // network. `popped` counts actual deliveries only; adversarial drops are
  // in `dropped` (exact loss accounting, see exp_pif_loss).
  Channel::Stats aggregate_channel_stats() const;

  // At most one listener; the Simulator installs itself.
  void set_listener(NetworkListener* listener) noexcept {
    listener_ = listener;
  }

 private:
  void channel_transition(int tag, bool nonempty) override;

  Topology topology_;
  std::size_t capacity_;
  std::vector<Channel> channels_;  // one per directed edge, canonical order
  std::vector<char> nonempty_;
  int nonempty_count_ = 0;
  NetworkListener* listener_ = nullptr;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_NETWORK_HPP
