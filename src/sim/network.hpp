// network.hpp — the fully-connected topology of the paper.
//
// Any two distinct processes are joined by a bidirectional link, i.e., two
// FIFO channels in opposite directions. Each process numbers its incident
// channels locally; the paper numbers them 1..n-1, this implementation uses
// 0-based local indices 0..n-2 (paper channel q corresponds to index q-1).
// The mapping is the rotation
//     peer_of(p, k)  = (p + 1 + k) mod n
//     index_of(p, r) = (r - p - 1 + n) mod n
// which gives every process a distinct local numbering, exactly as in the
// paper's model (local numbers carry no global meaning).
#ifndef SNAPSTAB_SIM_NETWORK_HPP
#define SNAPSTAB_SIM_NETWORK_HPP

#include <vector>

#include "common/check.hpp"
#include "sim/channel.hpp"
#include "sim/observation.hpp"

namespace snapstab::sim {

class Network {
 public:
  // `capacity` applies to every channel; Channel::kUnbounded (0) gives the
  // unbounded channels of the impossibility section.
  Network(int process_count, std::size_t capacity);

  int process_count() const noexcept { return n_; }
  int degree() const noexcept { return n_ - 1; }
  std::size_t capacity() const noexcept { return capacity_; }

  Channel& channel(ProcessId src, ProcessId dst);
  const Channel& channel(ProcessId src, ProcessId dst) const;

  // Local-index <-> global-id mapping (see file comment).
  ProcessId peer_of(ProcessId p, int local_index) const;
  int index_of(ProcessId p, ProcessId peer) const;

  // All (src, dst) pairs with a non-empty channel, in deterministic order.
  std::vector<std::pair<ProcessId, ProcessId>> nonempty_channels() const;

  std::size_t total_messages_in_flight() const;

 private:
  std::size_t slot(ProcessId src, ProcessId dst) const;

  int n_;
  std::size_t capacity_;
  std::vector<Channel> channels_;  // n*n slots, diagonal unused
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_NETWORK_HPP
