#include "sim/observation.hpp"

#include <cstdio>

namespace snapstab::sim {

const char* layer_name(Layer l) noexcept {
  switch (l) {
    case Layer::Pif: return "PIF";
    case Layer::Idl: return "IDL";
    case Layer::Me: return "ME";
    case Layer::Baseline: return "BASE";
    case Layer::Service: return "SRV";
  }
  return "?";
}

const char* obs_kind_name(ObsKind k) noexcept {
  switch (k) {
    case ObsKind::RequestWait: return "request";
    case ObsKind::Start: return "start";
    case ObsKind::Decide: return "decide";
    case ObsKind::RecvBrd: return "recv-brd";
    case ObsKind::RecvFck: return "recv-fck";
    case ObsKind::CsEnter: return "cs-enter";
    case ObsKind::CsExit: return "cs-exit";
    case ObsKind::FwdSubmit: return "fwd-submit";
    case ObsKind::FwdDeliver: return "fwd-deliver";
  }
  return "?";
}

std::string Observation::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf, "[%8llu] p%d %s/%s peer=%d value=%s",
                static_cast<unsigned long long>(step), process,
                layer_name(layer), obs_kind_name(kind), peer,
                value.to_string().c_str());
  return buf;
}

}  // namespace snapstab::sim
