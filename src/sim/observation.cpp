#include "sim/observation.hpp"

#include <cstdio>

namespace snapstab::sim {

std::string Observation::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf, "[%8llu] p%d %s/%s peer=%d value=%s",
                static_cast<unsigned long long>(step), process,
                layer_name(layer), obs_kind_name(kind), peer,
                value.to_string().c_str());
  return buf;
}

}  // namespace snapstab::sim
