// observation.hpp — the observable event stream of an execution.
//
// The paper specifies protocols over *executions* (sequences of
// configurations) via Start / Correctness / Termination / Decision
// properties. The simulator therefore exposes an append-only stream of
// protocol-level events (requests, starts, receive-brd / receive-fck,
// decisions, critical-section entry/exit); the specification checkers in
// core/specs.hpp validate the properties of Specifications 1-3 against this
// stream.
#ifndef SNAPSTAB_SIM_OBSERVATION_HPP
#define SNAPSTAB_SIM_OBSERVATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msg/value.hpp"

namespace snapstab::sim {

using ProcessId = int;

// Which protocol layer emitted the event (one process runs a stack of
// protocols: ME on top of IDL on top of PIF, as in the paper). Baseline is
// used by the negative-result protocols, Service by the PIF-based services
// (reset, termination detection).
enum class Layer : std::uint8_t { Pif, Idl, Me, Baseline, Service };

enum class ObsKind : std::uint8_t {
  RequestWait,  // the application externally set Request := Wait
  Start,        // starting action executed (Request: Wait -> In)
  Decide,       // decision / termination (Request: In -> Done)
  RecvBrd,      // "receive-brd<B> from q" event
  RecvFck,      // "receive-fck<F> from q" event
  CsEnter,      // process entered the critical section (ME)
  CsExit,       // process left the critical section (ME)
  FwdSubmit,    // forwarding service accepted a payload (peer = destination)
  FwdDeliver,   // forwarding service delivered a payload (peer = origin)
  Fault,        // a fault window opened on this process/edge (fault engine)
};

inline constexpr int kLayerCount = 5;
inline constexpr int kObsKindCount = 10;

// Exhaustive-switch constexpr name helpers: -Wswitch flags a missing
// enumerator, the static_asserts force the counts to track the enums — a
// new layer or event kind can't silently print "?".
constexpr const char* layer_name(Layer l) noexcept {
  static_assert(kLayerCount == static_cast<int>(Layer::Service) + 1,
                "new Layer: update kLayerCount and every switch");
  switch (l) {
    case Layer::Pif: return "PIF";
    case Layer::Idl: return "IDL";
    case Layer::Me: return "ME";
    case Layer::Baseline: return "BASE";
    case Layer::Service: return "SRV";
  }
  return "?";
}

constexpr const char* obs_kind_name(ObsKind k) noexcept {
  static_assert(kObsKindCount == static_cast<int>(ObsKind::Fault) + 1,
                "new ObsKind: update kObsKindCount and every switch");
  switch (k) {
    case ObsKind::RequestWait: return "request";
    case ObsKind::Start: return "start";
    case ObsKind::Decide: return "decide";
    case ObsKind::RecvBrd: return "recv-brd";
    case ObsKind::RecvFck: return "recv-fck";
    case ObsKind::CsEnter: return "cs-enter";
    case ObsKind::CsExit: return "cs-exit";
    case ObsKind::FwdSubmit: return "fwd-submit";
    case ObsKind::FwdDeliver: return "fwd-deliver";
    case ObsKind::Fault: return "fault";
  }
  return "?";
}

struct Observation {
  std::uint64_t step = 0;  // simulator step at which the event occurred
  ProcessId process = -1;  // global id of the emitting process
  Layer layer = Layer::Pif;
  ObsKind kind = ObsKind::Start;
  // Local channel index involved, or -1 — except for the forwarding
  // events, whose endpoints are global by nature: FwdSubmit carries the
  // destination's process id, FwdDeliver the origin's.
  int peer = -1;
  Value value;         // payload involved (broadcast / feedback message)

  std::string to_string() const;
};

class ObservationLog {
 public:
  void emit(Observation obs) { events_.push_back(std::move(obs)); }
  const std::vector<Observation>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<Observation> events_;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_OBSERVATION_HPP
