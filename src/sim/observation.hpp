// observation.hpp — the observable event stream of an execution.
//
// The paper specifies protocols over *executions* (sequences of
// configurations) via Start / Correctness / Termination / Decision
// properties. The simulator therefore exposes an append-only stream of
// protocol-level events (requests, starts, receive-brd / receive-fck,
// decisions, critical-section entry/exit); the specification checkers in
// core/specs.hpp validate the properties of Specifications 1-3 against this
// stream.
#ifndef SNAPSTAB_SIM_OBSERVATION_HPP
#define SNAPSTAB_SIM_OBSERVATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msg/value.hpp"

namespace snapstab::sim {

using ProcessId = int;

// Which protocol layer emitted the event (one process runs a stack of
// protocols: ME on top of IDL on top of PIF, as in the paper). Baseline is
// used by the negative-result protocols, Service by the PIF-based services
// (reset, termination detection).
enum class Layer : std::uint8_t { Pif, Idl, Me, Baseline, Service };

enum class ObsKind : std::uint8_t {
  RequestWait,  // the application externally set Request := Wait
  Start,        // starting action executed (Request: Wait -> In)
  Decide,       // decision / termination (Request: In -> Done)
  RecvBrd,      // "receive-brd<B> from q" event
  RecvFck,      // "receive-fck<F> from q" event
  CsEnter,      // process entered the critical section (ME)
  CsExit,       // process left the critical section (ME)
  FwdSubmit,    // forwarding service accepted a payload (peer = destination)
  FwdDeliver,   // forwarding service delivered a payload (peer = origin)
};

const char* layer_name(Layer l) noexcept;
const char* obs_kind_name(ObsKind k) noexcept;

struct Observation {
  std::uint64_t step = 0;  // simulator step at which the event occurred
  ProcessId process = -1;  // global id of the emitting process
  Layer layer = Layer::Pif;
  ObsKind kind = ObsKind::Start;
  // Local channel index involved, or -1 — except for the forwarding
  // events, whose endpoints are global by nature: FwdSubmit carries the
  // destination's process id, FwdDeliver the origin's.
  int peer = -1;
  Value value;         // payload involved (broadcast / feedback message)

  std::string to_string() const;
};

class ObservationLog {
 public:
  void emit(Observation obs) { events_.push_back(std::move(obs)); }
  const std::vector<Observation>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<Observation> events_;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_OBSERVATION_HPP
