// process.hpp — the process abstraction of the paper's model.
//
// A process is a sequential deterministic machine executing guarded actions
// atomically. The simulator activates a process in exactly two ways:
//
//   on_tick(ctx)        — execute every enabled *spontaneous* action (those
//                         whose guard reads only local variables) once, in
//                         the order of their appearance in the protocol text
//                         (the paper's rule for simultaneously enabled
//                         actions);
//   on_message(ctx, ch, m) — execute the receive action for the message at
//                         the head of local channel `ch`, atomically,
//                         including any events it generates.
//
// Context is the capability set an action may use during its atomic step:
// sending messages, emitting observations and (for randomized baselines)
// drawing random bits. Everything else — including the decision of *when* a
// process is activated — belongs to the scheduler.
//
// Context is a concrete final class with a tagged backend: bound to a
// Simulator it calls straight into the engine (every method inlines — the
// simulator's step loop pays no virtual dispatch for the millions of
// send/observe/rng calls of a bulk run); bound to a ContextBackend it
// forwards through one virtual hop (the thread runtime, external hosts).
// The sim-path method bodies live at the bottom of sim/simulator.hpp —
// translation units that *call* Context methods must include it.
#ifndef SNAPSTAB_SIM_PROCESS_HPP
#define SNAPSTAB_SIM_PROCESS_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "msg/message.hpp"
#include "sim/observation.hpp"

namespace snapstab::sim {

class Simulator;

// Host interface for contexts not bound to a Simulator. Implemented by the
// thread runtime's per-node context and by any external execution harness;
// the semantics of each method are those documented on Context below.
class ContextBackend {
 public:
  virtual ~ContextBackend() = default;
  virtual int degree() const = 0;
  virtual bool send(int channel_index, const Message& m) = 0;
  virtual void observe(Layer layer, ObsKind kind, int peer,
                       const Value& value) = 0;
  virtual Rng& rng() = 0;
  virtual std::uint64_t now() const = 0;
};

class Context final {
 public:
  // Sim backend: bound to (simulator, acting process) for one atomic step.
  Context(Simulator& sim, ProcessId self) noexcept
      : sim_(&sim), self_(self) {}
  // Generic backend (thread runtime, external hosts).
  explicit Context(ContextBackend& backend) noexcept : backend_(&backend) {}

  // Number of incident channels (n - 1 in the fully-connected topology).
  int degree() const;

  // Send `m` over local channel `channel_index` (0-based). If the channel is
  // full the message is lost, per the bounded-capacity model. Returns
  // whether the channel accepted the message — the paper's protocols are
  // fire-and-forget and ignore it; application layers (e.g. the diffusing
  // computations observed by the termination detector) may use it as
  // backpressure. An accepted message can still be lost by the adversary.
  bool send(int channel_index, const Message& m);

  // Emit a protocol-level event; `peer` is a local channel index or -1
  // (the forwarding-service events use it for a global process id — see
  // sim/observation.hpp).
  void observe(Layer layer, ObsKind kind, int peer, const Value& value);

  // Random bits for randomized protocols (seeded per process).
  Rng& rng();

  // Current global step number (never used by the protocols themselves —
  // only by observers; protocol determinism is required for replay).
  std::uint64_t now() const;

 private:
  Simulator* sim_ = nullptr;
  ProcessId self_ = -1;
  ContextBackend* backend_ = nullptr;
};

class Process {
 public:
  virtual ~Process() = default;

  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  virtual void on_tick(Context& ctx) = 0;
  virtual void on_message(Context& ctx, int channel_index,
                          const Message& m) = 0;

  // True when at least one spontaneous action is enabled; lets schedulers
  // skip no-op activations and detect quiescence.
  virtual bool tick_enabled() const = 0;

  // True while the process is busy in its critical section: the scheduler
  // will not deliver messages to it (a process executes at most one atomic
  // action at a time; a long CS models a slow process between receipts).
  virtual bool busy() const { return false; }

  // Fuzz hook: redraw every protocol variable uniformly over its declared
  // domain — the paper's arbitrary initial configuration.
  virtual void randomize(Rng& rng) = 0;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_PROCESS_HPP
