// ring.hpp — a power-of-two ring buffer of Messages.
//
// The storage behind Channel. Message is trivially copyable, so the ring
// moves flat 48-byte slots — no node allocation per push (std::deque), no
// per-element destructor work. Two regimes share one class:
//
//   - bounded channels (capacity known at Channel construction) size the
//     ring once to the next power of two and never reallocate;
//   - the unbounded channels of the Section-3 impossibility construction
//     double the ring when full (amortized O(1), elements re-linearized on
//     growth).
//
// Rings up to kInlineSlots live inline in the owning Channel (no heap at
// all for the ubiquitous capacity-1/2 channels); larger rings use one flat
// heap block.
#ifndef SNAPSTAB_SIM_RING_HPP
#define SNAPSTAB_SIM_RING_HPP

#include <bit>
#include <cstddef>
#include <memory>

#include "common/check.hpp"
#include "msg/message.hpp"

namespace snapstab::sim {

class MessageRing {
 public:
  static constexpr std::size_t kInlineSlots = 4;

  MessageRing() = default;
  explicit MessageRing(std::size_t min_slots) { reserve_slots(min_slots); }

  // Moving transfers the heap block (if any) and copies the inline slots;
  // the moved-from ring is left empty.
  MessageRing(MessageRing&& other) noexcept { steal(other); }
  MessageRing& operator=(MessageRing&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }
  MessageRing(const MessageRing&) = delete;
  MessageRing& operator=(const MessageRing&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t slots() const noexcept { return cap_; }
  bool full() const noexcept { return size_ == cap_; }

  // Grows the ring to at least `min_slots` slots (next power of two).
  void reserve_slots(std::size_t min_slots) {
    if (min_slots > cap_) grow_to(std::bit_ceil(min_slots));
  }

  // Appends; the caller enforces any capacity policy (a bounded Channel
  // refuses before calling, an unbounded one lets the ring double).
  void push_back(const Message& m) {
    if (size_ == cap_) grow_to(cap_ * 2);
    data()[(head_ + size_) & (cap_ - 1)] = m;
    ++size_;
  }

  // Removes and returns the head by value. Requires !empty().
  Message pop_front() noexcept {
    SNAPSTAB_CHECK(size_ > 0);
    const Message m = data()[head_];
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return m;
  }

  const Message& front() const noexcept {
    SNAPSTAB_CHECK(size_ > 0);
    return data()[head_];
  }

  // Logical indexing: operator[](0) is the head, operator[](size()-1) the
  // most recently pushed message.
  const Message& operator[](std::size_t i) const noexcept {
    SNAPSTAB_CHECK(i < size_);
    return data()[(head_ + i) & (cap_ - 1)];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  Message* data() noexcept { return heap_ ? heap_.get() : inline_; }
  const Message* data() const noexcept {
    return heap_ ? heap_.get() : inline_;
  }

  void grow_to(std::size_t new_cap) {
    new_cap = std::bit_ceil(new_cap < kInlineSlots ? kInlineSlots : new_cap);
    if (new_cap <= cap_) return;
    auto fresh = std::make_unique<Message[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i)
      fresh[i] = data()[(head_ + i) & (cap_ - 1)];
    heap_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  void steal(MessageRing& other) noexcept {
    heap_ = std::move(other.heap_);
    if (!heap_)
      for (std::size_t i = 0; i < kInlineSlots; ++i)
        inline_[i] = other.inline_[i];
    cap_ = other.cap_;
    head_ = other.head_;
    size_ = other.size_;
    other.heap_.reset();
    other.cap_ = kInlineSlots;
    other.head_ = 0;
    other.size_ = 0;
  }

  Message inline_[kInlineSlots];
  std::unique_ptr<Message[]> heap_;
  std::size_t cap_ = kInlineSlots;  // always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_RING_HPP
