#include "sim/scheduler.hpp"

#include "sim/simulator.hpp"

namespace snapstab::sim {

int& LossStreaks::streak(Simulator& sim, int edge) {
  // Streaks are keyed by EdgeId, which only means something within one
  // simulator's topology. When the scheduler is pointed at a different
  // simulator (detected by instance id — addresses can be reused), start
  // the loss adversary fresh rather than letting another world's streaks
  // cap or extend losses on unrelated channels.
  if (sim.instance_id() != last_sim_id_) {
    last_sim_id_ = sim.instance_id();
    counts_.assign(static_cast<std::size_t>(sim.topology().edge_count()), 0);
  }
  return counts_[static_cast<std::size_t>(edge)];
}

RandomScheduler::RandomScheduler(std::uint64_t seed, LossOptions loss)
    : Scheduler(SchedulerKind::Random), rng_(seed), loss_(loss) {}

std::optional<Step> RandomScheduler::next(Simulator& sim) {
  Step step;
  if (!next_step(sim, step)) return std::nullopt;
  return step;
}

RoundRobinScheduler::RoundRobinScheduler(std::uint64_t seed, LossOptions loss)
    : Scheduler(SchedulerKind::RoundRobin), rng_(seed), loss_(loss) {}

void RoundRobinScheduler::refill(Simulator& sim) {
  // One synchronous round: every tick-enabled process activates in id order,
  // then every currently non-empty channel transmits once. Loss is sampled
  // when the round is formed, subject to the fair-loss cap.
  for (int k = 0; k < sim.tick_enabled_count(); ++k)
    pending_.push_back(Step::tick(sim.nth_tick_enabled(k)));
  for (int k = 0; k < sim.deliverable_count(); ++k) {
    const EdgeId e = sim.nth_deliverable(k);
    const ProcessId src = sim.topology().edge_src(e);
    const ProcessId dst = sim.topology().edge_dst(e);
    int& streak = streaks_.streak(sim, e);
    if (loss_.rate > 0.0 && streak < loss_.max_consecutive &&
        rng_.chance(loss_.rate)) {
      ++streak;
      pending_.push_back(Step::lose_on(e, src, dst));
    } else {
      streak = 0;
      pending_.push_back(Step::deliver_on(e, src, dst));
    }
  }
  if (!pending_.empty()) ++rounds_;
}

std::optional<Step> RoundRobinScheduler::next(Simulator& sim) {
  Step step;
  if (!next_step(sim, step)) return std::nullopt;
  return step;
}

std::optional<Step> ScriptedScheduler::next(Simulator& sim) {
  Step step;
  if (!next_step(sim, step)) return std::nullopt;
  return step;
}

}  // namespace snapstab::sim
