#include "sim/scheduler.hpp"

#include "sim/simulator.hpp"

namespace snapstab::sim {

namespace {

// Enabled Tick targets: processes with at least one enabled spontaneous
// action (busy processes still tick — their CS countdown advances).
std::vector<ProcessId> tickable(Simulator& sim) {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < sim.process_count(); ++p)
    if (sim.process(p).tick_enabled()) out.push_back(p);
  return out;
}

// Deliverable channels: non-empty, and the receiver is not busy in its CS.
std::vector<std::pair<ProcessId, ProcessId>> deliverable(Simulator& sim) {
  auto pairs = sim.network().nonempty_channels();
  std::erase_if(pairs, [&](const auto& pr) {
    return sim.process(pr.second).busy();
  });
  return pairs;
}

}  // namespace

RandomScheduler::RandomScheduler(std::uint64_t seed, LossOptions loss)
    : rng_(seed), loss_(loss) {}

std::optional<Step> RandomScheduler::next(Simulator& sim) {
  const auto ticks = tickable(sim);
  const auto chans = deliverable(sim);
  const std::size_t total = ticks.size() + chans.size();
  if (total == 0) return std::nullopt;

  const auto pick = rng_.below(total);
  if (pick < ticks.size()) return Step::tick(ticks[pick]);

  const auto [src, dst] = chans[pick - ticks.size()];
  int& streak = consecutive_losses_[{src, dst}];
  if (loss_.rate > 0.0 && streak < loss_.max_consecutive &&
      rng_.chance(loss_.rate)) {
    ++streak;
    return Step::lose(src, dst);
  }
  streak = 0;
  return Step::deliver(src, dst);
}

RoundRobinScheduler::RoundRobinScheduler(std::uint64_t seed, LossOptions loss)
    : rng_(seed), loss_(loss) {}

void RoundRobinScheduler::refill(Simulator& sim) {
  // One synchronous round: every tick-enabled process activates in id order,
  // then every currently non-empty channel transmits once. Loss is sampled
  // when the round is formed, subject to the fair-loss cap.
  for (const ProcessId p : tickable(sim)) pending_.push_back(Step::tick(p));
  for (const auto& [src, dst] : deliverable(sim)) {
    int& streak = consecutive_losses_[{src, dst}];
    if (loss_.rate > 0.0 && streak < loss_.max_consecutive &&
        rng_.chance(loss_.rate)) {
      ++streak;
      pending_.push_back(Step::lose(src, dst));
    } else {
      streak = 0;
      pending_.push_back(Step::deliver(src, dst));
    }
  }
  if (!pending_.empty()) ++rounds_;
}

std::optional<Step> RoundRobinScheduler::next(Simulator& sim) {
  while (true) {
    if (pending_.empty()) refill(sim);
    if (pending_.empty()) return std::nullopt;
    Step step = pending_.front();
    pending_.pop_front();
    // Steps scheduled at round formation may have become stale (channel
    // drained by the receiving action of an earlier delivery, process gone
    // busy). Skip stale steps rather than executing no-ops.
    switch (step.kind) {
      case StepKind::Tick:
        if (!sim.process(step.target).tick_enabled()) continue;
        return step;
      case StepKind::Deliver:
      case StepKind::Lose:
        if (sim.network().channel(step.src, step.target).empty()) continue;
        if (step.kind == StepKind::Deliver && sim.process(step.target).busy())
          continue;
        return step;
    }
  }
}

std::optional<Step> ScriptedScheduler::next(Simulator&) {
  if (pos_ >= script_.size()) return std::nullopt;
  return script_[pos_++];
}

}  // namespace snapstab::sim
