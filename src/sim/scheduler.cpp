#include "sim/scheduler.hpp"

#include "sim/simulator.hpp"

namespace snapstab::sim {

int& LossStreaks::streak(Simulator& sim, int edge) {
  // Streaks are keyed by EdgeId, which only means something within one
  // simulator's topology. When the scheduler is pointed at a different
  // simulator (detected by instance id — addresses can be reused), start
  // the loss adversary fresh rather than letting another world's streaks
  // cap or extend losses on unrelated channels.
  if (sim.instance_id() != last_sim_id_) {
    last_sim_id_ = sim.instance_id();
    counts_.assign(static_cast<std::size_t>(sim.topology().edge_count()), 0);
  }
  return counts_[static_cast<std::size_t>(edge)];
}

RandomScheduler::RandomScheduler(std::uint64_t seed, LossOptions loss)
    : rng_(seed), loss_(loss) {}

std::optional<Step> RandomScheduler::next(Simulator& sim) {
  const int ticks = sim.tick_enabled_count();
  const int chans = sim.deliverable_count();
  const std::size_t total =
      static_cast<std::size_t>(ticks) + static_cast<std::size_t>(chans);
  if (total == 0) return std::nullopt;

  const auto pick = rng_.below(total);
  if (pick < static_cast<std::size_t>(ticks))
    return Step::tick(sim.nth_tick_enabled(static_cast<int>(pick)));

  const EdgeId e =
      sim.nth_deliverable(static_cast<int>(pick) - ticks);
  const ProcessId src = sim.topology().edge_src(e);
  const ProcessId dst = sim.topology().edge_dst(e);
  int& streak = streaks_.streak(sim, e);
  if (loss_.rate > 0.0 && streak < loss_.max_consecutive &&
      rng_.chance(loss_.rate)) {
    ++streak;
    return Step::lose(src, dst);
  }
  streak = 0;
  return Step::deliver(src, dst);
}

RoundRobinScheduler::RoundRobinScheduler(std::uint64_t seed, LossOptions loss)
    : rng_(seed), loss_(loss) {}

void RoundRobinScheduler::refill(Simulator& sim) {
  // One synchronous round: every tick-enabled process activates in id order,
  // then every currently non-empty channel transmits once. Loss is sampled
  // when the round is formed, subject to the fair-loss cap.
  for (int k = 0; k < sim.tick_enabled_count(); ++k)
    pending_.push_back(Step::tick(sim.nth_tick_enabled(k)));
  for (int k = 0; k < sim.deliverable_count(); ++k) {
    const EdgeId e = sim.nth_deliverable(k);
    const ProcessId src = sim.topology().edge_src(e);
    const ProcessId dst = sim.topology().edge_dst(e);
    int& streak = streaks_.streak(sim, e);
    if (loss_.rate > 0.0 && streak < loss_.max_consecutive &&
        rng_.chance(loss_.rate)) {
      ++streak;
      pending_.push_back(Step::lose(src, dst));
    } else {
      streak = 0;
      pending_.push_back(Step::deliver(src, dst));
    }
  }
  if (!pending_.empty()) ++rounds_;
}

std::optional<Step> RoundRobinScheduler::next(Simulator& sim) {
  while (true) {
    if (pending_.empty()) refill(sim);
    if (pending_.empty()) return std::nullopt;
    Step step = pending_.front();
    pending_.pop_front();
    // Steps scheduled at round formation may have become stale (channel
    // drained by the receiving action of an earlier delivery, process gone
    // busy). Skip stale steps rather than executing no-ops.
    switch (step.kind) {
      case StepKind::Tick:
        if (!sim.process(step.target).tick_enabled()) continue;
        return step;
      case StepKind::Deliver:
      case StepKind::Lose:
        if (sim.network().channel(step.src, step.target).empty()) continue;
        if (step.kind == StepKind::Deliver && sim.process(step.target).busy())
          continue;
        return step;
    }
  }
}

std::optional<Step> ScriptedScheduler::next(Simulator&) {
  if (pos_ >= script_.size()) return std::nullopt;
  return script_[pos_++];
}

}  // namespace snapstab::sim
