// scheduler.hpp — activation orders (the "daemon") and the loss adversary.
//
// The paper's executions are maximal sequences of steps chosen by an
// adversarial environment subject to fair loss. Three schedulers realize
// three useful adversaries:
//
//   RandomScheduler     — uniformly random enabled step each time, with a
//                         probabilistic message-loss adversary capped by a
//                         maximum number of consecutive losses per channel
//                         (so finite runs keep the fair-loss guarantee);
//   RoundRobinScheduler — synchronous rounds: every process ticks, then
//                         every non-empty channel delivers once; yields the
//                         round-complexity metric used in the experiments;
//   ScriptedScheduler   — replays an explicit step list; used by the
//                         Figure-1 worst case and the Theorem-1 construction.
//
// RandomScheduler and RoundRobinScheduler choose from the simulator's
// incremental enabled-step index: a uniformly random enabled step costs
// O(log n) with no allocation, instead of the historic O(n²) channel scan.
// The candidate enumeration order (tick-enabled processes ascending, then
// deliverable edges in ascending (src, dst) order) and the per-step RNG
// consumption are exactly those of the scanning implementation, so
// executions are bit-identical for the same (code, seed, configuration).
//
// Sealed dispatch: the three built-in schedulers are `final` and carry a
// SchedulerKind tag. Simulator::run switches on the tag and drives their
// non-virtual `next_step` fast paths (plain Step + bool, no optional, fully
// inlined — bodies at the bottom of sim/simulator.hpp); external Scheduler
// subclasses report SchedulerKind::Generic and run through the virtual
// `next`, which is required to produce the identical step sequence.
#ifndef SNAPSTAB_SIM_SCHEDULER_HPP
#define SNAPSTAB_SIM_SCHEDULER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sim/observation.hpp"
#include "sim/topology.hpp"

namespace snapstab::sim {

class Simulator;

enum class StepKind : std::uint8_t {
  Tick,     // activate process `target`: run its enabled spontaneous actions
  Deliver,  // deliver head of channel src -> target
  Lose,     // drop head of channel src -> target (loss adversary)
};

struct Step {
  StepKind kind = StepKind::Tick;
  ProcessId target = 0;  // process being activated / receiving
  ProcessId src = -1;    // sending endpoint for Deliver / Lose
  // Dense EdgeId of src -> target when the producer already knows it (the
  // sealed schedulers pick steps *by* edge, so Simulator::execute skips the
  // edge_between re-lookup); -1 means "derive from (src, target)". A cache,
  // not identity — equality ignores it.
  EdgeId edge = -1;

  static Step tick(ProcessId p) { return {StepKind::Tick, p, -1, -1}; }
  static Step deliver(ProcessId src, ProcessId dst) {
    return {StepKind::Deliver, dst, src, -1};
  }
  static Step lose(ProcessId src, ProcessId dst) {
    return {StepKind::Lose, dst, src, -1};
  }
  static Step deliver_on(EdgeId e, ProcessId src, ProcessId dst) {
    return {StepKind::Deliver, dst, src, e};
  }
  static Step lose_on(EdgeId e, ProcessId src, ProcessId dst) {
    return {StepKind::Lose, dst, src, e};
  }

  friend bool operator==(const Step& a, const Step& b) {
    return a.kind == b.kind && a.target == b.target && a.src == b.src;
  }
};

// Type tag for the sealed fast paths; external subclasses are Generic.
enum class SchedulerKind : std::uint8_t {
  Generic,
  Random,
  RoundRobin,
  Scripted,
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Chooses the next step; nullopt when no step is enabled (quiescence) or,
  // for scripted schedules, when the script is exhausted.
  virtual std::optional<Step> next(Simulator& sim) = 0;

  SchedulerKind kind() const noexcept { return kind_; }

 protected:
  Scheduler() noexcept = default;  // external subclasses: Generic
  explicit Scheduler(SchedulerKind kind) noexcept : kind_(kind) {}

 private:
  SchedulerKind kind_ = SchedulerKind::Generic;
};

struct LossOptions {
  double rate = 0.0;  // probability that a chosen delivery is lost instead
  // Fair-loss cap: after this many consecutive losses on one channel the
  // next chosen transmission on it is forcibly delivered.
  int max_consecutive = 8;
};

// Flat per-edge consecutive-loss streaks; sized lazily from the simulator's
// topology on first use so the hot path is allocation-free. Streaks reset
// when the scheduler is driven against a different simulator (EdgeIds are
// only meaningful within one topology).
class LossStreaks {
 public:
  int& streak(Simulator& sim, int edge);

 private:
  std::uint64_t last_sim_id_ = 0;  // no simulator has id 0
  std::vector<int> counts_;
};

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed, LossOptions loss = {});
  std::optional<Step> next(Simulator& sim) override;

  // Sealed fast path: writes the chosen step to `out`, false on quiescence.
  // Same step sequence and RNG consumption as next(); body inline in
  // sim/simulator.hpp.
  bool next_step(Simulator& sim, Step& out);

 private:
  Rng rng_;
  LossOptions loss_;
  LossStreaks streaks_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint64_t seed, LossOptions loss = {});
  std::optional<Step> next(Simulator& sim) override;

  // Sealed fast path; see RandomScheduler::next_step.
  bool next_step(Simulator& sim, Step& out);

  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  void refill(Simulator& sim);

  Rng rng_;
  LossOptions loss_;
  // The current round, emitted through a head cursor; clear() keeps the
  // capacity, so refills after the first round never allocate.
  std::vector<Step> pending_;
  std::size_t head_ = 0;
  LossStreaks streaks_;
  std::uint64_t rounds_ = 0;
};

class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<Step> script)
      : Scheduler(SchedulerKind::Scripted), script_(std::move(script)) {}
  std::optional<Step> next(Simulator& sim) override;

  // Sealed fast path; needs no simulator state.
  bool next_step(Simulator&, Step& out) noexcept {
    if (pos_ >= script_.size()) return false;
    out = script_[pos_++];
    return true;
  }

  std::size_t position() const noexcept { return pos_; }

 private:
  std::vector<Step> script_;
  std::size_t pos_ = 0;
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_SCHEDULER_HPP
