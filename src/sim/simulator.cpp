#include "sim/simulator.hpp"

#include <atomic>

#include "common/check.hpp"
#include "common/log.hpp"

namespace snapstab::sim {

namespace {

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Adapts an external (SchedulerKind::Generic) scheduler to the sealed step
// loop: one virtual next() per step plus the optional unwrap — exactly the
// historic cost, kept as the compatibility fallback.
struct VirtualSchedulerAdapter {
  Scheduler& inner;
  bool next_step(Simulator& sim, Step& out) {
    auto step = inner.next(sim);
    if (!step.has_value()) return false;
    out = *step;
    return true;
  }
};

}  // namespace

Simulator::Simulator(Topology topology, std::size_t channel_capacity,
                     std::uint64_t seed)
    : instance_id_(next_instance_id()),
      pool_(&current_string_pool()),
      network_(std::move(topology), channel_capacity) {
  const int n = network_.process_count();
  Rng seeder(seed);
  processes_.reserve(static_cast<std::size_t>(n));
  process_rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    process_rngs_.push_back(seeder.fork(static_cast<std::uint64_t>(i) + 1));

  tick_set_.reset(n);
  deliverable_set_.reset(network_.edge_count());
  tick_bit_.assign(static_cast<std::size_t>(n), 0);
  deliverable_bit_.assign(static_cast<std::size_t>(network_.edge_count()), 0);
  busy_bit_.assign(static_cast<std::size_t>(n), 0);
  network_.set_listener(this);
}

Simulator::Simulator(int process_count, std::size_t channel_capacity,
                     std::uint64_t seed)
    : Simulator(Topology::complete(process_count), channel_capacity, seed) {}

void Simulator::add_process(std::unique_ptr<Process> p) {
  SNAPSTAB_CHECK(p != nullptr);
  SNAPSTAB_CHECK_MSG(
      processes_.size() < static_cast<std::size_t>(network_.process_count()),
      "more processes than network endpoints");
  processes_.push_back(std::move(p));
  refresh_process(static_cast<ProcessId>(processes_.size()) - 1);
}

Process& Simulator::process(ProcessId p) {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

const Process& Simulator::process(ProcessId p) const {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

void Simulator::set_scheduler(std::unique_ptr<Scheduler> s) {
  scheduler_ = std::move(s);
}

void Simulator::edge_occupancy_changed(EdgeId e, bool) {
  refresh_deliverable(e);
}

void Simulator::refresh_deliverable(EdgeId e) {
  const ProcessId dst = network_.topology().edge_dst(e);
  const bool deliverable =
      network_.edge_nonempty(e) && busy_bit_[static_cast<std::size_t>(dst)] == 0;
  char& bit = deliverable_bit_[static_cast<std::size_t>(e)];
  if (deliverable != (bit != 0)) {
    bit = deliverable ? 1 : 0;
    deliverable_set_.add(e, deliverable ? 1 : -1);
  }
}

void Simulator::refresh_process(ProcessId p) {
  // Uninstalled processes are neither tickable nor busy.
  const bool installed = static_cast<std::size_t>(p) < processes_.size();
  const bool tickable = installed && processes_[static_cast<std::size_t>(p)]
                                         ->tick_enabled();
  char& tick = tick_bit_[static_cast<std::size_t>(p)];
  if (tickable != (tick != 0)) {
    tick = tickable ? 1 : 0;
    tick_set_.add(p, tickable ? 1 : -1);
  }

  const bool busy = installed && processes_[static_cast<std::size_t>(p)]->busy();
  char& busy_bit = busy_bit_[static_cast<std::size_t>(p)];
  if (busy != (busy_bit != 0)) {
    busy_bit = busy ? 1 : 0;
    // The busy flag gates delivery on every incident in-edge.
    const Topology& topo = network_.topology();
    for (int k = 0; k < topo.degree(p); ++k)
      refresh_deliverable(topo.in_edge(p, k));
  }
}

void Simulator::reconcile_enabled_index() {
  for (ProcessId p = 0; p < network_.process_count(); ++p) refresh_process(p);
}

EdgeId Simulator::step_edge(const Step& step) const {
  const Topology& topo = network_.topology();
  if (step.edge >= 0) {
    // The producer's claim must match the endpoints — a mismatched edge
    // would silently address another channel.
    SNAPSTAB_CHECK_MSG(topo.edge_src(step.edge) == step.src &&
                           topo.edge_dst(step.edge) == step.target,
                       "Step.edge does not connect (src, target)");
    return step.edge;
  }
  return topo.edge_between(step.src, step.target);
}

bool Simulator::execute(const Step& step) {
  SNAPSTAB_CHECK_MSG(
      processes_.size() == static_cast<std::size_t>(network_.process_count()),
      "install all processes before stepping");
  return execute_step(step);
}

bool Simulator::execute_step(const Step& step) {
  ++metrics_.steps;
  // One branch hoists recording out of the per-kind paths, which stay
  // straight-line in the common (non-recording) executions.
  if (recording_) return execute_impl<true>(step);
  return execute_impl<false>(step);
}

template <bool Recording>
bool Simulator::execute_impl(const Step& step) {
  switch (step.kind) {
    case StepKind::Tick: {
      Process& p = process(step.target);
      ++metrics_.ticks;
      Context ctx(*this, step.target);
      p.on_tick(ctx);
      refresh_process(step.target);
      if constexpr (Recording)
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Tick, -1, Message{}});
      return true;
    }
    case StepKind::Deliver: {
      const EdgeId e = step_edge(step);
      Channel& ch = network_.edge_channel(e);
      if (ch.empty()) return false;
      const Message msg = ch.pop();  // flat copy, no optional wrapper
      Process& p = process(step.target);
      SNAPSTAB_CHECK_MSG(!p.busy(),
                         "scheduler delivered to a process busy in its CS");
      ++metrics_.deliveries;
      const int index = network_.topology().edge_index_at_dst(e);
      if constexpr (Recording) {
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Deliver, index, msg});
        recorded_deliveries_[static_cast<std::size_t>(e)].push_back(msg);
      }
      Context ctx(*this, step.target);
      p.on_message(ctx, index, msg);
      refresh_process(step.target);
      return true;
    }
    case StepKind::Lose: {
      Channel& ch = network_.edge_channel(step_edge(step));
      if (!ch.drop_head()) return false;  // empty: the drop misses, no count
      ++metrics_.adversary_losses;
      return true;
    }
  }
  return false;
}

template <typename Sched>
Simulator::StopReason Simulator::run_loop(
    Sched& sched, std::uint64_t max_steps,
    const std::function<bool(Simulator&)>& stop, StopPolicy policy) {
  if (!stop) {
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      Step step;
      if (!sched.next_step(*this, step)) return StopReason::Quiescent;
      execute_step(step);
    }
    return StopReason::BudgetExhausted;
  }

  const std::uint64_t every = policy.check_every == 0 ? 1 : policy.check_every;
  std::uint64_t until_check = every;
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    Step step;
    if (!sched.next_step(*this, step)) return StopReason::Quiescent;
    execute_step(step);
    if (--until_check == 0) {
      until_check = every;
      if (stop(*this)) return StopReason::Predicate;
      // Stop predicates may mutate process state (e.g. submit the next
      // request once the previous one decided), and they hold plain
      // references to the processes — no dirty flag can observe that. The
      // O(n) re-read per check is the price of an exact index under
      // predicate-driven runs; predicate-free runs stay on the O(log n)
      // path, and StopPolicy::check_every amortizes it for bulk runs.
      reconcile_enabled_index();
    }
  }
  return StopReason::BudgetExhausted;
}

Simulator::StopReason Simulator::run(
    std::uint64_t max_steps, const std::function<bool(Simulator&)>& stop,
    StopPolicy policy) {
  SNAPSTAB_CHECK_MSG(scheduler_ != nullptr, "no scheduler installed");
  // The sealed loop skips execute()'s per-step install check, so misuse
  // must trap here: a partially-installed world would otherwise run as a
  // plausible-looking smaller system (missing processes are neither
  // tickable nor busy to the enabled index).
  SNAPSTAB_CHECK_MSG(
      processes_.size() == static_cast<std::size_t>(network_.process_count()),
      "install all processes before stepping");
  // Text payloads created by protocol code during this run intern into the
  // simulator's pool, wherever the driving thread came from.
  ScopedStringPool pool_scope(*pool_);
  // Process state may have been mutated since the last step (new requests,
  // fuzzed variables, adversary strikes) — resynchronize the index once.
  reconcile_enabled_index();
  if (stop) {
    if (stop(*this)) return StopReason::Predicate;
    reconcile_enabled_index();
  }
  // Seal the loop on the installed scheduler's concrete type: non-virtual
  // next_step, no optional, steps delivered with their EdgeId attached.
  switch (scheduler_->kind()) {
    case SchedulerKind::Random:
      return run_loop(static_cast<RandomScheduler&>(*scheduler_), max_steps,
                      stop, policy);
    case SchedulerKind::RoundRobin:
      return run_loop(static_cast<RoundRobinScheduler&>(*scheduler_),
                      max_steps, stop, policy);
    case SchedulerKind::Scripted:
      return run_loop(static_cast<ScriptedScheduler&>(*scheduler_), max_steps,
                      stop, policy);
    case SchedulerKind::Generic:
      break;
  }
  VirtualSchedulerAdapter generic{*scheduler_};
  return run_loop(generic, max_steps, stop, policy);
}

void Simulator::enable_recording() {
  recording_ = true;
  recorded_activations_.assign(
      static_cast<std::size_t>(network_.process_count()), {});
  recorded_deliveries_.assign(static_cast<std::size_t>(network_.edge_count()),
                              {});
}

const std::vector<Activation>& Simulator::activations(ProcessId p) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_activations_[static_cast<std::size_t>(p)];
}

const std::vector<Message>& Simulator::delivered(ProcessId src,
                                                 ProcessId dst) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_deliveries_[static_cast<std::size_t>(
      network_.topology().edge_between(src, dst))];
}

}  // namespace snapstab::sim
