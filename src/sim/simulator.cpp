#include "sim/simulator.hpp"

#include <atomic>

#include "common/check.hpp"
#include "common/log.hpp"

namespace snapstab::sim {

// Binds a Context to (simulator, acting process). Constructed on the stack
// for the duration of one atomic action.
class SimContext final : public Context {
 public:
  SimContext(Simulator& sim, ProcessId self) : sim_(sim), self_(self) {}

  int degree() const override {
    return sim_.network_.topology().degree(self_);
  }

  bool send(int channel_index, const Message& m) override {
    const EdgeId e = sim_.network_.topology().out_edge(self_, channel_index);
    ++sim_.metrics_.sends;
    if (!sim_.network_.edge_channel(e).push(m)) {
      ++sim_.metrics_.sends_lost_full;
      return false;
    }
    return true;
  }

  void observe(Layer layer, ObsKind kind, int peer,
               const Value& value) override {
    sim_.log_.emit(Observation{sim_.metrics_.steps, self_, layer, kind, peer,
                               value});
  }

  Rng& rng() override { return sim_.process_rngs_[static_cast<std::size_t>(self_)]; }

  std::uint64_t now() const override { return sim_.metrics_.steps; }

 private:
  Simulator& sim_;
  ProcessId self_;
};

namespace {
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

Simulator::Simulator(Topology topology, std::size_t channel_capacity,
                     std::uint64_t seed)
    : instance_id_(next_instance_id()),
      pool_(&current_string_pool()),
      network_(std::move(topology), channel_capacity) {
  const int n = network_.process_count();
  Rng seeder(seed);
  processes_.reserve(static_cast<std::size_t>(n));
  process_rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    process_rngs_.push_back(seeder.fork(static_cast<std::uint64_t>(i) + 1));

  tick_set_.reset(n);
  deliverable_set_.reset(network_.edge_count());
  tick_bit_.assign(static_cast<std::size_t>(n), 0);
  deliverable_bit_.assign(static_cast<std::size_t>(network_.edge_count()), 0);
  busy_bit_.assign(static_cast<std::size_t>(n), 0);
  network_.set_listener(this);
}

Simulator::Simulator(int process_count, std::size_t channel_capacity,
                     std::uint64_t seed)
    : Simulator(Topology::complete(process_count), channel_capacity, seed) {}

void Simulator::add_process(std::unique_ptr<Process> p) {
  SNAPSTAB_CHECK(p != nullptr);
  SNAPSTAB_CHECK_MSG(
      processes_.size() < static_cast<std::size_t>(network_.process_count()),
      "more processes than network endpoints");
  processes_.push_back(std::move(p));
  refresh_process(static_cast<ProcessId>(processes_.size()) - 1);
}

Process& Simulator::process(ProcessId p) {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

const Process& Simulator::process(ProcessId p) const {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

void Simulator::set_scheduler(std::unique_ptr<Scheduler> s) {
  scheduler_ = std::move(s);
}

void Simulator::edge_occupancy_changed(EdgeId e, bool) {
  refresh_deliverable(e);
}

void Simulator::refresh_deliverable(EdgeId e) {
  const ProcessId dst = network_.topology().edge_dst(e);
  const bool deliverable =
      network_.edge_nonempty(e) && busy_bit_[static_cast<std::size_t>(dst)] == 0;
  char& bit = deliverable_bit_[static_cast<std::size_t>(e)];
  if (deliverable != (bit != 0)) {
    bit = deliverable ? 1 : 0;
    deliverable_set_.add(e, deliverable ? 1 : -1);
  }
}

void Simulator::refresh_process(ProcessId p) {
  // Uninstalled processes are neither tickable nor busy.
  const bool installed = static_cast<std::size_t>(p) < processes_.size();
  const bool tickable = installed && processes_[static_cast<std::size_t>(p)]
                                         ->tick_enabled();
  char& tick = tick_bit_[static_cast<std::size_t>(p)];
  if (tickable != (tick != 0)) {
    tick = tickable ? 1 : 0;
    tick_set_.add(p, tickable ? 1 : -1);
  }

  const bool busy = installed && processes_[static_cast<std::size_t>(p)]->busy();
  char& busy_bit = busy_bit_[static_cast<std::size_t>(p)];
  if (busy != (busy_bit != 0)) {
    busy_bit = busy ? 1 : 0;
    // The busy flag gates delivery on every incident in-edge.
    const Topology& topo = network_.topology();
    for (int k = 0; k < topo.degree(p); ++k)
      refresh_deliverable(topo.in_edge(p, k));
  }
}

void Simulator::reconcile_enabled_index() {
  for (ProcessId p = 0; p < network_.process_count(); ++p) refresh_process(p);
}

bool Simulator::execute(const Step& step) {
  SNAPSTAB_CHECK_MSG(
      processes_.size() == static_cast<std::size_t>(network_.process_count()),
      "install all processes before stepping");
  ++metrics_.steps;
  switch (step.kind) {
    case StepKind::Tick: {
      Process& p = process(step.target);
      ++metrics_.ticks;
      SimContext ctx(*this, step.target);
      p.on_tick(ctx);
      refresh_process(step.target);
      if (recording_)
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Tick, -1, Message{}});
      return true;
    }
    case StepKind::Deliver: {
      const EdgeId e = network_.topology().edge_between(step.src, step.target);
      Channel& ch = network_.edge_channel(e);
      if (ch.empty()) return false;
      const Message msg = ch.pop();  // flat copy, no optional wrapper
      Process& p = process(step.target);
      SNAPSTAB_CHECK_MSG(!p.busy(),
                         "scheduler delivered to a process busy in its CS");
      ++metrics_.deliveries;
      const int index = network_.topology().edge_index_at_dst(e);
      if (recording_) {
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Deliver, index, msg});
        recorded_deliveries_[static_cast<std::size_t>(e)].push_back(msg);
      }
      SimContext ctx(*this, step.target);
      p.on_message(ctx, index, msg);
      refresh_process(step.target);
      return true;
    }
    case StepKind::Lose: {
      Channel& ch = network_.channel(step.src, step.target);
      if (!ch.drop_head()) return false;  // empty: the drop misses, no count
      ++metrics_.adversary_losses;
      return true;
    }
  }
  return false;
}

Simulator::StopReason Simulator::run(
    std::uint64_t max_steps, const std::function<bool(Simulator&)>& stop) {
  SNAPSTAB_CHECK_MSG(scheduler_ != nullptr, "no scheduler installed");
  // Text payloads created by protocol code during this run intern into the
  // simulator's pool, wherever the driving thread came from.
  ScopedStringPool pool_scope(*pool_);
  // Process state may have been mutated since the last step (new requests,
  // fuzzed variables, adversary strikes) — resynchronize the index once.
  reconcile_enabled_index();
  if (stop) {
    if (stop(*this)) return StopReason::Predicate;
    reconcile_enabled_index();
  }
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    auto step = scheduler_->next(*this);
    if (!step.has_value()) return StopReason::Quiescent;
    execute(*step);
    if (stop) {
      if (stop(*this)) return StopReason::Predicate;
      // Stop predicates may mutate process state (e.g. submit the next
      // request once the previous one decided), and they hold plain
      // references to the processes — no dirty flag can observe that. The
      // O(n) re-read per step is the price of an exact index under
      // predicate-driven runs; predicate-free runs stay on the O(log n)
      // path.
      reconcile_enabled_index();
    }
  }
  return StopReason::BudgetExhausted;
}

void Simulator::enable_recording() {
  recording_ = true;
  recorded_activations_.assign(
      static_cast<std::size_t>(network_.process_count()), {});
  recorded_deliveries_.assign(static_cast<std::size_t>(network_.edge_count()),
                              {});
}

const std::vector<Activation>& Simulator::activations(ProcessId p) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_activations_[static_cast<std::size_t>(p)];
}

const std::vector<Message>& Simulator::delivered(ProcessId src,
                                                 ProcessId dst) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_deliveries_[static_cast<std::size_t>(
      network_.topology().edge_between(src, dst))];
}

}  // namespace snapstab::sim
