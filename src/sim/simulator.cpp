#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace snapstab::sim {

// Binds a Context to (simulator, acting process). Constructed on the stack
// for the duration of one atomic action.
class SimContext final : public Context {
 public:
  SimContext(Simulator& sim, ProcessId self) : sim_(sim), self_(self) {}

  int degree() const override { return sim_.network_.degree(); }

  bool send(int channel_index, const Message& m) override {
    const ProcessId dst = sim_.network_.peer_of(self_, channel_index);
    ++sim_.metrics_.sends;
    if (!sim_.network_.channel(self_, dst).push(m)) {
      ++sim_.metrics_.sends_lost_full;
      return false;
    }
    return true;
  }

  void observe(Layer layer, ObsKind kind, int peer,
               const Value& value) override {
    sim_.log_.emit(Observation{sim_.metrics_.steps, self_, layer, kind, peer,
                               value});
  }

  Rng& rng() override { return sim_.process_rngs_[static_cast<std::size_t>(self_)]; }

  std::uint64_t now() const override { return sim_.metrics_.steps; }

 private:
  Simulator& sim_;
  ProcessId self_;
};

Simulator::Simulator(int process_count, std::size_t channel_capacity,
                     std::uint64_t seed)
    : network_(process_count, channel_capacity) {
  Rng seeder(seed);
  processes_.reserve(static_cast<std::size_t>(process_count));
  process_rngs_.reserve(static_cast<std::size_t>(process_count));
  for (int i = 0; i < process_count; ++i)
    process_rngs_.push_back(seeder.fork(static_cast<std::uint64_t>(i) + 1));
}

void Simulator::add_process(std::unique_ptr<Process> p) {
  SNAPSTAB_CHECK(p != nullptr);
  SNAPSTAB_CHECK_MSG(
      processes_.size() < static_cast<std::size_t>(network_.process_count()),
      "more processes than network endpoints");
  processes_.push_back(std::move(p));
}

Process& Simulator::process(ProcessId p) {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

const Process& Simulator::process(ProcessId p) const {
  SNAPSTAB_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size());
  return *processes_[static_cast<std::size_t>(p)];
}

void Simulator::set_scheduler(std::unique_ptr<Scheduler> s) {
  scheduler_ = std::move(s);
}

bool Simulator::execute(const Step& step) {
  SNAPSTAB_CHECK_MSG(
      processes_.size() == static_cast<std::size_t>(network_.process_count()),
      "install all processes before stepping");
  ++metrics_.steps;
  switch (step.kind) {
    case StepKind::Tick: {
      Process& p = process(step.target);
      ++metrics_.ticks;
      SimContext ctx(*this, step.target);
      p.on_tick(ctx);
      if (recording_)
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Tick, -1, Message{}});
      return true;
    }
    case StepKind::Deliver: {
      Channel& ch = network_.channel(step.src, step.target);
      auto msg = ch.pop();
      if (!msg.has_value()) return false;
      Process& p = process(step.target);
      SNAPSTAB_CHECK_MSG(!p.busy(),
                         "scheduler delivered to a process busy in its CS");
      ++metrics_.deliveries;
      const int index = network_.index_of(step.target, step.src);
      if (recording_) {
        recorded_activations_[static_cast<std::size_t>(step.target)].push_back(
            Activation{StepKind::Deliver, index, *msg});
        recorded_deliveries_[static_cast<std::size_t>(step.src) *
                                 network_.process_count() +
                             step.target]
            .push_back(*msg);
      }
      SimContext ctx(*this, step.target);
      p.on_message(ctx, index, *msg);
      return true;
    }
    case StepKind::Lose: {
      Channel& ch = network_.channel(step.src, step.target);
      auto msg = ch.pop();
      if (!msg.has_value()) return false;
      ++metrics_.adversary_losses;
      return true;
    }
  }
  return false;
}

Simulator::StopReason Simulator::run(
    std::uint64_t max_steps, const std::function<bool(Simulator&)>& stop) {
  SNAPSTAB_CHECK_MSG(scheduler_ != nullptr, "no scheduler installed");
  if (stop && stop(*this)) return StopReason::Predicate;
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    auto step = scheduler_->next(*this);
    if (!step.has_value()) return StopReason::Quiescent;
    execute(*step);
    if (stop && stop(*this)) return StopReason::Predicate;
  }
  return StopReason::BudgetExhausted;
}

void Simulator::enable_recording() {
  recording_ = true;
  recorded_activations_.assign(
      static_cast<std::size_t>(network_.process_count()), {});
  recorded_deliveries_.assign(static_cast<std::size_t>(
                                  network_.process_count()) *
                                  network_.process_count(),
                              {});
}

const std::vector<Activation>& Simulator::activations(ProcessId p) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_activations_[static_cast<std::size_t>(p)];
}

const std::vector<Message>& Simulator::delivered(ProcessId src,
                                                 ProcessId dst) const {
  SNAPSTAB_CHECK(recording_);
  return recorded_deliveries_[static_cast<std::size_t>(src) *
                                  network_.process_count() +
                              dst];
}

}  // namespace snapstab::sim
