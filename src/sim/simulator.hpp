// simulator.hpp — discrete-event execution of the transition system.
//
// A Simulator owns the network, the processes and the observation log; a
// Scheduler chooses steps, the Simulator executes them. Every source of
// nondeterminism is seeded, so any execution is reproducible from
// (code, seed, initial configuration).
//
// Enabled-step index: the simulator maintains, incrementally, the exact sets
// a scheduler chooses from — the tick-enabled processes and the deliverable
// edges (non-empty channel, receiver not busy in its CS) — as bitmap-backed
// order-statistics sets (common/rankset.hpp: O(1) membership flips,
// branchless popcount-scan selection). Channel occupancy is fed by the
// network's transition hooks (exact under arbitrary channel mutation);
// process predicates (tick_enabled, busy) are re-read after each executed
// step for the acting process, and reconciled in bulk at run() start and
// after each stop-predicate call (stop predicates are allowed to mutate
// process state, e.g. submit new requests). Schedulers therefore pick a
// uniformly random enabled step without rescanning all n² channels.
//
// The simulator can also *record* executions: per-process activation
// sequences (ticks and received messages in order). Recording is what makes
// the Theorem-1 impossibility construction executable — record the bad
// factor, stuff the recorded message sequences into the channels of a fresh
// initial configuration, replay each process's activations verbatim.
//
// Sealed step loop: run() switches once on the installed scheduler's
// SchedulerKind and drives the non-virtual next_step fast path of the three
// built-in schedulers; the per-step Context is concrete and fully inlined.
// External Scheduler subclasses (SchedulerKind::Generic) take the virtual
// next() fallback, which must produce the identical step sequence — the
// sealing changes the cost of a step, never its outcome.
#ifndef SNAPSTAB_SIM_SIMULATOR_HPP
#define SNAPSTAB_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rankset.hpp"
#include "msg/strpool.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace snapstab::sim {

struct Metrics {
  std::uint64_t steps = 0;
  std::uint64_t ticks = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t adversary_losses = 0;
  std::uint64_t sends = 0;          // send attempts by processes
  std::uint64_t sends_lost_full = 0;  // attempts refused by a full channel
};

// One entry of a recorded per-process activation sequence.
struct Activation {
  StepKind kind = StepKind::Tick;  // Tick or Deliver
  int channel_index = -1;          // local index of the sender for Deliver
  Message message;                 // the delivered message for Deliver
};

// Cadence of the stop-predicate check in run(). The default (1) preserves
// the historic behavior: the predicate runs after every executed step, and
// because predicates may mutate process state, each check is followed by an
// O(n) reconcile of the enabled-step index. Bulk runs (benchmarks, fixed
// trial budgets) can raise check_every to amortize both costs; the run may
// then overshoot the predicate's first holding point by up to
// check_every - 1 steps. 0 is treated as 1.
struct StopPolicy {
  std::uint64_t check_every = 1;
};

class Simulator final : private NetworkListener {
 public:
  Simulator(Topology topology, std::size_t channel_capacity,
            std::uint64_t seed);
  // The paper's fully-connected network (historic constructor).
  Simulator(int process_count, std::size_t channel_capacity,
            std::uint64_t seed);

  // Process installation; exactly `process_count` processes must be added
  // before the first step. The simulator owns them.
  void add_process(std::unique_ptr<Process> p);
  int process_count() const noexcept { return network_.process_count(); }

  Process& process(ProcessId p);
  const Process& process(ProcessId p) const;
  template <typename T>
  T& process_as(ProcessId p) {
    return dynamic_cast<T&>(process(p));
  }

  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  const Topology& topology() const noexcept { return network_.topology(); }
  ObservationLog& log() noexcept { return log_; }
  const ObservationLog& log() const noexcept { return log_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  std::uint64_t step_count() const noexcept { return metrics_.steps; }

  void set_scheduler(std::unique_ptr<Scheduler> s);
  Scheduler* scheduler() noexcept { return scheduler_.get(); }

  // Unique over the process lifetime (never reused, unlike addresses);
  // lets per-simulator caches in schedulers detect a simulator change.
  std::uint64_t instance_id() const noexcept { return instance_id_; }

  // The StringPool this simulator's text payloads are interned in — the
  // thread's current pool at construction time. run() re-installs it as the
  // current pool for the duration, so a simulator driven from a different
  // thread (the parallel trial harness) keeps one consistent id space.
  StringPool& string_pool() const noexcept { return *pool_; }

  // Executes one explicit step. Returns false when the step was a no-op
  // (e.g., delivering from an empty channel); the step still counts.
  bool execute(const Step& step);

  enum class StopReason { Predicate, Quiescent, BudgetExhausted };

  // Runs until `stop` holds (checked per `policy`, default after every
  // step), the scheduler finds no enabled step, or `max_steps` further
  // steps have been executed.
  StopReason run(std::uint64_t max_steps,
                 const std::function<bool(Simulator&)>& stop = {},
                 StopPolicy policy = {});

  // --- enabled-step index (scheduler interface) ---
  // Members are reported in ascending id / canonical edge order, which is
  // exactly the order the historic scanning schedulers enumerated.
  int tick_enabled_count() const noexcept { return tick_set_.count(); }
  ProcessId nth_tick_enabled(int k) const { return tick_set_.kth(k); }
  int deliverable_count() const noexcept { return deliverable_set_.count(); }
  EdgeId nth_deliverable(int k) const { return deliverable_set_.kth(k); }
  // Re-reads tick_enabled()/busy() for every installed process. Call after
  // mutating process state outside of execute() (fuzzers, adversaries,
  // tests poking at process variables between runs do not need to — run()
  // reconciles on entry).
  void reconcile_enabled_index();

  // --- recording (Theorem-1 machinery) ---
  void enable_recording();
  const std::vector<Activation>& activations(ProcessId p) const;
  // Messages delivered over the channel src -> dst, in delivery order.
  const std::vector<Message>& delivered(ProcessId src, ProcessId dst) const;

 private:
  friend class Context;  // the sim backend inlines straight into the engine

  void edge_occupancy_changed(EdgeId e, bool nonempty) override;
  // Re-reads tick_enabled()/busy() for one process and fixes the index.
  void refresh_process(ProcessId p);
  void refresh_deliverable(EdgeId e);

  // execute() minus the install check (hoisted out of the sealed loop);
  // branches once on recording_ into a straight-line variant.
  bool execute_step(const Step& step);
  template <bool Recording>
  bool execute_impl(const Step& step);
  // EdgeId of a Deliver/Lose step: the scheduler-provided edge when
  // present (checked against the endpoints), else derived via edge_between.
  EdgeId step_edge(const Step& step) const;
  // The sealed step loop; Sched exposes a non-virtual
  // `bool next_step(Simulator&, Step&)`.
  template <typename Sched>
  StopReason run_loop(Sched& sched, std::uint64_t max_steps,
                      const std::function<bool(Simulator&)>& stop,
                      StopPolicy policy);

  std::uint64_t instance_id_;
  StringPool* pool_;
  Network network_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> process_rngs_;
  ObservationLog log_;
  Metrics metrics_;
  std::unique_ptr<Scheduler> scheduler_;

  // Enabled-step index.
  RankSet tick_set_;         // processes with tick_enabled()
  RankSet deliverable_set_;  // edges: non-empty ∧ receiver not busy
  std::vector<char> tick_bit_;
  std::vector<char> deliverable_bit_;
  std::vector<char> busy_bit_;

  bool recording_ = false;
  std::vector<std::vector<Activation>> recorded_activations_;
  std::vector<std::vector<Message>> recorded_deliveries_;  // per EdgeId
};

// ---------------------------------------------------------------------------
// Inline fast paths. Context's sim backend and the sealed schedulers'
// next_step need the Simulator definition, so their bodies live here; any
// translation unit calling them must include this header.
// ---------------------------------------------------------------------------

inline int Context::degree() const {
  if (sim_ != nullptr) return sim_->network_.topology().degree(self_);
  return backend_->degree();
}

inline bool Context::send(int channel_index, const Message& m) {
  if (sim_ != nullptr) {
    Simulator& sim = *sim_;
    const EdgeId e = sim.network_.topology().out_edge(self_, channel_index);
    ++sim.metrics_.sends;
    if (!sim.network_.edge_channel(e).push(m)) {
      ++sim.metrics_.sends_lost_full;
      return false;
    }
    return true;
  }
  return backend_->send(channel_index, m);
}

inline void Context::observe(Layer layer, ObsKind kind, int peer,
                             const Value& value) {
  if (sim_ != nullptr) {
    sim_->log_.emit(
        Observation{sim_->metrics_.steps, self_, layer, kind, peer, value});
    return;
  }
  backend_->observe(layer, kind, peer, value);
}

inline Rng& Context::rng() {
  if (sim_ != nullptr)
    return sim_->process_rngs_[static_cast<std::size_t>(self_)];
  return backend_->rng();
}

inline std::uint64_t Context::now() const {
  if (sim_ != nullptr) return sim_->metrics_.steps;
  return backend_->now();
}

inline bool RandomScheduler::next_step(Simulator& sim, Step& out) {
  const int ticks = sim.tick_enabled_count();
  const int chans = sim.deliverable_count();
  const std::size_t total =
      static_cast<std::size_t>(ticks) + static_cast<std::size_t>(chans);
  if (total == 0) return false;

  const auto pick = rng_.below(total);
  if (pick < static_cast<std::size_t>(ticks)) {
    out = Step::tick(sim.nth_tick_enabled(static_cast<int>(pick)));
    return true;
  }

  const EdgeId e = sim.nth_deliverable(static_cast<int>(pick) - ticks);
  const ProcessId src = sim.topology().edge_src(e);
  const ProcessId dst = sim.topology().edge_dst(e);
  if (loss_.rate > 0.0) {
    int& streak = streaks_.streak(sim, e);
    if (streak < loss_.max_consecutive && rng_.chance(loss_.rate)) {
      ++streak;
      out = Step::lose_on(e, src, dst);
      return true;
    }
    streak = 0;
  }
  out = Step::deliver_on(e, src, dst);
  return true;
}

inline bool RoundRobinScheduler::next_step(Simulator& sim, Step& out) {
  while (true) {
    if (head_ == pending_.size()) {
      pending_.clear();
      head_ = 0;
      refill(sim);
      if (pending_.empty()) return false;
    }
    const Step step = pending_[head_++];
    // Steps scheduled at round formation may have become stale (channel
    // drained by the receiving action of an earlier delivery, process gone
    // busy). Skip stale steps rather than executing no-ops.
    switch (step.kind) {
      case StepKind::Tick:
        if (!sim.process(step.target).tick_enabled()) continue;
        break;
      case StepKind::Deliver:
        if (!sim.network().edge_nonempty(step.edge)) continue;
        if (sim.process(step.target).busy()) continue;
        break;
      case StepKind::Lose:
        if (!sim.network().edge_nonempty(step.edge)) continue;
        break;
    }
    out = step;
    return true;
  }
}

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_SIMULATOR_HPP
