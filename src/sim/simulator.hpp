// simulator.hpp — discrete-event execution of the transition system.
//
// A Simulator owns the network, the processes and the observation log; a
// Scheduler chooses steps, the Simulator executes them. Every source of
// nondeterminism is seeded, so any execution is reproducible from
// (code, seed, initial configuration).
//
// Enabled-step index: the simulator maintains, incrementally, the exact sets
// a scheduler chooses from — the tick-enabled processes and the deliverable
// edges (non-empty channel, receiver not busy in its CS) — as Fenwick-backed
// order-statistics sets. Channel occupancy is fed by the network's
// transition hooks (exact under arbitrary channel mutation); process
// predicates (tick_enabled, busy) are re-read after each executed step for
// the acting process, and reconciled in bulk at run() start and after each
// stop-predicate call (stop predicates are allowed to mutate process state,
// e.g. submit new requests). Schedulers therefore pick a uniformly random
// enabled step in O(log n) instead of rescanning all n² channels.
//
// The simulator can also *record* executions: per-process activation
// sequences (ticks and received messages in order). Recording is what makes
// the Theorem-1 impossibility construction executable — record the bad
// factor, stuff the recorded message sequences into the channels of a fresh
// initial configuration, replay each process's activations verbatim.
#ifndef SNAPSTAB_SIM_SIMULATOR_HPP
#define SNAPSTAB_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/fenwick.hpp"
#include "msg/strpool.hpp"
#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace snapstab::sim {

struct Metrics {
  std::uint64_t steps = 0;
  std::uint64_t ticks = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t adversary_losses = 0;
  std::uint64_t sends = 0;          // send attempts by processes
  std::uint64_t sends_lost_full = 0;  // attempts refused by a full channel
};

// One entry of a recorded per-process activation sequence.
struct Activation {
  StepKind kind = StepKind::Tick;  // Tick or Deliver
  int channel_index = -1;          // local index of the sender for Deliver
  Message message;                 // the delivered message for Deliver
};

class Simulator final : private NetworkListener {
 public:
  Simulator(Topology topology, std::size_t channel_capacity,
            std::uint64_t seed);
  // The paper's fully-connected network (historic constructor).
  Simulator(int process_count, std::size_t channel_capacity,
            std::uint64_t seed);

  // Process installation; exactly `process_count` processes must be added
  // before the first step. The simulator owns them.
  void add_process(std::unique_ptr<Process> p);
  int process_count() const noexcept { return network_.process_count(); }

  Process& process(ProcessId p);
  const Process& process(ProcessId p) const;
  template <typename T>
  T& process_as(ProcessId p) {
    return dynamic_cast<T&>(process(p));
  }

  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  const Topology& topology() const noexcept { return network_.topology(); }
  ObservationLog& log() noexcept { return log_; }
  const ObservationLog& log() const noexcept { return log_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  std::uint64_t step_count() const noexcept { return metrics_.steps; }

  void set_scheduler(std::unique_ptr<Scheduler> s);
  Scheduler* scheduler() noexcept { return scheduler_.get(); }

  // Unique over the process lifetime (never reused, unlike addresses);
  // lets per-simulator caches in schedulers detect a simulator change.
  std::uint64_t instance_id() const noexcept { return instance_id_; }

  // The StringPool this simulator's text payloads are interned in — the
  // thread's current pool at construction time. run() re-installs it as the
  // current pool for the duration, so a simulator driven from a different
  // thread (the parallel trial harness) keeps one consistent id space.
  StringPool& string_pool() const noexcept { return *pool_; }

  // Executes one explicit step. Returns false when the step was a no-op
  // (e.g., delivering from an empty channel); the step still counts.
  bool execute(const Step& step);

  enum class StopReason { Predicate, Quiescent, BudgetExhausted };

  // Runs until `stop` holds (checked after every step), the scheduler finds
  // no enabled step, or `max_steps` further steps have been executed.
  StopReason run(std::uint64_t max_steps,
                 const std::function<bool(Simulator&)>& stop = {});

  // --- enabled-step index (scheduler interface) ---
  // Members are reported in ascending id / canonical edge order, which is
  // exactly the order the historic scanning schedulers enumerated.
  int tick_enabled_count() const noexcept { return tick_set_.count(); }
  ProcessId nth_tick_enabled(int k) const { return tick_set_.kth(k); }
  int deliverable_count() const noexcept { return deliverable_set_.count(); }
  EdgeId nth_deliverable(int k) const { return deliverable_set_.kth(k); }
  // Re-reads tick_enabled()/busy() for every installed process. Call after
  // mutating process state outside of execute() (fuzzers, adversaries,
  // tests poking at process variables between runs do not need to — run()
  // reconciles on entry).
  void reconcile_enabled_index();

  // --- recording (Theorem-1 machinery) ---
  void enable_recording();
  const std::vector<Activation>& activations(ProcessId p) const;
  // Messages delivered over the channel src -> dst, in delivery order.
  const std::vector<Message>& delivered(ProcessId src, ProcessId dst) const;

 private:
  friend class SimContext;

  void edge_occupancy_changed(EdgeId e, bool nonempty) override;
  // Re-reads tick_enabled()/busy() for one process and fixes the index.
  void refresh_process(ProcessId p);
  void refresh_deliverable(EdgeId e);

  std::uint64_t instance_id_;
  StringPool* pool_;
  Network network_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> process_rngs_;
  ObservationLog log_;
  Metrics metrics_;
  std::unique_ptr<Scheduler> scheduler_;

  // Enabled-step index.
  FenwickSet tick_set_;         // processes with tick_enabled()
  FenwickSet deliverable_set_;  // edges: non-empty ∧ receiver not busy
  std::vector<char> tick_bit_;
  std::vector<char> deliverable_bit_;
  std::vector<char> busy_bit_;

  bool recording_ = false;
  std::vector<std::vector<Activation>> recorded_activations_;
  std::vector<std::vector<Message>> recorded_deliveries_;  // per EdgeId
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_SIMULATOR_HPP
