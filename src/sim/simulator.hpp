// simulator.hpp — discrete-event execution of the transition system.
//
// A Simulator owns the network, the processes and the observation log; a
// Scheduler chooses steps, the Simulator executes them. Every source of
// nondeterminism is seeded, so any execution is reproducible from
// (code, seed, initial configuration).
//
// The simulator can also *record* executions: per-process activation
// sequences (ticks and received messages in order). Recording is what makes
// the Theorem-1 impossibility construction executable — record the bad
// factor, stuff the recorded message sequences into the channels of a fresh
// initial configuration, replay each process's activations verbatim.
#ifndef SNAPSTAB_SIM_SIMULATOR_HPP
#define SNAPSTAB_SIM_SIMULATOR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace snapstab::sim {

struct Metrics {
  std::uint64_t steps = 0;
  std::uint64_t ticks = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t adversary_losses = 0;
  std::uint64_t sends = 0;          // send attempts by processes
  std::uint64_t sends_lost_full = 0;  // attempts refused by a full channel
};

// One entry of a recorded per-process activation sequence.
struct Activation {
  StepKind kind = StepKind::Tick;  // Tick or Deliver
  int channel_index = -1;          // local index of the sender for Deliver
  Message message;                 // the delivered message for Deliver
};

class Simulator {
 public:
  Simulator(int process_count, std::size_t channel_capacity,
            std::uint64_t seed);

  // Process installation; exactly `process_count` processes must be added
  // before the first step. The simulator owns them.
  void add_process(std::unique_ptr<Process> p);
  int process_count() const noexcept { return network_.process_count(); }

  Process& process(ProcessId p);
  const Process& process(ProcessId p) const;
  template <typename T>
  T& process_as(ProcessId p) {
    return dynamic_cast<T&>(process(p));
  }

  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  ObservationLog& log() noexcept { return log_; }
  const ObservationLog& log() const noexcept { return log_; }
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  std::uint64_t step_count() const noexcept { return metrics_.steps; }

  void set_scheduler(std::unique_ptr<Scheduler> s);
  Scheduler* scheduler() noexcept { return scheduler_.get(); }

  // Executes one explicit step. Returns false when the step was a no-op
  // (e.g., delivering from an empty channel); the step still counts.
  bool execute(const Step& step);

  enum class StopReason { Predicate, Quiescent, BudgetExhausted };

  // Runs until `stop` holds (checked after every step), the scheduler finds
  // no enabled step, or `max_steps` further steps have been executed.
  StopReason run(std::uint64_t max_steps,
                 const std::function<bool(Simulator&)>& stop = {});

  // --- recording (Theorem-1 machinery) ---
  void enable_recording();
  const std::vector<Activation>& activations(ProcessId p) const;
  // Messages delivered over the channel src -> dst, in delivery order.
  const std::vector<Message>& delivered(ProcessId src, ProcessId dst) const;

 private:
  friend class SimContext;

  Network network_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Rng> process_rngs_;
  ObservationLog log_;
  Metrics metrics_;
  std::unique_ptr<Scheduler> scheduler_;

  bool recording_ = false;
  std::vector<std::vector<Activation>> recorded_activations_;
  std::vector<std::vector<Message>> recorded_deliveries_;  // slot src*n+dst
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_SIMULATOR_HPP
