#include "sim/timeline.hpp"

#include <cstdio>

#include "common/table.hpp"

namespace snapstab::sim {

std::string render_timeline(const ObservationLog& log,
                            const TimelineOptions& options) {
  TextTable table({"step", "process", "layer", "event", "peer", "value"});
  std::size_t rows = 0;
  std::size_t omitted = 0;
  for (const auto& e : log.events()) {
    if (options.layer.has_value() && e.layer != *options.layer) continue;
    if (options.process.has_value() && e.process != *options.process)
      continue;
    if (rows >= options.max_rows) {
      ++omitted;
      continue;
    }
    ++rows;
    table.add_row({TextTable::cell(e.step),
                   "p" + std::to_string(e.process), layer_name(e.layer),
                   obs_kind_name(e.kind),
                   e.peer < 0 ? "-" : std::to_string(e.peer),
                   e.value.to_string()});
  }
  std::string out = table.render();
  if (omitted > 0) {
    char line[64];
    std::snprintf(line, sizeof line, "(… %zu more rows omitted)\n", omitted);
    out += line;
  }
  return out;
}

}  // namespace snapstab::sim
