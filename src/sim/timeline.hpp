// timeline.hpp — human-readable rendering of an execution's event stream.
//
// Turns the observation log into the kind of step-by-step timeline the
// paper's Figure 1 shows: one row per protocol event, with the emitting
// process, layer, peer and payload. Used by the experiment binaries and
// by anyone debugging an adversarial schedule.
#ifndef SNAPSTAB_SIM_TIMELINE_HPP
#define SNAPSTAB_SIM_TIMELINE_HPP

#include <optional>
#include <string>

#include "sim/observation.hpp"

namespace snapstab::sim {

struct TimelineOptions {
  std::optional<Layer> layer;        // only this layer (default: all)
  std::optional<ProcessId> process;  // only this process (default: all)
  std::size_t max_rows = 200;        // truncate long executions
};

// Renders the filtered log as an aligned text table; notes how many rows
// were omitted when truncation kicks in.
std::string render_timeline(const ObservationLog& log,
                            const TimelineOptions& options = {});

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_TIMELINE_HPP
