#include "sim/topology.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace snapstab::sim {

namespace {

// Neighbor lists for an undirected edge set, each sorted ascending.
std::vector<std::vector<ProcessId>> neighbor_lists(
    int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::set<ProcessId>> adj(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    SNAPSTAB_CHECK_MSG(a >= 0 && a < n && b >= 0 && b < n,
                       "edge endpoint out of range");
    SNAPSTAB_CHECK_MSG(a != b, "self-loops are not part of the model");
    adj[static_cast<std::size_t>(a)].insert(b);
    adj[static_cast<std::size_t>(b)].insert(a);
  }
  std::vector<std::vector<ProcessId>> out(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    out[static_cast<std::size_t>(p)].assign(
        adj[static_cast<std::size_t>(p)].begin(),
        adj[static_cast<std::size_t>(p)].end());
  return out;
}

}  // namespace

Topology Topology::build(int n, std::vector<std::vector<ProcessId>> neighbors,
                         std::string name, bool complete) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  Topology t;
  t.n_ = n;
  t.name_ = std::move(name);
  t.complete_ = complete;

  // Process CSR.
  t.row_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int p = 0; p < n; ++p) {
    const auto& nb = neighbors[static_cast<std::size_t>(p)];
    SNAPSTAB_CHECK_MSG(!nb.empty(), "every process needs at least one link");
    t.row_[static_cast<std::size_t>(p) + 1] =
        t.row_[static_cast<std::size_t>(p)] + static_cast<int>(nb.size());
    t.max_degree_ = std::max(t.max_degree_, static_cast<int>(nb.size()));
  }
  t.nbr_.reserve(static_cast<std::size_t>(t.row_[static_cast<std::size_t>(n)]));
  for (int p = 0; p < n; ++p)
    for (const ProcessId q : neighbors[static_cast<std::size_t>(p)])
      t.nbr_.push_back(q);

  // Canonical edge enumeration: src ascending, dst ascending within src.
  const int directed = t.row_[static_cast<std::size_t>(n)];
  t.edge_row_.assign(static_cast<std::size_t>(n) + 1, 0);
  t.edge_src_.reserve(static_cast<std::size_t>(directed));
  t.edge_dst_.reserve(static_cast<std::size_t>(directed));
  t.edge_index_at_src_.resize(static_cast<std::size_t>(directed));
  t.edge_index_at_dst_.resize(static_cast<std::size_t>(directed));
  t.out_edge_.resize(static_cast<std::size_t>(directed));
  t.in_edge_.resize(static_cast<std::size_t>(directed));

  // One scratch inverse map (peer id -> local index), refilled per process
  // and wiped by touched entry, keeps construction O(n + edges) in memory —
  // sparse topologies must not pay an n² build cost.
  std::vector<int> inv(static_cast<std::size_t>(n), -1);
  const auto fill_inv = [&](ProcessId p) {
    const auto& nb = neighbors[static_cast<std::size_t>(p)];
    for (int k = 0; k < static_cast<int>(nb.size()); ++k)
      inv[static_cast<std::size_t>(nb[static_cast<std::size_t>(k)])] = k;
  };
  const auto wipe_inv = [&](ProcessId p) {
    for (const ProcessId q : neighbors[static_cast<std::size_t>(p)])
      inv[static_cast<std::size_t>(q)] = -1;
  };

  EdgeId e = 0;
  std::vector<ProcessId> sorted;
  for (ProcessId src = 0; src < n; ++src) {
    sorted = neighbors[static_cast<std::size_t>(src)];
    std::sort(sorted.begin(), sorted.end());
    fill_inv(src);
    for (const ProcessId dst : sorted) {
      const int at_src = inv[static_cast<std::size_t>(dst)];
      t.edge_src_.push_back(src);
      t.edge_dst_.push_back(dst);
      t.edge_index_at_src_[static_cast<std::size_t>(e)] = at_src;
      t.out_edge_[static_cast<std::size_t>(t.row_[static_cast<std::size_t>(
                      src)] + at_src)] = e;
      ++e;
    }
    wipe_inv(src);
    t.edge_row_[static_cast<std::size_t>(src) + 1] = e;
  }

  // Receiver-side indices: group edges by dst (counting sort), then one
  // scratch fill per dst group.
  std::vector<int> dst_offset(static_cast<std::size_t>(n) + 1, 0);
  for (EdgeId id = 0; id < directed; ++id)
    ++dst_offset[static_cast<std::size_t>(t.edge_dst_[static_cast<std::size_t>(
                     id)]) + 1];
  for (int p = 0; p < n; ++p)
    dst_offset[static_cast<std::size_t>(p) + 1] +=
        dst_offset[static_cast<std::size_t>(p)];
  std::vector<EdgeId> by_dst(static_cast<std::size_t>(directed));
  {
    std::vector<int> cursor = dst_offset;
    for (EdgeId id = 0; id < directed; ++id)
      by_dst[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(t.edge_dst_[static_cast<std::size_t>(
              id)])]++)] = id;
  }
  for (ProcessId dst = 0; dst < n; ++dst) {
    fill_inv(dst);
    for (int i = dst_offset[static_cast<std::size_t>(dst)];
         i < dst_offset[static_cast<std::size_t>(dst) + 1]; ++i) {
      const EdgeId id = by_dst[static_cast<std::size_t>(i)];
      const int at_dst =
          inv[static_cast<std::size_t>(t.edge_src_[static_cast<std::size_t>(
              id)])];
      SNAPSTAB_CHECK_MSG(at_dst >= 0, "links must be bidirectional");
      t.edge_index_at_dst_[static_cast<std::size_t>(id)] = at_dst;
      t.in_edge_[static_cast<std::size_t>(t.row_[static_cast<std::size_t>(
                     dst)] + at_dst)] = id;
    }
    wipe_inv(dst);
  }

  // Connectivity (BFS over the CSR).
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<ProcessId> frontier{0};
  seen[0] = 1;
  int reached = 1;
  while (!frontier.empty()) {
    const ProcessId p = frontier.back();
    frontier.pop_back();
    for (int k = t.row_[static_cast<std::size_t>(p)];
         k < t.row_[static_cast<std::size_t>(p) + 1]; ++k) {
      const ProcessId q = t.nbr_[static_cast<std::size_t>(k)];
      if (seen[static_cast<std::size_t>(q)] == 0) {
        seen[static_cast<std::size_t>(q)] = 1;
        ++reached;
        frontier.push_back(q);
      }
    }
  }
  t.connected_ = reached == n;
  return t;
}

Topology Topology::complete(int n) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  // The seed's rotation numbering: peer_of(p, k) = (p + 1 + k) mod n.
  std::vector<std::vector<ProcessId>> neighbors(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    neighbors[static_cast<std::size_t>(p)].reserve(
        static_cast<std::size_t>(n) - 1);
    for (int k = 0; k < n - 1; ++k)
      neighbors[static_cast<std::size_t>(p)].push_back((p + 1 + k) % n);
  }
  return build(n, std::move(neighbors), "complete", /*complete=*/true);
}

Topology Topology::ring(int n) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return build(n, neighbor_lists(n, edges), "ring", n <= 3);
}

Topology Topology::line(int n) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return build(n, neighbor_lists(n, edges), "line", n == 2);
}

Topology Topology::star(int n) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) edges.emplace_back(0, i);
  return build(n, neighbor_lists(n, edges), "star", n == 2);
}

Topology Topology::random_tree(int n, std::uint64_t seed) {
  SNAPSTAB_CHECK_MSG(n >= 2, "a topology needs at least two processes");
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v)
    edges.emplace_back(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(v))), v);
  return build(n, neighbor_lists(n, edges), "random-tree", n == 2);
}

Topology Topology::from_edges(int n,
                              const std::vector<std::pair<int, int>>& edges,
                              std::string name) {
  auto neighbors = neighbor_lists(n, edges);
  int directed = 0;
  for (const auto& nb : neighbors) directed += static_cast<int>(nb.size());
  return build(n, std::move(neighbors), std::move(name),
               directed == n * (n - 1));
}

EdgeId Topology::edge_between(ProcessId src, ProcessId dst) const {
  check_process(src);
  check_process(dst);
  SNAPSTAB_CHECK_MSG(src != dst, "no self channels in the model");
  if (complete_)  // closed form: dsts ascending with src itself skipped
    return src * (n_ - 1) + dst - (dst > src ? 1 : 0);
  const auto first = edge_dst_.begin() + edge_row_[static_cast<std::size_t>(src)];
  const auto last = edge_dst_.begin() + edge_row_[static_cast<std::size_t>(src) + 1];
  const auto it = std::lower_bound(first, last, dst);
  SNAPSTAB_CHECK_MSG(it != last && *it == dst,
                     "no channel between these processes in this topology");
  return static_cast<EdgeId>(it - edge_dst_.begin());
}

bool Topology::adjacent(ProcessId a, ProcessId b) const {
  check_process(a);
  check_process(b);
  if (a == b) return false;
  if (complete_) return true;
  const auto first = edge_dst_.begin() + edge_row_[static_cast<std::size_t>(a)];
  const auto last = edge_dst_.begin() + edge_row_[static_cast<std::size_t>(a) + 1];
  return std::binary_search(first, last, b);
}

int Topology::index_of(ProcessId p, ProcessId peer) const {
  return edge_index_at_src_[static_cast<std::size_t>(edge_between(p, peer))];
}

RoutingTable::RoutingTable(const Topology& topology)
    : n_(topology.process_count()) {
  SNAPSTAB_CHECK_MSG(topology.connected(),
                     "routing tables require a connected topology");
  const auto cells = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  dist_.assign(cells, -1);
  next_index_.assign(cells, -1);
  next_hop_.assign(cells, -1);

  // One BFS per destination, over the CSR. After the distance field is
  // known, every non-destination process picks the smallest-id neighbor
  // that is one hop closer — a deterministic, purely topological choice.
  std::vector<ProcessId> frontier;
  std::vector<ProcessId> next_frontier;
  for (ProcessId dst = 0; dst < n_; ++dst) {
    dist_[cell(dst, dst)] = 0;
    frontier.assign(1, dst);
    int depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next_frontier.clear();
      for (const ProcessId u : frontier)
        for (int k = 0; k < topology.degree(u); ++k) {
          const ProcessId v = topology.peer_of(u, k);
          int& d = dist_[cell(v, dst)];
          if (d < 0) {
            d = depth;
            next_frontier.push_back(v);
          }
        }
      frontier.swap(next_frontier);
    }
    for (ProcessId at = 0; at < n_; ++at) {
      if (at == dst) continue;
      SNAPSTAB_CHECK(dist_[cell(at, dst)] > 0);
      ProcessId best = -1;
      int best_index = -1;
      for (int k = 0; k < topology.degree(at); ++k) {
        const ProcessId v = topology.peer_of(at, k);
        if (dist_[cell(v, dst)] != dist_[cell(at, dst)] - 1) continue;
        if (best < 0 || v < best) {
          best = v;
          best_index = k;
        }
      }
      SNAPSTAB_CHECK(best_index >= 0);
      next_index_[cell(at, dst)] = best_index;
      next_hop_[cell(at, dst)] = best;
    }
  }
}

std::size_t RoutingTable::cell(ProcessId at, ProcessId dst) const {
  SNAPSTAB_CHECK(at >= 0 && at < n_ && dst >= 0 && dst < n_);
  return static_cast<std::size_t>(at) * static_cast<std::size_t>(n_) +
         static_cast<std::size_t>(dst);
}

int RoutingTable::distance(ProcessId at, ProcessId dst) const {
  return dist_[cell(at, dst)];
}

int RoutingTable::next_index(ProcessId at, ProcessId dst) const {
  SNAPSTAB_CHECK_MSG(at != dst, "no next hop toward yourself");
  return next_index_[cell(at, dst)];
}

ProcessId RoutingTable::next_hop(ProcessId at, ProcessId dst) const {
  SNAPSTAB_CHECK_MSG(at != dst, "no next hop toward yourself");
  return next_hop_[cell(at, dst)];
}

}  // namespace snapstab::sim
