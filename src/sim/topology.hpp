// topology.hpp — the communication graph as a first-class layer.
//
// The paper's model is a fully-connected network in which every process
// numbers its incident channels locally and "local numbers carry no global
// meaning". A Topology generalizes that to an arbitrary connected graph:
// each process p owns local channel indices 0..degree(p)-1, and the
// topology is the sole owner of the local-index ↔ peer mapping. Protocols
// only ever speak local indices (via Context::degree() and Context::send()),
// so they run unmodified on any topology.
//
// Directed edges carry the channels. Every undirected link {a, b} induces
// the two directed edges a→b and b→a; edges are numbered canonically in
// ascending (src, dst) order, which gives Network and the scheduler engine a
// dense, allocation-free edge-indexed address space.
//
// Local numbering: Topology::complete(n) reproduces the seed's rotation
//     peer_of(p, k) = (p + 1 + k) mod n
// exactly, so complete-topology executions are bit-identical to the historic
// dense Network (see tests/golden/). Every other builder numbers a process's
// neighbors in ascending id order — a deterministic but still purely local
// choice.
#ifndef SNAPSTAB_SIM_TOPOLOGY_HPP
#define SNAPSTAB_SIM_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sim/observation.hpp"

namespace snapstab::sim {

// Dense index of a directed edge, in ascending (src, dst) order.
using EdgeId = int;

class Topology {
 public:
  // --- builders (all deterministic) ---
  static Topology complete(int n);
  static Topology ring(int n);  // cycle 0-1-...-(n-1)-0; ring(2) is one link
  static Topology line(int n);  // path 0-1-...-(n-1)
  static Topology star(int n);  // hub 0, leaves 1..n-1
  // Uniform random attachment tree: node v attaches to a uniform node < v.
  static Topology random_tree(int n, std::uint64_t seed);
  // Arbitrary undirected edge list (self-loops forbidden, duplicates
  // collapsed). The graph must be connected.
  static Topology from_edges(int n,
                             const std::vector<std::pair<int, int>>& edges,
                             std::string name = "custom");

  // --- shape ---
  int process_count() const noexcept { return n_; }
  int edge_count() const noexcept {
    return static_cast<int>(edge_src_.size());
  }
  int degree(ProcessId p) const;
  int max_degree() const noexcept { return max_degree_; }
  bool is_complete() const noexcept { return complete_; }
  bool connected() const noexcept { return connected_; }
  const std::string& name() const noexcept { return name_; }

  // --- local-index ↔ peer mapping (the paper's local numbering) ---
  ProcessId peer_of(ProcessId p, int local_index) const;
  int index_of(ProcessId p, ProcessId peer) const;  // requires adjacency
  bool adjacent(ProcessId a, ProcessId b) const;

  // --- edge addressing ---
  EdgeId edge_between(ProcessId src, ProcessId dst) const;  // requires adjacency
  ProcessId edge_src(EdgeId e) const;
  ProcessId edge_dst(EdgeId e) const;
  // Local channel index of the edge at its sender / receiver endpoint.
  int edge_index_at_src(EdgeId e) const;
  int edge_index_at_dst(EdgeId e) const;
  // Directed edge p → peer_of(p, local_index) resp. peer_of(p, local_index) → p.
  EdgeId out_edge(ProcessId p, int local_index) const;
  EdgeId in_edge(ProcessId p, int local_index) const;

 private:
  Topology() = default;

  // Builds every derived array from per-process ordered neighbor lists.
  static Topology build(int n, std::vector<std::vector<ProcessId>> neighbors,
                        std::string name, bool complete);
  void check_process(ProcessId p) const;

  int n_ = 0;
  int max_degree_ = 0;
  bool complete_ = false;
  bool connected_ = false;
  std::string name_;

  // CSR over processes; slots ordered by local index.
  std::vector<int> row_;            // size n+1
  std::vector<ProcessId> nbr_;      // peer_of(p, k) = nbr_[row_[p] + k]
  std::vector<EdgeId> out_edge_;    // edge p → nbr_[row_[p] + k]
  std::vector<EdgeId> in_edge_;     // edge nbr_[row_[p] + k] → p

  // Per-edge arrays, canonical ascending (src, dst) order.
  std::vector<int> edge_row_;       // size n+1; edges grouped by src
  std::vector<ProcessId> edge_src_;
  std::vector<ProcessId> edge_dst_;
  std::vector<int> edge_index_at_src_;
  std::vector<int> edge_index_at_dst_;
};

// The per-step accessors are inline: the sealed step loop touches them one
// or more times per step (edge endpoints on every draw, out_edge on every
// send), and each is a bounds check plus one or two array loads.

inline void Topology::check_process(ProcessId p) const {
  SNAPSTAB_CHECK(p >= 0 && p < n_);
}

inline int Topology::degree(ProcessId p) const {
  check_process(p);
  return row_[static_cast<std::size_t>(p) + 1] -
         row_[static_cast<std::size_t>(p)];
}

inline ProcessId Topology::peer_of(ProcessId p, int local_index) const {
  check_process(p);
  SNAPSTAB_CHECK(local_index >= 0 && local_index < degree(p));
  return nbr_[static_cast<std::size_t>(row_[static_cast<std::size_t>(p)] +
                                       local_index)];
}

inline ProcessId Topology::edge_src(EdgeId e) const {
  SNAPSTAB_CHECK(e >= 0 && e < edge_count());
  return edge_src_[static_cast<std::size_t>(e)];
}

inline ProcessId Topology::edge_dst(EdgeId e) const {
  SNAPSTAB_CHECK(e >= 0 && e < edge_count());
  return edge_dst_[static_cast<std::size_t>(e)];
}

inline int Topology::edge_index_at_src(EdgeId e) const {
  SNAPSTAB_CHECK(e >= 0 && e < edge_count());
  return edge_index_at_src_[static_cast<std::size_t>(e)];
}

inline int Topology::edge_index_at_dst(EdgeId e) const {
  SNAPSTAB_CHECK(e >= 0 && e < edge_count());
  return edge_index_at_dst_[static_cast<std::size_t>(e)];
}

inline EdgeId Topology::out_edge(ProcessId p, int local_index) const {
  check_process(p);
  SNAPSTAB_CHECK(local_index >= 0 && local_index < degree(p));
  return out_edge_[static_cast<std::size_t>(row_[static_cast<std::size_t>(p)] +
                                            local_index)];
}

inline EdgeId Topology::in_edge(ProcessId p, int local_index) const {
  check_process(p);
  SNAPSTAB_CHECK(local_index >= 0 && local_index < degree(p));
  return in_edge_[static_cast<std::size_t>(row_[static_cast<std::size_t>(p)] +
                                           local_index)];
}

// All-pairs shortest-path routing over a Topology: for every (at, dst) pair
// the local channel index of the first hop of a shortest path. Ties are
// broken toward the smallest next-hop process id, so the table is a pure
// function of the graph — every process derives the identical table, which
// is the paper's "the topology is not subject to corruption" assumption
// extended to routes (the forwarding service treats the table as read-only
// configuration, like the channel wiring itself).
class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topology);

  int process_count() const noexcept { return n_; }

  // Hop count of a shortest path (0 when at == dst; the topology is
  // connected, so every pair has one).
  int distance(ProcessId at, ProcessId dst) const;
  // First hop of a shortest path at -> dst (requires at != dst).
  ProcessId next_hop(ProcessId at, ProcessId dst) const;
  // Local channel index of that first hop at `at` (requires at != dst).
  int next_index(ProcessId at, ProcessId dst) const;

 private:
  std::size_t cell(ProcessId at, ProcessId dst) const;

  int n_ = 0;
  std::vector<int> dist_;          // n × n hop counts
  std::vector<int> next_index_;    // n × n local indices (-1 on the diagonal)
  std::vector<ProcessId> next_hop_;  // n × n next-hop ids (-1 on the diagonal)
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_SIM_TOPOLOGY_HPP
