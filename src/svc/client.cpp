#include "svc/client.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace snapstab::svc {

template <typename F>
auto Client::with_host(sim::ProcessId p, F&& f) {
  if (sim_ != nullptr) return f(sim_->process_as<ServiceHost>(p));
  if (rt_ != nullptr)
    return rt_->with_process<ServiceHost>(p, std::forward<F>(f));
  return srt_->with_process<ServiceHost>(p, std::forward<F>(f));
}

Session Client::submit_desc(sim::ProcessId origin, const Descriptor& d,
                            CompletionFn cb) {
  // A forwarding session completes by matching the delivery record at its
  // destination — turn recording on there before anything can arrive.
  // Hosts never submitted to this way record nothing (legacy shim-driven
  // worlds keep the allocation-free delivery path).
  if (d.service == ServiceId::ForwardMsg) {
    const int n = sim_ != nullptr   ? sim_->process_count()
                  : rt_ != nullptr ? rt_->process_count()
                                   : srt_->process_count();
    if (d.dst >= 0 && d.dst < n)
      with_host(d.dst, [](ServiceHost& host) {
        host.enable_delivery_recording();
        return 0;
      });
  }
  // The RequestWait / FwdSubmit observation of a driver-side submission
  // goes to the backend's log, exactly where the request_* helpers put it.
  ServiceHost::Emit emit;
  if (sim_ != nullptr) {
    emit = [this, origin](sim::Layer l, sim::ObsKind k, int peer,
                          const Value& v) {
      sim_->log().emit(
          sim::Observation{sim_->step_count(), origin, l, k, peer, v});
    };
  } else if (rt_ != nullptr) {
    emit = [this, origin](sim::Layer l, sim::ObsKind k, int peer,
                          const Value& v) {
      rt_->observe_external(origin, l, k, peer, v);
    };
  } else {
    emit = [this, origin](sim::Layer l, sim::ObsKind k, int peer,
                          const Value& v) {
      srt_->observe_external(origin, l, k, peer, v);
    };
  }
  const ServiceHost::Submitted sub = with_host(
      origin, [&](ServiceHost& host) {
        return host.submit(origin, d, std::move(cb), emit);
      });
  Session s;
  s.key = sub.key;
  s.admission = sub.admission;
  s.coalesced = sub.coalesced;
  if (d.service == ServiceId::ForwardMsg) {
    s.dst = d.dst;
    s.wire_seq = sub.wire_seq;
    s.payload = d.payload;
  }
  return s;
}

SessionState Client::state(const Session& s) {
  const SessionState raw = with_host(s.key.origin, [&](ServiceHost& host) {
    return host.session_state(s.key.seq);
  });
  if (s.key.service != ServiceId::ForwardMsg || raw != SessionState::In)
    return raw;
  // End-to-end completion is cross-host: match the destination's delivery
  // record, then finish the origin's session (fires its callback).
  const bool delivered = with_host(s.dst, [&](ServiceHost& host) {
    return host.consume_delivery(s.key.origin, s.wire_seq, s.payload);
  });
  if (!delivered) return SessionState::In;
  with_host(s.key.origin, [&](ServiceHost& host) {
    host.finish_forward(s.key.seq);
    return 0;
  });
  return SessionState::Done;
}

SessionResult Client::result(const Session& s) {
  return with_host(s.key.origin, [&](ServiceHost& host) {
    return host.session_result(s.key.seq);
  });
}

void Client::release(const Session& s) {
  with_host(s.key.origin, [&](ServiceHost& host) {
    host.release_session(s.key.seq);
    return 0;
  });
}

bool Client::poll_all(const std::vector<Session>& sessions) {
  bool all = true;
  for (const Session& s : sessions)
    if (state(s) != SessionState::Done) all = false;
  return all;
}

AwaitResult Client::await_all(const std::vector<Session>& sessions,
                              AwaitOptions opts) {
  if (sim_ != nullptr) {
    // The stop predicate runs after every step (per opts.policy): resolve
    // each session's host(s) once up front so the hot loop is a phase check
    // per live session, not a dynamic_cast per step.
    struct Slot {
      const Session* s = nullptr;
      ServiceHost* origin = nullptr;
      ServiceHost* dst = nullptr;  // accepted ForwardMsg only
      bool done = false;
    };
    std::vector<Slot> slots;
    slots.reserve(sessions.size());
    for (const Session& s : sessions) {
      Slot slot;
      slot.s = &s;
      slot.origin = &sim_->process_as<ServiceHost>(s.key.origin);
      if (s.key.service == ServiceId::ForwardMsg && s.accepted())
        slot.dst = &sim_->process_as<ServiceHost>(s.dst);
      slots.push_back(slot);
    }
    const auto poll = [&slots] {
      bool all = true;
      for (Slot& slot : slots) {
        if (slot.done) continue;
        const Session& s = *slot.s;
        SessionState st = slot.origin->session_state(s.key.seq);
        if (st == SessionState::In && slot.dst != nullptr &&
            slot.dst->consume_delivery(s.key.origin, s.wire_seq, s.payload)) {
          slot.origin->finish_forward(s.key.seq);
          st = SessionState::Done;
        }
        if (st == SessionState::Done)
          slot.done = true;
        else
          all = false;
      }
      return all;
    };
    if (poll()) return AwaitResult::Done;
    const sim::Simulator::StopReason reason = sim_->run(
        opts.max_steps, [&poll](sim::Simulator&) { return poll(); },
        opts.policy);
    if (poll()) return AwaitResult::Done;
    // Quiescent with sessions incomplete: no step is enabled, so no amount
    // of budget can finish the batch (a stranded session — e.g. one whose
    // in-flight computation a fault wiped — is the caller's to handle).
    return reason == sim::Simulator::StopReason::Quiescent
               ? AwaitResult::RuntimeDown
               : AwaitResult::BudgetExhausted;
  }
  if (rt_ != nullptr) {
    // ThreadRuntime::run is one-shot. A second await — typically a retry
    // after a timeout — must not trip that assertion: the runtime's threads
    // have already joined, so one poll answers the question, and an
    // incomplete session can never complete on this runtime again.
    if (rt_->started())
      return poll_all(sessions) ? AwaitResult::Done : AwaitResult::RuntimeDown;
    return rt_->run([this, &sessions] { return poll_all(sessions); },
                    opts.timeout)
               ? AwaitResult::Done
               : AwaitResult::BudgetExhausted;
  }
  SNAPSTAB_CHECK(srt_ != nullptr);
  // SocketRuntime::run is NOT one-shot — the node threads keep serving
  // between awaits, so a timed-out batch can be awaited again with a
  // bigger budget. Only an explicit shutdown() makes the runtime terminal.
  if (poll_all(sessions)) return AwaitResult::Done;
  if (srt_->run([this, &sessions] { return poll_all(sessions); },
                opts.timeout))
    return AwaitResult::Done;
  return srt_->running() ? AwaitResult::BudgetExhausted
                         : AwaitResult::RuntimeDown;
}

}  // namespace snapstab::svc
