// client.hpp — the driver-side half of the service API.
//
// A Client binds the uniform submit / poll / complete surface to an
// execution backend: the deterministic Simulator or the genuinely
// concurrent ThreadRuntime. The *same* client program runs against either
// — submit typed descriptors, batch-await with run_until, read results —
// which is what lets examples and benches be written once (see
// examples/service_client.cpp).
//
//   svc::Client client(sim);                      // or Client(rt)
//   auto s1 = client.submit(0, svc::PifBroadcast{Value::text("hello")});
//   auto s2 = client.submit(3, svc::ForwardMsg{.dst = 7, .payload = v});
//   client.run_until({s1, s2});                   // batch-await Done
//   client.result(s2).value;                      // the delivery ack
//
// Backend notes:
//   * Simulator: run_until drives the PR-4 sealed step loop (sim.run with a
//     session-completion stop predicate; StopPolicy{check_every} amortizes
//     the check for bulk runs). Everything is deterministic and adds no RNG
//     draws — a session-driven world replays bit-identically.
//   * ThreadRuntime: submissions lock the target node; run_until maps onto
//     ThreadRuntime::run (one-shot — a ThreadRuntime instance awaits once)
//     with the same completion predicate, polled by the supervisor.
//   * SocketRuntime: the real-wire backend (UDP loopback or multi-process;
//     see net/socket_runtime.hpp). Submissions lock the target node exactly
//     like the thread runtime; await_all maps onto SocketRuntime::run, which
//     is NOT one-shot — the node threads keep serving between awaits, so a
//     timed-out batch can simply be awaited again with more budget.
#ifndef SNAPSTAB_SVC_CLIENT_HPP
#define SNAPSTAB_SVC_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "net/socket_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/simulator.hpp"
#include "svc/host.hpp"
#include "svc/service.hpp"

namespace snapstab::svc {

// A value handle on one submitted session. Copyable; poll through the
// Client that issued it. Forwarding sessions carry the matching data the
// client needs to detect the end-to-end delivery at the destination.
struct Session {
  SessionKey key;
  ForwardSubmit admission = ForwardSubmit::Accepted;
  bool coalesced = false;
  sim::ProcessId dst = -1;     // ForwardMsg
  std::uint32_t wire_seq = 0;  // ForwardMsg
  Value payload;               // ForwardMsg

  bool accepted() const noexcept {
    return admission == ForwardSubmit::Accepted;
  }
};

struct AwaitOptions {
  std::uint64_t max_steps = 10'000'000;     // Simulator step budget
  std::chrono::milliseconds timeout{30'000};  // ThreadRuntime wall budget
  sim::StopPolicy policy{};                 // Simulator check cadence
};

// Terminal answer of a batch await. `BudgetExhausted` means more budget
// could still finish the batch (steps remain enabled / threads still
// running); `RuntimeDown` means no budget can — the Simulator went
// quiescent with sessions incomplete, or the one-shot ThreadRuntime's
// threads have already joined. The distinction matters on the ThreadRuntime
// path, where the historic bool conflated "try a bigger timeout" with
// "this runtime will never answer".
enum class AwaitResult : std::uint8_t { Done, BudgetExhausted, RuntimeDown };

inline constexpr int kAwaitResultCount = 3;

constexpr const char* await_result_name(AwaitResult r) noexcept {
  static_assert(kAwaitResultCount ==
                    static_cast<int>(AwaitResult::RuntimeDown) + 1,
                "new AwaitResult: update kAwaitResultCount and every switch");
  switch (r) {
    case AwaitResult::Done: return "done";
    case AwaitResult::BudgetExhausted: return "budget-exhausted";
    case AwaitResult::RuntimeDown: return "runtime-down";
  }
  return "?";
}

// Which execution backend a Client is bound to.
enum class BackendKind : std::uint8_t { Simulator, Thread, Socket };

inline constexpr int kBackendKindCount = 3;

constexpr const char* backend_kind_name(BackendKind b) noexcept {
  static_assert(kBackendKindCount == static_cast<int>(BackendKind::Socket) + 1,
                "new BackendKind: update kBackendKindCount and every switch");
  switch (b) {
    case BackendKind::Simulator: return "simulator";
    case BackendKind::Thread: return "thread";
    case BackendKind::Socket: return "socket";
  }
  return "?";
}

class Client {
 public:
  using CompletionFn = ServiceHost::CompletionFn;

  explicit Client(sim::Simulator& sim) : sim_(&sim) {}
  explicit Client(runtime::ThreadRuntime& rt) : rt_(&rt) {}
  explicit Client(net::SocketRuntime& srt) : srt_(&srt) {}

  // Typed submit: any descriptor from svc/service.hpp.
  template <typename D>
  Session submit(sim::ProcessId origin, const D& d, CompletionFn cb = {}) {
    return submit_desc(origin, Descriptor::of(d), std::move(cb));
  }
  Session submit_desc(sim::ProcessId origin, const Descriptor& d,
                      CompletionFn cb = {});

  // Uniform Wait / In / Done (the paper's Request variable). Polling a
  // forwarding session is what completes it: the client matches the
  // destination host's delivery record back to the origin's session.
  SessionState state(const Session& s);
  bool done(const Session& s) { return state(s) == SessionState::Done; }
  SessionResult result(const Session& s);
  // Recycles a completed session's host-side record (bulk drivers).
  void release(const Session& s);

  // Batch-await with a terminal reason: runs the backend until every
  // session is Done, the budget runs out, or the runtime can no longer make
  // progress. Simulator: deterministic, stop checked per `policy`.
  // ThreadRuntime: one-shot, wall-clock bounded; a second await on a
  // started (joined) runtime polls instead of spinning.
  AwaitResult await_all(const std::vector<Session>& sessions,
                        AwaitOptions opts = {});

  // Historic bool shim over await_all: true iff every session is Done.
  bool run_until(const std::vector<Session>& sessions,
                 AwaitOptions opts = {}) {
    return await_all(sessions, opts) == AwaitResult::Done;
  }
  bool run_until(std::initializer_list<Session> sessions,
                 AwaitOptions opts = {}) {
    return run_until(std::vector<Session>(sessions), opts);
  }
  bool run_until(const Session& s, AwaitOptions opts = {}) {
    return run_until(std::vector<Session>{s}, opts);
  }

  sim::Simulator* simulator() noexcept { return sim_; }
  runtime::ThreadRuntime* thread_runtime() noexcept { return rt_; }
  net::SocketRuntime* socket_runtime() noexcept { return srt_; }
  BackendKind backend() const noexcept {
    if (sim_ != nullptr) return BackendKind::Simulator;
    if (rt_ != nullptr) return BackendKind::Thread;
    return BackendKind::Socket;
  }

 private:
  // Runs `f` on the ServiceHost at `p`: direct for the simulator backend,
  // under the node lock for the thread and socket runtimes.
  template <typename F>
  auto with_host(sim::ProcessId p, F&& f);
  bool poll_all(const std::vector<Session>& sessions);

  sim::Simulator* sim_ = nullptr;
  runtime::ThreadRuntime* rt_ = nullptr;
  net::SocketRuntime* srt_ = nullptr;
};

}  // namespace snapstab::svc

#endif  // SNAPSTAB_SVC_CLIENT_HPP
