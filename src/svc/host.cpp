#include "svc/host.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace snapstab::svc {

namespace {

// FNV-1a over the rendered state values: a stable, pool-independent digest
// for Snapshot session results (the full vector stays inspectable through
// host.snapshot().collected()).
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ServiceHost::ServiceHost(HostConfig config) : cfg_(std::move(config)) {
  SNAPSTAB_CHECK_MSG(cfg_.degree >= 1, "a host needs at least one channel");
  if (cfg_.with_me || cfg_.with_election) cfg_.with_idl = true;
  if (cfg_.with_pif) {
    pif_ = std::make_unique<core::Pif>(cfg_.degree, cfg_.channel_capacity);
    if (cfg_.with_idl)
      idl_ = std::make_unique<core::Idl>(cfg_.id, cfg_.degree, *pif_);
    if (cfg_.with_me)
      me_ = std::make_unique<core::Me>(cfg_.id, cfg_.degree, *pif_, *idl_,
                                       cfg_.me_options);
    if (cfg_.with_reset)
      reset_ = std::make_unique<core::Reset>(*pif_, cfg_.on_reset);
    if (cfg_.with_snapshot)
      snapshot_ = std::make_unique<core::Snapshot>(*pif_, cfg_.degree,
                                                   cfg_.local_state);
    if (cfg_.with_termdetect)
      detect_ = std::make_unique<core::TermDetect>(*pif_, cfg_.degree,
                                                   cfg_.app.counters);
    if (cfg_.with_election)
      election_ = std::make_unique<core::Election>(*idl_);
    core::Pif::Callbacks cb;
    cb.on_brd = [this](sim::Context& ctx, int ch, const Value& b) {
      return on_brd(ctx, ch, b);
    };
    cb.on_fck = [this](sim::Context& ctx, int ch, const Value& f) {
      on_fck(ctx, ch, f);
    };
    pif_->set_callbacks(std::move(cb));
  } else {
    SNAPSTAB_CHECK_MSG(!cfg_.with_idl && !cfg_.with_me && !cfg_.with_reset &&
                           !cfg_.with_snapshot && !cfg_.with_termdetect &&
                           !cfg_.with_election,
                       "every PIF-based service needs with_pif");
  }
  if (cfg_.routes != nullptr) {
    SNAPSTAB_CHECK_MSG(cfg_.self >= 0,
                       "the ForwardMsg service needs the host's global id");
    fwd_ = std::make_unique<core::Forward>(cfg_.self, cfg_.degree,
                                           cfg_.routes, cfg_.forward_options);
    // Recording is off until a client submits a ForwardMsg session
    // somewhere in the world (enable_delivery_recording): shim-driven
    // worlds keep the zero-allocation delivery path and grow nothing.
    fwd_->set_on_deliver([this](const FwdHeader& h, const Value& payload) {
      if (record_deliveries_)
        deliveries_.push_back(Delivery{h.origin, h.seq & 0xFFFFFu, payload});
    });
  }
  SNAPSTAB_CHECK_MSG(pif_ != nullptr || fwd_ != nullptr,
                     "a host must serve at least one service");
}

ServiceHost::~ServiceHost() = default;

ServiceHost::SessionRec* ServiceHost::find(std::uint32_t seq) {
  if (seq == cache_seq_ && slots_[cache_slot_].seq == seq)
    return &slots_[cache_slot_];
  const auto it = by_seq_.find(seq);
  if (it == by_seq_.end()) return nullptr;
  cache_seq_ = seq;
  cache_slot_ = it->second;
  return &slots_[it->second];
}

const ServiceHost::SessionRec* ServiceHost::find(std::uint32_t seq) const {
  return const_cast<ServiceHost*>(this)->find(seq);
}

std::uint64_t ServiceHost::desc_hash(const Descriptor& d) {
  // FNV-1a over exactly what Descriptor::operator== compares. Text payloads
  // mix the resolved string, not the (StrId, pool-tag) pair: two descriptors
  // holding the same text interned into different pools compare equal, so
  // they must hash equal too.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(d.service));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(d.dst)));
  const Value& v = d.payload;
  if (v.is_int()) {
    mix(1);
    mix(static_cast<std::uint64_t>(v.as_int()));
  } else if (v.is_token()) {
    mix(2);
    mix(static_cast<std::uint64_t>(v.as_token()));
  } else if (v.is_text()) {
    mix(3);
    h = fnv1a(h, v.as_text());
  } else {
    mix(0);
  }
  return h;
}

std::uint32_t ServiceHost::alloc_slot(SessionRec&& rec) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(rec);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(rec));
  }
  by_seq_.emplace(slots_[slot].seq, slot);
  return slot;
}

core::RequestState ServiceHost::layer_state(ServiceId s) const {
  switch (s) {
    case ServiceId::PifBroadcast: return pif_->request_state();
    case ServiceId::Idl: return idl_->request_state();
    case ServiceId::Election: return election_->request_state();
    case ServiceId::CriticalSection: return me_->request_state();
    case ServiceId::Reset: return reset_->request_state();
    case ServiceId::Snapshot: return snapshot_->request_state();
    case ServiceId::TermDetect: return detect_->request_state();
    case ServiceId::ForwardMsg: return core::RequestState::In;  // client-run
  }
  return core::RequestState::Done;
}

bool ServiceHost::service_available(ServiceId s) const {
  if (s == ServiceId::ForwardMsg) return fwd_ != nullptr;
  // An ME host's phase cycle drives IDL and PIF autonomously; only the CS
  // service may share that stack.
  if (me_ != nullptr) return s == ServiceId::CriticalSection;
  switch (s) {
    case ServiceId::PifBroadcast: return pif_ != nullptr;
    case ServiceId::Idl: return idl_ != nullptr;
    case ServiceId::Election: return election_ != nullptr;
    case ServiceId::CriticalSection: return false;  // needs me_
    case ServiceId::Reset: return reset_ != nullptr;
    case ServiceId::Snapshot: return snapshot_ != nullptr;
    case ServiceId::TermDetect: return detect_ != nullptr;
    case ServiceId::ForwardMsg: return fwd_ != nullptr;
  }
  return false;
}

template <typename EmitFn>
void ServiceHost::start(SessionRec& rec, const EmitFn& emit) {
  // Sets Request := Wait on the serving layer and records the request event
  // with the exact layer/peer/value the historic request_* helpers used.
  switch (rec.desc.service) {
    case ServiceId::PifBroadcast:
      pif_->request(rec.desc.payload);
      emit(sim::Layer::Pif, sim::ObsKind::RequestWait, -1, rec.desc.payload);
      break;
    case ServiceId::Idl:
      idl_->request();
      emit(sim::Layer::Idl, sim::ObsKind::RequestWait, -1, Value::none());
      break;
    case ServiceId::Election:
      election_->request();
      emit(sim::Layer::Idl, sim::ObsKind::RequestWait, -1, Value::none());
      break;
    case ServiceId::CriticalSection: {
      const bool accepted = me_->request_cs();
      SNAPSTAB_CHECK_MSG(accepted, "CS session started while ME not Done");
      emit(sim::Layer::Me, sim::ObsKind::RequestWait, -1, Value::none());
      break;
    }
    case ServiceId::Reset:
      reset_->request();
      emit(sim::Layer::Service, sim::ObsKind::RequestWait, -1,
           Value::token(Token::Reset));
      break;
    case ServiceId::Snapshot:
      snapshot_->request();
      emit(sim::Layer::Service, sim::ObsKind::RequestWait, -1,
           Value::token(Token::SnapQuery));
      break;
    case ServiceId::TermDetect:
      detect_->request();
      emit(sim::Layer::Service, sim::ObsKind::RequestWait, -1,
           Value::token(Token::Probe));
      break;
    case ServiceId::ForwardMsg:
      SNAPSTAB_CHECK_MSG(false, "ForwardMsg sessions never start here");
      break;
  }
  rec.phase = SessionRec::Phase::Active;
}

void ServiceHost::complete(SessionRec& rec) {
  rec.phase = SessionRec::Phase::Done;
  rec.result.completed = true;
  switch (rec.desc.service) {
    case ServiceId::PifBroadcast:
      rec.result.value = rec.desc.payload;
      break;
    case ServiceId::Idl:
      rec.result.min_id = idl_->min_id();
      break;
    case ServiceId::Election:
      rec.result.min_id = election_->leader();
      rec.result.rank = election_->rank();
      break;
    case ServiceId::CriticalSection:
      rec.result.cs_granted = true;
      break;
    case ServiceId::Reset:
      break;
    case ServiceId::Snapshot: {
      std::uint64_t h = 14695981039346656037ull;
      h = fnv1a(h, snapshot_->own_state().to_string());
      for (const Value& v : snapshot_->collected()) h = fnv1a(h, v.to_string());
      rec.result.value = Value::integer(static_cast<std::int64_t>(h));
      break;
    }
    case ServiceId::TermDetect:
      rec.result.termination_claimed = detect_->termination_claimed();
      rec.result.waves = detect_->waves_used();
      break;
    case ServiceId::ForwardMsg:
      rec.result.value = rec.desc.payload;  // the delivery ack
      break;
  }
  if (rec.on_complete) {
    // Fire last, on copies: the callback may submit or release sessions,
    // invalidating `rec`.
    auto cb = std::move(rec.on_complete);
    rec.on_complete = nullptr;
    const SessionKey key{origin_, rec.desc.service, rec.seq};
    const SessionResult result = rec.result;
    cb(key, result);
  }
}

void ServiceHost::poll_sessions(sim::Context& ctx) {
  if (stack_active_ < 0 && pending_n_ == 0) return;
  if (stack_active_ >= 0) {
    SessionRec* rec = find(static_cast<std::uint32_t>(stack_active_));
    if (rec == nullptr) {
      stack_active_ = -1;  // released mid-flight
    } else if (layer_state(rec->desc.service) == core::RequestState::Done) {
      stack_active_ = -1;
      complete(*rec);
    }
  }
  // Start the next queued session as soon as the stack is idle and its
  // layer has drained (ghost computations from a corrupted initial
  // configuration run to Done on their own first).
  while (stack_active_ < 0 && !pending_.empty()) {
    const std::uint32_t seq = pending_.front();
    SessionRec* rec = find(seq);
    if (rec == nullptr) {  // released while queued
      pending_.pop_front();
      --pending_n_;
      continue;
    }
    if (layer_state(rec->desc.service) != core::RequestState::Done) break;
    pending_.pop_front();
    --pending_n_;
    // The session leaves the Queued phase: drop its coalescing-index entry
    // so a later identical submit queues fresh instead of joining an
    // already-running computation.
    const auto range = queued_by_desc_.equal_range(desc_hash(rec->desc));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == seq) {
        queued_by_desc_.erase(it);
        break;
      }
    }
    start(*rec, [&ctx](sim::Layer l, sim::ObsKind k, int peer,
                       const Value& v) { ctx.observe(l, k, peer, v); });
    stack_active_ = rec->seq;
  }
}

ServiceHost::Submitted ServiceHost::submit(sim::ProcessId origin,
                                           const Descriptor& d,
                                           CompletionFn on_complete,
                                           const Emit& emit) {
  SNAPSTAB_CHECK_MSG(origin_ < 0 || origin_ == origin,
                     "a host serves exactly one origin process");
  origin_ = origin;
  SNAPSTAB_CHECK_MSG(service_available(d.service),
                     "service not configured on this host");

  Submitted out;
  out.key = SessionKey{origin, d.service, next_session_};

  if (d.service == ServiceId::ForwardMsg) {
    SessionRec rec;
    rec.seq = next_session_++;
    rec.desc = d;
    rec.wire_seq = fwd_->next_wire_seq();
    rec.on_complete = std::move(on_complete);
    const core::ForwardSubmit admission = fwd_->submit(d.payload, d.dst);
    rec.result.admission = admission;
    out.admission = admission;
    if (admission != core::ForwardSubmit::Accepted)
      ++degrade_.refusals_by_reason[static_cast<std::size_t>(admission)];
    out.wire_seq = rec.wire_seq;
    if (admission == core::ForwardSubmit::Accepted) {
      rec.phase = SessionRec::Phase::Active;
      emit(sim::Layer::Service, sim::ObsKind::FwdSubmit, d.dst, d.payload);
      alloc_slot(std::move(rec));
    } else {
      // Born Done with the refusal reason; completed stays false. The
      // callback fires on locals, never on the stored record: it may
      // reentrantly submit (reallocating the slot arena) or release.
      rec.phase = SessionRec::Phase::Done;
      CompletionFn cb = std::move(rec.on_complete);
      rec.on_complete = nullptr;
      const SessionResult result = rec.result;
      alloc_slot(std::move(rec));
      if (cb) cb(out.key, result);
    }
    return out;
  }

  // Duplicate-submit coalescing: an identical descriptor already queued is
  // the same pending request — return its key instead of queuing twice. The
  // new caller's callback still fires: it is chained onto the twin's. The
  // lookup is by descriptor hash (coalescing keeps at most one queued
  // session per distinct descriptor, so any surviving match is THE twin);
  // the historic scan over pending_ made queueing C sessions O(C^2).
  const std::uint64_t dh = desc_hash(d);
  const auto range = queued_by_desc_.equal_range(dh);
  for (auto it = range.first; it != range.second; ++it) {
    SessionRec* queued = find(it->second);
    if (queued == nullptr || queued->phase != SessionRec::Phase::Queued)
      continue;  // stale entry (hash collision with a since-started session)
    if (queued->desc != d) continue;  // hash collision, different descriptor
    out.key.seq = queued->seq;
    out.coalesced = true;
    if (on_complete) {
      if (queued->on_complete) {
        queued->on_complete =
            [first = std::move(queued->on_complete),
             second = std::move(on_complete)](const SessionKey& k,
                                              const SessionResult& r) {
              first(k, r);
              second(k, r);
            };
      } else {
        queued->on_complete = std::move(on_complete);
      }
    }
    return out;
  }

  SessionRec rec;
  rec.seq = next_session_++;
  rec.desc = d;
  rec.on_complete = std::move(on_complete);
  const std::uint32_t seq = rec.seq;
  const bool start_now = stack_active_ < 0 && pending_n_ == 0 &&
                         layer_state(d.service) == core::RequestState::Done;
  const std::uint32_t slot = alloc_slot(std::move(rec));
  if (start_now) {
    start(slots_[slot], emit);
    stack_active_ = seq;
  } else {
    pending_.push_back(seq);
    ++pending_n_;
    queued_by_desc_.emplace(dh, seq);
  }
  return out;
}

SessionState ServiceHost::session_state(std::uint32_t seq) const {
  const SessionRec* rec = find(seq);
  if (rec == nullptr) return SessionState::Done;  // released == forgotten
  switch (rec->phase) {
    case SessionRec::Phase::Queued: return SessionState::Wait;
    case SessionRec::Phase::Done: return SessionState::Done;
    case SessionRec::Phase::Active: {
      if (rec->desc.service == ServiceId::ForwardMsg) return SessionState::In;
      const core::RequestState ls = layer_state(rec->desc.service);
      // Layer already Done but the completion poll has not run yet (a
      // supervising thread glimpsing between activations): still In.
      return ls == core::RequestState::Done ? SessionState::In : ls;
    }
  }
  return SessionState::Done;
}

SessionResult ServiceHost::session_result(std::uint32_t seq) const {
  const SessionRec* rec = find(seq);
  return rec != nullptr ? rec->result : SessionResult{};
}

void ServiceHost::release_session(std::uint32_t seq) {
  const auto it = by_seq_.find(seq);
  if (it == by_seq_.end()) return;
  const std::uint32_t slot = it->second;
  if (slots_[slot].phase != SessionRec::Phase::Done) return;
  // Reset the record (dropping payload Values and any completion closure)
  // and push the slot onto the free list — LIFO, so a submit/release
  // recycling loop keeps touching the same hot slots.
  slots_[slot] = SessionRec{};
  by_seq_.erase(it);
  free_.push_back(slot);
  // The freed record's seq resets to 0 — a real session id — so a stale
  // cache entry for it must not survive the release.
  if (cache_seq_ == seq) cache_seq_ = kNoSession;
}

void ServiceHost::take_deliveries(std::vector<Delivery>& out) {
  out.insert(out.end(), std::make_move_iterator(deliveries_.begin()),
             std::make_move_iterator(deliveries_.end()));
  deliveries_.clear();
}

bool ServiceHost::consume_delivery(sim::ProcessId origin,
                                   std::uint32_t wire_seq,
                                   const Value& payload) {
  for (auto it = deliveries_.begin(); it != deliveries_.end(); ++it) {
    if (it->origin == origin && it->wire_seq == wire_seq &&
        it->payload == payload) {
      deliveries_.erase(it);
      return true;
    }
  }
  return false;
}

void ServiceHost::finish_forward(std::uint32_t seq) {
  SessionRec* rec = find(seq);
  if (rec == nullptr || rec->phase != SessionRec::Phase::Active) return;
  complete(*rec);
}

void ServiceHost::on_tick(sim::Context& ctx) {
  if (me_ != nullptr) {
    // The historic MeStackProcess discipline: a process inside its critical
    // section executes nothing else (the CS sits inside atomic action A3).
    if (me_->in_cs()) {
      me_->tick(ctx);
      poll_sessions(ctx);
      return;
    }
    me_->tick(ctx);
    if (!me_->in_cs()) {  // A3 may just have entered the CS
      idl_->tick(ctx);
      pif_->tick(ctx);
    }
    if (fwd_ != nullptr) fwd_->tick(ctx);
    poll_sessions(ctx);
    return;
  }
  if (cfg_.unsafe_lower_layer_first && idl_ != nullptr) {
    // Ablation only: reopens the ghost-feedback window of DESIGN.md §6.3.
    pif_->tick(ctx);
    idl_->tick(ctx);
    poll_sessions(ctx);
    return;
  }
  // Upper layers before PIF: a sub-protocol request submitted during this
  // activation starts within the same atomic step, exactly as the paper's
  // activation semantics prescribes (see the historic stack.cpp comment).
  if (reset_ != nullptr) reset_->tick(ctx);
  if (snapshot_ != nullptr) snapshot_->tick(ctx);
  if (detect_ != nullptr) detect_->tick(ctx);
  if (idl_ != nullptr) idl_->tick(ctx);
  if (pif_ != nullptr) pif_->tick(ctx);
  if (cfg_.app.on_tick) cfg_.app.on_tick(ctx);
  if (fwd_ != nullptr) fwd_->tick(ctx);
  poll_sessions(ctx);
}

void ServiceHost::on_message(sim::Context& ctx, int ch, const Message& m) {
  switch (m.kind) {
    case MsgKind::Pif:
      if (pif_ != nullptr) pif_->handle_message(ctx, ch, m);
      break;
    case MsgKind::FwdData:
    case MsgKind::FwdEcho:
      if (fwd_ != nullptr) fwd_->handle_message(ctx, ch, m);
      break;
    case MsgKind::App:
      if (cfg_.app.on_message) cfg_.app.on_message(ctx, ch, m.b);
      break;
    case MsgKind::NaiveBrd:
    case MsgKind::NaiveFck:
    case MsgKind::SeqBrd:
    case MsgKind::SeqFck:
      break;  // baseline traffic: not ours, ignored
  }
  poll_sessions(ctx);
}

bool ServiceHost::tick_enabled() const {
  if (pif_ != nullptr && pif_->tick_enabled()) return true;
  if (idl_ != nullptr && idl_->tick_enabled()) return true;
  if (me_ != nullptr && me_->tick_enabled()) return true;
  if (reset_ != nullptr && reset_->tick_enabled()) return true;
  if (snapshot_ != nullptr && snapshot_->tick_enabled()) return true;
  if (detect_ != nullptr && detect_->tick_enabled()) return true;
  if (cfg_.app.has_work && cfg_.app.has_work()) return true;
  if (fwd_ != nullptr && fwd_->tick_enabled()) return true;
  return pending_n_ > 0;
}

void ServiceHost::randomize(Rng& rng) {
  // Protocol layers only, in the historic wrapper order (pinned draw
  // streams); session records are driver-side application state.
  if (pif_ != nullptr) pif_->randomize(rng);
  if (idl_ != nullptr) idl_->randomize(rng);
  if (me_ != nullptr) me_->randomize(rng);
  if (reset_ != nullptr) reset_->randomize(rng);
  if (snapshot_ != nullptr) snapshot_->randomize(rng);
  if (detect_ != nullptr) detect_->randomize(rng);
  if (fwd_ != nullptr) fwd_->randomize(rng);
}

void ServiceHost::crash_restart(Rng& rng) {
  randomize(rng);
  ++degrade_.crashes;
  // Fail every live session. All host bookkeeping is mutated BEFORE any
  // callback fires: a completion callback may reentrantly submit or release,
  // reallocating the slot arena mid-iteration.
  struct Killed {
    CompletionFn cb;
    SessionKey key;
    SessionResult result;
  };
  std::vector<Killed> killed;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    SessionRec& rec = slots_[slot];
    const auto it = by_seq_.find(rec.seq);
    if (it == by_seq_.end() || it->second != slot) continue;  // free slot
    if (rec.phase == SessionRec::Phase::Done) continue;
    rec.phase = SessionRec::Phase::Done;
    rec.result.completed = false;
    ++degrade_.sessions_killed;
    if (rec.on_complete) {
      Killed k;
      k.cb = std::move(rec.on_complete);
      rec.on_complete = nullptr;
      k.key = SessionKey{origin_, rec.desc.service, rec.seq};
      k.result = rec.result;
      killed.push_back(std::move(k));
    }
  }
  pending_.clear();
  pending_n_ = 0;
  queued_by_desc_.clear();
  stack_active_ = -1;
  deliveries_.clear();
  for (Killed& k : killed) k.cb(k.key, k.result);
}

Value ServiceHost::on_brd(sim::Context& ctx, int ch, const Value& b) {
  // A received broadcast payload selects the receive-brd handler of the
  // layer it names; unclaimed payloads fall to the application hook, then
  // to a polite OK (ghost broadcasts must be acknowledged).
  switch (b.as_token(Token::Ok)) {
    case Token::IdlQuery:
      if (idl_ != nullptr) return idl_->on_brd(ctx, ch);
      break;
    case Token::Ask:
      if (me_ != nullptr) return me_->on_brd_ask(ctx, ch);
      break;
    case Token::Exit:
      if (me_ != nullptr) return me_->on_brd_exit(ctx, ch);
      break;
    case Token::ExitCs:
      if (me_ != nullptr) return me_->on_brd_exitcs(ctx, ch);
      break;
    case Token::Reset:
      if (reset_ != nullptr) return reset_->on_brd(ctx, ch);
      break;
    case Token::SnapQuery:
      if (snapshot_ != nullptr) return snapshot_->on_brd(ctx, ch);
      break;
    case Token::Probe:
      if (detect_ != nullptr) return detect_->on_brd(ctx, ch);
      break;
    default:
      break;
  }
  if (cfg_.app_brd) return cfg_.app_brd(ctx, ch, b);
  return Value::token(Token::Ok);
}

void ServiceHost::on_fck(sim::Context& ctx, int ch, const Value& f) {
  // A feedback is routed by the process's own current B-Mes: receive-fck
  // events only concern the process's own computation.
  switch (pif_->b_mes().as_token(Token::Ok)) {
    case Token::IdlQuery:
      if (idl_ != nullptr) idl_->on_fck(ctx, ch, f);
      break;
    case Token::Ask:
      if (me_ != nullptr) me_->on_fck_ask(ctx, ch, f);
      break;
    case Token::SnapQuery:
      if (snapshot_ != nullptr) snapshot_->on_fck(ctx, ch, f);
      break;
    case Token::Probe:
      if (detect_ != nullptr) detect_->on_fck(ctx, ch, f);
      break;
    default:
      break;  // EXIT / EXITCS / ghost feedbacks: do nothing
  }
}

std::unique_ptr<sim::Simulator> service_world(
    sim::Topology topology, std::size_t channel_capacity, std::uint64_t seed,
    const std::function<HostConfig(sim::ProcessId)>& config_of,
    bool with_forward, core::ForwardOptions forward_options) {
  auto sim = std::make_unique<sim::Simulator>(std::move(topology),
                                              channel_capacity, seed);
  std::shared_ptr<const sim::RoutingTable> routes;
  if (with_forward)
    routes = std::make_shared<const sim::RoutingTable>(sim->topology());
  forward_options.channel_capacity = static_cast<int>(channel_capacity);
  for (sim::ProcessId p = 0; p < sim->process_count(); ++p) {
    HostConfig cfg = config_of ? config_of(p) : HostConfig{};
    cfg.degree = sim->topology().degree(p);
    cfg.channel_capacity = static_cast<int>(channel_capacity);
    cfg.self = p;
    if (with_forward) {
      cfg.routes = routes;
      cfg.forward_options = forward_options;
    }
    sim->add_process(std::make_unique<ServiceHost>(std::move(cfg)));
  }
  return sim;
}

}  // namespace snapstab::svc
