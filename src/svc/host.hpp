// host.hpp — the per-process service host.
//
// A ServiceHost is a sim::Process that owns the process's protocol stack
// (one shared PIF underneath, per the paper's one-message-type rule, plus
// whichever service layers the HostConfig enables) and serves *sessions*:
// typed requests submitted through svc::Client, tracked Wait → In → Done,
// queued deterministically when the stack is busy, completed with a
// uniform SessionResult.
//
// The host replaces the seven bespoke `*Process` wrappers that used to
// live in core/stack.hpp — those classes survive as thin configured
// subclasses (see stack.hpp) so existing worlds, tests and the pinned
// golden traces are untouched.
//
// Dispatch rule (unchanged from the historic wrappers, mirroring the
// paper's actions): a received broadcast payload selects the receive-brd
// handler of the layer it names (IDL query -> Idl::on_brd, ASK/EXIT/EXITCS
// -> the ME handlers, RESET/SNAPQUERY/PROBE -> the PIF-based services,
// anything else falls to the application hook or a polite OK); a feedback
// is routed by the process's *own* current B-Mes.
//
// Determinism contract: the session machinery performs NO RNG draws and
// emits observations only where the historic request_* helpers did
// (RequestWait at session start, with identical layer/peer/value), so a
// world driven through sessions and one driven through the old helpers
// produce bit-identical executions.
#ifndef SNAPSTAB_SVC_HOST_HPP
#define SNAPSTAB_SVC_HOST_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "core/election.hpp"
#include "core/forward.hpp"
#include "core/idl.hpp"
#include "core/me.hpp"
#include "core/pif.hpp"
#include "core/reset.hpp"
#include "core/snapshot.hpp"
#include "core/termdetect.hpp"
#include "sim/process.hpp"
#include "svc/service.hpp"

namespace snapstab::svc {

struct HostConfig {
  std::int64_t id = 0;         // identity (IDL / ME / election)
  int degree = 0;              // incident channels in the world's topology
  int channel_capacity = 1;    // known bound c (PIF flag range {0..2c+2})

  bool with_pif = true;        // the shared lower layer; required by every
                               // service except ForwardMsg
  bool with_idl = false;
  bool with_me = false;        // implies with_idl
  bool with_reset = false;
  bool with_snapshot = false;
  bool with_termdetect = false;
  bool with_election = false;  // implies with_idl

  core::MeOptions me_options;
  // Application feedback hook for broadcasts no service layer claims
  // (the historic PifProcess behavior); defaults to acknowledging with OK.
  std::function<Value(sim::Context&, int, const Value&)> app_brd;
  std::function<void(sim::Context&)> on_reset;   // reset hook
  std::function<Value()> local_state;            // snapshot state supplier
  core::DiffusingApp app;                        // termdetect's application
  // Non-null enables the ForwardMsg service (self must be set, see ctor).
  std::shared_ptr<const sim::RoutingTable> routes;
  core::ForwardOptions forward_options;
  sim::ProcessId self = -1;    // global id; required for ForwardMsg

  // Reverses the IDL/PIF tick order (ablation experiment only).
  bool unsafe_lower_layer_first = false;
};

class ServiceHost : public sim::Process {
 public:
  using CompletionFn =
      std::function<void(const SessionKey&, const SessionResult&)>;
  // Sink for the RequestWait observation of a session started at submit
  // time (driver-side, outside any activation — the svc::Client binds this
  // to the backend's observation log). Deferred starts emit through ctx.
  using Emit = std::function<void(sim::Layer, sim::ObsKind, int peer,
                                  const Value&)>;

  struct Submitted {
    SessionKey key;
    ForwardSubmit admission = ForwardSubmit::Accepted;
    bool coalesced = false;   // joined an identical queued session
    std::uint32_t wire_seq = 0;  // ForwardMsg: the hop-layer sequence number
  };

  explicit ServiceHost(HostConfig config);
  ~ServiceHost() override;

  // --- session surface (driver side; svc::Client is the usual caller) ----
  // Submits a request. PIF-based services start immediately when the stack
  // is idle and their layer is Done; otherwise the session queues (state
  // Wait) and starts deterministically, in submission order, as soon as the
  // stack frees up. An identical descriptor already queued coalesces: the
  // existing key is returned instead of queuing a duplicate. ForwardMsg
  // submissions are admitted or refused on the spot (see ForwardSubmit).
  Submitted submit(sim::ProcessId origin, const Descriptor& d,
                   CompletionFn on_complete, const Emit& emit);

  SessionState session_state(std::uint32_t seq) const;
  // Valid once session_state(seq) == Done (refused forward submissions are
  // born Done); default-constructed result for unknown seqs.
  SessionResult session_result(std::uint32_t seq) const;
  // Drops a completed session's record and returns its storage slot to the
  // host's free list: a recycling workload (submit -> complete -> release,
  // repeated) runs at O(live sessions) memory and O(1) steady-state cost
  // per operation however many sessions have passed through — the
  // million-session load generator's contract (micro_bench
  // BM_SessionRecycleSteadyState pins the flatness).
  void release_session(std::uint32_t seq);

  // ForwardMsg completion is end-to-end and therefore cross-host: the
  // destination host records each delivery (once recording is enabled) and
  // the client matches it back to the origin's session, removing the
  // matched record so one delivery completes at most one session (and the
  // record store stays bounded).
  struct Delivery {
    sim::ProcessId origin = -1;
    std::uint32_t wire_seq = 0;
    Value payload;
  };
  bool consume_delivery(sim::ProcessId origin, std::uint32_t wire_seq,
                        const Value& payload);
  // Bulk alternative to per-session consume_delivery: appends every pending
  // delivery record to `out` and clears the store. The load generator
  // drains each destination once per poll cadence and matches the batch
  // against its own (origin, wire_seq) table — O(deliveries) per drain
  // instead of O(live forward sessions x deliveries) per poll.
  void take_deliveries(std::vector<Delivery>& out);
  void finish_forward(std::uint32_t seq);  // origin side: mark Done, fire cb
  // Flipped by the Client, world-wide, at the first ForwardMsg submission;
  // until then the delivery hook records nothing, so worlds driven through
  // the legacy request_forward shim allocate nothing per delivery.
  void enable_delivery_recording() noexcept { record_deliveries_ = true; }

  int session_count() const noexcept { return static_cast<int>(by_seq_.size()); }
  int pending_count() const noexcept { return pending_n_; }

  // --- graceful degradation (the fault engine's host-side view) ----------
  struct Degrade {
    // Forward admissions refused, indexed by core::ForwardSubmit ordinal
    // (the Accepted slot stays zero).
    std::array<std::uint64_t, core::kForwardSubmitCount> refusals_by_reason{};
    std::uint64_t sessions_killed = 0;  // live sessions failed by a crash
    std::uint64_t crashes = 0;          // crash_restart() applications
  };
  const Degrade& degrade() const noexcept { return degrade_; }

  // The fault engine's process crash-restart: scrambles the protocol stack
  // exactly like randomize() AND fails every live session (phase Done,
  // completed = false, completion callbacks fire — the no-silent-hangs
  // contract), drops the pending queue and any un-consumed forward
  // deliveries. A restarted process has no session memory; the driver
  // (svc::Supervisor, load::Workload) owns the retry.
  void crash_restart(Rng& rng);

  // --- layer accessors (the historic wrapper surface) --------------------
  core::Pif& pif() { return checked(pif_); }
  const core::Pif& pif() const { return checked(pif_); }
  core::Idl& idl() { return checked(idl_); }
  const core::Idl& idl() const { return checked(idl_); }
  core::Me& me() { return checked(me_); }
  const core::Me& me() const { return checked(me_); }
  core::Reset& reset() { return checked(reset_); }
  const core::Reset& reset() const { return checked(reset_); }
  core::Snapshot& snapshot() { return checked(snapshot_); }
  const core::Snapshot& snapshot() const { return checked(snapshot_); }
  core::TermDetect& detector() { return checked(detect_); }
  const core::TermDetect& detector() const { return checked(detect_); }
  core::Election& election() { return checked(election_); }
  const core::Election& election() const { return checked(election_); }
  core::Forward& forward() { return checked(fwd_); }
  const core::Forward& forward() const { return checked(fwd_); }
  bool has_forward() const noexcept { return fwd_ != nullptr; }

  // --- sim::Process ------------------------------------------------------
  void on_tick(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, int ch, const Message& m) override;
  bool tick_enabled() const override;
  bool busy() const override { return me_ != nullptr && me_->in_cs(); }
  // Scrambles protocol state only (the paper's corruption model): session
  // bookkeeping is driver-side application state, like the CS body.
  void randomize(Rng& rng) override;

 private:
  struct SessionRec {
    std::uint32_t seq = 0;
    Descriptor desc;
    enum class Phase : std::uint8_t { Queued, Active, Done } phase =
        Phase::Queued;
    SessionResult result;
    CompletionFn on_complete;
    std::uint32_t wire_seq = 0;  // ForwardMsg
  };

  template <typename T>
  static T& checked(const std::unique_ptr<T>& p) {
    SNAPSTAB_CHECK_MSG(p != nullptr,
                       "service layer not configured on this host");
    return *p;
  }

  SessionRec* find(std::uint32_t seq);
  const SessionRec* find(std::uint32_t seq) const;
  // Hash of the fields Descriptor::operator== compares; text payloads hash
  // by resolved string so cross-pool-equal descriptors collide as required.
  static std::uint64_t desc_hash(const Descriptor& d);
  // Moves `rec` into a free slot (reusing a released one when available)
  // and indexes it by seq; returns the slot index.
  std::uint32_t alloc_slot(SessionRec&& rec);
  core::RequestState layer_state(ServiceId s) const;
  bool service_available(ServiceId s) const;
  // Sets the layer's Request := Wait and emits the RequestWait observation
  // (identical layer/peer/value to the historic request_* helpers).
  template <typename EmitFn>
  void start(SessionRec& rec, const EmitFn& emit);
  void complete(SessionRec& rec);
  // Completion/queue pump, run at the end of every activation. O(1) when no
  // session is active or pending.
  void poll_sessions(sim::Context& ctx);

  Value on_brd(sim::Context& ctx, int ch, const Value& b);
  void on_fck(sim::Context& ctx, int ch, const Value& f);

  HostConfig cfg_;
  std::unique_ptr<core::Pif> pif_;
  std::unique_ptr<core::Idl> idl_;
  std::unique_ptr<core::Me> me_;
  std::unique_ptr<core::Reset> reset_;
  std::unique_ptr<core::Snapshot> snapshot_;
  std::unique_ptr<core::TermDetect> detect_;
  std::unique_ptr<core::Election> election_;
  std::unique_ptr<core::Forward> fwd_;

  sim::ProcessId origin_ = -1;     // learned at first submit
  std::uint32_t next_session_ = 0;
  // Session storage is a slot arena: records live in `slots_`, freed slots
  // are recycled through `free_` (LIFO, so a recycling workload stays in a
  // hot cache footprint), and `by_seq_` maps a session's public seq to its
  // current slot in O(1). The unordered containers are lookup-only — never
  // iterated — so they cannot perturb execution order (determinism holds
  // for any hash-bucket layout).
  std::vector<SessionRec> slots_;
  std::vector<std::uint32_t> free_;             // free slot indices, LIFO
  std::unordered_map<std::uint32_t, std::uint32_t> by_seq_;  // seq -> slot
  // One-entry find() cache: an awaiting client polls the same seq once per
  // stop-predicate check, which must not pay a hash lookup per engine step.
  // Validated against slots_[cache_slot_].seq and invalidated on release
  // (a freed slot resets to seq 0, which is a real session id).
  mutable std::uint32_t cache_seq_ = kNoSession;
  mutable std::uint32_t cache_slot_ = 0;
  static constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;
  // Queued sessions by descriptor hash, for O(1) coalescing lookup (the
  // historic linear scan over pending_ was O(C^2) when queueing 10^5+
  // sessions). At most one queued session exists per distinct descriptor
  // (that is what coalescing guarantees), so equal_range order never
  // matters — hash collisions are resolved by a full Descriptor compare.
  std::unordered_multimap<std::uint64_t, std::uint32_t> queued_by_desc_;
  std::deque<std::uint32_t> pending_;     // queued PIF-based sessions, FIFO
  std::int64_t stack_active_ = -1;        // seq of the In PIF-based session
  int pending_n_ = 0;
  bool record_deliveries_ = false;
  std::vector<Delivery> deliveries_;      // ForwardMsg: what arrived here
  Degrade degrade_;
};

// Builds a world of ServiceHosts over `topology`, one per node, each
// configured by `config_of(p)` (routes are filled in automatically when
// `with_forward` is set). The svc analogue of core::forward_world.
std::unique_ptr<sim::Simulator> service_world(
    sim::Topology topology, std::size_t channel_capacity, std::uint64_t seed,
    const std::function<HostConfig(sim::ProcessId)>& config_of,
    bool with_forward = false,
    core::ForwardOptions forward_options = {});

}  // namespace snapstab::svc

#endif  // SNAPSTAB_SVC_HOST_HPP
