// service.hpp — the unified service/session vocabulary.
//
// The paper's whole external contract is one three-valued variable:
// Request ∈ {Wait, In, Done}. Every layered protocol of the repository
// (PIF, IDL, ME, reset, snapshot, termination detection, election,
// forwarding) exposes exactly that contract — so the client surface is one
// API, not seven: a typed *descriptor* names the service and its inputs, a
// `Session` tracks one requested computation through Wait → In → Done, and
// a uniform `SessionResult` carries whatever the service produced (snapshot
// digest, CS grant, learned minimum, delivery ack, …).
//
// Sessions are keyed by (origin, service, seq): `origin` is the submitting
// process, `seq` a per-host monotonic submission counter. The key is stable
// across backends — the same program submitted in the same order against
// the Simulator and the ThreadRuntime produces the same keys.
#ifndef SNAPSTAB_SVC_SERVICE_HPP
#define SNAPSTAB_SVC_SERVICE_HPP

#include <cstdint>

#include "core/forward.hpp"
#include "core/request.hpp"
#include "msg/value.hpp"
#include "sim/observation.hpp"

namespace snapstab::svc {

// One session state space for every service — the paper's Request variable.
using SessionState = core::RequestState;

enum class ServiceId : std::uint8_t {
  PifBroadcast,     // Protocol PIF: broadcast a payload, collect feedbacks
  Idl,              // Protocol IDL: learn every identity / the minimum
  CriticalSection,  // Protocol ME: one critical-section grant
  Reset,            // PIF-based global reset
  Snapshot,         // PIF-based global state reading
  TermDetect,       // PIF-based termination detection
  Election,         // IDL-based leader election + consistent ranking
  ForwardMsg,       // point-to-point payload forwarding
};

inline constexpr int kServiceIdCount = 8;

constexpr const char* service_name(ServiceId s) noexcept {
  static_assert(kServiceIdCount ==
                    static_cast<int>(ServiceId::ForwardMsg) + 1,
                "new ServiceId: update kServiceIdCount and service_name");
  switch (s) {
    case ServiceId::PifBroadcast: return "pif-broadcast";
    case ServiceId::Idl: return "idl";
    case ServiceId::CriticalSection: return "critical-section";
    case ServiceId::Reset: return "reset";
    case ServiceId::Snapshot: return "snapshot";
    case ServiceId::TermDetect: return "term-detect";
    case ServiceId::Election: return "election";
    case ServiceId::ForwardMsg: return "forward-msg";
  }
  return "?";
}

// --- typed request descriptors ---------------------------------------------
// One struct per service; `Descriptor` is the flat tagged form the host
// stores (queued sessions keep their descriptor until started).

struct PifBroadcast {
  Value payload;
};
struct Idl {};
struct CriticalSection {};
struct Reset {};
struct Snapshot {};
struct TermDetect {};
struct Election {};
struct ForwardMsg {
  sim::ProcessId dst = -1;
  Value payload;
};

struct Descriptor {
  ServiceId service = ServiceId::PifBroadcast;
  Value payload;             // PifBroadcast / ForwardMsg payload
  sim::ProcessId dst = -1;   // ForwardMsg destination

  bool operator==(const Descriptor&) const = default;

  static Descriptor of(const PifBroadcast& d) {
    return Descriptor{ServiceId::PifBroadcast, d.payload, -1};
  }
  static Descriptor of(Idl) {
    return Descriptor{ServiceId::Idl, Value::none(), -1};
  }
  static Descriptor of(CriticalSection) {
    return Descriptor{ServiceId::CriticalSection, Value::none(), -1};
  }
  static Descriptor of(Reset) {
    return Descriptor{ServiceId::Reset, Value::none(), -1};
  }
  static Descriptor of(Snapshot) {
    return Descriptor{ServiceId::Snapshot, Value::none(), -1};
  }
  static Descriptor of(TermDetect) {
    return Descriptor{ServiceId::TermDetect, Value::none(), -1};
  }
  static Descriptor of(Election) {
    return Descriptor{ServiceId::Election, Value::none(), -1};
  }
  static Descriptor of(const ForwardMsg& d) {
    return Descriptor{ServiceId::ForwardMsg, d.payload, d.dst};
  }
};

struct SessionKey {
  sim::ProcessId origin = -1;
  ServiceId service = ServiceId::PifBroadcast;
  std::uint32_t seq = 0;  // per-host submission counter, monotonic

  bool operator==(const SessionKey&) const = default;
};

// Admission status of a forwarding submission — core::ForwardSubmit (the
// hop layer owns the enum; see core/forward.hpp). The non-Accepted values
// are refusals: the session is born Done with `completed = false` and the
// application must resubmit.
using core::ForwardSubmit;
using core::forward_submit_name;

// Uniform completion payload. `completed` is true when the session ran to a
// genuine decision; a refused forwarding submission leaves it false with
// the refusal reason in `admission`. The service-specific fields are valid
// for the service that produced them and zero-initialized otherwise.
struct SessionResult {
  bool completed = false;
  ForwardSubmit admission = ForwardSubmit::Accepted;  // ForwardMsg
  Value value;                 // PifBroadcast: payload; Snapshot: digest;
                               // ForwardMsg: the delivered payload (ack)
  std::int64_t min_id = 0;     // Idl / Election: the learned minimum
  int rank = -1;               // Election: position in the sorted members
  bool cs_granted = false;     // CriticalSection: the CS executed
  bool termination_claimed = false;  // TermDetect
  int waves = 0;                     // TermDetect: probe waves used
};

}  // namespace snapstab::svc

#endif  // SNAPSTAB_SVC_SERVICE_HPP
