#include "svc/supervisor.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"

namespace snapstab::svc {

Supervisor::Supervisor(Client& client, SuperviseOptions options)
    : client_(&client),
      opts_(options),
      rng_(options.seed ^ 0x5A5A5A5A5A5A5A5Aull),
      start_(std::chrono::steady_clock::now()) {
  SNAPSTAB_CHECK_MSG(opts_.attempt_deadline >= 1,
                     "a zero attempt deadline expires every attempt at birth");
  SNAPSTAB_CHECK_MSG(opts_.retry_budget >= 0, "retry budget must be >= 0");
}

std::uint64_t Supervisor::now() const {
  if (client_->simulator() != nullptr) return client_->simulator()->step_count();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::uint64_t Supervisor::backoff_delay(int attempts_so_far) {
  // Exponential in the number of attempts, clamped, with uniform jitter in
  // the upper half — the classic decorrelation against retry stampedes,
  // drawn from the supervisor's own stream so replay is exact.
  const int shift = attempts_so_far > 16 ? 16 : attempts_so_far - 1;
  std::uint64_t base = opts_.backoff_base << shift;
  if (base > opts_.backoff_max) base = opts_.backoff_max;
  return base / 2 + rng_.below(base / 2 + 1);
}

Supervisor::Ticket Supervisor::supervise_desc(sim::ProcessId origin,
                                              const Descriptor& d) {
  Rec rec;
  rec.desc = d;
  rec.origin = origin;
  rec.session = client_->submit_desc(origin, d);
  rec.attempts = 1;
  rec.st = St::Flying;
  rec.deadline = now() + opts_.attempt_deadline;
  recs_.push_back(std::move(rec));
  ++live_;
  return Ticket{static_cast<std::uint32_t>(recs_.size() - 1)};
}

void Supervisor::resubmit(Rec& rec) {
  rec.session = client_->submit_desc(rec.origin, rec.desc);
  ++rec.attempts;
  ++stats_.resubmits;
  rec.st = St::Flying;
  rec.deadline = now() + opts_.attempt_deadline;
}

void Supervisor::settle(Rec& rec, SessionOutcome o) {
  rec.st = St::Terminal;
  rec.outcome = o;
  --live_;
  switch (o) {
    case SessionOutcome::Ok: ++stats_.ok; break;
    case SessionOutcome::Refused: ++stats_.refused; break;
    case SessionOutcome::Expired: ++stats_.expired; break;
    case SessionOutcome::GaveUp: ++stats_.gave_up; break;
  }
}

void Supervisor::fail_over(Rec& rec, std::uint64_t now_t) {
  if (rec.attempts >= 1 + opts_.retry_budget) {
    // Out of attempts: classify. A deadline on the last attempt reads as
    // Expired; otherwise pure-refusal histories read as backpressure.
    if (rec.last_was_deadline)
      settle(rec, SessionOutcome::Expired);
    else if (rec.non_refusal_failure)
      settle(rec, SessionOutcome::GaveUp);
    else
      settle(rec, SessionOutcome::Refused);
    return;
  }
  rec.st = St::Backoff;
  rec.resume_at = now_t + backoff_delay(rec.attempts);
}

bool Supervisor::pump() {
  if (on_pump_) on_pump_();
  if (live_ == 0) return true;
  const std::uint64_t t = now();
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    Rec& rec = recs_[i];
    if (rec.st == St::Terminal) continue;
    if (rec.st == St::Backoff) {
      if (t >= rec.resume_at) resubmit(rec);
      continue;
    }
    // Flying.
    if (client_->state(rec.session) == SessionState::Done) {
      rec.result = client_->result(rec.session);
      client_->release(rec.session);
      if (rec.result.completed) {
        settle(rec, SessionOutcome::Ok);
        continue;
      }
      // Failed attempt: an admission refusal keeps the pure-refusal
      // classification; anything else (killed by a crash-restart) taints it.
      if (rec.result.admission == ForwardSubmit::Accepted)
        rec.non_refusal_failure = true;
      rec.last_was_deadline = false;
      fail_over(rec, t);
      continue;
    }
    if (t >= rec.deadline) {
      ++stats_.deadline_hits;
      rec.non_refusal_failure = true;
      rec.last_was_deadline = true;
      // The expired attempt is abandoned, not released: it may still be In
      // on the host, and a ghost completion later is harmless — the
      // supervisor has forgotten the key.
      fail_over(rec, t);
    }
  }
  return live_ == 0;
}

void Supervisor::force_settle() {
  // No more backend progress is possible. Expire flying attempts and drain
  // backoffs immediately; each round either settles a ticket or consumes
  // one attempt, so this terminates within retry_budget + 1 rounds.
  while (live_ > 0) {
    const std::uint64_t t = now();
    for (Rec& rec : recs_) {
      if (rec.st == St::Flying && rec.deadline > t) rec.deadline = t;
      if (rec.st == St::Backoff && rec.resume_at > t) rec.resume_at = t;
    }
    pump();
  }
}

bool Supervisor::run_all(AwaitOptions opts) {
  sim::Simulator* sim = client_->simulator();
  if (sim != nullptr) {
    if (pump()) return true;
    const std::uint64_t start_steps = sim->step_count();
    while (live_ > 0) {
      const std::uint64_t used = sim->step_count() - start_steps;
      if (used >= opts.max_steps) {
        force_settle();
        return false;
      }
      const sim::Simulator::StopReason reason =
          sim->run(opts.max_steps - used,
                   [this](sim::Simulator&) { return pump(); }, opts.policy);
      if (live_ == 0) return true;
      if (reason == sim::Simulator::StopReason::BudgetExhausted) {
        force_settle();
        return false;
      }
      // Quiescent: no step is enabled, so step-time cannot advance and
      // pending timers would never fire. Fast-forward backoff timers (their
      // resubmissions re-enable the world); if none were pending, every
      // flying attempt is stranded — expire it now. Each pass consumes
      // attempts, so the loop terminates.
      bool any_backoff = false;
      for (Rec& rec : recs_) {
        if (rec.st == St::Backoff) {
          rec.resume_at = now();
          any_backoff = true;
        }
      }
      if (!any_backoff)
        for (Rec& rec : recs_)
          if (rec.st == St::Flying) rec.deadline = now();
      if (pump()) return true;
    }
    return true;
  }
  SNAPSTAB_CHECK(client_->thread_runtime() != nullptr);
  runtime::ThreadRuntime* rt = client_->thread_runtime();
  if (pump()) return true;
  if (!rt->started() && rt->run([this] { return pump(); }, opts.timeout))
    return true;
  // Timed out, or the one-shot runtime had already run: nothing will make
  // further progress. Settle every live ticket (Expired / GaveUp / Refused)
  // so the caller still gets terminal outcomes, and report the budget loss.
  force_settle();
  return false;
}

bool Supervisor::terminal(Ticket t) const {
  return recs_[t.id].st == St::Terminal;
}

SessionOutcome Supervisor::outcome(Ticket t) const {
  SNAPSTAB_CHECK_MSG(recs_[t.id].st == St::Terminal,
                     "outcome() before the ticket is terminal");
  return recs_[t.id].outcome;
}

const SessionResult& Supervisor::result(Ticket t) const {
  return recs_[t.id].result;
}

int Supervisor::attempts(Ticket t) const { return recs_[t.id].attempts; }

}  // namespace snapstab::svc
