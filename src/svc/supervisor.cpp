#include "svc/supervisor.hpp"

// Context method bodies (the sealed sim fast path) are inline in
// sim/simulator.hpp; every TU calling them must see the definitions.
#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "mutate/mutate.hpp"

namespace snapstab::svc {

Supervisor::Supervisor(Client& client, SuperviseOptions options)
    : client_(&client),
      opts_(options),
      rng_(options.seed ^ 0x5A5A5A5A5A5A5A5Aull),
      start_(std::chrono::steady_clock::now()) {
  SNAPSTAB_CHECK_MSG(opts_.attempt_deadline >= 1,
                     "a zero attempt deadline expires every attempt at birth");
  SNAPSTAB_CHECK_MSG(opts_.retry_budget >= 0, "retry budget must be >= 0");
  if (opts_.breaker.enabled) {
    SNAPSTAB_CHECK_MSG(opts_.breaker.failure_threshold >= 1 &&
                           opts_.breaker.probe_quota >= 1 &&
                           opts_.breaker.close_threshold >= 1,
                       "breaker thresholds must be >= 1");
    SNAPSTAB_CHECK_MSG(opts_.breaker.probe_admit > 0.0,
                       "probe_admit == 0 would hold HalfOpen forever");
  }
  if (opts_.hedge.enabled)
    SNAPSTAB_CHECK_MSG(opts_.hedge.max_hedges >= 1 &&
                           opts_.hedge.hedge_after >= 1,
                       "hedging needs max_hedges >= 1 and hedge_after >= 1");
}

std::uint64_t Supervisor::now() const {
  if (client_->simulator() != nullptr) return client_->simulator()->step_count();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::uint64_t Supervisor::backoff_delay(int attempts_so_far) {
  // Exponential in the number of attempts, clamped, with uniform jitter in
  // the upper half — the classic decorrelation against retry stampedes,
  // drawn from the supervisor's own stream so replay is exact.
  const int shift = attempts_so_far > 16 ? 16 : attempts_so_far - 1;
  std::uint64_t base = opts_.backoff_base << shift;
  if (base > opts_.backoff_max) base = opts_.backoff_max;
  return base / 2 + rng_.below(base / 2 + 1);
}

Supervisor::Ticket Supervisor::supervise_desc(sim::ProcessId origin,
                                              const Descriptor& d) {
  Rec rec;
  rec.desc = d;
  rec.origin = origin;
  recs_.push_back(std::move(rec));
  ++live_;
  Rec& r = recs_.back();
  if (admit(r, now())) launch(r);
  return Ticket{static_cast<std::uint32_t>(recs_.size() - 1)};
}

void Supervisor::launch(Rec& rec) {
  rec.session = client_->submit_desc(rec.origin, rec.desc);
  ++rec.attempts;
  rec.st = St::Flying;
  const std::uint64_t t = now();
  rec.deadline = t + opts_.attempt_deadline;
  rec.flying_since = t;
  rec.hedge_live = false;
  rec.hedges = 0;
}

sim::ProcessId Supervisor::hedge_origin(const Rec& rec,
                                        std::size_t index) const {
  if (!opts_.hedge.spray_origins) return rec.origin;
  const int n = client_->simulator() != nullptr
                    ? client_->simulator()->topology().process_count()
                    : client_->thread_runtime()->process_count();
  if (n < 2) return rec.origin;
  // Salt by the ticket index so concurrent hedges fan out across backups
  // instead of re-creating a hotspot on one designated host.
  sim::ProcessId target = static_cast<sim::ProcessId>(
      (static_cast<std::size_t>(rec.origin) + 1 +
       static_cast<std::size_t>(rec.hedges) + index) %
      static_cast<std::size_t>(n));
  if (target == rec.origin)
    target = static_cast<sim::ProcessId>((target + 1) % n);
  return target;
}

bool Supervisor::admit(Rec& rec, std::uint64_t t) {
  rec.is_probe = false;
  if (!opts_.breaker.enabled || settling_) return true;
  Breaker& br = breaker_for(rec);
  if (br.state == BreakerState::Open) {
    if (MUTATION_POINT("sup.breaker.cooldown",
                       (t >= br.opened_at + opts_.breaker.open_cooldown),
                       true)) {
      br.state = BreakerState::HalfOpen;
      br.probe_successes = 0;
      br.probes_in_flight = 0;
    } else {
      // Short-circuit: hold until the cooldown elapses, no attempt spent.
      ++stats_.breaker_short_circuits;
      rec.st = St::Backoff;
      rec.resume_at = br.opened_at + opts_.breaker.open_cooldown;
      return false;
    }
  }
  if (br.state == BreakerState::HalfOpen) {
    if (MUTATION_POINT("sup.probe.quota",
                       (br.probes_in_flight < opts_.breaker.probe_quota),
                       true) &&
        rng_.chance(opts_.breaker.probe_admit)) {
      rec.is_probe = true;
      ++br.probes_in_flight;
      ++stats_.probes;
      return true;
    }
    ++stats_.breaker_short_circuits;
    rec.st = St::Backoff;
    rec.resume_at = t + (opts_.backoff_base > 0 ? opts_.backoff_base : 1);
    return false;
  }
  return true;
}

void Supervisor::breaker_note_success(Rec& rec) {
  if (!opts_.breaker.enabled) return;
  Breaker& br = breaker_for(rec);
  br.consecutive_failures = 0;
  if (!rec.is_probe) return;
  rec.is_probe = false;
  if (br.probes_in_flight > 0) --br.probes_in_flight;
  if (br.state != BreakerState::HalfOpen) return;
  ++br.probe_successes;
  if (MUTATION_POINT("sup.probe.close",
                     (br.probe_successes >= opts_.breaker.close_threshold),
                     false))
    br.state = BreakerState::Closed;
}

void Supervisor::breaker_note_failure(Rec& rec, std::uint64_t t) {
  if (!opts_.breaker.enabled) return;
  Breaker& br = breaker_for(rec);
  if (rec.is_probe) {
    // One failed probe reopens the breaker: the service is still sick.
    rec.is_probe = false;
    if (br.probes_in_flight > 0) --br.probes_in_flight;
    br.state = BreakerState::Open;
    br.opened_at = t;
    br.consecutive_failures = 0;
    ++stats_.breaker_trips;
    return;
  }
  ++br.consecutive_failures;
  if (br.state == BreakerState::Closed &&
      MUTATION_POINT(
          "sup.breaker.trip",
          (br.consecutive_failures >= opts_.breaker.failure_threshold),
          false)) {
    br.state = BreakerState::Open;
    br.opened_at = t;
    ++stats_.breaker_trips;
  }
}

void Supervisor::settle(Rec& rec, SessionOutcome o) {
  rec.st = St::Terminal;
  rec.outcome = o;
  --live_;
  switch (o) {
    case SessionOutcome::Ok: ++stats_.ok; break;
    case SessionOutcome::Refused: ++stats_.refused; break;
    case SessionOutcome::Expired: ++stats_.expired; break;
    case SessionOutcome::GaveUp: ++stats_.gave_up; break;
  }
}

void Supervisor::fail_over(Rec& rec, std::uint64_t now_t) {
  if (rec.attempts >= 1 + opts_.retry_budget) {
    // Out of attempts: classify. A deadline on the last attempt reads as
    // Expired; otherwise pure-refusal histories read as backpressure.
    if (rec.last_was_deadline)
      settle(rec, SessionOutcome::Expired);
    else if (rec.non_refusal_failure)
      settle(rec, SessionOutcome::GaveUp);
    else
      settle(rec, SessionOutcome::Refused);
    return;
  }
  rec.st = St::Backoff;
  rec.resume_at = now_t + backoff_delay(rec.attempts);
}

bool Supervisor::pump() {
  if (on_pump_) on_pump_();
  if (live_ == 0) return true;
  const std::uint64_t t = now();
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    Rec& rec = recs_[i];
    if (rec.st == St::Terminal) continue;
    if (rec.st == St::Backoff) {
      if (t >= rec.resume_at && admit(rec, t)) {
        if (rec.attempts > 0) ++stats_.resubmits;
        launch(rec);
      }
      continue;
    }
    // Flying. First terminal result wins: the primary is polled first, so a
    // tie goes to it deterministically; the loser's session is released if
    // done, abandoned if still flying (a ghost completion is harmless — the
    // supervisor has forgotten the key).
    const bool primary_done =
        client_->state(rec.session) == SessionState::Done;
    const bool hedge_done =
        rec.hedge_live &&
        client_->state(rec.hedge_session) == SessionState::Done;
    if (primary_done || hedge_done) {
      if (primary_done) {
        rec.result = client_->result(rec.session);
        client_->release(rec.session);
        if (hedge_done) client_->release(rec.hedge_session);
      } else {
        rec.result = client_->result(rec.hedge_session);
        client_->release(rec.hedge_session);
        ++stats_.hedge_wins;
      }
      rec.hedge_live = false;
      if (rec.result.completed) {
        breaker_note_success(rec);
        settle(rec, SessionOutcome::Ok);
        continue;
      }
      // Failed attempt: an admission refusal keeps the pure-refusal
      // classification; anything else (killed by a crash-restart) taints it.
      if (rec.result.admission == ForwardSubmit::Accepted) {
        rec.non_refusal_failure = true;
        breaker_note_failure(rec, t);
      } else if (rec.is_probe) {
        // A refused probe frees its slot without reopening the breaker:
        // backpressure is not service death.
        rec.is_probe = false;
        Breaker& br = breaker_for(rec);
        if (br.probes_in_flight > 0) --br.probes_in_flight;
      }
      rec.last_was_deadline = false;
      fail_over(rec, t);
      continue;
    }
    if (t >= rec.deadline) {
      ++stats_.deadline_hits;
      rec.non_refusal_failure = true;
      rec.last_was_deadline = true;
      // The expired attempt (and any live hedge) is abandoned, not
      // released: it may still be In on the host.
      rec.hedge_live = false;
      breaker_note_failure(rec, t);
      fail_over(rec, t);
      continue;
    }
    // Tail defense: back the slow primary up with a hedged resubmit.
    if (opts_.hedge.enabled && !rec.hedge_live &&
        rec.hedges < opts_.hedge.max_hedges &&
        MUTATION_POINT("sup.hedge.fire",
                       (t >= rec.flying_since + opts_.hedge.hedge_after),
                       true)) {
      rec.hedge_session =
          client_->submit_desc(hedge_origin(rec, i), rec.desc);
      rec.hedge_live = true;
      ++rec.hedges;
      ++stats_.hedges_launched;
    }
  }
  return live_ == 0;
}

void Supervisor::force_settle() {
  // No more backend progress is possible. Expire flying attempts and drain
  // backoffs immediately, bypassing the breaker gate (settling_: a held
  // submission consumes no attempt, so holding here would never converge);
  // each round then either settles a ticket or consumes one attempt, so
  // this terminates within retry_budget + 1 rounds.
  settling_ = true;
  while (live_ > 0) {
    const std::uint64_t t = now();
    for (Rec& rec : recs_) {
      if (rec.st == St::Flying && rec.deadline > t) rec.deadline = t;
      if (rec.st == St::Backoff && rec.resume_at > t) rec.resume_at = t;
    }
    pump();
  }
  settling_ = false;
}

bool Supervisor::run_all(AwaitOptions opts) {
  sim::Simulator* sim = client_->simulator();
  if (sim != nullptr) {
    if (pump()) return true;
    const std::uint64_t start_steps = sim->step_count();
    while (live_ > 0) {
      const std::uint64_t used = sim->step_count() - start_steps;
      if (used >= opts.max_steps) {
        force_settle();
        return false;
      }
      const sim::Simulator::StopReason reason =
          sim->run(opts.max_steps - used,
                   [this](sim::Simulator&) { return pump(); }, opts.policy);
      if (live_ == 0) return true;
      if (reason == sim::Simulator::StopReason::BudgetExhausted) {
        force_settle();
        return false;
      }
      // Quiescent: no step is enabled, so step-time cannot advance and
      // pending timers would never fire. Fast-forward backoff timers (their
      // resubmissions re-enable the world); if none were pending, every
      // flying attempt is stranded — expire it now. Each pass consumes
      // attempts, so the loop terminates.
      bool any_backoff = false;
      for (Rec& rec : recs_) {
        if (rec.st == St::Backoff) {
          rec.resume_at = now();
          any_backoff = true;
        }
      }
      // Open breakers hold submissions on the same frozen clock: their
      // cooldowns can never elapse either, so fast-forward them to HalfOpen
      // — the probe resubmissions are what re-enable the world.
      if (opts_.breaker.enabled) {
        for (Breaker& br : breakers_) {
          if (br.state != BreakerState::Open) continue;
          br.state = BreakerState::HalfOpen;
          br.probe_successes = 0;
          br.probes_in_flight = 0;
        }
      }
      if (!any_backoff)
        for (Rec& rec : recs_)
          if (rec.st == St::Flying) rec.deadline = now();
      if (pump()) return true;
    }
    return true;
  }
  SNAPSTAB_CHECK(client_->thread_runtime() != nullptr);
  runtime::ThreadRuntime* rt = client_->thread_runtime();
  if (pump()) return true;
  if (!rt->started() && rt->run([this] { return pump(); }, opts.timeout))
    return true;
  // Timed out, or the one-shot runtime had already run: nothing will make
  // further progress. Settle every live ticket (Expired / GaveUp / Refused)
  // so the caller still gets terminal outcomes, and report the budget loss.
  force_settle();
  return false;
}

bool Supervisor::terminal(Ticket t) const {
  return recs_[t.id].st == St::Terminal;
}

SessionOutcome Supervisor::outcome(Ticket t) const {
  SNAPSTAB_CHECK_MSG(recs_[t.id].st == St::Terminal,
                     "outcome() before the ticket is terminal");
  return recs_[t.id].outcome;
}

const SessionResult& Supervisor::result(Ticket t) const {
  return recs_[t.id].result;
}

int Supervisor::attempts(Ticket t) const { return recs_[t.id].attempts; }

}  // namespace snapstab::svc
