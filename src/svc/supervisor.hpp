// supervisor.hpp — per-session deadlines, retries and terminal outcomes.
//
// A Supervisor wraps svc::Client with the driver-side recovery discipline
// the fault engine requires: every supervised request gets a per-attempt
// deadline (engine steps on the Simulator backend, wall milliseconds on the
// ThreadRuntime), a retry budget with seeded exponential backoff, and a
// guaranteed *terminal* SessionOutcome — Ok, Refused, Expired or GaveUp —
// instead of a silent hang. That is the snap-stabilization contract seen
// from the client's chair: a request caught by a transient fault may fail,
// but it fails *visibly*, and a fresh attempt issued after the fault ceases
// succeeds.
//
// Determinism: the supervisor draws backoff jitter only from its own seeded
// stream, and on the Simulator backend measures time purely in steps — the
// same (world seed, plan, supervisor seed) replays bit-identically.
#ifndef SNAPSTAB_SVC_SUPERVISOR_HPP
#define SNAPSTAB_SVC_SUPERVISOR_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "svc/client.hpp"

namespace snapstab::svc {

// Terminal answer for one supervised request.
enum class SessionOutcome : std::uint8_t {
  Ok,       // an attempt completed with result.completed == true
  Refused,  // every failed attempt was an admission refusal (backpressure)
  Expired,  // the final attempt hit its deadline (still In/Wait, abandoned)
  GaveUp,   // retry budget exhausted on non-refusal failures (e.g. killed
            // by a crash-restart window)
};

inline constexpr int kSessionOutcomeCount = 4;

constexpr const char* session_outcome_name(SessionOutcome o) noexcept {
  static_assert(kSessionOutcomeCount ==
                    static_cast<int>(SessionOutcome::GaveUp) + 1,
                "new SessionOutcome: update kSessionOutcomeCount and every "
                "switch");
  switch (o) {
    case SessionOutcome::Ok: return "ok";
    case SessionOutcome::Refused: return "refused";
    case SessionOutcome::Expired: return "expired";
    case SessionOutcome::GaveUp: return "gave-up";
  }
  return "?";
}

struct SuperviseOptions {
  // Per-attempt deadline and backoff pacing, in the backend's clock units:
  // engine steps (Simulator) or milliseconds (ThreadRuntime).
  std::uint64_t attempt_deadline = 50'000;
  int retry_budget = 3;  // resubmissions allowed after the initial attempt
  std::uint64_t backoff_base = 64;
  std::uint64_t backoff_max = 1u << 16;
  std::uint64_t seed = 0x5EED;  // jitter stream
};

class Supervisor {
 public:
  struct Ticket {
    std::uint32_t id = 0;
  };

  explicit Supervisor(Client& client, SuperviseOptions options = {});

  // Submits the request immediately and starts supervising it.
  template <typename D>
  Ticket supervise(sim::ProcessId origin, const D& d) {
    return supervise_desc(origin, Descriptor::of(d));
  }
  Ticket supervise_desc(sim::ProcessId origin, const Descriptor& d);

  // One supervision pass: polls every live ticket, fails over expired and
  // killed attempts (resubmit after seeded exponential backoff, within the
  // retry budget), settles terminal outcomes. Returns true when every
  // ticket is terminal. Cheap when nothing is live.
  bool pump();

  bool terminal(Ticket t) const;
  // Valid once terminal(t); the last attempt's result alongside.
  SessionOutcome outcome(Ticket t) const;
  const SessionResult& result(Ticket t) const;
  int attempts(Ticket t) const;

  // Drives the backend until every ticket is terminal, pump()ing from the
  // stop predicate. Simulator: quiescent spells (backoff timers pending
  // while no step is enabled) fast-forward deterministically, and flying
  // attempts that can never finish are expired — so this always terminates
  // with every ticket settled. Returns false when the step/wall budget
  // forced the settlement rather than the protocol finishing.
  bool run_all(AwaitOptions opts = {});

  // Called at the start of every pump(): the fault tests chain the
  // Injector's poll here without coupling svc to the fault engine.
  void set_on_pump(std::function<void()> hook) { on_pump_ = std::move(hook); }

  struct Stats {
    std::uint64_t resubmits = 0;
    std::uint64_t deadline_hits = 0;
    std::uint64_t ok = 0;
    std::uint64_t refused = 0;
    std::uint64_t expired = 0;
    std::uint64_t gave_up = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  int live() const noexcept { return live_; }

 private:
  enum class St : std::uint8_t { Flying, Backoff, Terminal };
  struct Rec {
    Descriptor desc;
    sim::ProcessId origin = -1;
    Session session;
    St st = St::Flying;
    std::uint64_t deadline = 0;   // Flying: expire the attempt at this time
    std::uint64_t resume_at = 0;  // Backoff: resubmit at this time
    int attempts = 0;
    bool non_refusal_failure = false;  // saw a killed / failed attempt
    bool last_was_deadline = false;
    SessionOutcome outcome = SessionOutcome::Ok;
    SessionResult result;
  };

  std::uint64_t now() const;
  std::uint64_t backoff_delay(int attempts_so_far);
  void resubmit(Rec& rec);
  void fail_over(Rec& rec, std::uint64_t now_t);
  void settle(Rec& rec, SessionOutcome o);
  // Forces every live ticket to a terminal outcome (no more progress is
  // possible: budget exhausted, runtime down). Bounded by the retry budget.
  void force_settle();

  Client* client_;
  SuperviseOptions opts_;
  Rng rng_;
  std::vector<Rec> recs_;
  int live_ = 0;
  std::function<void()> on_pump_;
  std::chrono::steady_clock::time_point start_;
  Stats stats_;
};

}  // namespace snapstab::svc

#endif  // SNAPSTAB_SVC_SUPERVISOR_HPP
