// supervisor.hpp — per-session deadlines, retries and terminal outcomes.
//
// A Supervisor wraps svc::Client with the driver-side recovery discipline
// the fault engine requires: every supervised request gets a per-attempt
// deadline (engine steps on the Simulator backend, wall milliseconds on the
// ThreadRuntime), a retry budget with seeded exponential backoff, and a
// guaranteed *terminal* SessionOutcome — Ok, Refused, Expired or GaveUp —
// instead of a silent hang. That is the snap-stabilization contract seen
// from the client's chair: a request caught by a transient fault may fail,
// but it fails *visibly*, and a fresh attempt issued after the fault ceases
// succeeds.
//
// Determinism: the supervisor draws backoff jitter only from its own seeded
// stream, and on the Simulator backend measures time purely in steps — the
// same (world seed, plan, supervisor seed) replays bit-identically.
#ifndef SNAPSTAB_SVC_SUPERVISOR_HPP
#define SNAPSTAB_SVC_SUPERVISOR_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "svc/client.hpp"

namespace snapstab::svc {

// Terminal answer for one supervised request.
enum class SessionOutcome : std::uint8_t {
  Ok,       // an attempt completed with result.completed == true
  Refused,  // every failed attempt was an admission refusal (backpressure)
  Expired,  // the final attempt hit its deadline (still In/Wait, abandoned)
  GaveUp,   // retry budget exhausted on non-refusal failures (e.g. killed
            // by a crash-restart window)
};

inline constexpr int kSessionOutcomeCount = 4;

constexpr const char* session_outcome_name(SessionOutcome o) noexcept {
  static_assert(kSessionOutcomeCount ==
                    static_cast<int>(SessionOutcome::GaveUp) + 1,
                "new SessionOutcome: update kSessionOutcomeCount and every "
                "switch");
  switch (o) {
    case SessionOutcome::Ok: return "ok";
    case SessionOutcome::Refused: return "refused";
    case SessionOutcome::Expired: return "expired";
    case SessionOutcome::GaveUp: return "gave-up";
  }
  return "?";
}

// Circuit-breaker state for one service, the classic three-state machine:
// Closed admits everything; `failure_threshold` consecutive non-refusal
// failures trip it Open; Open short-circuits submissions (held, no attempt
// consumed) until `open_cooldown` elapses; HalfOpen admits up to
// `probe_quota` seeded probes, `close_threshold` probe successes close it,
// one probe failure reopens it.
enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

inline constexpr int kBreakerStateCount = 3;

constexpr const char* breaker_state_name(BreakerState s) noexcept {
  static_assert(kBreakerStateCount ==
                    static_cast<int>(BreakerState::HalfOpen) + 1,
                "new BreakerState: update kBreakerStateCount and every "
                "switch");
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

struct BreakerOptions {
  bool enabled = false;
  int failure_threshold = 3;  // consecutive non-refusal failures to trip
  std::uint64_t open_cooldown = 2'000;  // clock units Open holds submissions
  int probe_quota = 1;      // concurrent HalfOpen probes admitted
  int close_threshold = 1;  // probe successes that close the breaker
  double probe_admit = 1.0;  // per-pump admission chance for a probe slot
};

struct HedgeOptions {
  bool enabled = false;
  // Launch a backup attempt once the primary has flown this long without a
  // result (clock units); first terminal result wins, the loser is
  // abandoned. Pick ~p99 of the healthy latency so hedges stay rare.
  std::uint64_t hedge_after = 10'000;
  int max_hedges = 1;  // backups per attempt
  // Submit the backup from a rotated origin (salted per ticket so
  // concurrent hedges spread across backups) so a crashed/partitioned
  // origin-side host doesn't doom both attempts.
  bool spray_origins = true;
};

struct SuperviseOptions {
  // Per-attempt deadline and backoff pacing, in the backend's clock units:
  // engine steps (Simulator) or milliseconds (ThreadRuntime).
  std::uint64_t attempt_deadline = 50'000;
  int retry_budget = 3;  // resubmissions allowed after the initial attempt
  std::uint64_t backoff_base = 64;
  std::uint64_t backoff_max = 1u << 16;
  std::uint64_t seed = 0x5EED;  // jitter stream
  BreakerOptions breaker;
  HedgeOptions hedge;
};

class Supervisor {
 public:
  struct Ticket {
    std::uint32_t id = 0;
  };

  explicit Supervisor(Client& client, SuperviseOptions options = {});

  // Submits the request immediately and starts supervising it.
  template <typename D>
  Ticket supervise(sim::ProcessId origin, const D& d) {
    return supervise_desc(origin, Descriptor::of(d));
  }
  Ticket supervise_desc(sim::ProcessId origin, const Descriptor& d);

  // One supervision pass: polls every live ticket, fails over expired and
  // killed attempts (resubmit after seeded exponential backoff, within the
  // retry budget), settles terminal outcomes. Returns true when every
  // ticket is terminal. Cheap when nothing is live.
  bool pump();

  bool terminal(Ticket t) const;
  // Valid once terminal(t); the last attempt's result alongside.
  SessionOutcome outcome(Ticket t) const;
  const SessionResult& result(Ticket t) const;
  int attempts(Ticket t) const;

  // Drives the backend until every ticket is terminal, pump()ing from the
  // stop predicate. Simulator: quiescent spells (backoff timers pending
  // while no step is enabled) fast-forward deterministically, and flying
  // attempts that can never finish are expired — so this always terminates
  // with every ticket settled. Returns false when the step/wall budget
  // forced the settlement rather than the protocol finishing.
  bool run_all(AwaitOptions opts = {});

  // Called at the start of every pump(): the fault tests chain the
  // Injector's poll here without coupling svc to the fault engine.
  void set_on_pump(std::function<void()> hook) { on_pump_ = std::move(hook); }

  struct Stats {
    std::uint64_t resubmits = 0;
    std::uint64_t deadline_hits = 0;
    std::uint64_t ok = 0;
    std::uint64_t refused = 0;
    std::uint64_t expired = 0;
    std::uint64_t gave_up = 0;
    std::uint64_t breaker_trips = 0;  // Closed→Open and HalfOpen→Open
    std::uint64_t breaker_short_circuits = 0;  // submissions held, no attempt
    std::uint64_t probes = 0;           // HalfOpen probe attempts admitted
    std::uint64_t hedges_launched = 0;  // backup attempts submitted
    std::uint64_t hedge_wins = 0;       // backups that beat their primary
  };
  const Stats& stats() const noexcept { return stats_; }
  int live() const noexcept { return live_; }
  BreakerState breaker_state(ServiceId s) const noexcept {
    return breakers_[static_cast<std::size_t>(s)].state;
  }

 private:
  enum class St : std::uint8_t { Flying, Backoff, Terminal };
  struct Rec {
    Descriptor desc;
    sim::ProcessId origin = -1;
    Session session;
    Session hedge_session;
    St st = St::Flying;
    std::uint64_t deadline = 0;   // Flying: expire the attempt at this time
    std::uint64_t resume_at = 0;  // Backoff: resubmit at this time
    std::uint64_t flying_since = 0;  // launch time of the current attempt
    int attempts = 0;
    int hedges = 0;          // backups launched for the current attempt
    bool hedge_live = false;  // hedge_session holds a flying backup
    bool is_probe = false;    // current attempt is a HalfOpen probe
    bool non_refusal_failure = false;  // saw a killed / failed attempt
    bool last_was_deadline = false;
    SessionOutcome outcome = SessionOutcome::Ok;
    SessionResult result;
  };
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    int probe_successes = 0;
    int probes_in_flight = 0;
    std::uint64_t opened_at = 0;
  };

  std::uint64_t now() const;
  std::uint64_t backoff_delay(int attempts_so_far);
  // Launches the next attempt: submit + deadline + hedge reset.
  void launch(Rec& rec);
  // Circuit-breaker admission gate for the next attempt. True admits (and
  // may mark the attempt a HalfOpen probe); false parks the rec in Backoff
  // without consuming an attempt. Always true when the breaker is off or
  // force_settle() is draining.
  bool admit(Rec& rec, std::uint64_t t);
  void breaker_note_success(Rec& rec);
  void breaker_note_failure(Rec& rec, std::uint64_t t);
  Breaker& breaker_for(const Rec& rec) noexcept {
    return breakers_[static_cast<std::size_t>(rec.desc.service)];
  }
  sim::ProcessId hedge_origin(const Rec& rec, std::size_t index) const;
  void fail_over(Rec& rec, std::uint64_t now_t);
  void settle(Rec& rec, SessionOutcome o);
  // Forces every live ticket to a terminal outcome (no more progress is
  // possible: budget exhausted, runtime down). Bypasses the breaker gate
  // (settling_) so it stays bounded by the retry budget.
  void force_settle();

  Client* client_;
  SuperviseOptions opts_;
  Rng rng_;
  std::vector<Rec> recs_;
  Breaker breakers_[kServiceIdCount];
  int live_ = 0;
  bool settling_ = false;
  std::function<void()> on_pump_;
  std::chrono::steady_clock::time_point start_;
  Stats stats_;
};

}  // namespace snapstab::svc

#endif  // SNAPSTAB_SVC_SUPERVISOR_HPP
