// golden_scenarios.hpp — the executions locked by tests/golden/.
//
// Shared between tools/record_golden.cpp (writes the files) and
// tests/test_equivalence.cpp (replays and compares). The golden files were
// produced by the pre-topology seed (dense n×n Network, scanning
// schedulers); the refactored engine must reproduce them bit-for-bit:
// same (code, seed, configuration) ⇒ same observation log and metrics.
#ifndef SNAPSTAB_TESTS_GOLDEN_SCENARIOS_HPP
#define SNAPSTAB_TESTS_GOLDEN_SCENARIOS_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/forward_world.hpp"
#include "core/stack.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab::golden {

inline std::unique_ptr<sim::Simulator> pif_world(int n, int capacity,
                                                 std::uint64_t seed) {
  auto sim = std::make_unique<sim::Simulator>(
      n, static_cast<std::size_t>(capacity), seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<core::PifProcess>(n - 1, capacity));
  return sim;
}

inline bool all_pif_done(sim::Simulator& s) {
  for (int p = 0; p < s.process_count(); ++p)
    if (!s.process_as<core::PifProcess>(p).pif().done()) return false;
  return true;
}

// The full trace as recorded in the golden files: every observation line
// plus a final metrics summary.
inline std::string render(sim::Simulator& sim) {
  std::string out;
  for (const auto& obs : sim.log().events()) {
    out += obs.to_string();
    out += '\n';
  }
  const auto& m = sim.metrics();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "metrics steps=%llu ticks=%llu deliveries=%llu losses=%llu "
                "sends=%llu sends_lost_full=%llu in_flight=%zu\n",
                static_cast<unsigned long long>(m.steps),
                static_cast<unsigned long long>(m.ticks),
                static_cast<unsigned long long>(m.deliveries),
                static_cast<unsigned long long>(m.adversary_losses),
                static_cast<unsigned long long>(m.sends),
                static_cast<unsigned long long>(m.sends_lost_full),
                sim.network().total_messages_in_flight());
  out += buf;
  return out;
}

struct Scenario {
  const char* file;
  std::unique_ptr<sim::Simulator> (*run)();
};

// Complete(4), capacity 1, random daemon, no loss; every process
// broadcasts; runs to global decision.
inline std::unique_ptr<sim::Simulator> run_pif_rand() {
  auto sim = pif_world(4, 1, /*seed=*/7);
  for (int p = 0; p < 4; ++p)
    sim->process_as<core::PifProcess>(p).pif().request(Value::integer(100 + p));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(7));
  sim->run(200'000, all_pif_done);
  return sim;
}

// Complete(6), capacity 2, random daemon with a lossy adversary; fixed step
// budget (the loss streak bookkeeping shapes the trace).
inline std::unique_ptr<sim::Simulator> run_pif_loss() {
  auto sim = pif_world(6, 2, /*seed=*/11);
  for (int p = 0; p < 6; p += 2)
    sim->process_as<core::PifProcess>(p).pif().request(Value::integer(p));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      11, sim::LossOptions{.rate = 0.3, .max_consecutive = 5}));
  sim->run(20'000);
  return sim;
}

// Complete(5), capacity 1, synchronous rounds.
inline std::unique_ptr<sim::Simulator> run_pif_rr() {
  auto sim = pif_world(5, 1, /*seed=*/3);
  for (int p = 0; p < 5; ++p)
    sim->process_as<core::PifProcess>(p).pif().request(Value::integer(50 + p));
  sim->set_scheduler(std::make_unique<sim::RoundRobinScheduler>(3));
  sim->run(200'000, all_pif_done);
  return sim;
}

// Arbitrary initial configuration (fuzzed state and channels), then a
// broadcast — locks the fuzz RNG stream and snap-stabilized recovery.
inline std::unique_ptr<sim::Simulator> run_pif_fuzz() {
  auto sim = pif_world(4, 1, /*seed=*/13);
  Rng fuzz_rng(13);
  sim::fuzz(*sim, fuzz_rng);
  sim->process_as<core::PifProcess>(0).pif().request(Value::integer(999));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(13));
  sim->run(200'000, all_pif_done);
  return sim;
}

// The full ME/IDL/PIF stack on complete(3) — exercises the busy-in-CS
// delivery filter and multi-layer observation interleavings.
inline std::unique_ptr<sim::Simulator> run_me_stack() {
  auto sim = std::make_unique<sim::Simulator>(3, 1, /*seed=*/5);
  core::StackOptions options;
  options.me.cs_length = 4;
  for (int p = 0; p < 3; ++p)
    sim->add_process(
        std::make_unique<core::MeStackProcess>(p + 1, 2, options));
  for (int p = 0; p < 3; ++p) core::request_cs(*sim, p);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(5));
  sim->run(30'000);
  return sim;
}

// The forwarding service on ring(5), capacity 1, random daemon with loss:
// three cross-ring routes (all multi-hop), runs until every submission is
// delivered — locks the hop-handshake traffic and the Service-layer events.
inline std::unique_ptr<sim::Simulator> run_fwd_ring() {
  auto sim = core::forward_world(sim::Topology::ring(5), 1, /*seed=*/17);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      17, sim::LossOptions{.rate = 0.1, .max_consecutive = 4}));
  core::request_forward(*sim, 0, 2, Value::integer(42));
  core::request_forward(*sim, 3, 1, Value::integer(43));
  core::request_forward(*sim, 4, 2, Value::integer(44));
  sim->run(500'000, [](sim::Simulator& s) {
    std::uint64_t delivered = 0;
    for (int p = 0; p < s.process_count(); ++p)
      delivered +=
          s.process_as<core::ForwardProcess>(p).forward().delivered_count();
    return delivered >= 3;
  });
  return sim;
}

// Crash-restart mid-PIF through the fault engine: a one-window FaultPlan
// scrambles a ServiceHost (killing its live session visibly) while a
// broadcast is in flight on ring(4); after the window closes a fresh
// request completes — locks the injector's fault observation, the
// crash-kill callback path, and post-fault recovery, bit for bit.
inline std::unique_ptr<sim::Simulator> run_pif_crash_restart() {
  const sim::Topology topo = sim::Topology::ring(4);
  auto sim = svc::service_world(topo, 1, /*seed=*/19, [](sim::ProcessId p) {
    svc::HostConfig cfg;
    cfg.id = p + 1;
    return cfg;
  });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(19));
  svc::Client client(*sim);

  // A single crash window pinned over the opening steps, so it is open
  // while the mid-fault broadcast is in flight.
  fault::FaultPlanSpec fs;
  fs.seed = 19;
  fs.horizon = 40;
  fs.min_len = 80;
  fs.max_len = 160;
  fs.crash_windows = 1;
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  fault::Injector injector(plan);

  // Mid-fault submission: the window's crash-restarts may kill it; either
  // way its terminal state is part of the locked trace. Drain the whole
  // schedule (quiescent spells get a wake-up probe) before phase two.
  client.submit(0, svc::PifBroadcast{Value::integer(777)});
  int guard = 0;
  while (!injector.done() && ++guard < 100) {
    const auto reason = sim->run(2'000, [&](sim::Simulator& s) {
      injector.poll(s);
      return injector.done();
    });
    if (reason == sim::Simulator::StopReason::Quiescent)
      client.submit(3, svc::PifBroadcast{Value::integer(700 + guard)});
  }
  // The fault has ceased: the post-fault request must run to completion.
  const svc::Session post =
      client.submit(1, svc::PifBroadcast{Value::integer(888)});
  sim->run(50'000,
           [&](sim::Simulator&) { return client.done(post); });
  return sim;
}

inline const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"pif_n4_rand_seed7.log", run_pif_rand},
      {"pif_n6_rand_loss_seed11.log", run_pif_loss},
      {"pif_n5_rr_seed3.log", run_pif_rr},
      {"pif_n4_fuzz_seed13.log", run_pif_fuzz},
      {"me_n3_rand_seed5.log", run_me_stack},
      {"fwd_ring_n5_seed17.log", run_fwd_ring},
      {"pif_crash_restart_seed19.log", run_pif_crash_restart},
  };
  return kScenarios;
}

}  // namespace snapstab::golden

#endif  // SNAPSTAB_TESTS_GOLDEN_SCENARIOS_HPP
