// mutate_scenarios.hpp — the kill-config ladder shared by
// tools/mutant_hunter.cpp and tests/test_mutate.cpp.
//
// Each KillConfig is one deterministic experiment: build a world, run it,
// assert the specification (spec checkers, exact results, golden traces).
// The contract is two-sided:
//   * DISARMED (the baseline), every config passes — the hunter verifies
//     this before hunting, and test_mutate pins the digests;
//   * with one non-equivalent mutant armed, at least one config fails —
//     that failure is the kill, recorded with the config's name and stage.
//
// Configs are ordered cheapest-first within their stage; the hunter runs
// stages in the fixed ladder order spec -> golden -> fuzz -> chaos and
// stops at the first failure. Every config also folds its observation
// trace and results into a digest, so test_mutate can additionally assert
// that each armed mutant *perturbs* at least one execution and that the
// two declared-equivalent mutants perturb none.
#ifndef SNAPSTAB_TESTS_MUTATE_SCENARIOS_HPP
#define SNAPSTAB_TESTS_MUTATE_SCENARIOS_HPP

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/forward_world.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "golden_scenarios.hpp"
#include "net/wire.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"
#include "svc/supervisor.hpp"

namespace snapstab::mutatetest {

// ---------------------------------------------------------------------------
// Outcome plumbing.
// ---------------------------------------------------------------------------

struct Outcome {
  bool pass = true;
  std::string detail;           // first failed assertion / spec violation
  std::uint64_t digest = 0;     // FNV-1a over the trace + checked results
  std::uint64_t steps = 0;      // simulator steps consumed (kill cost)
};

class Fold {
 public:
  void mix(std::string_view s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_int(std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= static_cast<unsigned char>(v >> (8 * i));
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t hash() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

class Check {
 public:
  explicit Check(Outcome& out) : out_(out) {}

  void require(bool cond, const std::string& what) {
    out_.get().digest ^= cond ? 0 : 0x9e3779b97f4a7c15ull;
    fold_.mix(what);
    fold_.mix(cond ? "|ok|" : "|FAIL|");
    if (!cond && out_.get().pass) {
      out_.get().pass = false;
      out_.get().detail = what;
    }
  }
  void spec(const core::SpecReport& report, const std::string& label) {
    require(report.ok(), report.ok() ? label : label + ": " + report.summary());
  }
  // Folds a checked value into the digest AND requires equality.
  void equals(std::int64_t got, std::int64_t want, const std::string& what) {
    fold_.mix_int(got);
    require(got == want, what + " (got " + std::to_string(got) + ", want " +
                             std::to_string(want) + ")");
  }
  void trace(sim::Simulator& sim) {
    fold_.mix(golden::render(sim));
    out_.get().steps += sim.metrics().steps;
  }
  void finish() { out_.get().digest ^= fold_.hash(); }

 private:
  std::reference_wrapper<Outcome> out_;
  Fold fold_;
};

struct KillConfig {
  const char* name;
  const char* stage;  // "spec" | "golden" | "fuzz" | "chaos"
  Outcome (*run)();
};

// ---------------------------------------------------------------------------
// Raw two-process PIF worlds for the scripted adversarial scenarios.
// The wrapper is a bare sim::Process (no svc layer) so the script can drive
// the exact Figure-1 interleavings and poke Pif::mutable_state directly.
// ---------------------------------------------------------------------------

class RawPifProcess final : public sim::Process {
 public:
  RawPifProcess(int degree, int capacity) : pif_(degree, capacity) {}
  core::Pif& pif() noexcept { return pif_; }
  void on_tick(sim::Context& ctx) override { pif_.tick(ctx); }
  void on_message(sim::Context& ctx, int ch, const Message& m) override {
    pif_.handle_message(ctx, ch, m);
  }
  bool tick_enabled() const override { return pif_.tick_enabled(); }
  void randomize(Rng& rng) override { pif_.randomize(rng); }

 private:
  core::Pif pif_;
};

// The Figure-1 prelude of bench/exp_ablation.cpp, aimed at the LIVE bound:
// a capacity-1 link's stale fuel fakes exactly three increments, so the
// paper's F = 2c+2 = 4 survives while any shortened bound ghost-decides
// without the responder ever seeing the broadcast.
inline Outcome run_pif_fig1() {
  Outcome out;
  Check ck(out);
  sim::Simulator world(2, 1, 5);
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  auto& net = world.network();
  net.channel(1, 0).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 0, 0));
  net.channel(0, 1).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 2, 0));
  auto& q = world.process_as<RawPifProcess>(1).pif();
  q.mutable_state().neig_state[0] = 1;
  q.request(Value::text("mq"));
  auto& p = world.process_as<RawPifProcess>(0).pif();
  p.request(Value::text("m"));

  world.execute(sim::Step::tick(0));        // p starts; send dies on full
  world.execute(sim::Step::deliver(1, 0));  // stale echo 0
  world.execute(sim::Step::tick(1));        // q starts, echoes NeigState 1
  world.execute(sim::Step::deliver(1, 0));  // stale echo 1
  world.execute(sim::Step::deliver(0, 1));  // q eats stale flag-2, echoes 2
  world.execute(sim::Step::deliver(1, 0));  // stale echo 2
  world.execute(sim::Step::tick(0));        // p decides iff State == F

  if (!p.done()) {
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(7));
    world.run(100'000, [](sim::Simulator& s) {
      return s.process_as<RawPifProcess>(0).pif().done();
    });
  }
  ck.require(p.done(), "fig1: the broadcast terminates under fair schedule");
  ck.spec(core::check_pif_spec(
              world, {.require_termination = false, .require_start = false}),
          "fig1: no ghost decision");
  ck.trace(world);
  ck.finish();
  return out;
}

// A genuine broadcast by q with p's NeigState copy corrupted by one wild
// (out-of-domain) echo mid-handshake. Live, the wild flag clamps to F and
// the genuine flag F-1 still reads as first sight; a clamp domain shrunk to
// F-1 pre-satisfies the first-sight test and suppresses receive-brd — a
// Correctness violation.
inline Outcome run_pif_wild_echo() {
  Outcome out;
  Check ck(out);
  sim::Simulator world(2, 1, 9);
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  auto& q = world.process_as<RawPifProcess>(1).pif();
  q.request(Value::integer(4242));

  // Three genuine round trips: q's flag climbs 0 -> 3 while p has seen 2.
  for (int round = 0; round < 3; ++round) {
    world.execute(sim::Step::tick(1));        // q (re)transmits flag `round`
    world.execute(sim::Step::deliver(1, 0));  // p records it, echoes
    world.execute(sim::Step::deliver(0, 1));  // q increments
  }
  // One wild echo into p: flag 5 is outside {0..F}; live clamps to F = 4.
  world.network().channel(1, 0).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 5, 9));
  world.execute(sim::Step::deliver(1, 0));
  // q's genuine flag-3 transmission: first sight of F-1 announces the
  // broadcast at p, and p's echo completes q's handshake.
  world.execute(sim::Step::tick(1));
  world.execute(sim::Step::deliver(1, 0));
  world.execute(sim::Step::deliver(0, 1));
  world.execute(sim::Step::tick(1));  // q decides

  ck.require(q.done(), "wild-echo: the broadcast terminates");
  ck.spec(core::check_pif_spec(
              world, {.require_termination = true, .require_start = false}),
          "wild-echo: receive-brd fires despite the wild flag");
  ck.trace(world);
  ck.finish();
  return out;
}

// A completed handshake hit by one ghost message whose NeigState field
// matches the already-final flag F. Live, the flag domain is closed at F
// and the message is inert; a counter allowed past the bound increments to
// F+1 and the broadcast never decides — a Termination violation.
inline Outcome run_pif_ghost_echo() {
  Outcome out;
  Check ck(out);
  sim::Simulator world(2, 1, 15);
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  world.add_process(std::make_unique<RawPifProcess>(1, 1));
  auto& p = world.process_as<RawPifProcess>(0).pif();
  p.request(Value::integer(7777));

  // Four genuine round trips complete the handshake: p's flag reaches F.
  for (int round = 0; round < 4; ++round) {
    world.execute(sim::Step::tick(0));
    world.execute(sim::Step::deliver(0, 1));
    world.execute(sim::Step::deliver(1, 0));
  }
  // Before p's deciding tick, a ghost whose NeigState equals F arrives.
  world.network().channel(1, 0).push(
      Message::pif(Value::text("junk"), Value::text("junk"), 0, 4));
  world.execute(sim::Step::deliver(1, 0));
  world.execute(sim::Step::tick(0));  // p decides iff State still == F

  if (!p.done()) {
    world.set_scheduler(std::make_unique<sim::RandomScheduler>(15));
    world.run(50'000, [](sim::Simulator& s) {
      return s.process_as<RawPifProcess>(0).pif().done();
    });
  }
  ck.require(p.done(), "ghost-echo: the flag domain is closed at F");
  ck.spec(core::check_pif_spec(
              world, {.require_termination = true, .require_start = false}),
          "ghost-echo: spec");
  ck.trace(world);
  ck.finish();
  return out;
}

// ---------------------------------------------------------------------------
// Spec-stage configs over the stock worlds.
// ---------------------------------------------------------------------------

inline Outcome run_spec_pif_rand() {
  Outcome out;
  Check ck(out);
  auto sim = golden::pif_world(4, 1, 7);
  for (int p = 0; p < 4; ++p)
    sim->process_as<core::PifProcess>(p).pif().request(
        Value::integer(100 + p));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(7));
  sim->run(200'000, golden::all_pif_done);
  ck.require(golden::all_pif_done(*sim), "pif.rand: every broadcast decides");
  ck.spec(core::check_pif_spec(*sim, {.require_start = false}),
          "pif.rand: spec");
  ck.trace(*sim);
  ck.finish();
  return out;
}

inline Outcome run_spec_pif_loss() {
  Outcome out;
  Check ck(out);
  auto sim = golden::pif_world(6, 2, 11);
  for (int p = 0; p < 6; p += 2)
    sim->process_as<core::PifProcess>(p).pif().request(Value::integer(p));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      11, sim::LossOptions{.rate = 0.3, .max_consecutive = 5}));
  sim->run(400'000, golden::all_pif_done);
  ck.require(golden::all_pif_done(*sim),
             "pif.loss: every broadcast decides despite loss");
  ck.spec(core::check_pif_spec(*sim, {.require_start = false}),
          "pif.loss: spec");
  ck.trace(*sim);
  ck.finish();
  return out;
}

inline Outcome run_spec_idl_exact() {
  Outcome out;
  Check ck(out);
  // Identities are all positive; fuzzed accumulators draw from
  // [-1000, 1000], so any stale minimum folded in (instead of reset) is
  // detected by the exactness check below.
  const std::vector<std::int64_t> ids = {42, 7, 99, 13};
  sim::Simulator sim(4, 1, 23);
  for (int p = 0; p < 4; ++p)
    sim.add_process(std::make_unique<core::IdlProcess>(
        ids[static_cast<std::size_t>(p)], 3, 1));
  Rng fuzz_rng(23);
  sim::fuzz(sim, fuzz_rng);
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(23));
  for (int p = 0; p < 4; ++p) core::request_idl(sim, p);
  sim.run(500'000, [](sim::Simulator& s) {
    for (int p = 0; p < s.process_count(); ++p)
      if (!s.process_as<core::IdlProcess>(p).idl().done()) return false;
    return true;
  });
  for (int p = 0; p < 4; ++p) {
    const auto& idl = sim.process_as<core::IdlProcess>(p).idl();
    ck.require(idl.done(), "idl.exact: computation " + std::to_string(p) +
                               " terminates");
    ck.equals(idl.min_id(), 7, "idl.exact: exact minimum at p" +
                                   std::to_string(p));
    for (int ch = 0; ch < 3; ++ch)
      ck.equals(idl.id_tab(ch),
                ids[static_cast<std::size_t>(
                    sim.topology().peer_of(p, ch))],
                "idl.exact: ID-Tab[" + std::to_string(ch) + "] at p" +
                    std::to_string(p));
  }
  ck.spec(core::check_idl_spec(
              sim,
              [&sim](sim::ProcessId p) -> const core::Idl& {
                return sim.process_as<core::IdlProcess>(p).idl();
              },
              ids),
          "idl.exact: spec");
  ck.trace(sim);
  ck.finish();
  return out;
}

inline Outcome run_spec_me_cycle() {
  Outcome out;
  Check ck(out);
  sim::Simulator sim(3, 1, 29);
  core::StackOptions options;
  options.me.cs_length = 3;
  for (int p = 0; p < 3; ++p)
    sim.add_process(std::make_unique<core::MeStackProcess>(p + 1, 2, options));
  for (int p = 0; p < 3; ++p) core::request_cs(sim, p);
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(29));
  sim.run(60'000);
  ck.spec(core::check_me_spec(sim, {.require_liveness = true}),
          "me.cycle: every requester served, mutual exclusion holds");
  ck.trace(sim);
  ck.finish();
  return out;
}

// Winner(p)'s second disjunct demands a privilege *from the minimum-identity
// neighbor* (Privileges[q] ∧ ID-Tab[q] = minID). A corrupted privilege from
// anyone else — here a ghost YES recorded from a non-minimum neighbor — must
// not make p a winner, or two processes enter the critical section.
inline Outcome run_spec_me_ghost_privilege() {
  Outcome out;
  Check ck(out);
  sim::Simulator sim(3, 1, 31);
  for (int p = 0; p < 3; ++p)
    sim.add_process(
        std::make_unique<core::MeStackProcess>(p + 5, 2, core::StackOptions{}));
  auto& host = sim.process_as<core::MeStackProcess>(2);  // own_id 7
  auto& idl_st = host.idl().mutable_state();
  idl_st.request = core::RequestState::Done;
  idl_st.min_id = 5;
  idl_st.id_tab = {6, 6};  // neither channel reports the minimum identity
  auto& me_st = host.me().mutable_state();
  me_st.privileges = {true, false};  // ghost YES from a non-minimum neighbor
  me_st.value = 2;                   // first disjunct (minID=ID ∧ Value=0) off
  ck.require(!host.me().winner(),
             "me.ghost_privilege: a privilege from a non-minimum neighbor "
             "does not make a winner");
  ck.finish();
  return out;
}

inline Outcome run_spec_svc_reset() {
  Outcome out;
  Check ck(out);
  std::array<int, 4> resets{};
  sim::Simulator sim(4, 1, 33);
  for (int p = 0; p < 4; ++p)
    sim.add_process(std::make_unique<core::ResetProcess>(
        3, 1, [&resets, p](sim::Context&) {
          ++resets[static_cast<std::size_t>(p)];
        }));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(33));
  svc::Client client(sim);
  const auto session = client.submit(0, svc::Reset{});
  const auto res = client.await_all({session}, {.max_steps = 100'000});
  ck.require(res == svc::AwaitResult::Done, "reset: the session completes");
  for (int p = 0; p < 4; ++p)
    ck.equals(resets[static_cast<std::size_t>(p)], 1,
              "reset: process " + std::to_string(p) +
                  " executed exactly one reset at completion");
  for (int p = 0; p < 4; ++p)
    ck.equals(static_cast<std::int64_t>(
                  sim.process_as<svc::ServiceHost>(p).reset()
                      .resets_executed()),
              1, "reset: process " + std::to_string(p) +
                     " bookkeeping counts one execution");
  ck.trace(sim);
  ck.finish();
  return out;
}

inline Outcome run_spec_svc_snapshot() {
  Outcome out;
  Check ck(out);
  sim::Simulator sim(3, 1, 37);
  for (int p = 0; p < 3; ++p)
    sim.add_process(std::make_unique<core::SnapshotProcess>(
        2, 1, [p] { return Value::integer(1000 + p); }));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(37));
  svc::Client client(sim);
  const auto session = client.submit(0, svc::Snapshot{});
  const auto res = client.await_all({session}, {.max_steps = 100'000});
  ck.require(res == svc::AwaitResult::Done, "snapshot: the session completes");
  const auto& snap = sim.process_as<svc::ServiceHost>(0).snapshot();
  ck.equals(snap.own_state().as_int(-1), 1000, "snapshot: own state read");
  for (int ch = 0; ch < 2; ++ch)
    ck.equals(snap.collected()[static_cast<std::size_t>(ch)].as_int(-1),
              1000 + sim.topology().peer_of(0, ch),
              "snapshot: collected[" + std::to_string(ch) + "]");
  ck.trace(sim);
  ck.finish();
  return out;
}

inline Outcome run_spec_svc_election() {
  Outcome out;
  Check ck(out);
  const std::vector<std::int64_t> ids = {42, 7, 99, 13};
  const std::vector<std::int64_t> sorted = {7, 13, 42, 99};
  sim::Simulator sim(4, 1, 41);
  for (int p = 0; p < 4; ++p)
    sim.add_process(std::make_unique<core::ElectionProcess>(
        ids[static_cast<std::size_t>(p)], 3, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(41));
  svc::Client client(sim);
  std::vector<svc::Session> sessions;
  for (int p = 0; p < 4; ++p)
    sessions.push_back(client.submit(p, svc::Election{}));
  const auto res = client.await_all(sessions, {.max_steps = 200'000});
  ck.require(res == svc::AwaitResult::Done, "election: every session done");
  for (int p = 0; p < 4; ++p) {
    const auto result = client.result(sessions[static_cast<std::size_t>(p)]);
    const std::int64_t own = ids[static_cast<std::size_t>(p)];
    ck.equals(result.min_id, 7, "election: minimum at p" + std::to_string(p));
    std::int64_t want_rank = 0;
    while (sorted[static_cast<std::size_t>(want_rank)] != own) ++want_rank;
    ck.equals(result.rank, want_rank,
              "election: rank at p" + std::to_string(p));
    const auto& el = sim.process_as<svc::ServiceHost>(p).election();
    ck.equals(el.leader(), 7, "election: leader() at p" + std::to_string(p));
    ck.equals(el.is_leader() ? 1 : 0, own == 7 ? 1 : 0,
              "election: is_leader() at p" + std::to_string(p));
    const auto members = el.members();
    ck.equals(static_cast<std::int64_t>(members.size()), 4,
              "election: member count at p" + std::to_string(p));
    for (std::size_t i = 0; i < members.size() && i < sorted.size(); ++i)
      ck.equals(members[i], sorted[i],
                "election: members[" + std::to_string(i) + "] at p" +
                    std::to_string(p));
  }
  ck.trace(sim);
  ck.finish();
  return out;
}

// --- termination detection -------------------------------------------------

inline std::unique_ptr<sim::Simulator> td_world(
    std::uint64_t seed, const std::function<core::AppCounters(int)>& counters) {
  auto sim = std::make_unique<sim::Simulator>(3, 1, seed);
  for (int p = 0; p < 3; ++p) {
    core::DiffusingApp app;
    app.counters = [counters, p] { return counters(p); };
    sim->add_process(std::make_unique<core::TermDetectProcess>(2, 1, app));
  }
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  return sim;
}

// Idle application: detection claims after exactly two probe waves, and a
// second detection on the same world behaves identically.
inline Outcome run_spec_td_idle_twice() {
  Outcome out;
  Check ck(out);
  auto sim = td_world(45, [](int) { return core::AppCounters{}; });
  svc::Client client(*sim);
  for (int round = 0; round < 2; ++round) {
    const auto session = client.submit(0, svc::TermDetect{});
    const auto res = client.await_all({session}, {.max_steps = 100'000});
    ck.require(res == svc::AwaitResult::Done,
               "td.idle: detection " + std::to_string(round) + " completes");
    if (res != svc::AwaitResult::Done) break;
    const auto result = client.result(session);
    ck.equals(result.termination_claimed ? 1 : 0, 1,
              "td.idle: claim " + std::to_string(round));
    ck.equals(result.waves, 2,
              "td.idle: exactly two waves, round " + std::to_string(round));
    client.release(session);
  }
  ck.trace(*sim);
  ck.finish();
  return out;
}

// Per-process counters that disagree but sum to a quiet snapshot: the claim
// hinges on every peer's feedback being collected and unpacked exactly.
inline Outcome run_spec_td_asym_idle() {
  Outcome out;
  Check ck(out);
  auto sim = td_world(47, [](int p) {
    return core::AppCounters{true, static_cast<std::uint32_t>(p),
                             static_cast<std::uint32_t>(2 - p)};
  });
  svc::Client client(*sim);
  const auto session = client.submit(0, svc::TermDetect{});
  const auto res = client.await_all({session}, {.max_steps = 100'000});
  ck.require(res == svc::AwaitResult::Done, "td.asym: detection completes");
  if (res == svc::AwaitResult::Done)
    ck.equals(client.result(session).termination_claimed ? 1 : 0, 1,
              "td.asym: globally quiet counters are claimed");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// Drifting application: every snapshot is quiet but no two are equal, so a
// sound detector never claims — it must compare two successive snapshots.
inline Outcome run_spec_td_drift() {
  Outcome out;
  Check ck(out);
  auto drift = std::make_shared<std::array<std::uint32_t, 3>>();
  auto sim = td_world(49, [drift](int p) {
    const std::uint32_t k = (*drift)[static_cast<std::size_t>(p)]++;
    return core::AppCounters{true, k, k};
  });
  svc::Client client(*sim);
  const auto session = client.submit(0, svc::TermDetect{});
  const auto res = client.await_all({session}, {.max_steps = 40'000});
  ck.require(res != svc::AwaitResult::Done,
             "td.drift: drifting quiet snapshots never anchor a claim");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// Messages permanently in flight (sent > received): never quiet.
inline Outcome run_spec_td_inflight_lie() {
  Outcome out;
  Check ck(out);
  auto sim = td_world(51, [](int) { return core::AppCounters{true, 1, 0}; });
  svc::Client client(*sim);
  const auto session = client.submit(0, svc::TermDetect{});
  const auto res = client.await_all({session}, {.max_steps = 40'000});
  ck.require(res != svc::AwaitResult::Done,
             "td.inflight: unreceived messages block the claim");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// A permanently active process: never quiet, regardless of counters.
inline Outcome run_spec_td_active_idle() {
  Outcome out;
  Check ck(out);
  auto sim = td_world(53, [](int) { return core::AppCounters{false, 0, 0}; });
  svc::Client client(*sim);
  const auto session = client.submit(0, svc::TermDetect{});
  const auto res = client.await_all({session}, {.max_steps = 40'000});
  ck.require(res != svc::AwaitResult::Done,
             "td.active: an active process blocks the claim");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// --- forwarding ------------------------------------------------------------

inline Outcome run_spec_fwd_ring() {
  Outcome out;
  Check ck(out);
  auto sim = core::forward_world(sim::Topology::ring(5), 1, 57);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      57, sim::LossOptions{.rate = 0.1, .max_consecutive = 4}));
  // Payloads >= 10^6 are outside Value::random's range, so no fuzzed ghost
  // can impersonate them (see check_forward_spec's header comment).
  ck.require(core::request_forward(*sim, 0, 2, Value::integer(1'000'042)),
             "fwd.ring: submit 0->2 accepted");
  ck.require(core::request_forward(*sim, 3, 1, Value::integer(1'000'043)),
             "fwd.ring: submit 3->1 accepted");
  ck.require(core::request_forward(*sim, 4, 2, Value::integer(1'000'044)),
             "fwd.ring: submit 4->2 accepted");
  sim->run(500'000, [](sim::Simulator& s) {
    std::uint64_t delivered = 0;
    for (int p = 0; p < s.process_count(); ++p)
      delivered +=
          s.process_as<core::ForwardProcess>(p).forward().delivered_count();
    return delivered >= 3;
  });
  std::uint64_t delivered = 0;
  for (int p = 0; p < 5; ++p)
    delivered +=
        sim->process_as<core::ForwardProcess>(p).forward().delivered_count();
  ck.equals(static_cast<std::int64_t>(delivered), 3,
            "fwd.ring: three deliveries counted");
  ck.spec(core::check_forward_spec(*sim), "fwd.ring: exactly-once delivery");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// --- supervisor circuit breaker / hedging ----------------------------------
// PIF-only worlds (golden::pif_world), so none of the declared-equivalent
// IDL/ME/TD mutants can touch these traces. Failures are injected by
// crashing the origin host (kills the live session visibly), which is what
// feeds the breaker's consecutive-failure count deterministically.

// Trip -> Open -> short-circuit -> (quiescent fast-forward) HalfOpen probe
// -> Closed. Kills sup.breaker.trip, sup.breaker.cooldown, sup.probe.close.
inline Outcome run_spec_sup_breaker() {
  Outcome out;
  Check ck(out);
  auto sim = golden::pif_world(3, 1, 31);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(32));
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  so.backoff_max = 8;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 2;
  so.breaker.open_cooldown = 50'000;  // never elapses inside this run
  svc::Supervisor sup(client, so);
  const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(41)});
  // Kill exactly the first two attempts: crash the origin host once per
  // attempt number, the first pump after each launch.
  Rng rng(7);
  int last_killed = 0;
  sup.set_on_pump([&] {
    if (sup.terminal(t)) return;
    const int a = sup.attempts(t);
    if (a >= 1 && a <= 2 && a != last_killed) {
      sim->process_as<svc::ServiceHost>(0).crash_restart(rng);
      last_killed = a;
    }
  });
  svc::AwaitOptions aw;
  aw.policy.check_every = 1;
  ck.require(sup.run_all(aw), "sup.breaker: run_all settles every ticket");
  ck.equals(static_cast<std::int64_t>(sup.outcome(t)),
            static_cast<std::int64_t>(svc::SessionOutcome::Ok),
            "sup.breaker: recovered Ok");
  ck.equals(sup.attempts(t), 3, "sup.breaker: two kills then the probe");
  ck.equals(static_cast<std::int64_t>(sup.stats().breaker_trips), 1,
            "sup.breaker: tripped exactly once");
  ck.equals(static_cast<std::int64_t>(sup.stats().breaker_short_circuits), 1,
            "sup.breaker: one held resubmission while Open");
  ck.equals(static_cast<std::int64_t>(sup.stats().probes), 1,
            "sup.breaker: one HalfOpen probe");
  ck.equals(
      static_cast<std::int64_t>(sup.breaker_state(svc::ServiceId::PifBroadcast)),
      static_cast<std::int64_t>(svc::BreakerState::Closed),
      "sup.breaker: probe success closed the breaker");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// Two tickets contending for one HalfOpen probe slot: the quota admits one,
// short-circuits the other. Kills sup.probe.quota (and sup.breaker.trip at
// threshold 1).
inline Outcome run_spec_sup_probe() {
  Outcome out;
  Check ck(out);
  auto sim = golden::pif_world(3, 1, 33);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(34));
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  so.backoff_max = 8;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 1;
  so.breaker.open_cooldown = 50'000;
  so.breaker.probe_quota = 1;
  svc::Supervisor sup(client, so);
  const auto t1 = sup.supervise(0, svc::PifBroadcast{Value::integer(7)});
  const auto t2 = sup.supervise(1, svc::PifBroadcast{Value::integer(8)});
  // Kill both first attempts before any pump: the first failure trips the
  // breaker, the second lands on it already Open.
  Rng rng(9);
  sim->process_as<svc::ServiceHost>(0).crash_restart(rng);
  sim->process_as<svc::ServiceHost>(1).crash_restart(rng);
  svc::AwaitOptions aw;
  aw.policy.check_every = 1;
  ck.require(sup.run_all(aw), "sup.probe: run_all settles every ticket");
  ck.equals(static_cast<std::int64_t>(sup.outcome(t1)),
            static_cast<std::int64_t>(svc::SessionOutcome::Ok),
            "sup.probe: t1 Ok");
  ck.equals(static_cast<std::int64_t>(sup.outcome(t2)),
            static_cast<std::int64_t>(svc::SessionOutcome::Ok),
            "sup.probe: t2 Ok");
  ck.equals(static_cast<std::int64_t>(sup.stats().breaker_trips), 1,
            "sup.probe: one trip");
  ck.equals(static_cast<std::int64_t>(sup.stats().probes), 1,
            "sup.probe: the quota admitted exactly one probe");
  ck.equals(
      static_cast<std::int64_t>(sup.breaker_state(svc::ServiceId::PifBroadcast)),
      static_cast<std::int64_t>(svc::BreakerState::Closed),
      "sup.probe: closed after the probe");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// Hedging: a healthy request under a huge hedge budget must launch zero
// backups (kills sup.hedge.fire, whose mutant fires at the first pump); a
// tiny budget launches exactly max_hedges.
inline Outcome run_spec_sup_hedge() {
  Outcome out;
  Check ck(out);
  {
    auto sim = golden::pif_world(3, 1, 35);
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(36));
    svc::Client client(*sim);
    svc::SuperviseOptions so;
    so.hedge.enabled = true;
    so.hedge.hedge_after = 100'000;  // far beyond the healthy completion
    svc::Supervisor sup(client, so);
    const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(5)});
    svc::AwaitOptions aw;
    aw.policy.check_every = 1;
    ck.require(sup.run_all(aw), "sup.hedge: healthy run settles");
    ck.equals(static_cast<std::int64_t>(sup.outcome(t)),
              static_cast<std::int64_t>(svc::SessionOutcome::Ok),
              "sup.hedge: healthy Ok");
    ck.equals(static_cast<std::int64_t>(sup.stats().hedges_launched), 0,
              "sup.hedge: no backup within the budget");
    ck.trace(*sim);
  }
  {
    auto sim = golden::pif_world(3, 1, 37);
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(38));
    svc::Client client(*sim);
    svc::SuperviseOptions so;
    so.hedge.enabled = true;
    so.hedge.hedge_after = 1;  // fires on the first pump past launch
    so.hedge.max_hedges = 1;
    svc::Supervisor sup(client, so);
    const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(6)});
    svc::AwaitOptions aw;
    aw.policy.check_every = 1;
    ck.require(sup.run_all(aw), "sup.hedge: hedged run settles");
    ck.equals(static_cast<std::int64_t>(sup.outcome(t)),
              static_cast<std::int64_t>(svc::SessionOutcome::Ok),
              "sup.hedge: hedged Ok");
    ck.equals(static_cast<std::int64_t>(sup.stats().hedges_launched), 1,
              "sup.hedge: exactly one backup");
    ck.trace(*sim);
  }
  ck.finish();
  return out;
}

// ---------------------------------------------------------------------------
// Wire-frame validation: forge datagrams around one well-formed frame and
// require every rejection to fire. Each MUTATION_POINT in decode_frame
// (version gate, length guard, checksum check) has a forged input here
// that only the live check rejects — the mutant accepts it as Ok, which
// both flips the folded result code and breaks the explicit equals.
// ---------------------------------------------------------------------------

inline Outcome run_spec_net_frame() {
  Outcome out;
  Check ck(out);
  StringPool pool;
  ScopedStringPool scope(pool);
  const Message m =
      Message::pif(Value::text("net-frame"), Value::integer(3), 1, 2);
  const std::vector<std::uint8_t> good = net::encode_frame(5, m, pool);

  const auto result_of = [&](const std::vector<std::uint8_t>& frame) {
    return static_cast<std::int64_t>(
        net::decode_frame(frame.data(), frame.size(), pool).result);
  };
  const auto want = [](net::WireFrameResult r) {
    return static_cast<std::int64_t>(r);
  };

  const net::DecodedFrame ok = net::decode_frame(good.data(), good.size(), pool);
  ck.equals(static_cast<std::int64_t>(ok.result),
            want(net::WireFrameResult::Ok), "net.frame: well-formed accepted");
  ck.equals(ok.edge, 5, "net.frame: edge survives the round trip");
  ck.require(ok.message.kind == m.kind && ok.message.b == m.b &&
                 ok.message.f == m.f && ok.message.state == m.state,
             "net.frame: message survives the round trip");

  auto forged = good;
  forged[13] ^= 0xFF;  // corrupt the stored checksum
  ck.equals(result_of(forged), want(net::WireFrameResult::BadChecksum),
            "net.frame: corrupted checksum field rejected");

  forged = good;
  forged.back() ^= 0x01;  // corrupt one payload byte in flight
  ck.equals(result_of(forged), want(net::WireFrameResult::BadChecksum),
            "net.frame: corrupted payload byte rejected");

  forged = good;
  forged[4] = net::kWireVersion + 1;  // incompatible peer, checksum valid
  net::patch_checksum(forged);
  ck.equals(result_of(forged), want(net::WireFrameResult::BadVersion),
            "net.frame: foreign frame version rejected");

  // Trailing garbage: payload_len disagrees with the datagram size but the
  // checksum (over the declared payload) still verifies — only the exact
  // length guard catches it.
  forged = good;
  forged.push_back(0xEE);
  ck.equals(result_of(forged), want(net::WireFrameResult::BadLength),
            "net.frame: trailing garbage rejected");

  forged.assign(good.begin(), good.begin() + net::kWireHeaderSize - 1);
  ck.equals(result_of(forged), want(net::WireFrameResult::TooShort),
            "net.frame: truncated header rejected");

  forged = good;
  forged[0] ^= 0xFF;
  ck.equals(result_of(forged), want(net::WireFrameResult::BadMagic),
            "net.frame: foreign magic rejected");

  ck.finish();
  return out;
}

// ---------------------------------------------------------------------------
// Golden stage: replay the pinned traces and compare bit for bit.
// ---------------------------------------------------------------------------

inline std::string read_golden(const char* file) {
  const std::string path = std::string(SNAPSTAB_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

inline Outcome run_golden(std::size_t index) {
  Outcome out;
  Check ck(out);
  const auto& sc = golden::scenarios()[index];
  auto sim = sc.run();
  const std::string got = golden::render(*sim);
  const std::string want = read_golden(sc.file);
  ck.require(!want.empty(), std::string("golden: ") + sc.file + " readable");
  ck.require(got == want,
             std::string("golden: ") + sc.file + " replays bit-identically");
  ck.trace(*sim);
  ck.finish();
  return out;
}

// ---------------------------------------------------------------------------
// Fuzz stage: arbitrary initial configurations (I = C).
// ---------------------------------------------------------------------------

inline Outcome run_fuzz_pif(std::uint64_t seed, bool wild) {
  Outcome out;
  Check ck(out);
  auto sim = golden::pif_world(4, 1, seed);
  Rng fuzz_rng(seed * 3 + 1);
  sim::FuzzOptions fo;
  fo.wild_flags = wild;
  sim::fuzz(*sim, fuzz_rng, fo);
  for (int p = 0; p < 4; ++p)
    sim->process_as<core::PifProcess>(p).pif().request(
        Value::integer(500 + p));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  sim->run(500'000, golden::all_pif_done);
  ck.require(golden::all_pif_done(*sim),
             "fuzz.pif: every broadcast decides from arbitrary state");
  ck.spec(core::check_pif_spec(*sim, {.require_start = false}),
          "fuzz.pif: spec from arbitrary state");
  ck.trace(*sim);
  ck.finish();
  return out;
}

inline Outcome run_fuzz_pif_21() { return run_fuzz_pif(21, false); }
inline Outcome run_fuzz_pif_22() { return run_fuzz_pif(22, false); }
inline Outcome run_fuzz_wild_31() { return run_fuzz_pif(31, true); }
inline Outcome run_fuzz_wild_32() { return run_fuzz_pif(32, true); }

inline Outcome run_fuzz_me(std::uint64_t seed) {
  Outcome out;
  Check ck(out);
  sim::Simulator sim(3, 1, seed);
  core::StackOptions options;
  options.me.cs_length = 2;
  for (int p = 0; p < 3; ++p)
    sim.add_process(std::make_unique<core::MeStackProcess>(p + 1, 2, options));
  Rng fuzz_rng(seed ^ 0xA5Eu);
  sim::fuzz(sim, fuzz_rng);
  for (int p = 0; p < 3; ++p) core::request_cs(sim, p);
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  sim.run(120'000);
  ck.spec(core::check_me_spec(sim, {.require_liveness = true}),
          "fuzz.me: mutual exclusion from arbitrary state");
  ck.trace(sim);
  ck.finish();
  return out;
}

inline Outcome run_fuzz_me_41() { return run_fuzz_me(41); }
inline Outcome run_fuzz_me_42() { return run_fuzz_me(42); }

inline Outcome run_fuzz_fwd(std::uint64_t seed) {
  Outcome out;
  Check ck(out);
  auto sim = core::forward_world(sim::Topology::ring(4), 1, seed);
  Rng fuzz_rng(seed * 7 + 5);
  sim::FuzzOptions fo;
  fo.forward_header_n = 4;
  fo.wild_flags = true;
  sim::fuzz(*sim, fuzz_rng, fo);
  const std::uint64_t ghosts = core::forward_ghost_budget(*sim);
  ck.require(core::request_forward(*sim, 0, 2,
                                   Value::integer(2'000'000 +
                                                  static_cast<int>(seed))),
             "fuzz.fwd: submit 0->2 accepted");
  ck.require(core::request_forward(*sim, 1, 3,
                                   Value::integer(3'000'000 +
                                                  static_cast<int>(seed))),
             "fuzz.fwd: submit 1->3 accepted");
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  sim->run(400'000, [](sim::Simulator&) { return false; });
  ck.spec(core::check_forward_spec(
              *sim, {.require_all_delivered = true,
                     .max_ghost_deliveries = ghosts}),
          "fuzz.fwd: exactly-once within the ghost budget");
  ck.trace(*sim);
  ck.finish();
  return out;
}

inline Outcome run_fuzz_fwd_51() { return run_fuzz_fwd(51); }
inline Outcome run_fuzz_fwd_52() { return run_fuzz_fwd(52); }

// ---------------------------------------------------------------------------
// Chaos stage: a shortened PR-7 fault campaign — crash-restart scrambles and
// garbage bursts on ring(6); after the fault ceases, a fresh broadcast must
// complete and the whole run must satisfy the PIF spec.
// ---------------------------------------------------------------------------

inline Outcome run_chaos_recover(std::uint64_t seed) {
  Outcome out;
  Check ck(out);
  const sim::Topology topo = sim::Topology::ring(6);
  auto sim = svc::service_world(topo, 1, seed, [](sim::ProcessId p) {
    svc::HostConfig cfg;
    cfg.id = p + 1;
    return cfg;
  });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  svc::Client client(*sim);

  fault::FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = 200;
  fs.min_len = 100;
  fs.max_len = 400;
  fs.crash_windows = 2;
  fs.garbage_windows = 1;
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  fault::Injector injector(plan);

  client.submit(0, svc::PifBroadcast{Value::integer(600)});
  int guard = 0;
  while (!injector.done() && ++guard < 100) {
    const auto reason = sim->run(2'000, [&](sim::Simulator& s) {
      injector.poll(s);
      return injector.done();
    });
    if (reason == sim::Simulator::StopReason::Quiescent)
      client.submit(static_cast<int>(guard) % 6,
                    svc::PifBroadcast{Value::integer(600 + guard)});
  }
  ck.require(injector.done(), "chaos: the fault schedule drains");
  // Snap-stabilization promises correctness for requests *started after the
  // faults cease* — broadcasts disrupted mid-campaign are legitimately
  // abnormal, so the spec window opens here.
  sim->log().clear();
  const auto post = client.submit(1, svc::PifBroadcast{Value::integer(888)});
  const auto res = client.await_all({post}, {.max_steps = 300'000});
  ck.require(res == svc::AwaitResult::Done,
             "chaos: the post-fault broadcast completes");
  ck.spec(core::check_pif_spec(
              *sim, {.require_termination = false, .require_start = false}),
          "chaos: spec over the post-fault window");
  ck.trace(*sim);
  ck.finish();
  return out;
}

inline Outcome run_chaos_61() { return run_chaos_recover(61); }
inline Outcome run_chaos_62() { return run_chaos_recover(62); }

// ---------------------------------------------------------------------------
// The ladder.
// ---------------------------------------------------------------------------

inline Outcome run_golden_0() { return run_golden(0); }
inline Outcome run_golden_1() { return run_golden(1); }
inline Outcome run_golden_2() { return run_golden(2); }
inline Outcome run_golden_3() { return run_golden(3); }
inline Outcome run_golden_4() { return run_golden(4); }
inline Outcome run_golden_5() { return run_golden(5); }
inline Outcome run_golden_6() { return run_golden(6); }

inline const std::vector<KillConfig>& kill_configs() {
  static const std::vector<KillConfig> kConfigs = {
      {"spec.pif.fig1", "spec", run_pif_fig1},
      {"spec.pif.wild_echo", "spec", run_pif_wild_echo},
      {"spec.pif.ghost_echo", "spec", run_pif_ghost_echo},
      {"spec.pif.rand", "spec", run_spec_pif_rand},
      {"spec.pif.loss", "spec", run_spec_pif_loss},
      {"spec.idl.exact", "spec", run_spec_idl_exact},
      {"spec.me.cycle", "spec", run_spec_me_cycle},
      {"spec.me.ghost_privilege", "spec", run_spec_me_ghost_privilege},
      {"spec.svc.reset", "spec", run_spec_svc_reset},
      {"spec.svc.snapshot", "spec", run_spec_svc_snapshot},
      {"spec.svc.election", "spec", run_spec_svc_election},
      {"spec.td.idle_twice", "spec", run_spec_td_idle_twice},
      {"spec.td.asym_idle", "spec", run_spec_td_asym_idle},
      {"spec.td.drift", "spec", run_spec_td_drift},
      {"spec.td.inflight_lie", "spec", run_spec_td_inflight_lie},
      {"spec.td.active_idle", "spec", run_spec_td_active_idle},
      {"spec.fwd.ring", "spec", run_spec_fwd_ring},
      {"spec.sup.breaker", "spec", run_spec_sup_breaker},
      {"spec.sup.probe", "spec", run_spec_sup_probe},
      {"spec.sup.hedge", "spec", run_spec_sup_hedge},
      {"spec.net.frame", "spec", run_spec_net_frame},
      {"golden.pif_rand", "golden", run_golden_0},
      {"golden.pif_loss", "golden", run_golden_1},
      {"golden.pif_rr", "golden", run_golden_2},
      {"golden.pif_fuzz", "golden", run_golden_3},
      {"golden.me_stack", "golden", run_golden_4},
      {"golden.fwd_ring", "golden", run_golden_5},
      {"golden.pif_crash_restart", "golden", run_golden_6},
      {"fuzz.pif.21", "fuzz", run_fuzz_pif_21},
      {"fuzz.pif.22", "fuzz", run_fuzz_pif_22},
      {"fuzz.wild.31", "fuzz", run_fuzz_wild_31},
      {"fuzz.wild.32", "fuzz", run_fuzz_wild_32},
      {"fuzz.me.41", "fuzz", run_fuzz_me_41},
      {"fuzz.me.42", "fuzz", run_fuzz_me_42},
      {"fuzz.fwd.51", "fuzz", run_fuzz_fwd_51},
      {"fuzz.fwd.52", "fuzz", run_fuzz_fwd_52},
      {"chaos.recover.61", "chaos", run_chaos_61},
      {"chaos.recover.62", "chaos", run_chaos_62},
  };
  return kConfigs;
}

}  // namespace snapstab::mutatetest

#endif  // SNAPSTAB_TESTS_MUTATE_SCENARIOS_HPP
