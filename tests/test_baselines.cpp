// test_baselines.cpp — the negative results that motivate Protocol PIF.
//
// The paper's Section-4.1 "naive attempt" must fail exactly as the paper
// predicts (deadlock under loss, ghost decision under corruption), and the
// self-stabilizing sequence-number baseline must show convergence — early
// violations, later correctness — rather than snap-stabilization.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/naive_pif.hpp"
#include "baselines/seq_pif.hpp"
#include "core/specs.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::baselines {
namespace {

using sim::Simulator;

void request_baseline(Simulator& sim, int p, const Value& b) {
  if (auto* naive = dynamic_cast<NaivePifProcess*>(&sim.process(p))) {
    naive->request(b);
  } else {
    dynamic_cast<SeqPifProcess&>(sim.process(p)).request(b);
  }
  sim.log().emit(sim::Observation{sim.step_count(), p, sim::Layer::Baseline,
                                  sim::ObsKind::RequestWait, -1, b});
}

TEST(NaivePif, WorksOnAPerfectNetwork) {
  // To be fair to the baseline: with no loss and no corruption it is fine.
  Simulator sim(3, 1, 1);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<NaivePifProcess>(2));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  request_baseline(sim, 0, Value::text("m"));
  ASSERT_EQ(sim.run(100'000,
                    [](Simulator& s) {
                      return dynamic_cast<NaivePifProcess&>(s.process(0))
                          .done();
                    }),
            Simulator::StopReason::Predicate);
  const auto report =
      core::check_pif_spec(sim, {.layer = sim::Layer::Baseline});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(NaivePif, DeadlocksWhenTheBroadcastIsLost) {
  // Failure mode (1) of Section 4.1: no retransmission, so one lost message
  // stalls the computation forever.
  Simulator sim(2, 1, 3);
  sim.add_process(std::make_unique<NaivePifProcess>(1));
  sim.add_process(std::make_unique<NaivePifProcess>(1));
  request_baseline(sim, 0, Value::text("m"));
  sim.execute(sim::Step::tick(0));   // start: the only broadcast send
  sim.execute(sim::Step::lose(0, 1));  // the adversary eats it
  // Nothing is enabled any more: the initiator waits forever.
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(4));
  EXPECT_EQ(sim.run(10'000), Simulator::StopReason::Quiescent);
  EXPECT_FALSE(dynamic_cast<NaivePifProcess&>(sim.process(0)).done());
}

TEST(NaivePif, GhostDecisionFromCorruptedChannel) {
  // Failure mode (2): a stale feedback in the initial configuration is
  // accepted as genuine; the initiator decides although its broadcast never
  // reached the peer.
  Simulator sim(2, 1, 5);
  sim.add_process(std::make_unique<NaivePifProcess>(1));
  sim.add_process(std::make_unique<NaivePifProcess>(1));
  sim.network().channel(1, 0).push(
      Message::naive_fck(Value::text("stale-ack")));
  request_baseline(sim, 0, Value::text("m"));
  sim.execute(sim::Step::tick(0));       // start (broadcast enters 0->1)
  sim.execute(sim::Step::lose(0, 1));    // broadcast lost
  sim.execute(sim::Step::deliver(1, 0));  // stale feedback accepted
  EXPECT_TRUE(dynamic_cast<NaivePifProcess&>(sim.process(0)).done());

  const auto report =
      core::check_pif_spec(sim, {.layer = sim::Layer::Baseline,
                                 .require_termination = false,
                                 .require_start = false});
  ASSERT_FALSE(report.ok());
  bool never_received = false;
  for (const auto& v : report.violations)
    if (v.find("never received") != std::string::npos) never_received = true;
  EXPECT_TRUE(never_received) << report.summary();
}

TEST(SeqPif, WorksOnCleanStateEvenWithLoss) {
  // Retransmission fixes the deadlock: the baseline terminates under loss.
  Simulator sim(3, 1, 7);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<SeqPifProcess>(2, 16));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(
      8, sim::LossOptions{.rate = 0.3, .max_consecutive = 4}));
  request_baseline(sim, 0, Value::text("m"));
  ASSERT_EQ(sim.run(300'000,
                    [](Simulator& s) {
                      return dynamic_cast<SeqPifProcess&>(s.process(0))
                          .done();
                    }),
            Simulator::StopReason::Predicate);
  const auto report =
      core::check_pif_spec(sim, {.layer = sim::Layer::Baseline});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SeqPif, StaleMatchingFeedbackFoolsTheFirstComputation) {
  // Deterministic collision: the adversary preloads a feedback carrying the
  // number the first computation will use (seq starts at s, A1 uses s+1).
  Simulator sim(2, 1, 9);
  sim.add_process(std::make_unique<SeqPifProcess>(1, /*K=*/4));
  sim.add_process(std::make_unique<SeqPifProcess>(1, 4));
  auto& p = dynamic_cast<SeqPifProcess&>(sim.process(0));
  // Fresh seq is 0; the first computation will stamp (0+1) % 4 = 1.
  sim.network().channel(1, 0).push(
      Message::seq_fck(Value::text("stale"), 1));
  request_baseline(sim, 0, Value::text("m"));
  sim.execute(sim::Step::tick(0));        // start + first transmission
  sim.execute(sim::Step::lose(0, 1));     // broadcast lost
  sim.execute(sim::Step::deliver(1, 0));  // stale fck with matching number
  sim.execute(sim::Step::tick(0));        // all acked -> ghost decision
  EXPECT_TRUE(p.done());

  const auto report =
      core::check_pif_spec(sim, {.layer = sim::Layer::Baseline,
                                 .require_termination = false,
                                 .require_start = false});
  EXPECT_FALSE(report.ok());
}

TEST(SeqPif, NonMatchingStaleFeedbackIsIgnored) {
  Simulator sim(2, 1, 11);
  sim.add_process(std::make_unique<SeqPifProcess>(1, 4));
  sim.add_process(std::make_unique<SeqPifProcess>(1, 4));
  sim.network().channel(1, 0).push(
      Message::seq_fck(Value::text("stale"), 3));  // will not match seq 1
  request_baseline(sim, 0, Value::text("m"));
  sim.execute(sim::Step::tick(0));
  sim.execute(sim::Step::deliver(1, 0));
  EXPECT_FALSE(dynamic_cast<SeqPifProcess&>(sim.process(0)).done());
}

TEST(SeqPif, StabilizesAfterTheFirstComputation) {
  // Self-stabilization: corrupted start may break computation #1, but once
  // the channels flush, computations #2.. are correct.
  int first_violations = 0;
  int later_violations = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Simulator sim(2, 1, seed);
    sim.add_process(std::make_unique<SeqPifProcess>(1, 4));
    sim.add_process(std::make_unique<SeqPifProcess>(1, 4));
    // Corrupted start: a stale feedback carrying the number the first
    // computation will use (a fresh process stamps (0+1) % K = 1) sits in
    // the initiator's inbound channel. Whether it is accepted before the
    // genuine exchange depends on the (seeded) schedule, so across seeds
    // this yields a positive first-computation violation rate — and zero
    // violations afterwards, once the stale message is flushed.
    sim.network().channel(1, 0).clear();
    sim.network().channel(1, 0).push(
        Message::seq_fck(Value::text("stale"), 1));
    sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    for (int round = 0; round < 3; ++round) {
      request_baseline(sim, 0, Value::integer(round));
      const auto reason = sim.run(200'000, [](Simulator& s) {
        return dynamic_cast<SeqPifProcess&>(s.process(0)).done();
      });
      if (reason != Simulator::StopReason::Predicate) break;
    }
    // Attribute correctness violations to their computation: a computation
    // whose payload never generated a receive-brd at the peer decided on
    // stale data.
    const auto& events = sim.log().events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      if (e.process != 0 || e.kind != sim::ObsKind::Start) continue;
      // Find the matching decide.
      std::size_t d = i + 1;
      while (d < events.size() &&
             !(events[d].process == 0 &&
               events[d].kind == sim::ObsKind::Decide))
        ++d;
      if (d == events.size()) continue;
      bool peer_received = false;
      for (std::size_t j = i; j <= d; ++j)
        if (events[j].process == 1 && events[j].kind == sim::ObsKind::RecvBrd &&
            events[j].value == e.value)
          peer_received = true;
      if (!peer_received) {
        if (e.value == Value::integer(0))
          ++first_violations;
        else
          ++later_violations;
      }
    }
  }
  // The stale preload collides with the first number in roughly 1/K of the
  // seeds; later computations are clean (the channel was flushed).
  EXPECT_GT(first_violations, 0);
  EXPECT_EQ(later_violations, 0);
}

TEST(Baselines, RandomizeKeepsDomains) {
  Rng rng(13);
  NaivePifProcess naive(3);
  SeqPifProcess seq(3, 8);
  for (int i = 0; i < 100; ++i) {
    naive.randomize(rng);
    seq.randomize(rng);
    EXPECT_GE(seq.seq(), 0);
    EXPECT_LT(seq.seq(), 8);
  }
}

}  // namespace
}  // namespace snapstab::baselines
