// test_capacity.cpp — experiment E7: the capacity-c generalization.
//
// The paper fixes capacity 1 and calls the extension to a known bound c
// straightforward. Protocol PIF here is parametric: flag range {0..2c+2}.
// These tests validate the generalization — and, crucially, show that the
// bound must actually be *known*: a protocol configured for a smaller
// capacity than the channels really have can be fooled into a ghost
// decision, which is the quantitative content of Theorem 1's boundary.
#include <gtest/gtest.h>

#include <memory>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

class CapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CapacitySweep, SpecHoldsWhenBoundMatchesChannels) {
  const int c = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Simulator sim(3, static_cast<std::size_t>(c), seed);
    for (int i = 0; i < 3; ++i)
      sim.add_process(std::make_unique<PifProcess>(2, c));
    Rng rng(seed * 31);
    sim::FuzzOptions opts;
    opts.flag_limit = 2 * c + 2;
    sim::fuzz(sim, rng, opts);
    sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    request_pif(sim, 0, Value::text("bounded"));
    const auto reason = sim.run(600'000, [](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().done();
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate)
        << "c=" << c << " seed=" << seed;
    const auto report = check_pif_spec(
        sim, {.require_termination = false, .require_start = false});
    EXPECT_TRUE(report.ok())
        << "c=" << c << " seed=" << seed << ": " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CapacitySweep, ::testing::Values(1, 2, 3, 4));

TEST(CapacityMismatch, UnderestimatedBoundAdmitsGhostDecision) {
  // Channels hold 4 messages but the protocol believes c = 1 (flags 0..4).
  // The adversary preloads the q->p channel with echoes 0,1,2,3: p walks its
  // entire flag range on stale data and decides although q never received
  // the broadcast — exactly why Theorem 1 needs the bound to be *known*.
  Simulator sim(2, /*channel capacity=*/4, 1);
  sim.add_process(std::make_unique<PifProcess>(1, /*believed capacity=*/1));
  sim.add_process(std::make_unique<PifProcess>(1, 1));
  auto& net = sim.network();
  for (std::int32_t flag : {0, 1, 2, 3})
    net.channel(1, 0).push(
        Message::pif(Value::text("stale"), Value::text("stale"), 0, flag));

  request_pif(sim, 0, Value::text("real"));
  // Drive adversarially: p ticks (starts), then consumes the four stale
  // echoes, then decides — q is never activated at all.
  sim.execute(sim::Step::tick(0));
  for (int i = 0; i < 4; ++i) sim.execute(sim::Step::deliver(1, 0));
  sim.execute(sim::Step::tick(0));

  EXPECT_TRUE(sim.process_as<PifProcess>(0).pif().done());
  const auto report = check_pif_spec(
      sim, {.require_termination = false, .require_start = false});
  ASSERT_FALSE(report.ok());  // the ghost decision is a genuine violation
  bool never_received = false;
  for (const auto& v : report.violations)
    if (v.find("never received") != std::string::npos) never_received = true;
  EXPECT_TRUE(never_received) << report.summary();
}

TEST(CapacityMismatch, CorrectBoundSurvivesTheSameAttack) {
  // Same attack against a protocol configured for the true capacity 4
  // (flags 0..10): the four stale echoes burn at most 4 of the 10 required
  // increments, so no ghost decision is possible.
  Simulator sim(2, 4, 1);
  sim.add_process(std::make_unique<PifProcess>(1, 4));
  sim.add_process(std::make_unique<PifProcess>(1, 4));
  auto& net = sim.network();
  for (std::int32_t flag : {0, 1, 2, 3})
    net.channel(1, 0).push(
        Message::pif(Value::text("stale"), Value::text("stale"), 0, flag));

  request_pif(sim, 0, Value::text("real"));
  sim.execute(sim::Step::tick(0));
  for (int i = 0; i < 4; ++i) sim.execute(sim::Step::deliver(1, 0));
  sim.execute(sim::Step::tick(0));
  EXPECT_FALSE(sim.process_as<PifProcess>(0).pif().done());

  // And with a fair scheduler the computation completes correctly.
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(3));
  ASSERT_EQ(sim.run(300'000,
                    [](Simulator& s) {
                      return s.process_as<PifProcess>(0).pif().done();
                    }),
            Simulator::StopReason::Predicate);
  const auto report = check_pif_spec(
      sim, {.require_termination = false, .require_start = false});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CapacityMismatch, WorstCaseStaleIncrementsAreTwoCPlusOne) {
  // The counting argument behind Lemma 4, generalized: c stale messages per
  // direction plus one stale NeigState can fake at most 2c+1 increments, so
  // flag 2c+1 is unreachable without a genuine round trip. Verify the bound
  // is tight for c = 2: 5 stale increments are achievable, 6 are not.
  const int c = 2;
  Simulator sim(2, static_cast<std::size_t>(c), 1);
  sim.add_process(std::make_unique<PifProcess>(1, c));
  sim.add_process(std::make_unique<PifProcess>(1, c));
  auto& net = sim.network();
  // q -> p: echoes 0 and 1 (2 stale increments).
  net.channel(1, 0).push(Message::pif(Value::none(), Value::none(), 0, 0));
  net.channel(1, 0).push(Message::pif(Value::none(), Value::none(), 0, 1));
  // q's stale NeigState echoes 2 once q transmits (1 stale increment).
  sim.process_as<PifProcess>(1).pif().mutable_state().neig_state[0] = 2;
  sim.process_as<PifProcess>(1).pif().request(Value::text("mq"));
  // p -> q: stale messages carrying flags 3 and 4: q echoes them
  // (2 more stale increments).
  net.channel(0, 1).push(Message::pif(Value::none(), Value::none(), 3, 0));
  net.channel(0, 1).push(Message::pif(Value::none(), Value::none(), 4, 0));

  request_pif(sim, 0, Value::text("m"));
  auto& p = sim.process_as<PifProcess>(0).pif();

  sim.execute(sim::Step::tick(0));           // start; sends die on full 0->1
  sim.execute(sim::Step::deliver(1, 0));     // stale echo 0   -> State 1
  sim.execute(sim::Step::deliver(1, 0));     // stale echo 1   -> State 2
  sim.execute(sim::Step::tick(1));           // q starts, echoes NeigState 2
  sim.execute(sim::Step::deliver(1, 0));     // stale echo 2   -> State 3
  sim.execute(sim::Step::deliver(0, 1));     // q consumes stale flag 3
  sim.execute(sim::Step::deliver(1, 0));     // echo 3         -> State 4
  sim.execute(sim::Step::deliver(0, 1));     // q consumes stale flag 4
  sim.execute(sim::Step::deliver(1, 0));     // echo 4         -> State 5
  EXPECT_EQ(p.state().state[0], 2 * c + 1);  // = 5: all stale fuel burned
  EXPECT_FALSE(p.done());

  // From here only a genuine round trip can advance p to 2c+2 = 6.
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(9));
  ASSERT_EQ(sim.run(300'000,
                    [](Simulator& s) {
                      return s.process_as<PifProcess>(0).pif().done();
                    }),
            Simulator::StopReason::Predicate);
  const auto report = check_pif_spec(
      sim, {.require_termination = false, .require_start = false});
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace snapstab::core
