// test_channel.cpp — channel semantics: FIFO order, bounded capacity with
// loss-on-full (the paper's Section-4 rule), unbounded mode for Section 3.
// Ring-buffer mechanics (wrap-around, growth, listener transitions) are in
// test_channel_ring.cpp.
#include <gtest/gtest.h>

#include "sim/channel.hpp"

namespace snapstab::sim {
namespace {

Message msg(int tag) { return Message::pif(Value::integer(tag), Value::none(), 0, 0); }

TEST(Channel, StartsEmpty) {
  Channel ch(1);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, FifoOrder) {
  Channel ch(5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.push(msg(i)));
  for (int i = 0; i < 5; ++i) {
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.pop().b.as_int(), i);
  }
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, SendIntoFullChannelLosesTheSentMessage) {
  // The paper: "if a process sends a message in a channel that is full,
  // then the message is lost" — the channel content is unchanged.
  Channel ch(1);
  EXPECT_TRUE(ch.push(msg(1)));
  EXPECT_FALSE(ch.push(msg(2)));
  EXPECT_EQ(ch.size(), 1u);
  ASSERT_FALSE(ch.empty());
  EXPECT_EQ(ch.pop().b.as_int(), 1);  // the old message survived, the new one died
  EXPECT_EQ(ch.stats().lost_on_full, 1u);
}

TEST(Channel, CapacityGreaterThanOne) {
  Channel ch(3);
  EXPECT_TRUE(ch.push(msg(1)));
  EXPECT_TRUE(ch.push(msg(2)));
  EXPECT_TRUE(ch.push(msg(3)));
  EXPECT_FALSE(ch.push(msg(4)));
  EXPECT_EQ(ch.size(), 3u);
  ch.pop();
  EXPECT_TRUE(ch.push(msg(5)));  // space freed, accepts again
}

TEST(Channel, UnboundedNeverRefuses) {
  Channel ch(Channel::kUnbounded);
  EXPECT_TRUE(ch.unbounded());
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(ch.push(msg(i)));
  EXPECT_EQ(ch.size(), 10000u);
  EXPECT_EQ(ch.stats().lost_on_full, 0u);
}

TEST(Channel, PeekDoesNotConsume) {
  Channel ch(2);
  ch.push(msg(7));
  EXPECT_EQ(ch.peek().b.as_int(), 7);
  EXPECT_EQ(ch.size(), 1u);
  EXPECT_EQ(ch.pop().b.as_int(), 7);
}

TEST(Channel, ContentsExposeQueueInOrder) {
  Channel ch(3);
  ch.push(msg(1));
  ch.push(msg(2));
  const auto q = ch.contents();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].b.as_int(), 1);
  EXPECT_EQ(q[1].b.as_int(), 2);
  int expected = 1;
  for (const Message& m : q) EXPECT_EQ(m.b.as_int(), expected++);
  EXPECT_EQ(expected, 3);
}

TEST(Channel, ClearEmptiesWithoutCountingPops) {
  Channel ch(3);
  ch.push(msg(1));
  ch.push(msg(2));
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.stats().popped, 0u);
  EXPECT_EQ(ch.stats().pushed, 2u);
}

TEST(Channel, StatsCountAllTraffic) {
  Channel ch(1);
  ch.push(msg(1));
  ch.push(msg(2));  // lost on full
  ch.pop();
  ch.push(msg(3));
  ch.pop();
  const auto& st = ch.stats();
  EXPECT_EQ(st.pushed, 2u);
  EXPECT_EQ(st.lost_on_full, 1u);
  EXPECT_EQ(st.popped, 2u);
  EXPECT_EQ(st.dropped, 0u);
}

TEST(Channel, DropsAreAccountedSeparatelyFromDeliveries) {
  Channel ch(3);
  ch.push(msg(1));
  ch.push(msg(2));
  ch.push(msg(3));
  ch.drop_head();                    // the adversary eats msg(1)
  EXPECT_EQ(ch.pop().b.as_int(), 2); // deliveries continue in FIFO order
  const auto& st = ch.stats();
  EXPECT_EQ(st.popped, 1u);
  EXPECT_EQ(st.dropped, 1u);
  EXPECT_EQ(ch.size(), 1u);
}

}  // namespace
}  // namespace snapstab::sim
