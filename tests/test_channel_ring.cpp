// test_channel_ring.cpp — mechanics of the ring-buffer channel storage:
// wrap-around at capacity, unbounded growth past the initial reserve,
// clear()'s listener transition, the full-channel loss rule at the wrap
// boundary, and the POD contract the zero-allocation hot path rests on.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "sim/channel.hpp"
#include "sim/ring.hpp"

namespace snapstab::sim {
namespace {

Message msg(int tag) {
  return Message::pif(Value::integer(tag), Value::none(), tag, -tag);
}

// The zero-allocation contract: messages move as flat words.
static_assert(std::is_trivially_copyable_v<Message>);
static_assert(std::is_trivially_copyable_v<Value>);

TEST(MessageRing, WrapsAroundAtCapacity) {
  MessageRing ring(4);  // power of two, no growth below 5 elements
  // Interleave pushes and pops so head walks around the buffer repeatedly.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.size() < 4) ring.push_back(msg(next_push++));
    ASSERT_TRUE(ring.full());
    ring.pop_front();  // drop return value: head advances
    ++next_pop;
    ASSERT_EQ(ring.front().b.as_int(), next_pop);
  }
  // FIFO order held across every wrap.
  while (!ring.empty()) EXPECT_EQ(ring.pop_front().b.as_int(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(MessageRing, GrowsPastInitialReserveAndRelinearizes) {
  MessageRing ring;  // inline storage only
  EXPECT_EQ(ring.slots(), MessageRing::kInlineSlots);
  // Skew the head so growth must re-linearize a wrapped buffer.
  for (int i = 0; i < 3; ++i) ring.push_back(msg(-1));
  for (int i = 0; i < 3; ++i) ring.pop_front();
  for (int i = 0; i < 100; ++i) ring.push_back(msg(i));
  EXPECT_EQ(ring.size(), 100u);
  EXPECT_GE(ring.slots(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].b.as_int(), i);
  }
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(ring.pop_front().b.as_int(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, IndexingFollowsHeadAcrossWraps) {
  MessageRing ring(4);
  for (int i = 0; i < 3; ++i) ring.push_back(msg(i));
  ring.pop_front();
  ring.pop_front();
  ring.push_back(msg(3));
  ring.push_back(msg(4));  // physically wrapped now
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].b.as_int(), 2);
  EXPECT_EQ(ring[1].b.as_int(), 3);
  EXPECT_EQ(ring[2].b.as_int(), 4);
}

class RecordingListener final : public ChannelListener {
 public:
  void channel_transition(int tag, bool nonempty) override {
    events.emplace_back(tag, nonempty);
  }
  std::vector<std::pair<int, bool>> events;
};

TEST(ChannelRing, ClearFiresExactlyOneEmptyTransition) {
  Channel ch(3);
  RecordingListener listener;
  ch.bind_listener(&listener, 17);
  ch.push(msg(1));
  ch.push(msg(2));
  ASSERT_EQ(listener.events.size(), 1u);  // the empty -> nonempty edge
  EXPECT_EQ(listener.events[0], std::make_pair(17, true));
  ch.clear();
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[1], std::make_pair(17, false));
  ch.clear();  // already empty: no transition
  EXPECT_EQ(listener.events.size(), 2u);
}

TEST(ChannelRing, TransitionsTrackOccupancyThroughWraps) {
  Channel ch(2);
  RecordingListener listener;
  ch.bind_listener(&listener, 5);
  for (int round = 0; round < 10; ++round) {
    ch.push(msg(round));
    ch.pop();
  }
  ASSERT_EQ(listener.events.size(), 20u);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(listener.events[static_cast<std::size_t>(2 * round)].second);
    EXPECT_FALSE(
        listener.events[static_cast<std::size_t>(2 * round + 1)].second);
  }
}

TEST(ChannelRing, FullChannelLossRuleHoldsAtWrapBoundary) {
  Channel ch(2);
  ch.push(msg(1));
  ch.push(msg(2));
  // Walk the ring: pop one, push one, so the full condition is repeatedly
  // evaluated with a moving head.
  for (int i = 3; i <= 10; ++i) {
    EXPECT_FALSE(ch.push(msg(99)));  // full: the sent message dies
    EXPECT_EQ(ch.size(), 2u);
    EXPECT_EQ(ch.pop().b.as_int(), i - 2);
    EXPECT_TRUE(ch.push(msg(i)));
  }
  EXPECT_EQ(ch.stats().lost_on_full, 8u);
  EXPECT_EQ(ch.pop().b.as_int(), 9);
  EXPECT_EQ(ch.pop().b.as_int(), 10);
}

TEST(ChannelRing, UnboundedChannelGrowsWithoutRefusingOrReordering) {
  Channel ch(Channel::kUnbounded);
  RecordingListener listener;
  ch.bind_listener(&listener, 1);
  for (int i = 0; i < 5000; ++i) ASSERT_TRUE(ch.push(msg(i)));
  EXPECT_EQ(ch.size(), 5000u);
  EXPECT_EQ(listener.events.size(), 1u);  // one empty -> nonempty edge only
  for (int i = 0; i < 5000; ++i) ASSERT_EQ(ch.pop().b.as_int(), i);
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_FALSE(listener.events[1].second);
}

TEST(ChannelRing, ContentsViewIteratesWrappedStorage) {
  Channel ch(4);
  for (int i = 0; i < 4; ++i) ch.push(msg(i));
  ch.pop();
  ch.pop();
  ch.push(msg(4));
  ch.push(msg(5));  // wrapped
  std::vector<std::int64_t> seen;
  for (const Message& m : ch.contents()) seen.push_back(m.b.as_int());
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

}  // namespace
}  // namespace snapstab::sim
