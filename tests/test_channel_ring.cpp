// test_channel_ring.cpp — mechanics of the ring-buffer channel storage:
// wrap-around at capacity, unbounded growth past the initial reserve,
// clear()'s listener transition, the full-channel loss rule at the wrap
// boundary, and the POD contract the zero-allocation hot path rests on.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "sim/channel.hpp"
#include "sim/ring.hpp"

namespace snapstab::sim {
namespace {

Message msg(int tag) {
  return Message::pif(Value::integer(tag), Value::none(), tag, -tag);
}

// The zero-allocation contract: messages move as flat words.
static_assert(std::is_trivially_copyable_v<Message>);
static_assert(std::is_trivially_copyable_v<Value>);

TEST(MessageRing, WrapsAroundAtCapacity) {
  MessageRing ring(4);  // power of two, no growth below 5 elements
  // Interleave pushes and pops so head walks around the buffer repeatedly.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.size() < 4) ring.push_back(msg(next_push++));
    ASSERT_TRUE(ring.full());
    ring.pop_front();  // drop return value: head advances
    ++next_pop;
    ASSERT_EQ(ring.front().b.as_int(), next_pop);
  }
  // FIFO order held across every wrap.
  while (!ring.empty()) EXPECT_EQ(ring.pop_front().b.as_int(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(MessageRing, GrowsPastInitialReserveAndRelinearizes) {
  MessageRing ring;  // inline storage only
  EXPECT_EQ(ring.slots(), MessageRing::kInlineSlots);
  // Skew the head so growth must re-linearize a wrapped buffer.
  for (int i = 0; i < 3; ++i) ring.push_back(msg(-1));
  for (int i = 0; i < 3; ++i) ring.pop_front();
  for (int i = 0; i < 100; ++i) ring.push_back(msg(i));
  EXPECT_EQ(ring.size(), 100u);
  EXPECT_GE(ring.slots(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].b.as_int(), i);
  }
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(ring.pop_front().b.as_int(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, IndexingFollowsHeadAcrossWraps) {
  MessageRing ring(4);
  for (int i = 0; i < 3; ++i) ring.push_back(msg(i));
  ring.pop_front();
  ring.pop_front();
  ring.push_back(msg(3));
  ring.push_back(msg(4));  // physically wrapped now
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].b.as_int(), 2);
  EXPECT_EQ(ring[1].b.as_int(), 3);
  EXPECT_EQ(ring[2].b.as_int(), 4);
}

class RecordingListener final : public ChannelListener {
 public:
  void channel_transition(int tag, bool nonempty) override {
    events.emplace_back(tag, nonempty);
  }
  std::vector<std::pair<int, bool>> events;
};

TEST(ChannelRing, ClearFiresExactlyOneEmptyTransition) {
  Channel ch(3);
  RecordingListener listener;
  ch.bind_listener(&listener, 17);
  ch.push(msg(1));
  ch.push(msg(2));
  ASSERT_EQ(listener.events.size(), 1u);  // the empty -> nonempty edge
  EXPECT_EQ(listener.events[0], std::make_pair(17, true));
  ch.clear();
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[1], std::make_pair(17, false));
  ch.clear();  // already empty: no transition
  EXPECT_EQ(listener.events.size(), 2u);
}

TEST(ChannelRing, TransitionsTrackOccupancyThroughWraps) {
  Channel ch(2);
  RecordingListener listener;
  ch.bind_listener(&listener, 5);
  for (int round = 0; round < 10; ++round) {
    ch.push(msg(round));
    ch.pop();
  }
  ASSERT_EQ(listener.events.size(), 20u);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(listener.events[static_cast<std::size_t>(2 * round)].second);
    EXPECT_FALSE(
        listener.events[static_cast<std::size_t>(2 * round + 1)].second);
  }
}

TEST(ChannelRing, FullChannelLossRuleHoldsAtWrapBoundary) {
  Channel ch(2);
  ch.push(msg(1));
  ch.push(msg(2));
  // Walk the ring: pop one, push one, so the full condition is repeatedly
  // evaluated with a moving head.
  for (int i = 3; i <= 10; ++i) {
    EXPECT_FALSE(ch.push(msg(99)));  // full: the sent message dies
    EXPECT_EQ(ch.size(), 2u);
    EXPECT_EQ(ch.pop().b.as_int(), i - 2);
    EXPECT_TRUE(ch.push(msg(i)));
  }
  EXPECT_EQ(ch.stats().lost_on_full, 8u);
  EXPECT_EQ(ch.pop().b.as_int(), 9);
  EXPECT_EQ(ch.pop().b.as_int(), 10);
}

TEST(ChannelRing, UnboundedChannelGrowsWithoutRefusingOrReordering) {
  Channel ch(Channel::kUnbounded);
  RecordingListener listener;
  ch.bind_listener(&listener, 1);
  for (int i = 0; i < 5000; ++i) ASSERT_TRUE(ch.push(msg(i)));
  EXPECT_EQ(ch.size(), 5000u);
  EXPECT_EQ(listener.events.size(), 1u);  // one empty -> nonempty edge only
  for (int i = 0; i < 5000; ++i) ASSERT_EQ(ch.pop().b.as_int(), i);
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_FALSE(listener.events[1].second);
}

TEST(MessageRing, SurvivesRepeatedDoublingsWithAWrappedHead) {
  // Regression for the wrap-around copy on capacity doubling: force a
  // non-zero head before *every* growth and drive the ring through three
  // doublings (4 -> 8 -> 16 -> 32); FIFO order must hold throughout.
  MessageRing ring;
  ASSERT_EQ(ring.slots(), MessageRing::kInlineSlots);
  int next_push = 0;
  int next_pop = 0;
  const auto fill_to = [&](std::size_t target_size) {
    while (ring.size() < target_size) ring.push_back(msg(next_push++));
  };
  const auto skew_head = [&] {
    // Wrap the head: pop a few, push the same number back at the tail.
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(ring.pop_front().b.as_int(), next_pop++);
      ring.push_back(msg(next_push++));
    }
  };
  std::size_t expected_slots = MessageRing::kInlineSlots;
  for (int doubling = 0; doubling < 3; ++doubling) {
    fill_to(ring.slots());      // full, about to grow
    skew_head();                // head != 0 at growth time
    ASSERT_TRUE(ring.full());
    ring.push_back(msg(next_push++));  // triggers the doubling copy
    expected_slots *= 2;
    ASSERT_EQ(ring.slots(), expected_slots) << "doubling " << doubling;
    // The logical sequence is intact after re-linearization.
    for (std::size_t i = 0; i < ring.size(); ++i)
      ASSERT_EQ(ring[i].b.as_int(), next_pop + static_cast<int>(i));
  }
  while (!ring.empty()) ASSERT_EQ(ring.pop_front().b.as_int(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(ChannelRing, UnboundedChannelStatsSurviveGrowth) {
  // Growth must not disturb the conservation counters: interleave pops so
  // the head wraps, then grow through several doublings.
  Channel ch(Channel::kUnbounded);
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ch.push(msg(static_cast<int>(pushed))));
      ++pushed;
    }
    ASSERT_EQ(ch.pop().b.as_int(), static_cast<std::int64_t>(popped));
    ++popped;
    ASSERT_TRUE(ch.stats_consistent());
  }
  EXPECT_EQ(ch.stats().pushed, pushed);
  EXPECT_EQ(ch.stats().popped, popped);
  EXPECT_EQ(ch.size(), pushed - popped);
  while (!ch.empty()) {
    ASSERT_EQ(ch.pop().b.as_int(), static_cast<std::int64_t>(popped));
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
}

TEST(ChannelRing, DropAccountingKeepsConservationUnderInterleavings) {
  Channel ch(2);
  // A drop aimed at an empty channel is a miss: no-op, nothing counted.
  EXPECT_FALSE(ch.drop_head());
  EXPECT_EQ(ch.stats().dropped, 0u);
  ASSERT_TRUE(ch.stats_consistent());

  // Interleave push / pop / drop / clear and check conservation at every
  // step: pushed == popped + dropped + cleared + in flight.
  std::uint64_t next = 0;
  for (int round = 0; round < 50; ++round) {
    ch.push(msg(static_cast<int>(next++)));
    ASSERT_TRUE(ch.stats_consistent());
    switch (round % 5) {
      case 0:
        EXPECT_TRUE(ch.drop_head());
        break;
      case 1:
        if (!ch.empty()) ch.pop();
        break;
      case 2:
        ch.push(msg(static_cast<int>(next++)));   // may hit the full rule
        ch.push(msg(static_cast<int>(next++)));   // definitely full now
        break;
      case 3:
        ch.clear();  // fault burst: counted as cleared, not lost
        EXPECT_FALSE(ch.drop_head());  // empty again: drop misses
        break;
      default:
        break;
    }
    ASSERT_TRUE(ch.stats_consistent()) << "round " << round;
  }
  const auto& s = ch.stats();
  EXPECT_EQ(s.pushed, s.popped + s.dropped + s.cleared + ch.size());
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.cleared, 0u);
  EXPECT_GT(s.lost_on_full, 0u);  // the case-2 bursts hit the full rule
}

TEST(ChannelRing, ContentsViewIteratesWrappedStorage) {
  Channel ch(4);
  for (int i = 0; i < 4; ++i) ch.push(msg(i));
  ch.pop();
  ch.pop();
  ch.push(msg(4));
  ch.push(msg(5));  // wrapped
  std::vector<std::int64_t> seen;
  for (const Message& m : ch.contents()) seen.push_back(m.b.as_int());
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

}  // namespace
}  // namespace snapstab::sim
