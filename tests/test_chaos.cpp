// test_chaos.cpp — sustained transient-fault campaigns.
//
// Snap-stabilization, exercised as a process over time: the adversary
// strikes (scrambles states, refills channels with garbage), the
// application requests, the request must be served correctly — round after
// round after round, for every protocol in the repository. Also covers the
// timeline renderer and the adversary itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"

namespace snapstab {
namespace {

using core::IdlProcess;
using core::MeStackProcess;
using core::PifProcess;
using sim::Simulator;

// The chaos soak: SNAPSTAB_CHAOS_EXTRA_SEEDS=<k> appends k extra seeds
// after `base` to a campaign's seed list (the CI Release job sets 32).
std::vector<std::uint64_t> campaign_seeds(std::vector<std::uint64_t> base) {
  if (const char* extra = std::getenv("SNAPSTAB_CHAOS_EXTRA_SEEDS")) {
    const long k = std::strtol(extra, nullptr, 10);
    const std::uint64_t from = base.back();
    for (long i = 1; i <= k; ++i)
      base.push_back(from + static_cast<std::uint64_t>(i));
  }
  return base;
}

TEST(Adversary, StrikeHitsRoughlyTheConfiguredFraction) {
  Simulator sim(8, 1, 1);
  for (int i = 0; i < 8; ++i)
    sim.add_process(std::make_unique<PifProcess>(7, 1));
  sim::Adversary adversary(3, {.process_probability = 0.5,
                               .channel_probability = 0.25});
  int processes = 0;
  int channels = 0;
  const int strikes = 200;
  for (int s = 0; s < strikes; ++s) {
    const auto report = adversary.strike(sim);
    processes += report.processes_hit;
    channels += report.channels_hit;
  }
  EXPECT_EQ(adversary.strikes(), static_cast<std::uint64_t>(strikes));
  EXPECT_NEAR(static_cast<double>(processes) / (strikes * 8), 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(channels) / (strikes * 56), 0.25, 0.05);
}

TEST(Adversary, StrikeReportNamesEveryVictim) {
  Simulator sim(6, 1, 4);
  for (int i = 0; i < 6; ++i)
    sim.add_process(std::make_unique<PifProcess>(5, 1));
  sim::Adversary adversary(9, {.process_probability = 0.5,
                               .channel_probability = 0.5});
  const auto report = adversary.strike(sim);
  // The id lists ARE the counts: same cardinality, valid, strictly
  // ascending (the strike scans ids in order).
  ASSERT_EQ(static_cast<int>(report.processes.size()), report.processes_hit);
  ASSERT_EQ(static_cast<int>(report.channels.size()), report.channels_hit);
  for (std::size_t i = 0; i < report.processes.size(); ++i) {
    EXPECT_GE(report.processes[i], 0);
    EXPECT_LT(report.processes[i], 6);
    if (i > 0) EXPECT_LT(report.processes[i - 1], report.processes[i]);
  }
  for (std::size_t i = 0; i < report.channels.size(); ++i) {
    EXPECT_GE(report.channels[i], 0);
    EXPECT_LT(report.channels[i], sim.network().edge_count());
    if (i > 0) EXPECT_LT(report.channels[i - 1], report.channels[i]);
  }
  const std::string s = report.summary();
  EXPECT_NE(s.find("struck processes=["), std::string::npos) << s;
  EXPECT_NE(s.find("channels=["), std::string::npos) << s;
}

TEST(Adversary, RespectsChannelCapacity) {
  Simulator sim(3, 2, 1);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<PifProcess>(2, 2));
  sim::Adversary adversary(5, {.channel_probability = 1.0, .flag_limit = 6});
  adversary.strike(sim);
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 3; ++d)
      if (s != d) {
        EXPECT_LE(sim.network().channel(s, d).size(), 2u);
      }
}

class PifChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PifChaos, EveryPostStrikeRequestServedCorrectly) {
  const std::uint64_t seed = GetParam();
  const int n = 4;
  Simulator sim(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim.add_process(std::make_unique<PifProcess>(n - 1, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  sim::Adversary adversary(seed + 2);

  for (int round = 0; round < 15; ++round) {
    const auto report = adversary.strike(sim);
    const Value payload = Value::integer(9'000'000 + round);
    const std::size_t log_mark = sim.log().events().size();
    core::request_pif(sim, round % n, payload);
    const auto reason = sim.run(500'000, [round, n](Simulator& s) {
      return s.process_as<PifProcess>(round % n).pif().done();
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate)
        << "seed " << seed << " round " << round << " did not terminate; "
        << report.summary();
    // The post-strike request reached every peer. At least n-1 receive-brd
    // events: the paper explicitly permits *additional* unexpected events
    // ("our protocol does not prevent processes to generate unexpected
    // receive-brd or receive-fck events", §4.1) — and the chaos campaign
    // actually produces them: between request() and the start action A1,
    // still-corrupted flags can leak an echo carrying the new payload.
    std::set<sim::ProcessId> reached;
    const auto& events = sim.log().events();
    for (std::size_t i = log_mark; i < events.size(); ++i)
      if (events[i].kind == sim::ObsKind::RecvBrd &&
          events[i].value == payload)
        reached.insert(events[i].process);
    EXPECT_EQ(static_cast<int>(reached.size()), n - 1)
        << "seed " << seed << " round " << round << "; " << report.summary();

    // Channel conservation after every strike/serve cycle: everything the
    // channels accepted was delivered, adversary-dropped, cleared by a
    // strike, or is still in flight — drop-vs-deliver interleavings and
    // clear() bursts must never lose count.
    const auto stats = sim.network().aggregate_channel_stats();
    ASSERT_EQ(stats.pushed,
              stats.popped + stats.dropped + stats.cleared +
                  sim.network().total_messages_in_flight())
        << "seed " << seed << " round " << round << "; " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PifChaos,
                         ::testing::ValuesIn(campaign_seeds(
                             {1ull, 2ull, 3ull, 4ull})));

class IdlChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IdlChaos, LearnsExactTablesAfterEveryStrike) {
  const std::uint64_t seed = GetParam();
  const std::vector<std::int64_t> ids = {70, 20, 50, 90};
  const int n = static_cast<int>(ids.size());
  Simulator sim(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim.add_process(std::make_unique<IdlProcess>(
        ids[static_cast<std::size_t>(i)], n - 1, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  sim::Adversary adversary(seed + 2);

  for (int round = 0; round < 10; ++round) {
    const auto report = adversary.strike(sim);
    const int initiator = round % n;
    core::request_idl(sim, initiator);
    const auto reason = sim.run(500'000, [initiator](Simulator& s) {
      return s.process_as<IdlProcess>(initiator).idl().done();
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate)
        << "seed " << seed << " round " << round << "; " << report.summary();
    EXPECT_EQ(sim.process_as<IdlProcess>(initiator).idl().min_id(), 20)
        << "seed " << seed << " round " << round << "; " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdlChaos,
                         ::testing::ValuesIn(campaign_seeds(
                             {11ull, 12ull, 13ull})));

class MeChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeChaos, ExclusionSurvivesRepeatedStrikes) {
  const std::uint64_t seed = GetParam();
  const int n = 3;
  Simulator sim(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim.add_process(std::make_unique<MeStackProcess>(i + 1, n - 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  sim::Adversary adversary(seed + 2);

  for (int round = 0; round < 6; ++round) {
    // Strike, but never while a process is inside the CS — the state of a
    // process mid-CS includes the countdown, and scrambling it would model
    // a fault *inside* the resource, which even the paper cannot protect.
    bool any_in_cs = true;
    while (any_in_cs) {
      any_in_cs = false;
      for (int p = 0; p < n; ++p)
        if (sim.process_as<MeStackProcess>(p).me().in_cs()) any_in_cs = true;
      if (any_in_cs) sim.run(500);
    }
    const auto report = adversary.strike(sim);
    // Clear any fuzz-planted ghost CS so the round is well-defined.
    for (int p = 0; p < n; ++p)
      sim.process_as<MeStackProcess>(p).me().mutable_state().cs_remaining = 0;

    const int requester = round % n;
    const std::size_t log_mark = sim.log().events().size();
    // The fuzzed request variable may not be Done; force the round's
    // request through the same path the application would use.
    auto& me = sim.process_as<MeStackProcess>(requester).me();
    me.mutable_state().request = core::RequestState::Done;
    me.mutable_state().externally_requested = false;
    ASSERT_TRUE(core::request_cs(sim, requester));
    const auto reason = sim.run(3'000'000, [requester](Simulator& s) {
      return s.process_as<MeStackProcess>(requester).me().request_state() ==
             core::RequestState::Done;
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate)
        << "seed " << seed << " round " << round << "; " << report.summary();
    // The requested CS of this round did not overlap any other CS.
    const auto& events = sim.log().events();
    bool requested_entered = false;
    for (std::size_t i = log_mark; i < events.size(); ++i)
      if (events[i].process == requester &&
          events[i].kind == sim::ObsKind::CsEnter &&
          events[i].value.as_int() == 1)
        requested_entered = true;
    EXPECT_TRUE(requested_entered)
        << "seed " << seed << " round " << round << "; " << report.summary();
  }
  const auto report = core::check_me_spec(sim, {.require_liveness = false});
  EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeChaos,
                         ::testing::Values(21ull, 22ull, 23ull));

TEST(Timeline, RendersFilteredEvents) {
  Simulator sim(2, 1, 1);
  sim.add_process(std::make_unique<PifProcess>(1, 1));
  sim.add_process(std::make_unique<PifProcess>(1, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  core::request_pif(sim, 0, Value::text("hello"));
  sim.run(100'000, [](Simulator& s) {
    return s.process_as<PifProcess>(0).pif().done();
  });

  const std::string all = sim::render_timeline(sim.log());
  EXPECT_NE(all.find("start"), std::string::npos);
  EXPECT_NE(all.find("decide"), std::string::npos);
  EXPECT_NE(all.find("\"hello\""), std::string::npos);

  sim::TimelineOptions only;
  only.process = 1;
  const std::string only_p1 = sim::render_timeline(sim.log(), only);
  EXPECT_EQ(only_p1.find("| p0 "), std::string::npos);
  EXPECT_NE(only_p1.find("| p1 "), std::string::npos);
}

TEST(Timeline, TruncatesLongLogs) {
  sim::ObservationLog log;
  for (int i = 0; i < 300; ++i)
    log.emit(sim::Observation{static_cast<std::uint64_t>(i), 0,
                              sim::Layer::Pif, sim::ObsKind::RecvBrd, 0,
                              Value::integer(i)});
  sim::TimelineOptions options;
  options.max_rows = 50;
  const std::string out = sim::render_timeline(log, options);
  EXPECT_NE(out.find("250 more rows omitted"), std::string::npos);
}

}  // namespace
}  // namespace snapstab
