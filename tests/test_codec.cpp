// test_codec.cpp — binary wire format: round trips and hostile inputs.
#include <gtest/gtest.h>

#include "msg/codec.hpp"

namespace snapstab {
namespace {

TEST(Codec, RoundTripsEveryMessageKind) {
  const Message cases[] = {
      Message::pif(Value::text("how old are you?"), Value::integer(33), 3, 2),
      Message::pif(Value::none(), Value::none(), 0, 0),
      Message::naive_brd(Value::token(Token::Ask)),
      Message::naive_fck(Value::integer(-1)),
      Message::seq_brd(Value::text(""), 7),
      Message::seq_fck(Value::token(Token::Yes), 15),
  };
  for (const auto& m : cases) {
    const auto bytes = encode(m);
    const auto back = decode(bytes);
    ASSERT_TRUE(back.has_value()) << m.to_string();
    EXPECT_EQ(*back, m) << m.to_string();
  }
}

TEST(Codec, RoundTripsRandomMessages) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Message m = Message::random(rng, 10, /*wild=*/(i % 2) == 0);
    const auto back = decode(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(Codec, RejectsEmptyInput) {
  EXPECT_FALSE(decode(nullptr, 0).has_value());
}

TEST(Codec, RejectsTruncatedInput) {
  const auto bytes =
      encode(Message::pif(Value::text("payload"), Value::integer(5), 1, 2));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_FALSE(decode(bytes.data(), len).has_value()) << "len=" << len;
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(Message::naive_brd(Value::none()));
  bytes.push_back(0xAB);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsUnknownKind) {
  auto bytes = encode(Message::naive_brd(Value::none()));
  bytes[0] = 0xFF;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsUnknownValueTag) {
  auto bytes = encode(Message::naive_brd(Value::none()));
  // Byte layout: kind(1) state(4) neig(4) then value b's tag.
  bytes[9] = 0x77;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsOutOfRangeToken) {
  auto bytes = encode(Message::naive_brd(Value::token(Token::No)));
  bytes[10] = 0x7F;  // token payload byte
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsOversizedTextLength) {
  auto bytes = encode(Message::naive_brd(Value::text("abc")));
  // Text length field sits right after the tag at offset 9.
  bytes[10] = 0xFF;
  bytes[11] = 0xFF;
  bytes[12] = 0xFF;
  bytes[13] = 0x7F;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, FuzzedBytesNeverCrash) {
  // decode() must be total: arbitrary bytes either parse or return nullopt.
  Rng rng(1234);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> bytes(rng.below(40));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    if (decode(bytes).has_value()) ++accepted;
  }
  // Random bytes almost never form a valid message, but a few short forms
  // (e.g. kind + flags + two none-values) can; just require no crash and a
  // low acceptance rate.
  EXPECT_LT(accepted, 2000);
}

TEST(Codec, BitFlippedEncodingsNeverCrash) {
  // The real-wire runtime feeds decode() datagrams a network corrupted in
  // flight. Bit flips on genuine encodings probe the format's boundaries
  // much harder than uniform noise: most of the frame stays structurally
  // valid, so the damaged field itself must be the rejected one.
  Rng rng(4321);
  for (int i = 0; i < 5000; ++i) {
    const Message m = Message::random(rng, 10, /*wild=*/(i % 3) == 0);
    auto bytes = encode(m);
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f)
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    const auto back = decode(bytes);  // parse or nullopt — never a crash
    if (back.has_value()) {
      // Whatever survived must re-encode: a decoded message is always a
      // valid message, even when the flips changed its meaning.
      EXPECT_TRUE(decode(encode(*back)).has_value());
    }
  }
}

TEST(Codec, RoundTripsForwardingKinds) {
  const Message cases[] = {
      Message::fwd_data(Value::text("routed payload"),
                        pack_fwd_header({3, 9, 4321}), 2),
      Message::fwd_echo(3),
  };
  for (const auto& m : cases) {
    const auto back = decode(encode(m));
    ASSERT_TRUE(back.has_value()) << m.to_string();
    EXPECT_EQ(*back, m) << m.to_string();
  }
}

TEST(Codec, CrossPoolEncodeResolvesAgainstTheMintingPool) {
  // The id-space trap of the interning refactor: "alpha" gets id 1 in pool
  // A while "impostor" gets id 1 in pool B. Encoding an A-minted value
  // through B used to read B's string 1 — silent aliasing. The pool tag on
  // the value routes the encoder to the minting pool instead.
  StringPool pool_a;
  StringPool pool_b;
  const StrId impostor_id = pool_b.intern("impostor");
  Message m;
  {
    ScopedStringPool scope(pool_a);
    m = Message::app(Value::text("alpha"));
  }
  ASSERT_EQ(m.b.text_id(), impostor_id);  // same raw id, different pool

  const auto bytes = encode(m, pool_b);  // "wrong" pool on purpose
  const auto back = decode(bytes, pool_b);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->b.as_text(), "alpha");  // not "impostor"

  // Full cross-pool round trip: encode from A's id space, decode into B's.
  // The decoded value carries a B-minted id and compares equal to the
  // original by *text*, not by raw id.
  const auto crossed = decode(encode(m, pool_a), pool_b);
  ASSERT_TRUE(crossed.has_value());
  EXPECT_EQ(crossed->b.text_pool_tag(), pool_b.tag());
  EXPECT_EQ(crossed->b.as_text(), "alpha");
  EXPECT_EQ(crossed->b, m.b);
}

TEST(Codec, EncodeOfADeadPoolsIdDegradesToEmptyText) {
  Message m;
  {
    StringPool ephemeral;
    ScopedStringPool scope(ephemeral);
    m = Message::app(Value::text("does not outlive its pool"));
  }  // ephemeral destroyed: the id names nothing now
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->b.as_text(), "");  // degraded, never aliased
}

TEST(Codec, EncodedSizeIsModest) {
  // Single-capacity channels move one message at a time; keep datagrams
  // small (sanity bound, not a format guarantee).
  const auto bytes =
      encode(Message::pif(Value::token(Token::Ask), Value::none(), 4, 4));
  EXPECT_LE(bytes.size(), 16u);
}

}  // namespace
}  // namespace snapstab
