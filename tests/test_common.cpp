// test_common.cpp — TextTable rendering and CliArgs parsing.
#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace snapstab {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::cell(1)});
  t.add_row({"very-long-name", TextTable::cell(2.5)});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("very-long-name"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(TextTable::cell(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(TextTable::cell(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(TextTable::cell(3.14159, 3), "3.142");
  EXPECT_EQ(TextTable::cell("text"), "text");
}

TEST(CliArgs, ParsesSeparatedAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "8", "--loss=0.25", "--verbose"};
  CliArgs args(5, argv, {"n", "loss", "verbose"});
  EXPECT_EQ(args.get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(args.get_double("loss", 0.0), 0.25);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("absent"));
  EXPECT_EQ(args.get_int("absent", 42), 42);
}

TEST(CliArgs, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--n", "2", "pos2"};
  CliArgs args(5, argv, {"n"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(CliArgs, BooleanFlagBeforeAnotherOption) {
  const char* argv[] = {"prog", "--verbose", "--n", "3"};
  CliArgs args(4, argv, {"n", "verbose"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(CliArgs, UnknownOptionAborts) {
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_EXIT(
      { CliArgs args(3, argv, {"n"}); },
      ::testing::ExitedWithCode(2), "unknown option --bogus");
}

}  // namespace
}  // namespace snapstab
