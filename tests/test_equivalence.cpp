// test_equivalence.cpp — the refactored engine reproduces the seed.
//
// tests/golden/ holds observation-log traces recorded from the pre-topology
// implementation: dense n×n channel array, schedulers rescanning
// nonempty_channels() per step. The sparse edge-indexed Network and the
// incremental enabled-step index must produce bit-identical executions on
// complete topologies for the same (code, seed, configuration) — the
// enumeration order of candidate steps and the per-step RNG consumption are
// part of the engine's contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "golden_scenarios.hpp"

namespace snapstab {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path
                            << " (regenerate with tools/record_golden)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Equivalence, CompleteTopologyRunsMatchSeedRecordedTraces) {
  for (const auto& scenario : golden::scenarios()) {
    SCOPED_TRACE(scenario.file);
    const std::string expected =
        read_file(std::string(SNAPSTAB_GOLDEN_DIR) + "/" + scenario.file);
    ASSERT_FALSE(expected.empty());
    auto sim = scenario.run();
    const std::string actual = golden::render(*sim);
    // Compare line counts first for a readable failure, then the content.
    const auto count_lines = [](const std::string& s) {
      return std::count(s.begin(), s.end(), '\n');
    };
    EXPECT_EQ(count_lines(actual), count_lines(expected));
    EXPECT_EQ(actual, expected);
  }
}

// The two constructors of Simulator are the same world: an explicit
// complete Topology and the historic (n, capacity, seed) form execute
// identically.
TEST(Equivalence, ExplicitCompleteTopologyMatchesHistoricConstructor) {
  const auto run_with = [](bool explicit_topology) {
    auto sim = explicit_topology
                   ? std::make_unique<sim::Simulator>(
                         sim::Topology::complete(5), std::size_t{1}, 21)
                   : std::make_unique<sim::Simulator>(5, 1, 21);
    for (int i = 0; i < 5; ++i)
      sim->add_process(std::make_unique<core::PifProcess>(4, 1));
    sim->process_as<core::PifProcess>(2).pif().request(Value::integer(7));
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(21));
    sim->run(100'000, golden::all_pif_done);
    return golden::render(*sim);
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

}  // namespace
}  // namespace snapstab
