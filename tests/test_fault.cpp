// test_fault.cpp — the fault engine end to end: deterministic plans, the
// simulator-side Injector, host crash-restart, the client-side Supervisor,
// and the chaos acceptance suite.
//
// The acceptance contract is the paper's snap-stabilization statement read
// through the fault engine: sessions caught inside fault windows reach a
// *terminal* outcome (never a silent hang), sessions submitted at or after
// the last window's close complete correctly, and the same (seed, plan)
// replays bit-identically — any failure prints the one-line repro
// (plan.repro_line()) that pins the schedule it executed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"
#include "svc/supervisor.hpp"

namespace snapstab::fault {
namespace {

using sim::Simulator;

sim::Topology make_topo(const std::string& name, int n, std::uint64_t seed) {
  if (name == "ring") return sim::Topology::ring(n);
  if (name == "complete") return sim::Topology::complete(n);
  return sim::Topology::random_tree(n, seed);
}

std::unique_ptr<Simulator> pif_world(const sim::Topology& topo,
                                     std::uint64_t seed) {
  auto sim = svc::service_world(topo, 1, seed, [](sim::ProcessId p) {
    svc::HostConfig cfg;
    cfg.id = p + 1;
    return cfg;
  });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  return sim;
}

// The chaos campaign's plan shape: every fault kind, windows dense enough
// to overlap, all inside a short horizon so each test drains it.
FaultPlanSpec chaos_spec(std::uint64_t seed) {
  FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = 4'000;
  fs.min_len = 100;
  fs.max_len = 600;
  fs.crash_windows = 2;
  fs.garbage_windows = 2;
  fs.loss_windows = 1;
  fs.duplicate_windows = 1;
  fs.partition_windows = 1;
  return fs;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

// Order-sensitive digest over every observation the run emitted — the
// replay pin's notion of "bit-identical".
std::uint64_t log_digest(const Simulator& sim) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& e : sim.log().events()) {
    h = fnv_mix(h, e.step);
    h = fnv_mix(h, static_cast<std::uint64_t>(e.process));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.layer));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.kind));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.peer));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.value.as_int(-1)));
    if (e.value.is_text())
      for (const char c : e.value.as_text())
        h = fnv_mix(h, static_cast<unsigned char>(c));
  }
  return h;
}

// ---------------------------------------------------------------------------
// FaultPlan: pure compilation, bounds, ordering, repro line.
// ---------------------------------------------------------------------------

TEST(FaultPlan, CompileIsAPureFunctionOfSpecAndTopology) {
  const sim::Topology topo = sim::Topology::ring(8);
  const FaultPlanSpec spec = chaos_spec(42);
  const FaultPlan a = FaultPlan::compile(spec, topo);
  const FaultPlan b = FaultPlan::compile(spec, topo);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.windows().size(), b.windows().size());
  EXPECT_EQ(a.repro_line(), b.repro_line());

  FaultPlanSpec other = spec;
  other.seed = 43;
  const FaultPlan c = FaultPlan::compile(other, topo);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultPlan, WindowsRespectSpecBoundsAndEventsAreSorted) {
  const sim::Topology topo = sim::Topology::ring(8);
  const FaultPlanSpec spec = chaos_spec(7);
  const FaultPlan plan = FaultPlan::compile(spec, topo);
  ASSERT_EQ(static_cast<int>(plan.windows().size()), spec.total_windows());
  for (const FaultWindow& w : plan.windows()) {
    EXPECT_LT(w.begin, spec.horizon);
    EXPECT_GE(w.end - w.begin, spec.min_len);
    EXPECT_LE(w.end - w.begin, spec.max_len);
    EXPECT_LE(w.end, plan.last_end());
    EXPECT_GE(w.begin, plan.first_begin());
    if (w.kind == FaultKind::CrashRestart) {
      EXPECT_GE(w.process, 0);
      EXPECT_LT(w.process, 8);
    }
    if (w.kind == FaultKind::ChannelGarbage || w.kind == FaultKind::EdgeLoss ||
        w.kind == FaultKind::EdgeDuplicate) {
      EXPECT_GE(w.edge, 0);
      EXPECT_LT(w.edge, topo.edge_count());
    }
    if (w.kind == FaultKind::LinkPartition) {
      // A real cut: neither side empty over the 8 processes.
      const std::uint64_t mask = w.partition_mask & 0xffull;
      EXPECT_NE(mask, 0u);
      EXPECT_NE(mask, 0xffull);
    }
  }
  // One open and one close per window, sorted on the step clock.
  ASSERT_EQ(plan.events().size(), plan.windows().size() * 2);
  for (std::size_t i = 1; i < plan.events().size(); ++i)
    EXPECT_LE(plan.events()[i - 1].step, plan.events()[i].step);
}

TEST(FaultPlan, AllZeroSpecCompilesInert) {
  const sim::Topology topo = sim::Topology::ring(4);
  const FaultPlan plan = FaultPlan::compile(FaultPlanSpec{}, topo);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.last_end(), 0u);

  auto sim = pif_world(topo, 1);
  Injector inj(plan);
  EXPECT_TRUE(inj.done());
  EXPECT_EQ(inj.poll(*sim), 0);
  EXPECT_EQ(sim->log().events().size(), 0u);
}

TEST(FaultPlan, ReproLinePinsSeedAndDigest) {
  const FaultPlan plan =
      FaultPlan::compile(chaos_spec(99), sim::Topology::ring(6));
  const std::string line = plan.repro_line();
  EXPECT_NE(line.find("seed=99"), std::string::npos) << line;
  EXPECT_NE(line.find("plan-digest="), std::string::npos) << line;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(plan.digest()));
  EXPECT_NE(line.find(digest_hex), std::string::npos) << line;
}

TEST(FaultPlan, KindAndOutcomeNamesAreExhaustive) {
  EXPECT_STREQ(fault_kind_name(FaultKind::CrashRestart), "crash-restart");
  EXPECT_STREQ(fault_kind_name(FaultKind::LinkPartition), "link-partition");
  EXPECT_STREQ(svc::session_outcome_name(svc::SessionOutcome::Ok), "ok");
  EXPECT_STREQ(svc::session_outcome_name(svc::SessionOutcome::GaveUp),
               "gave-up");
  EXPECT_STREQ(sim::obs_kind_name(sim::ObsKind::Fault), "fault");
}

// ---------------------------------------------------------------------------
// Injector: observations, host crash dispatch, degradation counters.
// ---------------------------------------------------------------------------

TEST(Injector, EmitsOneFaultObservationPerWindowOpen) {
  const sim::Topology topo = sim::Topology::ring(6);
  const FaultPlanSpec spec = chaos_spec(5);
  const FaultPlan plan = FaultPlan::compile(spec, topo);
  auto sim = pif_world(topo, 5);
  svc::Client client(*sim);
  Injector inj(plan);
  int guard = 0;
  while (!inj.done() && ++guard < 1'000) {
    const auto reason = sim->run(1'024, [&](Simulator& s) {
      inj.poll(s);
      return inj.done();
    });
    if (reason == Simulator::StopReason::Quiescent)
      client.submit(0, svc::PifBroadcast{Value::integer(1'000 + guard)});
  }
  ASSERT_TRUE(inj.done()) << plan.repro_line();
  int fault_obs = 0;
  for (const auto& e : sim->log().events())
    if (e.kind == sim::ObsKind::Fault) ++fault_obs;
  EXPECT_EQ(fault_obs, spec.total_windows()) << plan.repro_line();
  const auto& c = inj.counters();
  EXPECT_GT(c.crashes, 0u);
  EXPECT_GT(c.garbage_bursts, 0u);
}

TEST(HostCrashRestart, FailsLiveSessionsAndCountsDegradation) {
  auto sim = pif_world(sim::Topology::ring(3), 11);
  svc::Client client(*sim);
  bool fired = false;
  svc::SessionResult seen;
  const svc::Session s = client.submit(
      0, svc::PifBroadcast{Value::integer(1)},
      [&](const svc::SessionKey&, const svc::SessionResult& r) {
        fired = true;
        seen = r;
      });
  auto& host = sim->process_as<svc::ServiceHost>(0);
  EXPECT_EQ(host.degrade().sessions_killed, 0u);
  Rng rng(77);
  host.crash_restart(rng);
  // The live session died visibly: completion fired with completed=false,
  // and the host's graceful-degradation counters recorded the kill.
  EXPECT_TRUE(fired);
  EXPECT_FALSE(seen.completed);
  EXPECT_EQ(host.degrade().sessions_killed, 1u);
  EXPECT_EQ(host.degrade().crashes, 1u);
  EXPECT_EQ(client.state(s), svc::SessionState::Done);
}

// ---------------------------------------------------------------------------
// Supervisor: terminal outcomes, retries, forced settlement.
// ---------------------------------------------------------------------------

TEST(Supervisor, HealthyRequestSettlesOkFirstAttempt) {
  auto sim = pif_world(sim::Topology::ring(4), 21);
  svc::Client client(*sim);
  svc::Supervisor sup(client);
  const auto t = sup.supervise(1, svc::PifBroadcast{Value::integer(5)});
  EXPECT_FALSE(sup.terminal(t));
  ASSERT_TRUE(sup.run_all());
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Ok);
  EXPECT_EQ(sup.attempts(t), 1);
  EXPECT_EQ(sup.result(t).value, Value::integer(5));
  EXPECT_EQ(sup.stats().ok, 1u);
  EXPECT_EQ(sup.live(), 0);
}

TEST(Supervisor, CrashKilledAttemptRetriesToOk) {
  auto sim = pif_world(sim::Topology::ring(3), 22);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 4;
  so.backoff_base = 8;
  svc::Supervisor sup(client, so);
  const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(9)});
  // Kill the first attempt by hand, then let the supervisor recover it.
  Rng rng(5);
  sim->process_as<svc::ServiceHost>(0).crash_restart(rng);
  ASSERT_TRUE(sup.run_all());
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Ok);
  EXPECT_GE(sup.attempts(t), 2);
  EXPECT_GE(sup.stats().resubmits, 1u);
  EXPECT_EQ(sup.result(t).value, Value::integer(9));
}

TEST(Supervisor, PermanentCrashingGivesUpTerminally) {
  auto sim = pif_world(sim::Topology::ring(3), 23);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 2;
  so.backoff_base = 4;
  so.backoff_max = 8;
  svc::Supervisor sup(client, so);
  Rng rng(6);
  // Crash the host at every pump: no attempt can survive.
  sup.set_on_pump(
      [&] { sim->process_as<svc::ServiceHost>(0).crash_restart(rng); });
  const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(3)});
  svc::AwaitOptions aw;
  aw.policy.check_every = 1;
  sup.run_all(aw);
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::GaveUp);
  EXPECT_EQ(sup.attempts(t), 1 + so.retry_budget);
  EXPECT_EQ(sup.stats().gave_up, 1u);
}

TEST(Supervisor, BudgetExhaustionForcesTerminalExpiry) {
  auto sim = pif_world(sim::Topology::ring(6), 24);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 1;
  svc::Supervisor sup(client, so);
  const auto t = sup.supervise(2, svc::PifBroadcast{Value::integer(8)});
  svc::AwaitOptions aw;
  aw.max_steps = 4;  // nowhere near enough for a PIF wave
  EXPECT_FALSE(sup.run_all(aw));
  // No silent hang: the ticket is terminal even though the budget died.
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Expired);
  EXPECT_EQ(sup.live(), 0);
}

// ---------------------------------------------------------------------------
// The chaos acceptance suite: 22 seeds x 3 topologies = 66 (seed, plan)
// combos. Phase A lands supervised sessions inside the fault windows and
// requires terminal outcomes for all of them; phase B submits after the
// last window closes and requires correct completion.
// ---------------------------------------------------------------------------

using ChaosParam = std::tuple<std::uint64_t, std::string>;

class FaultChaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(FaultChaos, MidFaultTerminalAndPostFaultServed) {
  const auto& [seed, topo_name] = GetParam();
  const int n = 6;
  const sim::Topology topo = make_topo(topo_name, n, seed);
  auto sim = pif_world(topo, seed);
  svc::Client client(*sim);
  const FaultPlan plan = FaultPlan::compile(chaos_spec(seed), topo);
  Injector inj(plan);

  svc::SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 3;
  so.backoff_base = 32;
  so.seed = seed;
  svc::Supervisor sup(client, so);
  sup.set_on_pump([&] { inj.poll(*sim); });

  // Phase A: requests in flight while the fault rages. Outcomes may be
  // anything — but they must be terminal, not hangs.
  std::vector<svc::Supervisor::Ticket> mid;
  for (int i = 0; i < 8; ++i)
    mid.push_back(
        sup.supervise(i % n, svc::PifBroadcast{Value::integer(1'000 + i)}));
  svc::AwaitOptions aw;
  aw.max_steps = 2'000'000;
  aw.policy.check_every = 16;
  sup.run_all(aw);
  for (const auto t : mid) {
    ASSERT_TRUE(sup.terminal(t)) << plan.repro_line();
    if (sup.outcome(t) == svc::SessionOutcome::Ok)
      EXPECT_TRUE(sup.result(t).completed) << plan.repro_line();
  }

  // Drain the schedule: keep the engine stepping (quiescent spells get a
  // wake-up probe) until every window has closed — the fault has ceased.
  int guard = 0;
  while (!inj.done() && ++guard < 10'000) {
    const auto reason = sim->run(2'048, [&](Simulator& s) {
      inj.poll(s);
      return inj.done();
    });
    if (reason == Simulator::StopReason::Quiescent)
      client.submit(0, svc::PifBroadcast{Value::integer(900'000 + guard)});
  }
  ASSERT_TRUE(inj.done()) << plan.repro_line();
  ASSERT_GE(sim->step_count(), plan.last_end()) << plan.repro_line();

  // Phase B: the snap-stabilization promise — every request submitted
  // after the fault ceased completes correctly.
  std::vector<svc::Session> post;
  std::vector<Value> payloads;
  for (int i = 0; i < 2 * n; ++i) {
    const Value v = Value::integer(5'000 + i);
    post.push_back(client.submit(i % n, svc::PifBroadcast{v}));
    payloads.push_back(v);
  }
  svc::AwaitOptions bw;
  bw.max_steps = 5'000'000;
  ASSERT_TRUE(client.run_until(post, bw)) << plan.repro_line();
  for (std::size_t i = 0; i < post.size(); ++i) {
    const svc::SessionResult r = client.result(post[i]);
    EXPECT_TRUE(r.completed) << plan.repro_line();
    EXPECT_EQ(r.value, payloads[i]) << plan.repro_line();
  }
}

std::string chaos_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  return std::get<1>(info.param) + "_seed" +
         std::to_string(std::get<0>(info.param));
}

std::vector<ChaosParam> chaos_params() {
  std::vector<ChaosParam> out;
  for (const char* topo : {"ring", "complete", "tree"})
    for (std::uint64_t seed = 1; seed <= 22; ++seed)
      out.emplace_back(seed, topo);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Campaign, FaultChaos,
                         ::testing::ValuesIn(chaos_params()), chaos_name);

// ---------------------------------------------------------------------------
// Replay: identical (seed, plan) runs are bit-identical on the Simulator —
// same observation stream, same step count, same injector counters.
// ---------------------------------------------------------------------------

struct ReplayResult {
  std::uint64_t digest = 0;
  std::uint64_t steps = 0;
  Injector::Counters counters;
};

ReplayResult run_replay(std::uint64_t seed, const std::string& topo_name) {
  const int n = 6;
  const sim::Topology topo = make_topo(topo_name, n, seed);
  auto sim = pif_world(topo, seed);
  svc::Client client(*sim);
  const FaultPlan plan = FaultPlan::compile(chaos_spec(seed), topo);
  Injector inj(plan);
  svc::SuperviseOptions so;
  so.attempt_deadline = 1'500;
  so.retry_budget = 2;
  so.seed = seed;
  svc::Supervisor sup(client, so);
  sup.set_on_pump([&] { inj.poll(*sim); });
  for (int i = 0; i < n; ++i)
    sup.supervise(i, svc::PifBroadcast{Value::integer(100 + i)});
  svc::AwaitOptions aw;
  aw.max_steps = 500'000;
  aw.policy.check_every = 16;
  sup.run_all(aw);
  ReplayResult r;
  r.digest = log_digest(*sim);
  r.steps = sim->step_count();
  r.counters = inj.counters();
  return r;
}

class FaultReplay : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(FaultReplay, SameSeedAndPlanReplaysBitIdentically) {
  const auto& [seed, topo_name] = GetParam();
  const ReplayResult a = run_replay(seed, topo_name);
  const ReplayResult b = run_replay(seed, topo_name);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.counters.crashes, b.counters.crashes);
  EXPECT_EQ(a.counters.garbage_bursts, b.counters.garbage_bursts);
  EXPECT_EQ(a.counters.drops, b.counters.drops);
  EXPECT_EQ(a.counters.duplicates, b.counters.duplicates);
  EXPECT_EQ(a.counters.partition_wipes, b.counters.partition_wipes);
}

INSTANTIATE_TEST_SUITE_P(Campaign, FaultReplay,
                         ::testing::Values(ChaosParam{31, "ring"},
                                           ChaosParam{32, "complete"},
                                           ChaosParam{33, "tree"}),
                         chaos_name);

}  // namespace
}  // namespace snapstab::fault
